//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(..)]`, range strategies
//! (`1usize..20`, `-1e30f32..1e30f32`), `prop::collection::vec`,
//! `prop::sample::select`, `prop::num::{f32,f64}::ANY`, `bool::ANY`, tuple
//! strategies (arity 2–6), `Strategy::prop_map`, and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the sampled inputs (each
//!   generated value is formatted into the panic payload by the macro) but
//!   is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name via FNV-1a, so failures reproduce exactly across runs and
//!   machines. Set `PROPTEST_SHIM_SEED` to explore a different universe.
//! * **Uniform sampling only.** The real proptest biases toward edge
//!   cases; here `ANY` for floats samples raw bit patterns (which does
//!   cover infinities, NaNs and subnormals by construction).

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Mirrors `proptest::prelude`: everything a `proptest!` block needs.
    /// The real prelude exposes the crate root as `prop`.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Runner configuration; only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A source of sampled values. The shim's strategies sample directly —
/// there is no intermediate value tree because there is no shrinking.
pub trait Strategy {
    type Value: Debug;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Mirrors `Strategy::prop_map`: transform sampled values with `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.source.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Debug),+
        {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
        impl_tuple_strategy!(@pop $($s/$v),+);
    };
    (@pop $head:ident/$hv:ident) => {};
    (@pop $head:ident/$hv:ident, $($rest:ident/$rv:ident),+) => {
        impl_tuple_strategy!($($rest/$rv),+);
    };
}

impl_tuple_strategy!(SA / a, SB / b, SC / c, SD / d, SE / e, SF / f);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        let u: f64 = rng.random();
        (self.start as f64 + u * (self.end as f64 - self.start as f64)) as f32
    }
}

pub mod bool {
    //! Mirrors `proptest::bool`.
    use super::{Rng, StdRng, Strategy};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }
    }
}

pub mod num {
    //! Mirrors `proptest::num`: full-domain float strategies.

    pub mod f64 {
        use crate::{Rng, StdRng, Strategy};

        /// Strategy over every `f64` bit pattern (including NaN/inf).
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `f64` bit pattern.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut StdRng) -> f64 {
                f64::from_bits(rng.random::<u64>())
            }
        }
    }

    pub mod f32 {
        use crate::{Rng, StdRng, Strategy};

        /// Strategy over every `f32` bit pattern (including NaN/inf).
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `f32` bit pattern.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f32;
            fn sample(&self, rng: &mut StdRng) -> f32 {
                f32::from_bits(rng.random::<u32>())
            }
        }
    }
}

pub mod collection {
    //! Mirrors `proptest::collection`.
    use super::{Rng, StdRng, Strategy};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `len` and
    /// elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..60)` — a vector strategy.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Mirrors `proptest::sample`.
    use super::{Rng, StdRng, Strategy};
    use std::fmt::Debug;

    /// Strategy drawing uniformly from a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `select(vec![..])` — pick one of the given options per case.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

/// Derive the per-test RNG, honoring `PROPTEST_SHIM_SEED` for manual
/// exploration of other sampling universes.
pub fn rng_for_test(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across runs, platforms, compilers.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(extra) = std::env::var("PROPTEST_SHIM_SEED") {
        if let Ok(n) = extra.trim().parse::<u64>() {
            h ^= n.rotate_left(17);
        }
    }
    StdRng::seed_from_u64(h)
}

/// Mirrors `proptest::proptest!`: expands each `fn name(arg in strategy)`
/// item into a `#[test]` that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cfg: $crate::ProptestConfig = $cfg;
                let mut __pt_rng = $crate::rng_for_test(stringify!($name));
                for __pt_case in 0..__pt_cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __pt_rng);)*
                    let __pt_inputs = format!(
                        concat!("case {}", $(concat!(", ", stringify!($arg), " = {:?}"),)*),
                        __pt_case $(, $arg)*
                    );
                    let __pt_result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = __pt_result {
                        eprintln!(
                            "proptest shim: property `{}` failed at {}",
                            stringify!($name),
                            __pt_inputs,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Mirrors `prop_assert!`: panics (rather than returning `Err`) — the shim
/// runs bodies inline, so a panic is the failure channel.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn select_only_yields_options(m in prop::sample::select(vec![1u8, 4, 9])) {
            prop_assert!(m == 1 || m == 4 || m == 9);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for_test("some_test");
        let mut b = crate::rng_for_test("some_test");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
