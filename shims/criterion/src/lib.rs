//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the bench harness uses —
//! `criterion_group!` / `criterion_main!`, benchmark groups, throughput
//! annotations, parameterized ids — over a simple wall-clock measurement
//! loop. No warm-up modeling, outlier rejection, or HTML reports: each
//! benchmark runs a calibration pass to pick an iteration count targeting
//! a fixed measurement window, then reports mean time per iteration (and
//! derived throughput when annotated).
//!
//! Numbers from this harness are honest medians-of-means, good enough for
//! relative comparisons between the simulator's kernel variants; absolute
//! rigor can come from the real criterion once the registry is reachable.

use std::fmt::{self, Display};
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, but still part of the API surface).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (or FLOPs, or any unit count) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes (decimal multiples) processed per iteration.
    BytesDecimal(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            // Much shorter than real criterion's 5s: these benches run in
            // CI smoke jobs, not publication runs.
            measurement_time: Duration::from_millis(250),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let window = self.measurement_time;
        run_one(name, None, sample_size, window, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        // Group-scoped, like real criterion: must not leak into later groups.
        self.measurement_time = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let window = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        run_one(&label, self.throughput, sample_size, window, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let window = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        run_one(&label, self.throughput, sample_size, window, |b| {
            f(b, input)
        });
        self
    }

    /// Present for API parity; all reporting happens per-benchmark.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    window: Duration,
    mut f: F,
) {
    // Calibration: find an iteration count whose sample fits the window.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = window.as_secs_f64() / sample_size as f64;
    let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];

    let mut line = format!("bench: {label:<52} {:>12}/iter", fmt_time(median));
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / median;
            line.push_str(&format!("  {:>12} elem/s", fmt_rate(rate)));
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            let rate = n as f64 / median;
            line.push_str(&format!("  {:>12} B/s", fmt_rate(rate)));
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("add", |b| {
            ran += 1;
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        assert!(ran > 0, "closure must execute");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("inputs");
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
    }
}
