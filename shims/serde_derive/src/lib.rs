//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the smallest possible surface the codebase relies on. Here that
//! surface is just name resolution: `#[derive(Serialize, Deserialize)]`
//! must parse and the trait bounds must be satisfiable. The derives
//! therefore emit **no code at all** — the `serde` shim provides blanket
//! impls of its marker traits, so every type already implements them.

use proc_macro::TokenStream;

/// No-op derive: the `serde` shim's blanket impl covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive: the `serde` shim's blanket impl covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
