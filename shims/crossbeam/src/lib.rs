//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace (the
//! threadblock launcher fans work out to host threads). Since Rust 1.63
//! the standard library has structured scoped threads, so the shim is a
//! thin adapter that reproduces crossbeam's call shape: the closure passed
//! to `spawn` receives a `&Scope` argument (std's does not), and `scope`
//! returns a `Result` the callers `.unwrap()` / `.expect()`.

pub mod thread {
    //! Scoped threads mirroring `crossbeam::thread`.

    /// Adapter over [`std::thread::Scope`] reproducing crossbeam's
    /// spawn-with-scope-argument signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. Always `Ok` here: std's scope propagates a child panic by
    /// resuming it on the caller, which for this workspace's
    /// `.unwrap()` / `.expect()` call sites is the same observable
    /// behavior as crossbeam's `Err` branch.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let mut counts = vec![0u32; 4];
        super::thread::scope(|s| {
            for (i, slot) in counts.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(counts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let total = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}
