//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` returns the guard directly, not a `Result`). Poisoned std
//! locks are recovered transparently — `parking_lot` has no poisoning, so
//! propagating it here would change semantics the callers never expect.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Poison-free mutex mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Poison-free reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock underneath");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
