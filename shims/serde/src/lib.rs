//! Offline stand-in for the `serde` crate.
//!
//! The workspace builds in an environment without crates.io access, so this
//! shim supplies the *name surface* the codebase uses — `Serialize` /
//! `Deserialize` as derivable traits — without any actual serialization
//! machinery. The traits are markers with blanket impls; the derives
//! (re-exported from the sibling `serde_derive` shim) emit nothing.
//!
//! When the real `serde` becomes available, deleting the `shims/` path
//! entries from `[workspace.dependencies]` and pointing them at crates.io
//! is the entire migration: call sites already use the real idioms.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented for all
/// types so derived bounds are always satisfiable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`. Blanket-implemented
/// for all types so derived bounds are always satisfiable.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser` for symmetric imports.
pub mod ser {
    pub use super::Serialize;
}
