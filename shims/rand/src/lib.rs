//! Offline stand-in for the `rand` crate (0.9-style `random`/`random_range`
//! naming).
//!
//! The build environment has no crates.io access, so this shim provides a
//! deterministic, seedable generator with exactly the surface the workspace
//! uses: `StdRng::seed_from_u64`, `rng.random::<T>()` and
//! `rng.random_range(range)`. The generator is SplitMix64 — statistically
//! solid for test/data-generation purposes and fully reproducible across
//! platforms, which the fault-injection campaigns rely on (a campaign is
//! identified by its seed).

use std::ops::Range;

/// Core source of randomness: 64 fresh bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-generation surface, mirroring rand 0.9's `Rng` trait;
/// blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` over `T`'s standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// A uniformly random value in `[range.start, range.end)`.
    /// Panics on an empty range, like the real `rand`.
    fn random_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "standard" uniform distribution (`rng.random::<T>()`).
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with `random_range`.
pub trait UniformRange: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Multiply-shift rejection-free mapping is fine here: spans
                // in this workspace are tiny relative to 2^64, so modulo
                // bias is far below statistical noise.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u8, u16, u32, u64);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = (range.end as i128 - range.start as i128) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl UniformRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let u: f64 = f64::generate(rng);
        range.start + u * (range.end - range.start)
    }
}

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// Not cryptographically secure (neither consumer in this workspace
    /// needs that); chosen for a one-word state and exact cross-platform
    /// reproducibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut rng = StdRng { state: seed };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_low = false;
        for _ in 0..2000 {
            let v = rng.random_range(3usize..7);
            assert!((3..7).contains(&v));
            seen_low |= v == 3;
        }
        assert!(seen_low, "lower bound should be reachable");
        let s = rng.random_range(-5i64..5);
        assert!((-5..5).contains(&s));
    }
}
