//! Named dataset scenarios shared by benches, tests and examples.

use crate::blobs::{make_blobs, BlobSpec};
use gpu_sim::{Matrix, Scalar};
use serde::{Deserialize, Serialize};

/// A named dataset recipe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub samples: usize,
    pub dim: usize,
    pub clusters: usize,
    pub seed: u64,
}

impl DatasetSpec {
    /// Materialize the dataset (blobs with one component per cluster).
    pub fn build<T: Scalar>(&self) -> (Matrix<T>, Vec<u32>, Matrix<T>) {
        make_blobs(&BlobSpec {
            samples: self.samples,
            dim: self.dim,
            centers: self.clusters,
            cluster_std: 0.5,
            center_box: 6.0,
            seed: self.seed,
        })
    }
}

/// The scenarios exercised by tests and the functional benches. Shapes
/// mirror the paper's sweeps at test-friendly M.
pub const SCENARIOS: &[DatasetSpec] = &[
    DatasetSpec {
        name: "tiny",
        samples: 256,
        dim: 4,
        clusters: 4,
        seed: 1,
    },
    DatasetSpec {
        name: "skinny-n8",
        samples: 4096,
        dim: 8,
        clusters: 32,
        seed: 2,
    },
    DatasetSpec {
        name: "wide-n64",
        samples: 2048,
        dim: 64,
        clusters: 16,
        seed: 3,
    },
    DatasetSpec {
        name: "many-clusters",
        samples: 4096,
        dim: 16,
        clusters: 128,
        seed: 4,
    },
    DatasetSpec {
        name: "irregular",
        samples: 3000,
        dim: 24,
        clusters: 52,
        seed: 5,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build() {
        for s in SCENARIOS {
            let (data, labels, centers) = s.build::<f32>();
            assert_eq!(data.rows(), s.samples, "{}", s.name);
            assert_eq!(data.cols(), s.dim);
            assert_eq!(centers.rows(), s.clusters);
            assert_eq!(labels.len(), s.samples);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SCENARIOS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCENARIOS.len());
    }
}
