//! Gaussian mixture ("blobs") generator — the canonical K-means workload.
//!
//! Uses Box–Muller internally so no extra distribution crates are needed.

use gpu_sim::{Matrix, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a Gaussian-blobs dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobSpec {
    /// Number of samples (M).
    pub samples: usize,
    /// Feature dimension (N).
    pub dim: usize,
    /// Number of mixture components (true clusters).
    pub centers: usize,
    /// Standard deviation of each component.
    pub cluster_std: f64,
    /// Half-width of the cube true centers are drawn from.
    pub center_box: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlobSpec {
    fn default() -> Self {
        BlobSpec {
            samples: 1024,
            dim: 8,
            centers: 8,
            cluster_std: 0.4,
            center_box: 5.0,
            seed: 0,
        }
    }
}

/// One standard-normal draw via Box–Muller.
pub(crate) fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Generate samples, returning `(data, true_labels, true_centers)`.
///
/// Samples are striped across components so every prefix of the dataset is
/// roughly balanced (useful when tests subsample).
pub fn make_blobs<T: Scalar>(spec: &BlobSpec) -> (Matrix<T>, Vec<u32>, Matrix<T>) {
    assert!(spec.centers > 0 && spec.dim > 0, "degenerate blob spec");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut centers = Matrix::<T>::zeros(spec.centers, spec.dim);
    for c in 0..spec.centers {
        for d in 0..spec.dim {
            let v = (rng.random::<f64>() * 2.0 - 1.0) * spec.center_box;
            centers.set(c, d, T::from_f64(v));
        }
    }
    let mut data = Matrix::<T>::zeros(spec.samples, spec.dim);
    let mut labels = Vec::with_capacity(spec.samples);
    for i in 0..spec.samples {
        let c = i % spec.centers;
        labels.push(c as u32);
        for d in 0..spec.dim {
            let v = centers.get(c, d).to_f64() + normal(&mut rng) * spec.cluster_std;
            data.set(i, d, T::from_f64(v));
        }
    }
    (data, labels, centers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_correct() {
        let spec = BlobSpec {
            samples: 100,
            dim: 5,
            centers: 4,
            ..Default::default()
        };
        let (data, labels, centers) = make_blobs::<f32>(&spec);
        assert_eq!(data.rows(), 100);
        assert_eq!(data.cols(), 5);
        assert_eq!(labels.len(), 100);
        assert_eq!(centers.rows(), 4);
        assert!(labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = BlobSpec {
            seed: 9,
            ..Default::default()
        };
        let (a, _, _) = make_blobs::<f64>(&spec);
        let (b, _, _) = make_blobs::<f64>(&spec);
        assert_eq!(a, b);
        let (c, _, _) = make_blobs::<f64>(&BlobSpec { seed: 10, ..spec });
        assert_ne!(a, c);
    }

    #[test]
    fn samples_cluster_near_their_centers() {
        let spec = BlobSpec {
            samples: 400,
            dim: 3,
            centers: 4,
            cluster_std: 0.1,
            center_box: 10.0,
            seed: 3,
        };
        let (data, labels, centers) = make_blobs::<f64>(&spec);
        for (i, &label) in labels.iter().enumerate() {
            let c = label as usize;
            let d2: f64 = (0..3)
                .map(|d| (data.get(i, d) - centers.get(c, d)).powi(2))
                .sum();
            assert!(d2.sqrt() < 1.5, "sample {i} strayed {}", d2.sqrt());
        }
    }

    #[test]
    fn labels_are_striped() {
        let spec = BlobSpec {
            samples: 10,
            centers: 3,
            ..Default::default()
        };
        let (_, labels, _) = make_blobs::<f32>(&spec);
        assert_eq!(labels[0..6], [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
