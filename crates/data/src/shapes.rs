#![allow(clippy::needless_range_loop)]
//! Additional dataset shapes: uniform noise, anisotropic clusters and
//! imbalanced mixtures — the harder regimes for Lloyd iterations.

use crate::blobs::normal;
use gpu_sim::{Matrix, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform samples in the cube `[-half, half]^dim` (clusterless noise —
/// worst case for convergence tests).
pub fn uniform_cube<T: Scalar>(samples: usize, dim: usize, half: f64, seed: u64) -> Matrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(samples, dim, |_, _| {
        T::from_f64((rng.random::<f64>() * 2.0 - 1.0) * half)
    })
}

/// Anisotropic Gaussian clusters: each component is stretched along a
/// random axis by `stretch`, producing the elongated shapes where vanilla
/// Euclidean K-means is known to struggle.
pub fn anisotropic<T: Scalar>(
    samples: usize,
    dim: usize,
    centers: usize,
    stretch: f64,
    seed: u64,
) -> (Matrix<T>, Vec<u32>) {
    assert!(dim >= 1 && centers >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ctr = vec![vec![0.0f64; dim]; centers];
    let mut axis = vec![0usize; centers];
    for (c, row) in ctr.iter_mut().enumerate() {
        for v in row.iter_mut() {
            *v = (rng.random::<f64>() * 2.0 - 1.0) * 6.0;
        }
        axis[c] = rng.random_range(0..dim);
    }
    let mut data = Matrix::<T>::zeros(samples, dim);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let c = i % centers;
        labels.push(c as u32);
        for d in 0..dim {
            let sigma = if d == axis[c] { stretch } else { 0.3 };
            data.set(i, d, T::from_f64(ctr[c][d] + normal(&mut rng) * sigma));
        }
    }
    (data, labels)
}

/// Imbalanced mixture: component `c` receives a share proportional to
/// `(c+1)^2`, exercising the empty/small-cluster handling of the driver.
pub fn imbalanced<T: Scalar>(
    samples: usize,
    dim: usize,
    centers: usize,
    seed: u64,
) -> (Matrix<T>, Vec<u32>) {
    assert!(centers >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..centers).map(|c| ((c + 1) * (c + 1)) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut ctr = vec![vec![0.0f64; dim]; centers];
    for row in ctr.iter_mut() {
        for v in row.iter_mut() {
            *v = (rng.random::<f64>() * 2.0 - 1.0) * 8.0;
        }
    }
    let mut data = Matrix::<T>::zeros(samples, dim);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        // inverse-CDF over the quadratic weights
        let u = rng.random::<f64>() * total;
        let mut acc = 0.0;
        let mut c = centers - 1;
        for (j, w) in weights.iter().enumerate() {
            acc += w;
            if u <= acc {
                c = j;
                break;
            }
        }
        labels.push(c as u32);
        for d in 0..dim {
            data.set(i, d, T::from_f64(ctr[c][d] + normal(&mut rng) * 0.25));
        }
    }
    (data, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let m = uniform_cube::<f32>(500, 4, 2.5, 1);
        for v in m.as_slice() {
            assert!(v.abs() <= 2.5);
        }
    }

    #[test]
    fn anisotropic_stretches_one_axis() {
        let (data, labels) = anisotropic::<f64>(3000, 4, 1, 4.0, 2);
        assert!(labels.iter().all(|&l| l == 0));
        // variance along some axis should dwarf the others
        let n = data.rows() as f64;
        let mut var = vec![0.0f64; 4];
        let mut mean = [0.0f64; 4];
        for i in 0..data.rows() {
            for d in 0..4 {
                mean[d] += data.get(i, d);
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        for i in 0..data.rows() {
            for d in 0..4 {
                var[d] += (data.get(i, d) - mean[d]).powi(2);
            }
        }
        let vmax = var.iter().cloned().fold(0.0, f64::max);
        let vmin = var.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(vmax / vmin > 20.0, "stretch not visible: {var:?}");
    }

    #[test]
    fn imbalanced_shares_are_skewed() {
        let (_, labels) = imbalanced::<f32>(8000, 3, 4, 5);
        let mut counts = [0usize; 4];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        assert!(counts[3] > 3 * counts[0], "counts {counts:?}");
        assert!(counts.iter().all(|&c| c > 0));
    }
}
