//! # ftk-data — synthetic workloads
//!
//! Deterministic, seeded dataset generators exercising the shapes the paper
//! evaluates (M up to 131072 samples, feature dimensions N ∈ [1, 128],
//! cluster counts K ∈ [1, 512]) plus domain-flavoured generators for the
//! examples (vector quantization of image patches — the K-means use case
//! the paper's introduction motivates).

pub mod blobs;
pub mod catalog;
pub mod image;
pub mod shapes;

pub use blobs::{make_blobs, BlobSpec};
pub use catalog::{DatasetSpec, SCENARIOS};
pub use image::{image_patches, SyntheticImage};
pub use shapes::{anisotropic, imbalanced, uniform_cube};
