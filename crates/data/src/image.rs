//! Synthetic image patches for the vector-quantization example.
//!
//! K-means' classic systems application (paper §I cites vector quantization
//! \[2\]) clusters small pixel patches into a codebook. Real images are not
//! shippable here, so a procedural image (smooth gradients + texture bands
//! + noise) provides patches with realistic low-dimensional structure.

use gpu_sim::{Matrix, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A procedurally generated grayscale image.
#[derive(Debug, Clone)]
pub struct SyntheticImage {
    pub width: usize,
    pub height: usize,
    /// Row-major pixels in `[0, 1]`.
    pub pixels: Vec<f64>,
}

impl SyntheticImage {
    /// Render a `width x height` image with `bands` texture regions.
    pub fn generate(width: usize, height: usize, bands: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let phases: Vec<(f64, f64, f64)> = (0..bands.max(1))
            .map(|_| {
                (
                    rng.random::<f64>() * 0.2 + 0.02, // frequency
                    rng.random::<f64>() * std::f64::consts::TAU,
                    rng.random::<f64>(), // orientation mix
                )
            })
            .collect();
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let band = (y * bands.max(1)) / height.max(1);
                let (f, p, mix) = phases[band.min(phases.len() - 1)];
                let u = x as f64 * mix + y as f64 * (1.0 - mix);
                let tex = (u * f + p).sin() * 0.25;
                let grad = x as f64 / width.max(1) as f64 * 0.5;
                let noise = (rng.random::<f64>() - 0.5) * 0.05;
                pixels.push((0.25 + grad + tex + noise).clamp(0.0, 1.0));
            }
        }
        SyntheticImage {
            width,
            height,
            pixels,
        }
    }

    /// Pixel accessor.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        self.pixels[y * self.width + x]
    }
}

/// Extract every non-overlapping `patch x patch` block as one row of a
/// sample matrix (dimension `patch*patch`) — the standard VQ layout.
pub fn image_patches<T: Scalar>(img: &SyntheticImage, patch: usize) -> Matrix<T> {
    assert!(patch > 0 && patch <= img.width && patch <= img.height);
    let px = img.width / patch;
    let py = img.height / patch;
    let mut m = Matrix::<T>::zeros(px * py, patch * patch);
    for by in 0..py {
        for bx in 0..px {
            let row = by * px + bx;
            for dy in 0..patch {
                for dx in 0..patch {
                    let v = img.get(bx * patch + dx, by * patch + dy);
                    m.set(row, dy * patch + dx, T::from_f64(v));
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_is_normalized_and_deterministic() {
        let a = SyntheticImage::generate(64, 48, 4, 11);
        let b = SyntheticImage::generate(64, 48, 4, 11);
        assert_eq!(a.pixels, b.pixels);
        assert!(a.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(a.pixels.len(), 64 * 48);
    }

    #[test]
    fn patch_extraction_shapes() {
        let img = SyntheticImage::generate(32, 24, 3, 1);
        let patches = image_patches::<f32>(&img, 4);
        assert_eq!(patches.rows(), (32 / 4) * (24 / 4));
        assert_eq!(patches.cols(), 16);
    }

    #[test]
    fn patch_values_match_pixels() {
        let img = SyntheticImage::generate(16, 16, 2, 7);
        let patches = image_patches::<f64>(&img, 8);
        // patch (1,0) starts at x=8,y=0; element (dy=2,dx=3) = pixel (11,2)
        assert_eq!(patches.get(1, 2 * 8 + 3), img.get(11, 2));
    }

    #[test]
    #[should_panic]
    fn oversized_patch_panics() {
        let img = SyntheticImage::generate(8, 8, 1, 0);
        let _ = image_patches::<f32>(&img, 16);
    }
}
