//! Stable parameter numbering.
//!
//! The paper refers to parameter groups by number (ids 88, 69, 83 for FP32;
//! 21, 19, 12 for FP64, Table I / Fig. 14). Our ids are indices into the
//! deterministic enumeration order of [`crate::space::enumerate_params`];
//! they differ from the paper's numbering but are stable across runs, which
//! is what the selection figures need.

use crate::params::KernelParams;
use crate::space::enumerate_params;
use gpu_sim::Precision;

/// The enumerated parameter space with id ↔ params lookup.
#[derive(Debug, Clone)]
pub struct ParamRegistry {
    precision: Precision,
    params: Vec<KernelParams>,
}

impl ParamRegistry {
    /// Build the registry for a precision.
    pub fn new(precision: Precision) -> Self {
        ParamRegistry {
            precision,
            params: enumerate_params(precision),
        }
    }

    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of parameter groups.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Parameter group by id.
    pub fn get(&self, id: usize) -> Option<&KernelParams> {
        self.params.get(id)
    }

    /// Id of an exact parameter group.
    pub fn id_of(&self, params: &KernelParams) -> Option<usize> {
        self.params.iter().position(|p| p == params)
    }

    /// All (id, params) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &KernelParams)> {
        self.params.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        let reg = ParamRegistry::new(Precision::Fp32);
        assert!(!reg.is_empty());
        for (id, p) in reg.iter() {
            assert_eq!(reg.id_of(p), Some(id));
            assert_eq!(reg.get(id), Some(p));
        }
    }

    #[test]
    fn paper_parameters_have_ids() {
        for prec in Precision::all() {
            let reg = ParamRegistry::new(prec);
            assert!(reg.id_of(&KernelParams::cuml(prec)).is_some());
            for (name, p) in KernelParams::table1(prec) {
                assert!(
                    reg.id_of(&p).is_some(),
                    "Table I id {name} must be registered"
                );
            }
        }
    }

    #[test]
    fn out_of_range_id_is_none() {
        let reg = ParamRegistry::new(Precision::Fp64);
        assert!(reg.get(reg.len()).is_none());
    }
}
