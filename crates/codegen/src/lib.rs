//! # ftk-codegen — template-based kernel generation and selection
//!
//! Reproduces the paper's §III-B framework: CUTLASS-style kernel parameters
//! must be compile-time constants, so supporting many tilings means
//! *generating* one kernel per parameter set, probing feasibility
//! ("compile & run a demo"), benchmarking the survivors over a 64-shape
//! grid, and emitting a selector that picks the winner per problem size.
//!
//! * [`params`] — `Threadblock/Warp/Thread` tile triples (`<M,N,K>`),
//! * [`space`] — the enumeration rules (§III-B1): powers of two,
//!   `Warp.K == Threadblock.K`, warp/thread ratio ∈ {8, 16}, fixed thread
//!   tiles per precision,
//! * [`feasibility`] — the resource probe standing in for nvcc,
//! * [`template`] — CUDA-like source emission mirroring Fig. 3/4/6,
//! * [`tuner`] — exhaustive benchmark over the shape grid (timing model),
//! * [`selector`] — `(precision, M, N, K) → KernelParams` lookup,
//! * [`registry`] — stable parameter numbering (the paper's ids 88/69/83…),
//! * [`planner`] — iteration-aware family choice: stateless ladder vs the
//!   bound-pruned (Hamerly) kernel, which amortizes over Lloyd iterations.

pub mod feasibility;
pub mod params;
pub mod planner;
pub mod registry;
pub mod selector;
pub mod space;
pub mod template;
pub mod tuner;

pub use feasibility::{check_feasibility, Feasibility};
pub use params::{KernelParams, Tile3};
pub use planner::{plan_variant, VariantChoice, VariantPlan};
pub use registry::ParamRegistry;
pub use selector::KernelSelector;
pub use space::enumerate_params;
pub use tuner::{tune, SelectionTable, ShapeGrid};
