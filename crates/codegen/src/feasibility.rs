//! The feasibility probe — our stand-in for the paper's "use a demo to
//! check parameter feasibility … if it can compile and run, which means it
//! is functionally correct" loop (Fig. 3).
//!
//! On real hardware infeasible parameter sets fail at compile time
//! (register spill, static shared-memory overflow) or at launch. The probe
//! applies the same arithmetic the hardware would.

use crate::params::KernelParams;
use gpu_sim::timing::occupancy::{occupancy, tensor_regs_per_thread};
use gpu_sim::{DeviceProfile, Precision};
use serde::{Deserialize, Serialize};

/// Verdict of the probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feasibility {
    /// Compiles and launches.
    Ok,
    /// Static shared memory exceeds the per-block limit.
    SharedMemory,
    /// Register demand exceeds the architectural per-thread cap.
    Registers,
    /// Threadblock exceeds the thread limit.
    Threads,
    /// The configuration cannot co-reside even once per SM.
    ZeroOccupancy,
}

impl Feasibility {
    /// True when the kernel can run.
    pub fn is_ok(self) -> bool {
        self == Feasibility::Ok
    }
}

/// Pipeline stages used on a device (3 with `cp.async`, 2 without).
pub fn stages_for(device: &DeviceProfile) -> usize {
    if device.has_async_copy {
        3
    } else {
        2
    }
}

/// Probe one parameter group on a device.
pub fn check_feasibility(
    device: &DeviceProfile,
    precision: Precision,
    params: &KernelParams,
) -> Feasibility {
    let stages = stages_for(device);
    let tile = params.tile_config(stages);
    let smem = tile.smem_bytes(precision);
    if smem > device.smem_per_block {
        return Feasibility::SharedMemory;
    }
    if params.threads() > device.max_threads_per_block {
        return Feasibility::Threads;
    }
    let mma_k = match precision {
        Precision::Fp32 => 8,
        Precision::Fp64 => 4,
    };
    let regs = tensor_regs_per_thread(params.warp.m, params.warp.n, mma_k, precision);
    if regs >= device.regs_per_thread {
        return Feasibility::Registers;
    }
    let occ = occupancy(device, params.threads(), smem, regs);
    if occ.blocks_per_sm == 0 {
        return Feasibility::ZeroOccupancy;
    }
    Feasibility::Ok
}

/// Filter a candidate list down to the feasible ones, preserving order and
/// returning (index-in-space, params).
pub fn feasible_set(
    device: &DeviceProfile,
    precision: Precision,
    space: &[KernelParams],
) -> Vec<(usize, KernelParams)> {
    space
        .iter()
        .enumerate()
        .filter(|(_, p)| check_feasibility(device, precision, p).is_ok())
        .map(|(i, p)| (i, *p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Tile3;
    use crate::space::enumerate_params;

    #[test]
    fn cuml_and_table1_are_feasible_on_a100() {
        let dev = DeviceProfile::a100();
        for p in Precision::all() {
            assert!(check_feasibility(&dev, p, &KernelParams::cuml(p)).is_ok());
            for (name, kp) in KernelParams::table1(p) {
                assert!(
                    check_feasibility(&dev, p, &kp).is_ok(),
                    "Table I id {name} must be feasible"
                );
            }
        }
    }

    #[test]
    fn oversized_smem_rejected() {
        let dev = DeviceProfile::t4(); // 64 KiB shared per block
        let p = KernelParams::new(
            Tile3::new(512, 512, 32),
            Tile3::new(64, 64, 32),
            KernelParams::thread_tile(Precision::Fp64),
        );
        assert_eq!(
            check_feasibility(&dev, Precision::Fp64, &p),
            Feasibility::SharedMemory
        );
    }

    #[test]
    fn feasible_set_shrinks_on_t4() {
        // Turing's smaller shared memory must reject more candidates.
        let space = enumerate_params(Precision::Fp32);
        let a100 = feasible_set(&DeviceProfile::a100(), Precision::Fp32, &space);
        let t4 = feasible_set(&DeviceProfile::t4(), Precision::Fp32, &space);
        assert!(t4.len() < a100.len(), "a100={} t4={}", a100.len(), t4.len());
        assert!(!t4.is_empty());
    }

    #[test]
    fn stages_depend_on_async_copy() {
        assert_eq!(stages_for(&DeviceProfile::a100()), 3);
        assert_eq!(stages_for(&DeviceProfile::t4()), 2);
    }
}
