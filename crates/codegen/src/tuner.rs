//! The auto-tuner: benchmark every feasible kernel over the evaluation
//! shape grid and record the winner per shape.
//!
//! "The test workflow illustrated in Figure 3 checks the feasibility of
//! those kernels and performs the benchmark over 64 problem sizes. The
//! benchmark result of different kernels will be employed as the kernel
//! selection criterion." (§III-B2)

use crate::feasibility::{feasible_set, stages_for};
use crate::params::KernelParams;
use crate::registry::ParamRegistry;
use gpu_sim::timing::{estimate, GemmShape, KernelClass, TimingInput};
use gpu_sim::{DeviceProfile, Precision};
use serde::{Deserialize, Serialize};

/// The problem-size grid the tuner sweeps (8 dims × 8 cluster counts = 64
/// shapes, matching the paper's Fig. 12/14 axes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeGrid {
    /// Sample count (fixed at 131072 in the paper).
    pub m: usize,
    /// Feature dimensions (paper N axis).
    pub dims: Vec<usize>,
    /// Cluster counts (paper K axis).
    pub clusters: Vec<usize>,
}

impl ShapeGrid {
    /// The paper's 64-shape grid: N ∈ {8, 24, …, 120}, K ∈ {32, 96, …, 480}.
    pub fn paper() -> Self {
        ShapeGrid {
            m: 131_072,
            dims: (0..8).map(|i| 8 + 16 * i).collect(),
            clusters: (0..8).map(|i| 32 + 64 * i).collect(),
        }
    }

    /// A reduced grid for fast tests.
    pub fn small() -> Self {
        ShapeGrid {
            m: 131_072,
            dims: vec![8, 64, 128],
            clusters: vec![8, 128],
        }
    }

    /// Total number of shapes.
    pub fn len(&self) -> usize {
        self.dims.len() * self.clusters.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Winner information for one shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunedEntry {
    /// Feature dimension (GEMM K).
    pub dim: usize,
    /// Cluster count (GEMM N).
    pub clusters: usize,
    /// Registry id of the winning parameter group.
    pub param_id: usize,
    /// Winner throughput (timing model), GFLOP/s.
    pub gflops: f64,
    /// cuML's fixed parameters at the same shape, GFLOP/s.
    pub cuml_gflops: f64,
}

impl TunedEntry {
    /// Speedup of the tuned kernel over cuML.
    pub fn speedup(&self) -> f64 {
        self.gflops / self.cuml_gflops
    }
}

/// The tuner output: per-shape winners for one (device, precision).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionTable {
    pub device: String,
    pub precision: Precision,
    pub m: usize,
    pub entries: Vec<TunedEntry>,
}

impl SelectionTable {
    /// Average speedup over cuML across the grid.
    pub fn mean_speedup(&self) -> f64 {
        self.entries.iter().map(TunedEntry::speedup).sum::<f64>() / self.entries.len() as f64
    }

    /// Maximum speedup over cuML across the grid.
    pub fn max_speedup(&self) -> f64 {
        self.entries
            .iter()
            .map(TunedEntry::speedup)
            .fold(0.0, f64::max)
    }

    /// Distinct winning parameter ids (the paper observes only 7 FP32 / 4
    /// FP64 groups are ever selected, §V-A5).
    pub fn distinct_winners(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.entries.iter().map(|e| e.param_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Model-predicted throughput of one parameter group at one shape.
pub fn predicted_gflops(
    device: &DeviceProfile,
    precision: Precision,
    params: &KernelParams,
    m: usize,
    clusters: usize,
    dim: usize,
) -> f64 {
    let tile = params.tile_config(stages_for(device));
    let input = TimingInput::plain(
        device,
        precision,
        KernelClass::Tensor(tile),
        GemmShape::new(m, clusters, dim),
    );
    estimate(&input).gflops
}

/// Run the tuner: probe feasibility, benchmark every survivor on every
/// shape, record winners.
pub fn tune(
    device: &DeviceProfile,
    precision: Precision,
    registry: &ParamRegistry,
    grid: &ShapeGrid,
) -> SelectionTable {
    let space: Vec<KernelParams> = registry.iter().map(|(_, p)| *p).collect();
    let feasible = feasible_set(device, precision, &space);
    assert!(
        !feasible.is_empty(),
        "no feasible kernels on {}",
        device.name
    );
    let cuml = KernelParams::cuml(precision);
    let mut entries = Vec::with_capacity(grid.len());
    for &dim in &grid.dims {
        for &clusters in &grid.clusters {
            let mut best_id = feasible[0].0;
            let mut best = f64::NEG_INFINITY;
            for (id, p) in &feasible {
                let g = predicted_gflops(device, precision, p, grid.m, clusters, dim);
                if g > best {
                    best = g;
                    best_id = *id;
                }
            }
            let cuml_g = predicted_gflops(device, precision, &cuml, grid.m, clusters, dim);
            entries.push(TunedEntry {
                dim,
                clusters,
                param_id: best_id,
                gflops: best,
                cuml_gflops: cuml_g,
            });
        }
    }
    SelectionTable {
        device: device.name.to_string(),
        precision,
        m: grid.m,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_64_shapes() {
        let g = ShapeGrid::paper();
        assert_eq!(g.len(), 64);
        assert_eq!(g.dims[0], 8);
        assert_eq!(*g.dims.last().unwrap(), 120);
        assert_eq!(g.clusters[0], 32);
        assert_eq!(*g.clusters.last().unwrap(), 480);
    }

    #[test]
    fn tuned_kernels_never_lose_to_cuml() {
        // cuML's parameters are inside the search space, so the winner is
        // at least as fast at every shape.
        let dev = DeviceProfile::a100();
        let reg = ParamRegistry::new(Precision::Fp32);
        let table = tune(&dev, Precision::Fp32, &reg, &ShapeGrid::small());
        for e in &table.entries {
            assert!(
                e.gflops >= e.cuml_gflops * 0.999,
                "shape dim={} k={} lost to cuML",
                e.dim,
                e.clusters
            );
        }
    }

    #[test]
    fn fp32_speedups_match_paper_band() {
        // Paper Fig. 12: FP32 average 2.49x, max 4.55x over cuML.
        let dev = DeviceProfile::a100();
        let reg = ParamRegistry::new(Precision::Fp32);
        let table = tune(&dev, Precision::Fp32, &reg, &ShapeGrid::paper());
        let mean = table.mean_speedup();
        let max = table.max_speedup();
        assert!((1.6..=3.6).contains(&mean), "FP32 mean speedup {mean:.2}");
        assert!((2.5..=7.0).contains(&max), "FP32 max speedup {max:.2}");
    }

    #[test]
    fn fp64_speedups_are_marginal_as_in_paper() {
        // Paper Fig. 12: FP64 average 1.04x, max 1.39x.
        let dev = DeviceProfile::a100();
        let reg = ParamRegistry::new(Precision::Fp64);
        let table = tune(&dev, Precision::Fp64, &reg, &ShapeGrid::paper());
        let mean = table.mean_speedup();
        assert!((1.0..=1.6).contains(&mean), "FP64 mean speedup {mean:.2}");
    }

    #[test]
    fn few_distinct_winners() {
        // §V-A5: only a handful of parameter groups are ever selected.
        let dev = DeviceProfile::a100();
        let reg = ParamRegistry::new(Precision::Fp32);
        let table = tune(&dev, Precision::Fp32, &reg, &ShapeGrid::paper());
        let w = table.distinct_winners();
        assert!(
            (1..=16).contains(&w.len()),
            "expected a small winner set, got {} ids",
            w.len()
        );
    }
}
