//! Iteration-aware variant planning: should a fit run the tensor/SIMT
//! distance ladder every iteration, or the bound-pruned (Hamerly-style)
//! scalar kernel?
//!
//! The per-shape [`crate::KernelSelector`] answers "which tile wins one
//! assignment launch" — a question independent of the iteration count. The
//! bound-pruned kernel changes the question: it pays full-scan prices for a
//! few warmup iterations (bounds start vacuous) and then skips most
//! candidate distances, so its amortized cost *falls* with the iteration
//! count while every stateless kernel's cost stays flat. Choosing between
//! the families therefore needs `max_iter` as an input, which is why this
//! planner sits beside the selector rather than inside its table.
//!
//! The baseline is the fused SIMT kernel (V2 of the paper's §III-A ladder,
//! the reference point of the fit-throughput regression gate); both sides
//! are priced with the same analytic timing model the tuner uses.

use gpu_sim::timing::{estimate, GemmShape, KernelClass, TimingInput};
use gpu_sim::{DeviceProfile, Precision};

/// Full-scan iterations before the bounds earn their keep: the first pass
/// seeds them and centroids move fastest early, so drift inflation keeps
/// the next couple of passes close to unpruned.
pub const WARMUP_FULL_SCANS: usize = 3;

/// Steady-state fraction of candidate distances the triangle-inequality
/// test skips once centroid motion settles (well-separated clusters; the
/// prune-rate regression test holds the kernel to better than half).
pub const STEADY_PRUNED_FRACTION: f64 = 0.85;

/// Auxiliary kernels the bound-pruned variant adds per iteration (centroid
/// drift, inter-centroid separation, bound drift application).
const AUX_LAUNCHES: f64 = 3.0;

/// Which kernel family a fit should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantChoice {
    /// Stay on the stateless ladder (tensor or SIMT assignment).
    Baseline,
    /// Run the bound-pruned scalar kernel with device-resident bounds.
    BoundPruned,
}

/// The planner's verdict plus the modeled totals behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantPlan {
    /// The cheaper family at the requested iteration count.
    pub choice: VariantChoice,
    /// Modeled total assignment-phase seconds for the baseline kernel.
    pub baseline_total_s: f64,
    /// Modeled total seconds for the bound-pruned kernel (warmup + steady).
    pub bound_pruned_total_s: f64,
    /// Smallest iteration count at which the bound-pruned family wins, if
    /// it ever does within the probed horizon.
    pub crossover_iters: Option<usize>,
}

/// Modeled seconds for one bound-pruned iteration: a full scan during
/// warmup, a mostly-pruned pass afterwards. Both phases pay the auxiliary
/// bound-maintenance launches.
pub fn bound_pruned_iteration_s(
    device: &DeviceProfile,
    precision: Precision,
    shape: GemmShape,
    warmup: bool,
) -> f64 {
    let full = estimate(&TimingInput::plain(
        device,
        precision,
        KernelClass::Naive,
        shape,
    ));
    let t_aux = AUX_LAUNCHES * device.launch_overhead_us * 1e-6;
    if warmup {
        return full.time_s + t_aux;
    }
    let es = precision.bytes();
    // Unpruned samples re-run the scalar scan; pruned ones only touch their
    // two bounds and label.
    let survivors = 1.0 - STEADY_PRUNED_FRACTION;
    let t_compute = full.t_issue * survivors;
    let bound_bytes = (shape.m * (2 * es + 4)) as f64;
    let sample_bytes = (shape.m * shape.k * es) as f64 * survivors;
    let t_memory = (bound_bytes + sample_bytes) / (device.mem_bw_gbs * 1e9);
    t_compute.max(t_memory) + device.launch_overhead_us * 1e-6 + t_aux
}

/// Total modeled assignment-phase seconds for `iters` bound-pruned
/// iterations.
pub fn bound_pruned_total_s(
    device: &DeviceProfile,
    precision: Precision,
    shape: GemmShape,
    iters: usize,
) -> f64 {
    let warm = bound_pruned_iteration_s(device, precision, shape, true);
    let steady = bound_pruned_iteration_s(device, precision, shape, false);
    let w = iters.min(WARMUP_FULL_SCANS) as f64;
    w * warm + iters.saturating_sub(WARMUP_FULL_SCANS) as f64 * steady
}

/// Decide the kernel family for a fit of `max_iter` Lloyd iterations over
/// `m` samples of `dim` features into `clusters` centroids.
pub fn plan_variant(
    device: &DeviceProfile,
    precision: Precision,
    m: usize,
    clusters: usize,
    dim: usize,
    max_iter: usize,
) -> VariantPlan {
    let shape = GemmShape::new(m, clusters, dim);
    let baseline_iter = estimate(&TimingInput::plain(
        device,
        precision,
        KernelClass::FusedV2,
        shape,
    ))
    .time_s;
    let iters = max_iter.max(1);
    let baseline_total_s = iters as f64 * baseline_iter;
    let bound_pruned = bound_pruned_total_s(device, precision, shape, iters);
    // Both totals are linear in the iteration count past warmup, so the
    // crossover (if any) shows up within a short probe horizon.
    let crossover_iters = (1..=512)
        .find(|&n| bound_pruned_total_s(device, precision, shape, n) < n as f64 * baseline_iter);
    VariantPlan {
        choice: if bound_pruned < baseline_total_s {
            VariantChoice::BoundPruned
        } else {
            VariantChoice::Baseline
        },
        baseline_total_s,
        bound_pruned_total_s: bound_pruned,
        crossover_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline shape of the fit-throughput bench: M = 131072, d = 64,
    /// k = 16.
    fn headline(device: &DeviceProfile, max_iter: usize) -> VariantPlan {
        plan_variant(device, Precision::Fp32, 131_072, 16, 64, max_iter)
    }

    #[test]
    fn short_fits_stay_on_the_stateless_ladder() {
        let dev = DeviceProfile::a100();
        let plan = headline(&dev, 3);
        assert_eq!(plan.choice, VariantChoice::Baseline);
        assert!(plan.baseline_total_s < plan.bound_pruned_total_s);
    }

    #[test]
    fn long_fits_switch_to_bound_pruning_by_twenty_iterations() {
        let dev = DeviceProfile::a100();
        let plan = headline(&dev, 20);
        assert_eq!(plan.choice, VariantChoice::BoundPruned, "{plan:?}");
        let x = plan.crossover_iters.expect("crossover must exist");
        assert!(
            (5..=20).contains(&x),
            "crossover {x} should sit below 20 iterations"
        );
        // and the verdict is consistent with the reported crossover
        assert_eq!(headline(&dev, x - 1).choice, VariantChoice::Baseline);
    }

    #[test]
    fn warmup_iterations_cost_full_scans() {
        let dev = DeviceProfile::a100();
        let shape = GemmShape::new(131_072, 16, 64);
        let warm = bound_pruned_iteration_s(&dev, Precision::Fp32, shape, true);
        let steady = bound_pruned_iteration_s(&dev, Precision::Fp32, shape, false);
        assert!(
            warm > 2.0 * steady,
            "warmup {warm:.2e}s should dwarf steady {steady:.2e}s"
        );
        let t3 = bound_pruned_total_s(&dev, Precision::Fp32, shape, 3);
        assert!((t3 - 3.0 * warm).abs() < 1e-12, "first 3 iters are warmup");
    }

    #[test]
    fn fp64_crossover_also_exists() {
        let dev = DeviceProfile::a100();
        let plan = plan_variant(&dev, Precision::Fp64, 131_072, 16, 64, 64);
        assert_eq!(plan.choice, VariantChoice::BoundPruned);
        assert!(plan.crossover_iters.is_some());
    }
}
