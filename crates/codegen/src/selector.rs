//! The kernel selector — the artifact the code-generation pipeline ships.
//!
//! Looks up the tuned winner for a problem size, falling back to the
//! nearest tuned shape (log-space distance over the (dim, clusters) plane)
//! for sizes outside the grid. Serializes to a plain text format so tuning
//! results can be cached on disk without a JSON dependency.

use crate::params::KernelParams;
use crate::registry::ParamRegistry;
use crate::tuner::{tune, SelectionTable, ShapeGrid, TunedEntry};
use gpu_sim::{DeviceProfile, Precision};

/// A tuned, queryable kernel selector for one (device, precision).
#[derive(Debug, Clone)]
pub struct KernelSelector {
    registry: ParamRegistry,
    table: SelectionTable,
}

impl KernelSelector {
    /// Tune from scratch over the paper's 64-shape grid.
    pub fn build(device: &DeviceProfile, precision: Precision) -> Self {
        Self::build_with_grid(device, precision, &ShapeGrid::paper())
    }

    /// Tune over a custom grid.
    pub fn build_with_grid(device: &DeviceProfile, precision: Precision, grid: &ShapeGrid) -> Self {
        let registry = ParamRegistry::new(precision);
        let table = tune(device, precision, &registry, grid);
        KernelSelector { registry, table }
    }

    /// The underlying selection table.
    pub fn table(&self) -> &SelectionTable {
        &self.table
    }

    /// The parameter registry.
    pub fn registry(&self) -> &ParamRegistry {
        &self.registry
    }

    /// Select the kernel parameters for a problem shape (`clusters`
    /// centroids, `dim` features).
    ///
    /// The table is tuned at one fixed sample count (`table.m`, the paper's
    /// M = 131072) and the winner depends only on the (clusters, dim)
    /// plane, so selection keys on those two axes. An earlier signature
    /// also took the query's sample count and silently ignored it; the
    /// parameter was dropped rather than pretending to discriminate on it.
    pub fn select(&self, clusters: usize, dim: usize) -> KernelParams {
        let e = self.nearest_entry(clusters, dim);
        *self
            .registry
            .get(e.param_id)
            .expect("table ids come from this registry")
    }

    /// The tuned entry nearest to a query shape.
    pub fn nearest_entry(&self, clusters: usize, dim: usize) -> &TunedEntry {
        let dist = |e: &TunedEntry| {
            let dd = ((e.dim.max(1)) as f64).ln() - ((dim.max(1)) as f64).ln();
            let dc = ((e.clusters.max(1)) as f64).ln() - ((clusters.max(1)) as f64).ln();
            dd * dd + dc * dc
        };
        self.table
            .entries
            .iter()
            .min_by(|a, b| dist(a).partial_cmp(&dist(b)).expect("finite distances"))
            .expect("non-empty table")
    }

    /// Serialize to a line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "ftk-selector v1\ndevice {}\nprecision {}\nm {}\n",
            self.table.device,
            self.table.precision.name(),
            self.table.m
        );
        for e in &self.table.entries {
            s.push_str(&format!(
                "{} {} {} {:.3} {:.3}\n",
                e.dim, e.clusters, e.param_id, e.gflops, e.cuml_gflops
            ));
        }
        s
    }

    /// Parse the text format produced by [`KernelSelector::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("ftk-selector v1") {
            return Err("bad header".into());
        }
        let device = lines
            .next()
            .and_then(|l| l.strip_prefix("device "))
            .ok_or("missing device")?
            .to_string();
        let precision = match lines.next().and_then(|l| l.strip_prefix("precision ")) {
            Some("fp32") => Precision::Fp32,
            Some("fp64") => Precision::Fp64,
            other => return Err(format!("bad precision line: {other:?}")),
        };
        let m: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("m "))
            .ok_or("missing m")?
            .parse()
            .map_err(|e| format!("bad m: {e}"))?;
        let registry = ParamRegistry::new(precision);
        let mut entries = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split_whitespace().collect();
            if f.len() != 5 {
                return Err(format!("bad entry line: {line}"));
            }
            let parse_us = |s: &str| s.parse::<usize>().map_err(|e| format!("{e} in {line}"));
            let parse_f = |s: &str| s.parse::<f64>().map_err(|e| format!("{e} in {line}"));
            let e = TunedEntry {
                dim: parse_us(f[0])?,
                clusters: parse_us(f[1])?,
                param_id: parse_us(f[2])?,
                gflops: parse_f(f[3])?,
                cuml_gflops: parse_f(f[4])?,
            };
            if registry.get(e.param_id).is_none() {
                return Err(format!("unknown param id {}", e.param_id));
            }
            entries.push(e);
        }
        if entries.is_empty() {
            return Err("empty table".into());
        }
        Ok(KernelSelector {
            registry,
            table: SelectionTable {
                device,
                precision,
                m,
                entries,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_selector() -> KernelSelector {
        KernelSelector::build_with_grid(
            &DeviceProfile::a100(),
            Precision::Fp32,
            &ShapeGrid::small(),
        )
    }

    #[test]
    fn select_returns_registered_params() {
        let s = small_selector();
        let p = s.select(128, 64);
        assert!(s.registry().id_of(&p).is_some());
    }

    #[test]
    fn select_resolves_through_the_nearest_entry() {
        // The documented contract of the (clusters, dim)-keyed signature:
        // `select` returns exactly the registry params of `nearest_entry`,
        // on- and off-grid.
        let s = small_selector();
        for &(clusters, dim) in &[(128usize, 64usize), (100, 60), (1, 1), (4096, 1024)] {
            let e = s.nearest_entry(clusters, dim);
            let p = s.select(clusters, dim);
            assert_eq!(
                s.registry().id_of(&p),
                Some(e.param_id),
                "K={clusters} N={dim}"
            );
        }
    }

    #[test]
    fn nearest_entry_picks_closest_shape() {
        let s = small_selector();
        // query exactly on a grid point
        let e = s.nearest_entry(128, 64);
        assert_eq!((e.dim, e.clusters), (64, 128));
        // off-grid query lands on the nearest
        let e = s.nearest_entry(100, 60);
        assert_eq!((e.dim, e.clusters), (64, 128));
    }

    #[test]
    fn text_roundtrip() {
        let s = small_selector();
        let text = s.to_text();
        let s2 = KernelSelector::from_text(&text).unwrap();
        assert_eq!(s.table().entries.len(), s2.table().entries.len());
        for (a, b) in s.table().entries.iter().zip(&s2.table().entries) {
            assert_eq!(a.param_id, b.param_id);
            assert_eq!(a.dim, b.dim);
        }
        assert_eq!(s2.table().precision, Precision::Fp32);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(KernelSelector::from_text("nope").is_err());
        assert!(
            KernelSelector::from_text("ftk-selector v1\ndevice x\nprecision fp99\nm 5\n").is_err()
        );
        let s = small_selector();
        let mut text = s.to_text();
        text.push_str("1 2 999999 0.0 0.0\n");
        assert!(
            KernelSelector::from_text(&text).is_err(),
            "unknown id rejected"
        );
    }

    #[test]
    fn selected_beats_cuml_at_irregular_shape() {
        // The headline behaviour: at small cluster counts the selector's
        // choice must beat cuML's fixed tile.
        let dev = DeviceProfile::a100();
        let s = KernelSelector::build_with_grid(
            &dev,
            Precision::Fp32,
            &ShapeGrid {
                m: 131_072,
                dims: vec![64],
                clusters: vec![8],
            },
        );
        let e = s.nearest_entry(8, 64);
        assert!(e.speedup() > 1.5, "speedup {:.2}", e.speedup());
        // and `select` hands back that winner's parameters
        assert_eq!(s.registry().id_of(&s.select(8, 64)), Some(e.param_id));
    }
}
