//! CUDA-like source emission.
//!
//! The paper's generator rewrites three parts of the cuML source per
//! parameter group (Fig. 3): the `FusedDistanceNNGemm` instantiation, the
//! `cutlassFusedDistanceNN` entry point, and a selector function over all
//! generated kernels. The emitter below produces the same structure as
//! text; it exists so the code-generation pipeline is complete end-to-end
//! (enumerate → probe → emit → select), and its output is golden-tested.

use crate::params::KernelParams;
use gpu_sim::Precision;
use std::fmt::Write;

fn dtype(p: Precision) -> &'static str {
    match p {
        Precision::Fp32 => "float",
        Precision::Fp64 => "double",
    }
}

fn mma_op(p: Precision) -> &'static str {
    match p {
        Precision::Fp32 => "mma.sync.aligned.m16n8k8.row.col.f32.tf32.tf32.f32",
        Precision::Fp64 => "mma.sync.aligned.m8n8k4.row.col.f64.f64.f64.f64",
    }
}

/// Emit one kernel instantiation (the `FusedDistanceNNGemm<i>` block of
/// Fig. 3) for a parameter group, optionally with the ABFT instrumentation
/// of Fig. 6.
pub fn emit_kernel(id: usize, precision: Precision, params: &KernelParams, ft: bool) -> String {
    let mut s = String::new();
    let t = dtype(precision);
    let tb = params.threadblock;
    let w = params.warp;
    let th = params.thread;
    let stages = 3;
    writeln!(
        s,
        "// ---- generated kernel {id} ({}) ----",
        precision.name()
    )
    .unwrap();
    writeln!(
        s,
        "using Shape{id}_tb = cutlass::gemm::GemmShape<{}, {}, {}>;",
        tb.m, tb.n, tb.k
    )
    .unwrap();
    writeln!(
        s,
        "using Shape{id}_w  = cutlass::gemm::GemmShape<{}, {}, {}>;",
        w.m, w.n, w.k
    )
    .unwrap();
    writeln!(
        s,
        "using Shape{id}_t  = cutlass::gemm::GemmShape<{}, {}, {}>;",
        th.m, th.n, th.k
    )
    .unwrap();
    writeln!(
        s,
        "using FusedDistanceNNGemm{id} = FusedDistanceNNGemm<{t}, Shape{id}_tb, Shape{id}_w, \
         Shape{id}_t, /*kStages=*/{stages}>;"
    )
    .unwrap();
    writeln!(
        s,
        "__global__ void fused_distance_nn_{id}(KernelArgs<{t}> args) {{"
    )
    .unwrap();
    writeln!(s, "  // k-stage cp.async pipeline (Fig. 4 lines 03-09)").unwrap();
    writeln!(s, "  #pragma unroll").unwrap();
    writeln!(s, "  for (int stage = 0; stage < {stages} - 1; ++stage) {{").unwrap();
    writeln!(
        s,
        "    asm volatile(\"cp.async.ca.shared.global [%0], [%1], 16;\\n\" :: \"r\"(A_tb), \
         \"l\"(args.A));"
    )
    .unwrap();
    writeln!(s, "    asm volatile(\"cp.async.commit_group;\\n\" ::);").unwrap();
    writeln!(s, "  }}").unwrap();
    writeln!(s, "  for (int k = 0; k < args.K; k += {}) {{", tb.k).unwrap();
    if ft {
        writeln!(
            s,
            "    // ABFT input checksums from register fragments (Fig. 6 lines 15-18)"
        )
        .unwrap();
        writeln!(
            s,
            "    e1T_A = warp_reduce_sum(A_t);   Be1 = warp_reduce_sum(B_t);"
        )
        .unwrap();
        writeln!(
            s,
            "    e2T_A = warp_reduce_wsum(A_t);  Be2 = warp_reduce_wsum(B_t);"
        )
        .unwrap();
    }
    writeln!(
        s,
        "    asm volatile(\"{}\" : /* payload MMA (Fig. 4 line 17) */);",
        mma_op(precision)
    )
    .unwrap();
    if ft {
        writeln!(
            s,
            "    // checksum MMAs e1TXYe1, e1TXYe2, e2TXYe1 (Fig. 6 lines 22-24)"
        )
        .unwrap();
        for _ in 0..3 {
            writeln!(
                s,
                "    asm volatile(\"{}\" : /* checksum MMA */);",
                mma_op(precision)
            )
            .unwrap();
        }
        writeln!(s, "    if (k % 256 == 0) {{ verify_and_correct(); }}").unwrap();
    }
    writeln!(s, "    asm volatile(\"cp.async.wait_group 1;\\n\" ::);").unwrap();
    writeln!(s, "    __syncthreads();").unwrap();
    writeln!(s, "  }}").unwrap();
    writeln!(s, "  fused_rowmin_epilogue(args);  // Fig. 2 step 2").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

/// Emit the selector function over a list of (id, params) — the
/// "kernel selector function" of Fig. 3.
pub fn emit_selector(precision: Precision, kernels: &[(usize, KernelParams)]) -> String {
    let mut s = String::new();
    let t = dtype(precision);
    writeln!(
        s,
        "void cutlassFusedDistanceNN_select_{}(int M, int N, int K, KernelArgs<{t}> args) {{",
        precision.name()
    )
    .unwrap();
    writeln!(s, "  switch (select_kernel_id(M, N, K)) {{").unwrap();
    for (id, _) in kernels {
        writeln!(
            s,
            "    case {id}: fused_distance_nn_{id}<<<grid, block>>>(args); break;"
        )
        .unwrap();
    }
    writeln!(
        s,
        "    default: fused_distance_nn_cuml<<<grid, block>>>(args); break;"
    )
    .unwrap();
    writeln!(s, "  }}").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_source_contains_tiles_and_mma() {
        let p = KernelParams::cuml(Precision::Fp32);
        let src = emit_kernel(7, Precision::Fp32, &p, false);
        assert!(src.contains("GemmShape<32, 256, 16>"));
        assert!(src.contains("GemmShape<32, 64, 16>"));
        assert!(src.contains("GemmShape<16, 8, 4>"));
        assert!(src.contains("mma.sync.aligned.m16n8k8"));
        assert!(src.contains("cp.async.commit_group"));
        assert!(!src.contains("checksum MMA"));
    }

    #[test]
    fn ft_kernel_adds_checksum_instrumentation() {
        let p = KernelParams::cuml(Precision::Fp64);
        let src = emit_kernel(1, Precision::Fp64, &p, true);
        assert!(src.contains("m8n8k4"));
        assert_eq!(
            src.matches("checksum MMA").count(),
            4,
            "comment + three MMAs"
        );
        assert!(src.contains("e2T_A"));
        assert!(src.contains("k % 256 == 0"));
    }

    #[test]
    fn selector_lists_every_kernel() {
        let ks = vec![
            (3, KernelParams::cuml(Precision::Fp32)),
            (9, KernelParams::cuml(Precision::Fp32)),
        ];
        let src = emit_selector(Precision::Fp32, &ks);
        assert!(src.contains("case 3:"));
        assert!(src.contains("case 9:"));
        assert!(src.contains("default:"));
    }

    #[test]
    fn emission_is_deterministic() {
        let p = KernelParams::cuml(Precision::Fp32);
        assert_eq!(
            emit_kernel(0, Precision::Fp32, &p, true),
            emit_kernel(0, Precision::Fp32, &p, true)
        );
    }
}
