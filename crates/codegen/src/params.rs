//! Kernel parameter triples.
//!
//! "A group of kernel parameters in cuML and CUTLASS refers to a set of
//! parameters, threadblock level parameters, warp level parameters, and
//! thread level parameters. Each level is composed of three parameters from
//! each dimension." (§III-B)

use gpu_sim::timing::TileConfig;
use gpu_sim::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `<M, N, K>` tile triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile3 {
    pub m: usize,
    pub n: usize,
    pub k: usize,
}

impl Tile3 {
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        Tile3 { m, n, k }
    }
}

impl fmt::Display for Tile3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{},{}>", self.m, self.n, self.k)
    }
}

/// A full kernel parameter group: threadblock, warp and thread tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelParams {
    pub threadblock: Tile3,
    pub warp: Tile3,
    pub thread: Tile3,
}

impl KernelParams {
    pub const fn new(threadblock: Tile3, warp: Tile3, thread: Tile3) -> Self {
        KernelParams {
            threadblock,
            warp,
            thread,
        }
    }

    /// The fixed thread-level tile per precision ("owing to the size of the
    /// tensor core", §III-B1 rule 4).
    pub const fn thread_tile(precision: Precision) -> Tile3 {
        match precision {
            Precision::Fp32 => Tile3::new(16, 8, 4),
            Precision::Fp64 => Tile3::new(8, 8, 4),
        }
    }

    /// Warps per threadblock.
    pub fn warps(&self) -> usize {
        (self.threadblock.m / self.warp.m) * (self.threadblock.n / self.warp.n)
    }

    /// Threads per threadblock.
    pub fn threads(&self) -> usize {
        self.warps() * 32
    }

    /// Convert to the simulator/timing-model tile configuration.
    /// `k_stages` is 3 with `cp.async` (Ampere) and 2 otherwise.
    pub fn tile_config(&self, k_stages: usize) -> TileConfig {
        TileConfig {
            tb_m: self.threadblock.m,
            tb_n: self.threadblock.n,
            tb_k: self.threadblock.k,
            wm: self.warp.m,
            wn: self.warp.n,
            k_stages,
        }
    }

    /// cuML's hard-coded parameter group (Table I).
    pub fn cuml(precision: Precision) -> Self {
        match precision {
            Precision::Fp32 => KernelParams::new(
                Tile3::new(32, 256, 16),
                Tile3::new(32, 64, 16),
                Self::thread_tile(Precision::Fp32),
            ),
            Precision::Fp64 => KernelParams::new(
                Tile3::new(64, 64, 16),
                Tile3::new(32, 32, 16),
                Self::thread_tile(Precision::Fp64),
            ),
        }
    }

    /// The named parameters the paper's Table I lists for FT K-means.
    pub fn table1(precision: Precision) -> Vec<(&'static str, Self)> {
        let t = Self::thread_tile(precision);
        match precision {
            Precision::Fp32 => vec![
                (
                    "88",
                    KernelParams::new(Tile3::new(256, 32, 16), Tile3::new(64, 32, 16), t),
                ),
                (
                    "69",
                    KernelParams::new(Tile3::new(128, 64, 16), Tile3::new(32, 64, 16), t),
                ),
                (
                    "83",
                    KernelParams::new(Tile3::new(64, 128, 16), Tile3::new(64, 32, 16), t),
                ),
            ],
            Precision::Fp64 => vec![
                (
                    "21",
                    KernelParams::new(Tile3::new(128, 32, 16), Tile3::new(32, 32, 16), t),
                ),
                (
                    "19",
                    KernelParams::new(Tile3::new(64, 64, 16), Tile3::new(32, 32, 16), t),
                ),
            ],
        }
    }
}

impl fmt::Display for KernelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tb{} warp{} thread{}",
            self.threadblock, self.warp, self.thread
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let t = Tile3::new(32, 256, 16);
        assert_eq!(t.to_string(), "<32,256,16>");
    }

    #[test]
    fn cuml_params_match_table1() {
        let p = KernelParams::cuml(Precision::Fp32);
        assert_eq!(p.threadblock, Tile3::new(32, 256, 16));
        assert_eq!(p.warp, Tile3::new(32, 64, 16));
        assert_eq!(p.thread, Tile3::new(16, 8, 4));
        let p = KernelParams::cuml(Precision::Fp64);
        assert_eq!(p.threadblock, Tile3::new(64, 64, 16));
        assert_eq!(p.thread, Tile3::new(8, 8, 4));
    }

    #[test]
    fn warps_and_threads() {
        let p = KernelParams::cuml(Precision::Fp32);
        // (32/32)*(256/64) = 4 warps = 128 threads
        assert_eq!(p.warps(), 4);
        assert_eq!(p.threads(), 128);
    }

    #[test]
    fn tile_config_roundtrip() {
        let p = KernelParams::cuml(Precision::Fp64);
        let t = p.tile_config(3);
        assert_eq!(t.tb_m, 64);
        assert_eq!(t.tb_n, 64);
        assert_eq!(t.wm, 32);
        assert_eq!(t.k_stages, 3);
    }

    #[test]
    fn table1_entries_are_structurally_valid() {
        for p in gpu_sim::Precision::all() {
            for (name, params) in KernelParams::table1(p) {
                assert_eq!(params.threadblock.m % params.warp.m, 0, "{name}");
                assert_eq!(params.threadblock.n % params.warp.n, 0, "{name}");
                assert_eq!(params.warp.k, params.threadblock.k, "{name}");
            }
        }
    }
}
