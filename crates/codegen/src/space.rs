//! Parameter-space enumeration (§III-B1).
//!
//! "The kernel parameters used in code generation is not chosen by brute
//! forcing every possible integer … We follow some rules. 1) all parameters
//! must be power of 2. 2) Warp.K = Threadblock.K. 3) warp size/thread size
//! is 8 or 16. 4) thread size is fixed for FP32 (16, 8, 4) and FP64
//! (8, 8, 4) owing to the size of the tensor core."

use crate::params::{KernelParams, Tile3};
use gpu_sim::Precision;

/// Warp M/N candidates (powers of two spanning the tensor-core-friendly
/// range).
const WARP_DIMS: &[usize] = &[16, 32, 64, 128];

/// Threadblock = warp × replication factors; warps per block capped at 8
/// (beyond that register pressure kills every configuration anyway).
const REPL: &[usize] = &[1, 2, 4, 8];

/// Threadblock K (= Warp.K) candidates.
const TB_K: &[usize] = &[8, 16, 32];

/// Largest tile dimension considered.
const MAX_TB_DIM: usize = 512;

/// Enumerate every parameter group satisfying the paper's four rules.
/// The list is deterministic; its index order defines the registry ids.
pub fn enumerate_params(precision: Precision) -> Vec<KernelParams> {
    let thread = KernelParams::thread_tile(precision);
    let thread_size = thread.m * thread.n;
    let mut out = Vec::new();
    for &wm in WARP_DIMS {
        for &wn in WARP_DIMS {
            // Rule 3: warp size / thread size ∈ {8, 16}.
            let ratio = (wm * wn) / thread_size;
            if (wm * wn) % thread_size != 0 || (ratio != 8 && ratio != 16) {
                continue;
            }
            // Rule 4 implies the warp tile must hold whole thread tiles.
            if wm % thread.m != 0 || wn % thread.n != 0 {
                continue;
            }
            for &fm in REPL {
                for &fn_ in REPL {
                    let (tb_m, tb_n) = (wm * fm, wn * fn_);
                    if tb_m > MAX_TB_DIM || tb_n > MAX_TB_DIM {
                        continue;
                    }
                    let warps = fm * fn_;
                    if warps > 8 {
                        continue;
                    }
                    for &k in TB_K {
                        // Rule 1 is satisfied by construction (all
                        // candidates are powers of two); rule 2 by setting
                        // Warp.K = Threadblock.K.
                        out.push(KernelParams::new(
                            Tile3::new(tb_m, tb_n, k),
                            Tile3::new(wm, wn, k),
                            thread,
                        ));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rules_hold() {
        for p in Precision::all() {
            let thread = KernelParams::thread_tile(p);
            for kp in enumerate_params(p) {
                // rule 1
                for v in [
                    kp.threadblock.m,
                    kp.threadblock.n,
                    kp.threadblock.k,
                    kp.warp.m,
                    kp.warp.n,
                    kp.warp.k,
                ] {
                    assert!(v.is_power_of_two(), "{kp}");
                }
                // rule 2
                assert_eq!(kp.warp.k, kp.threadblock.k, "{kp}");
                // rule 3
                let ratio = (kp.warp.m * kp.warp.n) / (thread.m * thread.n);
                assert!(ratio == 8 || ratio == 16, "{kp}");
                // rule 4
                assert_eq!(kp.thread, thread);
                // structural sanity
                assert_eq!(kp.threadblock.m % kp.warp.m, 0);
                assert_eq!(kp.threadblock.n % kp.warp.n, 0);
                assert!(kp.warps() <= 8);
            }
        }
    }

    #[test]
    fn space_size_is_in_the_papers_ballpark() {
        // The paper defines 157 FP32 and 145 FP64 candidates before the
        // feasibility filter; our rule set lands in the same regime.
        let n32 = enumerate_params(Precision::Fp32).len();
        let n64 = enumerate_params(Precision::Fp64).len();
        assert!((100..=260).contains(&n32), "FP32 candidates: {n32}");
        assert!((100..=260).contains(&n64), "FP64 candidates: {n64}");
    }

    #[test]
    fn enumeration_is_deterministic() {
        assert_eq!(
            enumerate_params(Precision::Fp32),
            enumerate_params(Precision::Fp32)
        );
    }

    #[test]
    fn contains_table1_and_cuml_parameters() {
        for p in Precision::all() {
            let space = enumerate_params(p);
            let cuml = KernelParams::cuml(p);
            assert!(
                space.contains(&cuml),
                "cuML {cuml} must be in the {p} space"
            );
            for (name, kp) in KernelParams::table1(p) {
                assert!(
                    space.contains(&kp),
                    "Table I id {name} ({kp}) missing from {p} space"
                );
            }
        }
    }

    #[test]
    fn no_duplicates() {
        for p in Precision::all() {
            let space = enumerate_params(p);
            let mut dedup = space.clone();
            dedup.sort_by_key(|k| {
                (
                    k.threadblock.m,
                    k.threadblock.n,
                    k.threadblock.k,
                    k.warp.m,
                    k.warp.n,
                )
            });
            dedup.dedup();
            assert_eq!(dedup.len(), space.len());
        }
    }
}
