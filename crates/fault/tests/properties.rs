//! Property-based tests of the fault injector and campaign statistics.

use fault::{
    CampaignStats, FaultTarget, InjectionSchedule, Injector, InjectorConfig, PlannedInjection,
    SeuModel,
};
use gpu_sim::mma::{FaultHook, MmaSite};
use proptest::prelude::*;

fn site(block: (usize, usize), warp: usize, k: usize) -> MmaSite {
    MmaSite {
        block,
        warp,
        k_step: k,
        is_checksum: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every planned injection fires exactly once, regardless of how often
    /// the site recurs.
    #[test]
    fn planned_list_exhausts_once(
        n_plans in 1usize..6,
        repeats in 1usize..5,
    ) {
        let plans: Vec<PlannedInjection> = (0..n_plans)
            .map(|i| PlannedInjection {
                block: (i, 0),
                warp: 0,
                k_step: 8 * i,
                elem_idx: i,
                bit: 40,
                target_checksum: false,
            })
            .collect();
        let inj = Injector::planned(plans.clone());
        let mut acc = vec![1.0f64; n_plans.max(8)];
        for _ in 0..repeats {
            for p in &plans {
                <Injector as FaultHook<f64>>::post_mma(
                    &inj,
                    &site(p.block, p.warp, p.k_step),
                    &mut acc,
                    4,
                );
            }
        }
        prop_assert_eq!(inj.injected_count(), n_plans as u64);
    }

    /// The SEU cap bounds injections per block for any probability.
    #[test]
    fn seu_cap_holds(
        cap in 1u32..4,
        events in 1usize..60,
        seed in 0u64..500,
    ) {
        let inj = Injector::new(InjectorConfig {
            schedule: InjectionSchedule::PerBlock { probability: 1.0 },
            model: SeuModel { target: FaultTarget::Any, max_per_block: cap },
            seed,
            kernel_time_hint_s: 1.0,
            blocks_hint: 1,
            events_per_block_hint: 1,
        });
        let mut acc = vec![1.0f32; 16];
        for k in 0..events {
            <Injector as FaultHook<f32>>::post_mma(&inj, &site((0, 0), 0, k), &mut acc, 4);
        }
        prop_assert!(inj.injected_count() <= cap as u64);
    }

    /// Rate→probability conversion is always a probability and scales
    /// linearly below saturation.
    #[test]
    fn rate_conversion_bounds(
        rate in 0.0f64..1e7,
        kernel_us in 1.0f64..1e5,
        blocks in 1usize..100_000,
    ) {
        let s = InjectionSchedule::Rate { errors_per_second: rate };
        let p = s.per_block_probability(kernel_us * 1e-6, blocks);
        prop_assert!((0.0..=1.0).contains(&p));
        let p2 = InjectionSchedule::Rate { errors_per_second: rate * 2.0 }
            .per_block_probability(kernel_us * 1e-6, blocks);
        prop_assert!(p2 >= p);
    }

    /// Same seed ⇒ identical campaign; different seeds diverge eventually.
    #[test]
    fn campaigns_reproducible(seed in 0u64..1000) {
        let mk = |s: u64| {
            Injector::new(InjectorConfig {
                schedule: InjectionSchedule::PerBlock { probability: 0.5 },
                model: SeuModel { target: FaultTarget::Any, max_per_block: 8 },
                seed: s,
                kernel_time_hint_s: 1.0,
                blocks_hint: 1,
                events_per_block_hint: 2,
            })
        };
        let run = |inj: &Injector| {
            let mut acc = vec![1.0f64; 8];
            for k in 0..32 {
                <Injector as FaultHook<f64>>::post_mma(inj, &site((0, 0), 0, k), &mut acc, 4);
            }
            // project away the magnitude (it can be NaN, and NaN != NaN)
            inj.records()
                .into_iter()
                .map(|r| (r.block, r.warp, r.k_step, r.elem_idx, r.bit))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&mk(seed)), run(&mk(seed)));
    }

    /// `CampaignStats::merge` is commutative and associative, so per-shard
    /// stats can be folded in any order (the parallel campaign runner
    /// depends on this for byte-identical serial-vs-parallel tables).
    #[test]
    fn stats_merge_commutative_associative(
        a in arb_stats(),
        b in arb_stats(),
        c in arb_stats(),
    ) {
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);

        // (a + b) + c == a + (b + c)
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// `unhandled()` never underflows, even on inconsistent ledgers where
    /// the handled counts exceed the injected count.
    #[test]
    fn unhandled_never_underflows(s in arb_stats()) {
        let u = s.unhandled();
        prop_assert!(u <= s.injected);
        // classification partitions whatever unhandled() reports
        let mut sdc = s;
        sdc.classify_unhandled(true);
        let mut benign = s;
        benign.classify_unhandled(false);
        prop_assert_eq!(sdc.sdc, u);
        prop_assert_eq!(sdc.benign, 0);
        prop_assert_eq!(benign.benign, u);
        prop_assert_eq!(benign.sdc, 0);
    }
}

/// Arbitrary `CampaignStats`, including inconsistent ones (handled counts
/// larger than `injected`) — the accessors must stay total anyway. Bounded
/// well below `u64::MAX / 3` so triple-merges cannot overflow.
fn arb_stats() -> impl Strategy<Value = CampaignStats> {
    let f = 0u64..1_000_000;
    (
        (f.clone(), f.clone(), f.clone(), f.clone()),
        (f.clone(), f.clone(), f.clone(), f.clone()),
        (f.clone(), f.clone(), f),
    )
        .prop_map(
            |(
                (injected, detected, corrected, rebaselined),
                (recomputed, dmr_mismatches, clean_sweeps, benign),
                (sdc, injection_launches, saturated_launches),
            )| CampaignStats {
                injected,
                detected,
                corrected,
                rebaselined,
                recomputed,
                dmr_mismatches,
                clean_sweeps,
                benign,
                sdc,
                injection_launches,
                saturated_launches,
            },
        )
}
