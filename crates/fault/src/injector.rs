//! The seeded fault injector — a [`gpu_sim::FaultHook`] implementation.
//!
//! Two operating modes:
//!
//! * **random** — per the paper's §II-A protocol, each threadblock is an
//!   independent victim candidate; the per-block probability derives from
//!   the schedule (a rate in errors/second spread over the launch). Within
//!   a stricken block a uniformly random MMA event, accumulator element and
//!   bit position are corrupted; the SEU cap (`max_per_block`) is enforced.
//! * **planned** — deterministic injections at named (block, warp, k_step)
//!   sites for reproducible unit tests.

use crate::model::SeuModel;
use crate::schedule::{InjectionSchedule, RateRealization};
use crate::stats::InjectionRecord;
use gpu_sim::mma::{FaultHook, MmaSite};
use gpu_sim::Scalar;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A deterministic injection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedInjection {
    /// Victim threadblock.
    pub block: (usize, usize),
    /// Victim warp within the block.
    pub warp: usize,
    /// K-step of the MMA slab to corrupt (matched exactly).
    pub k_step: usize,
    /// Accumulator element index to flip.
    pub elem_idx: usize,
    /// Bit position to flip.
    pub bit: u32,
    /// Whether to strike a checksum MMA instead of payload.
    pub target_checksum: bool,
}

/// Injector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectorConfig {
    pub schedule: InjectionSchedule,
    pub model: SeuModel,
    /// RNG seed (campaigns are reproducible).
    pub seed: u64,
    /// Estimated kernel duration (converts a rate schedule into per-block
    /// probability).
    pub kernel_time_hint_s: f64,
    /// Threadblocks in the launch.
    pub blocks_hint: usize,
    /// Eligible MMA events per block (warps × k-slabs), used to spread the
    /// per-block probability across events.
    pub events_per_block_hint: u64,
}

#[derive(Debug)]
struct InjectorState {
    rng: StdRng,
    per_block_injections: HashMap<(usize, usize), u32>,
    records: Vec<InjectionRecord>,
    planned: Vec<PlannedInjection>,
}

/// Thread-safe fault injector shared by all simulated threadblocks.
#[derive(Debug)]
pub struct Injector {
    cfg: InjectorConfig,
    p_event: f64,
    state: Mutex<InjectorState>,
}

impl Injector {
    /// Random-mode injector.
    pub fn new(cfg: InjectorConfig) -> Self {
        let p_block = cfg
            .schedule
            .per_block_probability(cfg.kernel_time_hint_s, cfg.blocks_hint.max(1));
        let p_event = if cfg.events_per_block_hint == 0 {
            0.0
        } else {
            (p_block / cfg.events_per_block_hint as f64).clamp(0.0, 1.0)
        };
        Injector {
            cfg,
            p_event,
            state: Mutex::new(InjectorState {
                rng: StdRng::seed_from_u64(cfg.seed),
                per_block_injections: HashMap::new(),
                records: Vec::new(),
                planned: Vec::new(),
            }),
        }
    }

    /// Planned-mode injector: fire exactly the given injections.
    pub fn planned(injections: Vec<PlannedInjection>) -> Self {
        let cfg = InjectorConfig {
            schedule: InjectionSchedule::Off,
            model: SeuModel {
                max_per_block: u32::MAX,
                ..SeuModel::default()
            },
            seed: 0,
            kernel_time_hint_s: 0.0,
            blocks_hint: 0,
            events_per_block_hint: 0,
        };
        Injector {
            cfg,
            p_event: 0.0,
            state: Mutex::new(InjectorState {
                rng: StdRng::seed_from_u64(0),
                per_block_injections: HashMap::new(),
                records: Vec::new(),
                planned: injections,
            }),
        }
    }

    /// Injections performed so far.
    pub fn records(&self) -> Vec<InjectionRecord> {
        self.state.lock().records.clone()
    }

    /// Number of injections performed.
    pub fn injected_count(&self) -> u64 {
        self.state.lock().records.len() as u64
    }

    /// Reset per-launch state (call between kernel launches so the SEU cap
    /// applies per launch). Keeps the RNG stream and records.
    pub fn begin_launch(&self) {
        self.state.lock().per_block_injections.clear();
    }

    /// Effective per-event probability (test introspection).
    pub fn p_event(&self) -> f64 {
        self.p_event
    }

    /// Requested vs. achievable injection rate under this injector's
    /// schedule and launch-shape hints. When a [`InjectionSchedule::Rate`]
    /// saturates the per-block probability clamp, `achieved_hz` falls
    /// short of `requested_hz` — campaigns report that shortfall instead
    /// of silently under-injecting.
    pub fn realization(&self) -> RateRealization {
        self.cfg
            .schedule
            .realization(self.cfg.kernel_time_hint_s, self.cfg.blocks_hint.max(1))
    }

    /// `mma_event` distinguishes tensor-core MMA slabs (`post_mma`) from
    /// scalar SIMT FMA results (`post_fma`) so the [`FaultTarget`] can
    /// restrict a campaign to one stream — e.g. `PayloadMma` covers exactly
    /// the distance accumulators, leaving the DMR-protected update phase
    /// unstruck, per the paper's §V-C protocol.
    fn corrupt_slice<T: Scalar>(&self, site: &MmaSite, acc: &mut [T], mma_event: bool) {
        if acc.is_empty() {
            return;
        }
        let mut st = self.state.lock();

        // Planned mode: exact site match.
        if !st.planned.is_empty() {
            if let Some(pos) = st.planned.iter().position(|p| {
                p.block == site.block
                    && p.warp == site.warp
                    && p.k_step == site.k_step
                    && p.target_checksum == site.is_checksum
            }) {
                let p = st.planned.remove(pos);
                let idx = p.elem_idx.min(acc.len() - 1);
                let old = acc[idx];
                let new = old.flip_bit(p.bit.min(T::BITS - 1));
                acc[idx] = new;
                st.records.push(InjectionRecord {
                    block: site.block,
                    warp: site.warp,
                    k_step: site.k_step,
                    hit_checksum: site.is_checksum,
                    elem_idx: idx,
                    bit: p.bit.min(T::BITS - 1),
                    width: T::BITS,
                    magnitude: (new.to_f64() - old.to_f64()).abs(),
                });
            }
            return;
        }

        // Random mode.
        if self.p_event <= 0.0 {
            return;
        }
        let eligible = if site.is_checksum {
            self.cfg.model.target.allows_checksum()
        } else if mma_event {
            self.cfg.model.target.allows_payload_mma()
        } else {
            self.cfg.model.target.allows_fma()
        };
        if !eligible {
            return;
        }
        let hits = st
            .per_block_injections
            .get(&site.block)
            .copied()
            .unwrap_or(0);
        if hits >= self.cfg.model.max_per_block {
            return;
        }
        if st.rng.random::<f64>() >= self.p_event {
            return;
        }
        let idx = st.rng.random_range(0..acc.len());
        let bit = st.rng.random_range(0..T::BITS);
        let old = acc[idx];
        let new = old.flip_bit(bit);
        acc[idx] = new;
        *st.per_block_injections.entry(site.block).or_insert(0) += 1;
        st.records.push(InjectionRecord {
            block: site.block,
            warp: site.warp,
            k_step: site.k_step,
            hit_checksum: site.is_checksum,
            elem_idx: idx,
            bit,
            width: T::BITS,
            magnitude: (new.to_f64() - old.to_f64()).abs(),
        });
    }
}

impl<T: Scalar> FaultHook<T> for Injector {
    fn post_mma(&self, site: &MmaSite, acc: &mut [T], _wn: usize) {
        self.corrupt_slice(site, acc, true);
    }

    fn post_fma(&self, site: &MmaSite, value: T) -> T {
        let mut one = [value];
        self.corrupt_slice(site, &mut one, false);
        one[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultTarget;

    fn site(block: (usize, usize), warp: usize, k: usize, cs: bool) -> MmaSite {
        MmaSite {
            block,
            warp,
            k_step: k,
            is_checksum: cs,
        }
    }

    #[test]
    fn planned_injection_fires_exactly_once() {
        let inj = Injector::planned(vec![PlannedInjection {
            block: (1, 2),
            warp: 0,
            k_step: 16,
            elem_idx: 3,
            bit: 30,
            target_checksum: false,
        }]);
        let mut acc = vec![1.0f32; 8];
        // wrong site: nothing
        <Injector as FaultHook<f32>>::post_mma(&inj, &site((0, 0), 0, 16, false), &mut acc, 4);
        assert_eq!(acc, vec![1.0; 8]);
        // right site: flips
        <Injector as FaultHook<f32>>::post_mma(&inj, &site((1, 2), 0, 16, false), &mut acc, 4);
        assert_ne!(acc[3], 1.0);
        // fires only once
        let snapshot = acc.clone();
        <Injector as FaultHook<f32>>::post_mma(&inj, &site((1, 2), 0, 16, false), &mut acc, 4);
        assert_eq!(acc, snapshot);
        assert_eq!(inj.injected_count(), 1);
        let rec = &inj.records()[0];
        assert_eq!(rec.bit, 30);
        assert_eq!(rec.elem_idx, 3);
        assert!(rec.magnitude > 0.0);
    }

    #[test]
    fn random_mode_respects_seu_cap() {
        let inj = Injector::new(InjectorConfig {
            schedule: InjectionSchedule::PerBlock { probability: 1.0 },
            model: SeuModel {
                target: FaultTarget::Any,
                max_per_block: 1,
            },
            seed: 7,
            kernel_time_hint_s: 1.0,
            blocks_hint: 1,
            events_per_block_hint: 1, // p_event = 1
        });
        let mut acc = vec![1.0f64; 4];
        for k in 0..10 {
            <Injector as FaultHook<f64>>::post_mma(&inj, &site((0, 0), 0, k, false), &mut acc, 2);
        }
        assert_eq!(inj.injected_count(), 1, "SEU cap = 1 per block");
        // a different block may also be struck
        let mut acc2 = vec![1.0f64; 4];
        <Injector as FaultHook<f64>>::post_mma(&inj, &site((0, 1), 0, 0, false), &mut acc2, 2);
        assert_eq!(inj.injected_count(), 2);
    }

    #[test]
    fn begin_launch_resets_cap() {
        let inj = Injector::new(InjectorConfig {
            schedule: InjectionSchedule::PerBlock { probability: 1.0 },
            model: SeuModel {
                target: FaultTarget::Any,
                max_per_block: 1,
            },
            seed: 3,
            kernel_time_hint_s: 1.0,
            blocks_hint: 1,
            events_per_block_hint: 1,
        });
        let mut acc = vec![2.0f32; 2];
        <Injector as FaultHook<f32>>::post_mma(&inj, &site((0, 0), 0, 0, false), &mut acc, 2);
        <Injector as FaultHook<f32>>::post_mma(&inj, &site((0, 0), 0, 8, false), &mut acc, 2);
        assert_eq!(inj.injected_count(), 1);
        inj.begin_launch();
        <Injector as FaultHook<f32>>::post_mma(&inj, &site((0, 0), 0, 16, false), &mut acc, 2);
        assert_eq!(inj.injected_count(), 2);
    }

    #[test]
    fn payload_only_model_skips_checksums() {
        let inj = Injector::new(InjectorConfig {
            schedule: InjectionSchedule::PerBlock { probability: 1.0 },
            model: SeuModel {
                target: FaultTarget::PayloadMma,
                max_per_block: 10,
            },
            seed: 1,
            kernel_time_hint_s: 1.0,
            blocks_hint: 1,
            events_per_block_hint: 1,
        });
        let mut acc = vec![1.0f32; 4];
        for k in 0..20 {
            <Injector as FaultHook<f32>>::post_mma(&inj, &site((0, 0), 0, k, true), &mut acc, 2);
        }
        assert_eq!(inj.injected_count(), 0);
    }

    #[test]
    fn payload_mma_target_skips_scalar_fma_stream() {
        let inj = Injector::new(InjectorConfig {
            schedule: InjectionSchedule::PerBlock { probability: 1.0 },
            model: SeuModel {
                target: FaultTarget::PayloadMma,
                max_per_block: 100,
            },
            seed: 2,
            kernel_time_hint_s: 1.0,
            blocks_hint: 1,
            events_per_block_hint: 1,
        });
        for k in 0..50 {
            let v = <Injector as FaultHook<f32>>::post_fma(&inj, &site((0, 0), 0, k, false), 3.25);
            assert_eq!(v, 3.25, "FMA results are outside the MMA stream");
        }
        assert_eq!(inj.injected_count(), 0);
        // ... while the MMA stream is eligible.
        let mut acc = vec![1.0f32; 4];
        <Injector as FaultHook<f32>>::post_mma(&inj, &site((0, 0), 0, 0, false), &mut acc, 2);
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn simt_fma_target_skips_mma_stream() {
        let inj = Injector::new(InjectorConfig {
            schedule: InjectionSchedule::PerBlock { probability: 1.0 },
            model: SeuModel {
                target: FaultTarget::SimtFma,
                max_per_block: 100,
            },
            seed: 2,
            kernel_time_hint_s: 1.0,
            blocks_hint: 1,
            events_per_block_hint: 1,
        });
        let mut acc = vec![1.0f64; 4];
        for k in 0..20 {
            <Injector as FaultHook<f64>>::post_mma(&inj, &site((0, 0), 0, k, false), &mut acc, 2);
        }
        assert_eq!(inj.injected_count(), 0);
        let _ = <Injector as FaultHook<f64>>::post_fma(&inj, &site((0, 0), 0, 0, false), 1.5);
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn off_schedule_never_injects() {
        let inj = Injector::new(InjectorConfig {
            schedule: InjectionSchedule::Off,
            model: SeuModel::default(),
            seed: 1,
            kernel_time_hint_s: 1.0,
            blocks_hint: 10,
            events_per_block_hint: 100,
        });
        assert_eq!(inj.p_event(), 0.0);
        let mut acc = vec![1.0f64; 4];
        for k in 0..50 {
            <Injector as FaultHook<f64>>::post_mma(&inj, &site((0, 0), 0, k, false), &mut acc, 2);
        }
        assert_eq!(inj.injected_count(), 0);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let mk = || {
            Injector::new(InjectorConfig {
                schedule: InjectionSchedule::PerBlock { probability: 0.5 },
                model: SeuModel {
                    target: FaultTarget::Any,
                    max_per_block: 5,
                },
                seed: 42,
                kernel_time_hint_s: 1.0,
                blocks_hint: 1,
                events_per_block_hint: 4,
            })
        };
        let run = |inj: &Injector| {
            let mut acc = vec![1.0f64; 8];
            for k in 0..64 {
                <Injector as FaultHook<f64>>::post_mma(
                    inj,
                    &site((0, 0), 0, k, false),
                    &mut acc,
                    4,
                );
            }
            inj.records()
        };
        let (a, b) = (run(&mk()), run(&mk()));
        assert_eq!(a, b);
    }
}
