//! Injection schedules: when faults arrive.

use serde::{Deserialize, Serialize};

/// How often transient faults arrive during a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionSchedule {
    /// No injection.
    Off,
    /// Each threadblock independently suffers one fault with this
    /// probability per kernel launch (the paper's per-threadblock model).
    PerBlock { probability: f64 },
    /// A Poisson arrival rate in errors per second of (estimated) kernel
    /// time — the paper evaluates "tens of errors injected per second".
    Rate { errors_per_second: f64 },
}

impl InjectionSchedule {
    /// The per-block probability for a kernel expected to run `kernel_s`
    /// seconds with `blocks` threadblocks.
    pub fn per_block_probability(&self, kernel_s: f64, blocks: usize) -> f64 {
        match *self {
            InjectionSchedule::Off => 0.0,
            InjectionSchedule::PerBlock { probability } => probability.clamp(0.0, 1.0),
            InjectionSchedule::Rate { errors_per_second } => {
                if blocks == 0 {
                    0.0
                } else {
                    (errors_per_second * kernel_s / blocks as f64).clamp(0.0, 1.0)
                }
            }
        }
    }

    /// The injection rate in errors/second this schedule corresponds to
    /// (used by the timing model).
    pub fn rate_hz(&self, kernel_s: f64, blocks: usize) -> f64 {
        match *self {
            InjectionSchedule::Off => 0.0,
            InjectionSchedule::Rate { errors_per_second } => errors_per_second,
            InjectionSchedule::PerBlock { probability } => {
                if kernel_s > 0.0 {
                    probability * blocks as f64 / kernel_s
                } else {
                    0.0
                }
            }
        }
    }

    /// True when this schedule injects anything.
    pub fn is_active(&self) -> bool {
        !matches!(self, InjectionSchedule::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_injects_nothing() {
        let s = InjectionSchedule::Off;
        assert_eq!(s.per_block_probability(1.0, 100), 0.0);
        assert!(!s.is_active());
    }

    #[test]
    fn rate_to_probability() {
        // 50 errors/s over a 10 ms kernel with 100 blocks -> 0.5 expected
        // errors -> 0.005 per block.
        let s = InjectionSchedule::Rate {
            errors_per_second: 50.0,
        };
        let p = s.per_block_probability(0.01, 100);
        assert!((p - 0.005).abs() < 1e-12);
    }

    #[test]
    fn probability_clamped() {
        let s = InjectionSchedule::Rate {
            errors_per_second: 1e12,
        };
        assert_eq!(s.per_block_probability(1.0, 1), 1.0);
        let s2 = InjectionSchedule::PerBlock { probability: 7.0 };
        assert_eq!(s2.per_block_probability(1.0, 1), 1.0);
    }

    #[test]
    fn roundtrip_rate() {
        let s = InjectionSchedule::PerBlock { probability: 0.01 };
        let hz = s.rate_hz(0.1, 1000);
        assert!((hz - 100.0).abs() < 1e-9);
    }
}
