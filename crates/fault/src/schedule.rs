//! Injection schedules: when faults arrive.

use serde::{Deserialize, Serialize};

/// Requested vs. achievable injection rate for one schedule at one launch
/// shape.
///
/// A [`InjectionSchedule::Rate`] converts into a per-threadblock probability
/// which is clamped to 1.0; past that point the schedule physically cannot
/// deliver the requested arrival rate (each block suffers at most one
/// Bernoulli trial per launch) and silently under-injects. Campaign code
/// compares `achieved_hz` against `requested_hz` instead of trusting the
/// request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateRealization {
    /// The rate the schedule asks for, in errors/second.
    pub requested_hz: f64,
    /// The rate the clamped per-block probability can actually deliver.
    pub achieved_hz: f64,
}

impl RateRealization {
    /// A schedule that injects nothing realizes a zero rate exactly.
    pub fn zero() -> Self {
        RateRealization {
            requested_hz: 0.0,
            achieved_hz: 0.0,
        }
    }

    /// True when the per-block probability clamp truncated the request.
    pub fn saturated(&self) -> bool {
        self.achieved_hz < self.requested_hz * (1.0 - 1e-12)
    }

    /// Fraction of the requested rate actually delivered (1.0 when nothing
    /// was requested).
    pub fn delivered_fraction(&self) -> f64 {
        if self.requested_hz <= 0.0 {
            1.0
        } else {
            (self.achieved_hz / self.requested_hz).min(1.0)
        }
    }
}

/// How often transient faults arrive during a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionSchedule {
    /// No injection.
    Off,
    /// Each threadblock independently suffers one fault with this
    /// probability per kernel launch (the paper's per-threadblock model).
    PerBlock { probability: f64 },
    /// A Poisson arrival rate in errors per second of (estimated) kernel
    /// time — the paper evaluates "tens of errors injected per second".
    Rate { errors_per_second: f64 },
}

impl InjectionSchedule {
    /// The per-block probability for a kernel expected to run `kernel_s`
    /// seconds with `blocks` threadblocks.
    pub fn per_block_probability(&self, kernel_s: f64, blocks: usize) -> f64 {
        self.requested_per_block_probability(kernel_s, blocks)
            .clamp(0.0, 1.0)
    }

    /// The per-block probability *before* the `[0, 1]` clamp — may exceed
    /// 1.0 when a rate schedule asks for more errors than one Bernoulli
    /// trial per block can deliver. Compare with
    /// [`per_block_probability`](Self::per_block_probability) (or use
    /// [`realization`](Self::realization)) to detect saturation.
    pub fn requested_per_block_probability(&self, kernel_s: f64, blocks: usize) -> f64 {
        match *self {
            InjectionSchedule::Off => 0.0,
            InjectionSchedule::PerBlock { probability } => probability.max(0.0),
            InjectionSchedule::Rate { errors_per_second } => {
                if blocks == 0 {
                    0.0
                } else {
                    (errors_per_second * kernel_s / blocks as f64).max(0.0)
                }
            }
        }
    }

    /// Requested vs. achievable rate at this launch shape. The achieved
    /// rate re-expresses the clamped per-block probability in errors/second,
    /// so `achieved_hz < requested_hz` exactly when the clamp truncated.
    pub fn realization(&self, kernel_s: f64, blocks: usize) -> RateRealization {
        if kernel_s <= 0.0 {
            return RateRealization::zero();
        }
        let to_hz = blocks as f64 / kernel_s;
        RateRealization {
            requested_hz: self.requested_per_block_probability(kernel_s, blocks) * to_hz,
            achieved_hz: self.per_block_probability(kernel_s, blocks) * to_hz,
        }
    }

    /// The injection rate in errors/second this schedule corresponds to
    /// (used by the timing model).
    pub fn rate_hz(&self, kernel_s: f64, blocks: usize) -> f64 {
        match *self {
            InjectionSchedule::Off => 0.0,
            InjectionSchedule::Rate { errors_per_second } => errors_per_second,
            InjectionSchedule::PerBlock { probability } => {
                if kernel_s > 0.0 {
                    probability * blocks as f64 / kernel_s
                } else {
                    0.0
                }
            }
        }
    }

    /// True when this schedule injects anything.
    pub fn is_active(&self) -> bool {
        !matches!(self, InjectionSchedule::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_injects_nothing() {
        let s = InjectionSchedule::Off;
        assert_eq!(s.per_block_probability(1.0, 100), 0.0);
        assert!(!s.is_active());
    }

    #[test]
    fn rate_to_probability() {
        // 50 errors/s over a 10 ms kernel with 100 blocks -> 0.5 expected
        // errors -> 0.005 per block.
        let s = InjectionSchedule::Rate {
            errors_per_second: 50.0,
        };
        let p = s.per_block_probability(0.01, 100);
        assert!((p - 0.005).abs() < 1e-12);
    }

    #[test]
    fn probability_clamped() {
        let s = InjectionSchedule::Rate {
            errors_per_second: 1e12,
        };
        assert_eq!(s.per_block_probability(1.0, 1), 1.0);
        let s2 = InjectionSchedule::PerBlock { probability: 7.0 };
        assert_eq!(s2.per_block_probability(1.0, 1), 1.0);
    }

    #[test]
    fn roundtrip_rate() {
        let s = InjectionSchedule::PerBlock { probability: 0.01 };
        let hz = s.rate_hz(0.1, 1000);
        assert!((hz - 100.0).abs() < 1e-9);
    }

    #[test]
    fn realization_reports_saturation() {
        // 100 blocks over 1 s can absorb at most 100 errors/s; asking for
        // 250 saturates the per-block clamp at 1.0.
        let s = InjectionSchedule::Rate {
            errors_per_second: 250.0,
        };
        let r = s.realization(1.0, 100);
        assert!((r.requested_hz - 250.0).abs() < 1e-9);
        assert!((r.achieved_hz - 100.0).abs() < 1e-9);
        assert!(r.saturated());
        assert!((r.delivered_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn realization_exact_below_clamp() {
        let s = InjectionSchedule::Rate {
            errors_per_second: 50.0,
        };
        let r = s.realization(0.01, 100);
        assert!((r.requested_hz - 50.0).abs() < 1e-9);
        assert!((r.achieved_hz - 50.0).abs() < 1e-9);
        assert!(!r.saturated());
        assert_eq!(r.delivered_fraction(), 1.0);
    }

    #[test]
    fn realization_of_off_is_zero() {
        let r = InjectionSchedule::Off.realization(1.0, 64);
        assert_eq!(r.requested_hz, 0.0);
        assert_eq!(r.achieved_hz, 0.0);
        assert!(!r.saturated());
        assert_eq!(r.delivered_fraction(), 1.0);
    }
}
