//! Campaign bookkeeping: what was injected, what the FT layer did about it.

use crate::bitflip::{classify_bit, BitField};
use serde::{Deserialize, Serialize};

/// One injected fault (raw bits stored widened to `u64` so records are
/// precision-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Threadblock coordinates.
    pub block: (usize, usize),
    /// Warp within the block.
    pub warp: usize,
    /// K-dimension position of the stricken MMA slab.
    pub k_step: usize,
    /// True when the victim was a checksum computation.
    pub hit_checksum: bool,
    /// Index of the corrupted element within the accumulator fragment.
    pub elem_idx: usize,
    /// Bit position flipped (0 = LSB).
    pub bit: u32,
    /// Float width of the victim (32 or 64).
    pub width: u32,
    /// Absolute value change caused by the flip.
    pub magnitude: f64,
}

impl InjectionRecord {
    /// IEEE-754 field of the flipped bit.
    pub fn field(&self) -> BitField {
        classify_bit(self.bit, self.width)
    }
}

/// Aggregated outcome of an injection campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Faults injected.
    pub injected: u64,
    /// Detection sweeps that flagged an error.
    pub detected: u64,
    /// Errors repaired in place via location encoding.
    pub corrected: u64,
    /// Checksum-side hits resolved by re-baselining.
    pub rebaselined: u64,
    /// Intervals recomputed (detection-only schemes).
    pub recomputed: u64,
    /// DMR mismatches caught in the update phase.
    pub dmr_mismatches: u64,
    /// Verification sweeps that ran clean.
    pub clean_sweeps: u64,
    /// Unhandled faults classified as harmless (the final result matched a
    /// fault-free twin run). Filled by
    /// [`classify_unhandled`](Self::classify_unhandled);
    /// `benign + sdc <= unhandled()`.
    pub benign: u64,
    /// Unhandled faults classified as silent data corruption (the final
    /// result diverged from the fault-free twin beyond tolerance).
    pub sdc: u64,
    /// Kernel launches that ran with an active injection schedule.
    pub injection_launches: u64,
    /// Of those, launches whose requested rate saturated the per-block
    /// probability clamp at 1.0 (the schedule under-injected; see
    /// [`crate::schedule::RateRealization`]).
    pub saturated_launches: u64,
}

impl CampaignStats {
    /// Faults the FT layer visibly handled (detected in any way).
    pub fn handled(&self) -> u64 {
        self.corrected + self.rebaselined + self.recomputed
    }

    /// Injected faults with no visible detection — either harmless
    /// (below-threshold mantissa flips) or silent corruption; callers
    /// split the two with [`classify_unhandled`](Self::classify_unhandled)
    /// by comparing final results against a fault-free twin.
    pub fn unhandled(&self) -> u64 {
        self.injected.saturating_sub(self.handled())
    }

    /// Split [`unhandled`](Self::unhandled) into `benign` vs `sdc` after
    /// comparing the run's final result against its fault-free twin: when
    /// the outcome was corrupted every unhandled fault is (conservatively)
    /// charged as SDC, otherwise all of them were benign.
    pub fn classify_unhandled(&mut self, outcome_corrupted: bool) {
        let u = self.unhandled();
        if outcome_corrupted {
            self.sdc = u;
            self.benign = 0;
        } else {
            self.benign = u;
            self.sdc = 0;
        }
    }

    /// Record one bound-revalidation sweep (the Hamerly variant's
    /// checksum-style protection pass): a sweep that found violations books
    /// them as detected — the caller then forces an un-pruned re-assignment
    /// and credits `recomputed` — and a violation-free sweep counts toward
    /// `clean_sweeps`, mirroring how the tensor schemes ledger their
    /// checksum checks.
    pub fn note_revalidation(&mut self, violations: u64) {
        if violations > 0 {
            self.detected += violations;
        } else {
            self.clean_sweeps += 1;
        }
    }

    /// Record one kernel launch performed under an active injection
    /// schedule, noting whether its rate request was clamp-saturated.
    pub fn note_injection_launch(&mut self, saturated: bool) {
        self.injection_launches += 1;
        if saturated {
            self.saturated_launches += 1;
        }
    }

    /// Emit the handling-path movement since `prev` as trace fault events
    /// (one [`trace::TraceEvent::Fault`] per nonzero delta; zero deltas
    /// cost nothing). Drivers call this host-side once per iteration —
    /// worker threads never emit, which is what keeps pool-mode fault
    /// streams count-identical to serial ones.
    pub fn emit_trace_delta(&self, prev: &CampaignStats) {
        if !trace::active() {
            return;
        }
        trace::fault(
            trace::faults::INJECTION,
            self.injected.saturating_sub(prev.injected),
        );
        trace::fault(
            trace::faults::DETECTED,
            self.detected.saturating_sub(prev.detected),
        );
        trace::fault(
            trace::faults::CORRECTED,
            self.corrected.saturating_sub(prev.corrected),
        );
        trace::fault(
            trace::faults::REBASELINED,
            self.rebaselined.saturating_sub(prev.rebaselined),
        );
        trace::fault(
            trace::faults::RECOMPUTED,
            self.recomputed.saturating_sub(prev.recomputed),
        );
        trace::fault(
            trace::faults::DMR_MISMATCH,
            self.dmr_mismatches.saturating_sub(prev.dmr_mismatches),
        );
    }

    /// Merge another campaign's counts (elementwise sum — commutative and
    /// associative, so shards can be folded in any order).
    pub fn merge(&mut self, o: &CampaignStats) {
        self.injected += o.injected;
        self.detected += o.detected;
        self.corrected += o.corrected;
        self.rebaselined += o.rebaselined;
        self.recomputed += o.recomputed;
        self.dmr_mismatches += o.dmr_mismatches;
        self.clean_sweeps += o.clean_sweeps;
        self.benign += o.benign;
        self.sdc += o.sdc;
        self.injection_launches += o.injection_launches;
        self.saturated_launches += o.saturated_launches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_field_classification() {
        let r = InjectionRecord {
            block: (0, 1),
            warp: 2,
            k_step: 64,
            hit_checksum: false,
            elem_idx: 5,
            bit: 30,
            width: 32,
            magnitude: 1.0,
        };
        assert_eq!(r.field(), BitField::Exponent);
    }

    #[test]
    fn handled_and_unhandled() {
        let s = CampaignStats {
            injected: 10,
            detected: 8,
            corrected: 6,
            rebaselined: 1,
            recomputed: 1,
            clean_sweeps: 100,
            ..Default::default()
        };
        assert_eq!(s.handled(), 8);
        assert_eq!(s.unhandled(), 2);
    }

    #[test]
    fn classify_splits_unhandled() {
        let mut s = CampaignStats {
            injected: 10,
            corrected: 7,
            ..Default::default()
        };
        s.classify_unhandled(false);
        assert_eq!((s.benign, s.sdc), (3, 0));
        s.classify_unhandled(true);
        assert_eq!((s.benign, s.sdc), (0, 3));
    }

    #[test]
    fn revalidation_accounting() {
        let mut s = CampaignStats::default();
        s.note_revalidation(0);
        s.note_revalidation(3);
        s.note_revalidation(0);
        assert_eq!(s.clean_sweeps, 2);
        assert_eq!(s.detected, 3);
    }

    #[test]
    fn launch_accounting() {
        let mut s = CampaignStats::default();
        s.note_injection_launch(false);
        s.note_injection_launch(true);
        s.note_injection_launch(true);
        assert_eq!(s.injection_launches, 3);
        assert_eq!(s.saturated_launches, 2);
    }

    #[test]
    fn merge_sums() {
        let mut a = CampaignStats {
            injected: 1,
            corrected: 1,
            ..Default::default()
        };
        let b = CampaignStats {
            injected: 2,
            rebaselined: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.injected, 3);
        assert_eq!(a.handled(), 2);
    }
}
