//! Single-bit flips and IEEE-754 field classification.

use gpu_sim::Scalar;
use serde::{Deserialize, Serialize};

/// Which IEEE-754 field a bit position belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitField {
    Sign,
    Exponent,
    Mantissa,
}

/// Classify bit `bit` (0 = LSB) of a float with `total_bits` ∈ {32, 64}.
pub fn classify_bit(bit: u32, total_bits: u32) -> BitField {
    match total_bits {
        32 => match bit {
            31 => BitField::Sign,
            23..=30 => BitField::Exponent,
            _ => BitField::Mantissa,
        },
        64 => match bit {
            63 => BitField::Sign,
            52..=62 => BitField::Exponent,
            _ => BitField::Mantissa,
        },
        _ => panic!("unsupported float width {total_bits}"),
    }
}

/// Flip bit `bit` of `v`.
pub fn flip<T: Scalar>(v: T, bit: u32) -> T {
    v.flip_bit(bit)
}

/// Magnitude of the perturbation a flip at `bit` causes on `v` (used by
/// tests to separate above-threshold from below-threshold flips).
pub fn flip_magnitude<T: Scalar>(v: T, bit: u32) -> f64 {
    (v.flip_bit(bit).to_f64() - v.to_f64()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_f32() {
        assert_eq!(classify_bit(31, 32), BitField::Sign);
        assert_eq!(classify_bit(30, 32), BitField::Exponent);
        assert_eq!(classify_bit(23, 32), BitField::Exponent);
        assert_eq!(classify_bit(22, 32), BitField::Mantissa);
        assert_eq!(classify_bit(0, 32), BitField::Mantissa);
    }

    #[test]
    fn classification_f64() {
        assert_eq!(classify_bit(63, 64), BitField::Sign);
        assert_eq!(classify_bit(62, 64), BitField::Exponent);
        assert_eq!(classify_bit(52, 64), BitField::Exponent);
        assert_eq!(classify_bit(51, 64), BitField::Mantissa);
    }

    #[test]
    fn exponent_flips_dominate_mantissa_flips() {
        let v = 123.456f32;
        assert!(flip_magnitude(v, 27) > flip_magnitude(v, 5));
    }

    #[test]
    fn flip_is_involution() {
        let v = -9.75f64;
        for bit in [0, 13, 52, 63] {
            assert_eq!(flip(flip(v, bit), bit), v);
        }
    }
}
