//! The fault model: what can be corrupted and under what assumptions.

use serde::{Deserialize, Serialize};

/// Which computation site a fault may strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// Payload tensor-core MMA outputs (the distance accumulators).
    PayloadMma,
    /// ABFT checksum MMA outputs (the protection itself is not exempt).
    ChecksumMma,
    /// SIMT FMA results (naive/V1–V3 kernels, update phase).
    SimtFma,
    /// Any of the above, chosen uniformly at the stricken site.
    Any,
}

impl FaultTarget {
    /// Whether a site flagged as checksum work is eligible.
    pub fn allows_checksum(self) -> bool {
        matches!(self, FaultTarget::ChecksumMma | FaultTarget::Any)
    }

    /// Whether a payload site is eligible (either event kind).
    pub fn allows_payload(self) -> bool {
        self.allows_payload_mma() || self.allows_fma()
    }

    /// Whether a payload tensor-core MMA slab is eligible. `PayloadMma`
    /// means exactly the distance accumulators of the MMA stream — the
    /// paper's §V-C protocol — so scalar-FMA phases (the centroid update,
    /// the SIMT kernels) are *not* covered by it.
    pub fn allows_payload_mma(self) -> bool {
        matches!(self, FaultTarget::PayloadMma | FaultTarget::Any)
    }

    /// Whether a scalar SIMT FMA result is eligible (naive/V1–V3 kernels
    /// and the update phase).
    pub fn allows_fma(self) -> bool {
        matches!(self, FaultTarget::SimtFma | FaultTarget::Any)
    }
}

/// The single-event-upset model of §II-A: memory is ECC-protected, network
/// is FT-MPI-protected; compute errors arrive at most once per detection
/// interval per threadblock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeuModel {
    /// Eligible sites.
    pub target: FaultTarget,
    /// At most this many injections per (threadblock, kernel launch) — the
    /// SEU assumption is 1.
    pub max_per_block: u32,
}

impl Default for SeuModel {
    fn default() -> Self {
        SeuModel {
            target: FaultTarget::PayloadMma,
            max_per_block: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility() {
        assert!(FaultTarget::Any.allows_checksum());
        assert!(FaultTarget::Any.allows_payload());
        assert!(!FaultTarget::PayloadMma.allows_checksum());
        assert!(FaultTarget::ChecksumMma.allows_checksum());
        assert!(!FaultTarget::ChecksumMma.allows_payload());
    }

    #[test]
    fn eligibility_distinguishes_event_kinds() {
        // PayloadMma is exactly the distance-kernel MMA stream.
        assert!(FaultTarget::PayloadMma.allows_payload_mma());
        assert!(!FaultTarget::PayloadMma.allows_fma());
        // SimtFma is exactly the scalar stream (SIMT kernels, update).
        assert!(FaultTarget::SimtFma.allows_fma());
        assert!(!FaultTarget::SimtFma.allows_payload_mma());
        // Any covers both.
        assert!(FaultTarget::Any.allows_payload_mma());
        assert!(FaultTarget::Any.allows_fma());
        // Checksum-only covers neither payload stream.
        assert!(!FaultTarget::ChecksumMma.allows_payload_mma());
        assert!(!FaultTarget::ChecksumMma.allows_fma());
    }

    #[test]
    fn default_is_single_event() {
        let m = SeuModel::default();
        assert_eq!(m.max_per_block, 1);
    }
}
