//! The fault model: what can be corrupted and under what assumptions.

use serde::{Deserialize, Serialize};

/// Which computation site a fault may strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// Payload tensor-core MMA outputs (the distance accumulators).
    PayloadMma,
    /// ABFT checksum MMA outputs (the protection itself is not exempt).
    ChecksumMma,
    /// SIMT FMA results (naive/V1–V3 kernels, update phase).
    SimtFma,
    /// Any of the above, chosen uniformly at the stricken site.
    Any,
}

impl FaultTarget {
    /// Whether a site flagged as checksum work is eligible.
    pub fn allows_checksum(self) -> bool {
        matches!(self, FaultTarget::ChecksumMma | FaultTarget::Any)
    }

    /// Whether a payload site is eligible.
    pub fn allows_payload(self) -> bool {
        matches!(
            self,
            FaultTarget::PayloadMma | FaultTarget::SimtFma | FaultTarget::Any
        )
    }
}

/// The single-event-upset model of §II-A: memory is ECC-protected, network
/// is FT-MPI-protected; compute errors arrive at most once per detection
/// interval per threadblock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeuModel {
    /// Eligible sites.
    pub target: FaultTarget,
    /// At most this many injections per (threadblock, kernel launch) — the
    /// SEU assumption is 1.
    pub max_per_block: u32,
}

impl Default for SeuModel {
    fn default() -> Self {
        SeuModel {
            target: FaultTarget::PayloadMma,
            max_per_block: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility() {
        assert!(FaultTarget::Any.allows_checksum());
        assert!(FaultTarget::Any.allows_payload());
        assert!(!FaultTarget::PayloadMma.allows_checksum());
        assert!(FaultTarget::ChecksumMma.allows_checksum());
        assert!(!FaultTarget::ChecksumMma.allows_payload());
    }

    #[test]
    fn default_is_single_event() {
        let m = SeuModel::default();
        assert_eq!(m.max_per_block, 1);
    }
}
