//! # ftk-fault — transient-fault injection
//!
//! Implements the paper's fault model (§II-A): fail-continue errors inside
//! the computational logic units, under the single-event-upset (SEU)
//! assumption — at most one soft error per detection/correction interval.
//! "Each threadblock randomly selects an element to corrupt by flipping a
//! single bit, either in its 32-bit float representation or 64-bit double
//! representation."
//!
//! * [`bitflip`] — single-bit flips with IEEE-754 field classification,
//! * [`model`] — which execution sites are eligible for corruption,
//! * [`schedule`] — when faults arrive (per-launch probability or a rate in
//!   errors/second, as in the paper's "tens of errors per second"), with
//!   requested-vs-achieved rate accounting when the per-block probability
//!   clamp saturates,
//! * [`injector`] — a seeded [`gpu_sim::FaultHook`] implementation,
//! * [`stats`] — campaign statistics (injected / detected / corrected /
//!   benign / SDC).

pub mod bitflip;
pub mod injector;
pub mod model;
pub mod schedule;
pub mod stats;

pub use bitflip::{classify_bit, BitField};
pub use injector::{Injector, InjectorConfig, PlannedInjection};
pub use model::{FaultTarget, SeuModel};
pub use schedule::{InjectionSchedule, RateRealization};
pub use stats::{CampaignStats, InjectionRecord};
