//! Cross-layer serving tests: micro-batched responses must be bit-identical
//! to the unbatched path under every predict policy, and concurrent
//! fits/predicts over one shared executor must produce exactly the state
//! and counter totals of serial-pinned twin runs (no cross-talk).

use gpu_sim::exec::Executor;
use gpu_sim::Matrix;
use kmeans::{FtConfig, KMeansConfig, PredictPolicy, Session, Variant};
use serve::{ModelRegistry, ServeError, Server, ServerConfig};
use std::sync::Arc;

fn blobs(m: usize, dim: usize, k: usize, salt: usize) -> Matrix<f64> {
    Matrix::from_fn(m, dim, |r, c| {
        ((r % k) * 11) as f64
            + (((r * 31 + c * 7 + salt) % 100) as f64 / 100.0 - 0.5) * 0.7
            + c as f64 * 0.03
    })
}

fn wide_window() -> ServerConfig {
    ServerConfig {
        max_batch_rows: 4096,
        max_delay_us: 50_000,
        validate_batched: true,
    }
}

#[test]
fn batched_labels_bit_identical_for_every_policy() {
    for policy in [
        PredictPolicy::Exact,
        PredictPolicy::Fp16,
        PredictPolicy::Int8,
    ] {
        let session = Session::a100();
        let registry = ModelRegistry::new();
        let model = registry.register(
            "svc",
            session
                .kmeans(KMeansConfig::new(4).with_seed(3))
                .fit_model(&blobs(256, 8, 4, 0))
                .expect("fit")
                .with_predict_policy(policy),
        );
        // validate_batched re-runs every coalesced member unbatched inside
        // the dispatcher and fails the request on any bit difference.
        let server = Server::new(session, registry, wide_window());
        std::thread::scope(|s| {
            for t in 0..12usize {
                let (server, model) = (&server, &model);
                s.spawn(move || {
                    // varying row counts exercise the scatter offsets
                    let q = blobs(13 + t % 5, 8, 4, t * 17 + 1);
                    let want = model.predict(&q).expect("unbatched reference");
                    let resp = server.predict("svc", &q).expect("served");
                    assert_eq!(resp.labels, want, "{policy:?}, client {t}");
                });
            }
        });
        let stats = server.stats();
        assert_eq!(stats.predict_requests, 12, "{policy:?}");
        assert!(
            stats.dispatch_groups < 12,
            "{policy:?}: a 50ms window must coalesce concurrent clients: {stats:?}"
        );
        assert!(stats.coalesced_requests > 0, "{policy:?}");
    }
}

#[test]
fn coalescing_collapses_kernel_launches() {
    let session = Session::a100();
    let registry = ModelRegistry::new();
    let model = registry.register(
        "svc",
        session
            .kmeans(KMeansConfig::new(4).with_seed(1))
            .fit_model(&blobs(256, 8, 4, 0))
            .expect("fit")
            .with_predict_policy(PredictPolicy::Int8),
    );
    model.quantized_table(kmeans::quant::QuantKind::Int8); // prebuild
    let server = Server::new(
        session,
        registry,
        ServerConfig {
            validate_batched: false, // validation would re-launch per member
            ..wide_window()
        },
    );
    let before = model.predict_counters();
    std::thread::scope(|s| {
        for t in 0..16usize {
            let server = &server;
            s.spawn(move || {
                server
                    .predict("svc", &blobs(16, 8, 4, t + 1))
                    .expect("served");
            });
        }
    });
    let delta = model.predict_counters().since(&before);
    let stats = server.stats();
    assert_eq!(stats.predict_requests, 16);
    assert_eq!(
        delta.kernel_launches, stats.dispatch_groups,
        "the quantized path is one fused launch per dispatch group"
    );
    assert!(
        delta.kernel_launches < 16,
        "16 concurrent small requests must share launches, got {}",
        delta.kernel_launches
    );
}

#[test]
fn concurrent_fits_match_serial_pinned_twins_bitwise() {
    // One pool executor shared by every concurrent fit; the twins run the
    // identical requests serially over an identical fresh pool. Per-request
    // scoped counters mean the concurrent results must be *bit-for-bit* the
    // serially-issued ones — any difference would be cross-talk between the
    // overlapping requests.
    let shared = Session::a100().with_executor(Executor::with_workers(4));
    let twin_pool = Session::a100().with_executor(Executor::with_workers(4));
    let serial = Session::a100().with_executor(Executor::serial());
    let cfgs: Vec<KMeansConfig> = vec![
        KMeansConfig::new(3).with_seed(1),
        KMeansConfig::new(4)
            .with_seed(2)
            .with_variant(Variant::Naive),
        KMeansConfig::new(3)
            .with_seed(3)
            .with_variant(Variant::FusedV2)
            .with_ft(FtConfig::protected()),
        KMeansConfig::new(5)
            .with_seed(4)
            .with_variant(Variant::Hamerly),
    ];
    let datas: Vec<Matrix<f64>> = (0..cfgs.len())
        .map(|i| blobs(192 + 32 * i, 6, 3 + i % 3, i * 7))
        .collect();

    let concurrent: Vec<kmeans::FittedModel<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = cfgs
            .iter()
            .zip(&datas)
            .map(|(cfg, data)| {
                let shared = &shared;
                s.spawn(move || shared.kmeans(cfg.clone()).fit_model(data).expect("fit"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let bits = |m: &Matrix<f64>| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
    for ((cfg, data), got) in cfgs.iter().zip(&datas).zip(&concurrent) {
        let want = twin_pool
            .kmeans(cfg.clone())
            .fit_model(data)
            .expect("twin fit");
        assert_eq!(got.labels, want.labels, "{cfg:?}");
        assert_eq!(bits(&got.centroids), bits(&want.centroids), "{cfg:?}");
        assert_eq!(
            got.counters, want.counters,
            "per-request counter totals must not cross-talk: {cfg:?}"
        );
        assert_eq!(got.ft_stats.handled(), want.ft_stats.handled(), "{cfg:?}");
        // Cross-executor determinism on top: a serial-pinned twin matches
        // bit-for-bit for every variant whose reductions are chunk-shape
        // independent. Hamerly's bound-update partials are reduced per
        // chunk, so its serial twin differs in ULPs by design — skip it.
        if !matches!(cfg.variant, Variant::Hamerly) {
            let pinned = serial
                .kmeans(cfg.clone())
                .fit_model(data)
                .expect("pinned twin");
            assert_eq!(bits(&got.centroids), bits(&pinned.centroids), "{cfg:?}");
            assert_eq!(got.counters, pinned.counters, "{cfg:?}");
        }
    }
}

#[test]
fn concurrent_predict_counter_totals_match_serial_twins() {
    // Same shared-pool vs serial-pinned twin structure, predict side: the
    // model's serving counters after N concurrent predicts must equal the
    // twin's after the same N predicts issued serially.
    let shared = Session::a100().with_executor(Executor::with_workers(4));
    let serial = Session::a100().with_executor(Executor::serial());
    let train = blobs(256, 6, 4, 0);
    let cfg = KMeansConfig::new(4).with_seed(9);
    let pooled_model = shared
        .kmeans(cfg.clone())
        .fit_model(&train)
        .expect("fit")
        .with_predict_policy(PredictPolicy::Int8);
    let serial_model = serial
        .kmeans(cfg)
        .fit_model(&train)
        .expect("twin fit")
        .with_predict_policy(PredictPolicy::Int8);
    pooled_model.quantized_table(kmeans::quant::QuantKind::Int8);
    serial_model.quantized_table(kmeans::quant::QuantKind::Int8);

    let queries: Vec<Matrix<f64>> = (0..6).map(|t| blobs(64, 6, 4, t * 13 + 5)).collect();
    let concurrent_labels: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let m = &pooled_model;
                s.spawn(move || m.predict(q).expect("predict"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for (q, got) in queries.iter().zip(&concurrent_labels) {
        assert_eq!(got, &serial_model.predict(q).expect("twin predict"));
    }
    assert_eq!(
        pooled_model.predict_counters(),
        serial_model.predict_counters(),
        "serving counter totals must be schedule-independent"
    );
}

#[test]
fn hot_swaps_race_predict_traffic_safely() {
    // Two tenants at different resident precisions; predict clients hammer
    // both while a maintenance thread refits one and streams batches into
    // the other through the server. Every response must be well-formed and
    // the final states must serve exactly like their direct twins.
    let session = Session::a100();
    let registry = ModelRegistry::new();
    registry.register(
        "low-lat",
        session
            .kmeans(KMeansConfig::new(3).with_seed(1))
            .fit_model(&blobs(200, 5, 3, 0))
            .expect("fit")
            .with_predict_policy(PredictPolicy::Int8),
    );
    registry.register(
        "exact",
        session
            .kmeans(
                KMeansConfig::new(4)
                    .with_seed(2)
                    .with_reassignment_ratio(0.01),
            )
            .fit_model(&blobs(200, 5, 4, 1))
            .expect("fit")
            .with_predict_policy(PredictPolicy::Exact),
    );
    let server = Server::new(
        session,
        registry,
        ServerConfig {
            max_batch_rows: 512,
            max_delay_us: 300,
            validate_batched: true,
        },
    );
    std::thread::scope(|s| {
        for t in 0..4usize {
            let server = &server;
            s.spawn(move || {
                for i in 0..8usize {
                    let (name, k) = if (t + i) % 2 == 0 {
                        ("low-lat", 3)
                    } else {
                        ("exact", 4)
                    };
                    let resp = server
                        .predict(name, &blobs(16, 5, k, t * 100 + i))
                        .expect("served across swaps");
                    assert_eq!(resp.labels.len(), 16);
                    assert!(resp.labels.iter().all(|&l| (l as usize) < k));
                }
            });
        }
        let server = &server;
        s.spawn(move || {
            for i in 0..3usize {
                server
                    .refit("low-lat", &blobs(200, 5, 3, 50 + i))
                    .expect("refit");
                server
                    .partial_fit("exact", &blobs(64, 5, 4, 80 + i))
                    .expect("stream");
            }
        });
    });
    let stats = server.stats();
    assert_eq!(stats.predict_requests, 32);
    assert_eq!(stats.refits, 6);
    // swapped-in models still carry their tenant policies and serve
    // bit-identically to a direct call on the resolved model
    let low = server.registry().get("low-lat").expect("still registered");
    assert_eq!(low.predict_policy(), PredictPolicy::Int8);
    let streamed = server.registry().get("exact").expect("still registered");
    assert_eq!(streamed.predict_policy(), PredictPolicy::Exact);
    assert_eq!(streamed.batches_seen(), 3);
    let probe = blobs(32, 5, 3, 999);
    assert_eq!(
        server.predict("low-lat", &probe).expect("serve").labels,
        low.predict(&probe).expect("direct")
    );
    // in-flight Arcs keep displaced models alive; nothing dangles
    drop(server);
    assert!(Arc::strong_count(&low) >= 1);
}

#[test]
fn server_over_shared_pinned_executor_stays_consistent() {
    // The server, its fits, and direct estimator use all share ONE pool
    // executor; a serial-pinned twin server must produce bit-identical
    // responses and fit counter aggregates.
    let run = |exec: Executor| {
        let session = Session::a100().with_executor(exec);
        let server: Server<f64> =
            Server::new(session, ModelRegistry::new(), ServerConfig::default());
        server
            .fit(
                "svc",
                KMeansConfig::new(3).with_seed(4),
                PredictPolicy::Fp16,
                &blobs(180, 6, 3, 2),
            )
            .expect("fit");
        server
            .partial_fit("svc", &blobs(90, 6, 3, 3))
            .expect("stream");
        let labels = server
            .predict("svc", &blobs(48, 6, 3, 9))
            .expect("serve")
            .labels;
        (labels, server.counters())
    };
    let (labels_pool, counters_pool) = run(Executor::with_workers(4));
    let (labels_serial, counters_serial) = run(Executor::serial());
    assert_eq!(labels_pool, labels_serial);
    assert_eq!(counters_pool, counters_serial);
}

#[test]
fn shutdown_surfaces_as_an_error_not_a_hang() {
    let (tx, rx) = std::sync::mpsc::channel::<Server<f64>>();
    let session = Session::a100();
    let registry = ModelRegistry::new();
    registry.register(
        "svc",
        session
            .kmeans(KMeansConfig::new(2).with_seed(1))
            .fit_model(&blobs(64, 4, 2, 0))
            .expect("fit"),
    );
    let server = Server::new(session, registry, ServerConfig::default());
    tx.send(server).unwrap();
    let server = rx.recv().unwrap();
    drop(server); // shutdown drains and joins — the test must simply finish
                  // a fresh server rejects requests submitted after shutdown begins is
                  // covered implicitly: predict() on a dropped server can't be called
                  // (ownership), and queued requests are drained before the join above.
    assert!(matches!(ServeError::Shutdown, ServeError::Shutdown));
}
