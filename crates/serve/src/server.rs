//! The micro-batching request front-end.
//!
//! One background dispatcher thread owns the predict queue. Callers block
//! on a per-request response slot; the dispatcher groups queued requests
//! by model (same `Arc`, hence same resident buffers and
//! [`kmeans::PredictPolicy`]), closes a group when its rows reach
//! [`ServerConfig::max_batch_rows`] or the oldest member has waited
//! [`ServerConfig::max_delay_us`], concatenates the group's query rows
//! into one matrix, runs **one** predict — one query upload, one fused
//! assignment launch through the model's [`kmeans::FittedModel::predict`]
//! scratch — and scatters the label vector back to the callers.
//!
//! Correctness of the scatter rests on a property every assignment kernel
//! in this workspace already guarantees (and `tests/` re-asserts through
//! the server): labels are a per-sample function of the sample's bits —
//! bit-for-bit the naive fp32 argmin regardless of batch shape or row
//! position — so coalescing N requests is response-invisible. The
//! [`ServerConfig::validate_batched`] knob makes the server re-run every
//! coalesced member unbatched and fail the request on any divergence.
//!
//! Fits ([`Server::fit`], [`Server::refit`], [`Server::partial_fit`]) run
//! on the calling thread over the same shared executor as everything else.
//! Each fit charges a fresh per-request `Counters` internally (scoped
//! sinks — concurrent admissions never cross-talk) and the server folds
//! the finished snapshot into one aggregate via
//! [`gpu_sim::Counters::add_snapshot`].

use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::registry::ModelRegistry;
use gpu_sim::{CounterSnapshot, Counters, Matrix, Scalar};
use kmeans::{FittedModel, KMeansConfig, KMeansError, PredictPolicy, Session};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching-window knobs for [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// A batch closes as soon as its total rows reach this many; a request
    /// at least this large (or any request when this is ≤ 1) bypasses the
    /// queue and runs on the caller's thread — micro-batching only helps
    /// when per-launch overhead dominates, i.e. for small requests.
    pub max_batch_rows: usize,
    /// A batch closes at most this many microseconds after its oldest
    /// member arrived — the latency bound a queued request pays for the
    /// chance to share a launch.
    pub max_delay_us: u64,
    /// Re-run every coalesced member unbatched and fail the request with
    /// [`ServeError::BatchMismatch`] if the labels differ in any bit.
    /// Diagnostic mode: it exists to *assert* the bit-identity contract,
    /// and costs the whole batching win.
    pub validate_batched: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch_rows: 1024,
            max_delay_us: 200,
            validate_batched: false,
        }
    }
}

impl ServerConfig {
    /// A configuration with micro-batching disabled: every request runs
    /// on its caller's thread, one kernel launch per call. The comparison
    /// baseline for the batching win.
    pub fn unbatched() -> Self {
        ServerConfig {
            max_batch_rows: 1,
            max_delay_us: 0,
            validate_batched: false,
        }
    }
}

/// A served predict response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictResponse {
    /// Nearest-centroid label per query row — bit-identical to calling
    /// [`FittedModel::predict`] directly, however the request was batched.
    pub labels: Vec<u32>,
    /// How many requests shared the kernel launch that served this one
    /// (1 = the request ran alone).
    pub coalesced_with: usize,
}

/// Cumulative serving traffic totals (see [`Server::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Predict requests served (batched or not).
    pub predict_requests: u64,
    /// Query rows served across all predict requests.
    pub predict_rows: u64,
    /// Dispatch groups executed — each is one predict call on a model, so
    /// `predict_requests / dispatch_groups` is the achieved coalescing
    /// factor.
    pub dispatch_groups: u64,
    /// Requests that shared their launch with at least one other.
    pub coalesced_requests: u64,
    /// Cold fits admitted via [`Server::fit`].
    pub fits: u64,
    /// Warm refits and streaming updates admitted via [`Server::refit`] /
    /// [`Server::partial_fit`].
    pub refits: u64,
    /// Requests that went through the micro-batching queue (direct/bypass
    /// requests never wait and are not counted here).
    pub queued_requests: u64,
    /// Summed enqueue-to-dispatch wait of queued requests, microseconds;
    /// `queue_delay_us_total / queued_requests` is the mean queue delay.
    pub queue_delay_us_total: u64,
    /// Largest single enqueue-to-dispatch wait observed, microseconds —
    /// bounded by [`ServerConfig::max_delay_us`] plus scheduling noise.
    pub queue_delay_us_max: u64,
}

struct ResponseSlot {
    state: Mutex<Option<Result<PredictResponse, ServeError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, r: Result<PredictResponse, ServeError>) {
        // A panicking filler poisons the lock but leaves the slot usable;
        // recover the guard rather than cascading the panic to the client.
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<PredictResponse, ServeError> {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Pending<T: Scalar> {
    name: String,
    model: Arc<FittedModel<T>>,
    queries: Matrix<T>,
    slot: Arc<ResponseSlot>,
    /// When the request entered the queue — the enqueue side of the
    /// queue-delay accounting closed out at dispatch.
    enqueued: Instant,
}

struct QueueState<T: Scalar> {
    pending: Vec<Pending<T>>,
    shutdown: bool,
}

struct ServerInner<T: Scalar> {
    registry: ModelRegistry<T>,
    config: ServerConfig,
    queue: Mutex<QueueState<T>>,
    arrived: Condvar,
    /// Server-wide fit counter aggregate (scoped per-request counters are
    /// folded in; see the module docs).
    fit_counters: Counters,
    stats: parking_lot::Mutex<ServerStats>,
    /// Incremented once per executed dispatch group; cheap enough for the
    /// hot path and lets `predict` callers meter coalescing without locks.
    groups: AtomicU64,
    /// Prometheus-style instruments (see [`Server::metrics_text`]).
    metrics: ServeMetrics,
}

/// A multi-tenant serving front-end over a [`ModelRegistry`].
///
/// ```
/// use gpu_sim::Matrix;
/// use kmeans::{KMeansConfig, PredictPolicy, Session};
/// use serve::{ModelRegistry, Server, ServerConfig};
///
/// let session = Session::a100();
/// let data = Matrix::<f64>::from_fn(60, 4, |r, c| (r % 3) as f64 * 9.0 + c as f64 * 0.1);
/// let registry = ModelRegistry::new();
/// registry.register(
///     "tenant-a",
///     session
///         .kmeans(KMeansConfig::new(3).with_seed(1))
///         .fit_model(&data)
///         .unwrap()
///         .with_predict_policy(PredictPolicy::Int8),
/// );
/// let server = Server::new(session, registry, ServerConfig::default());
/// let resp = server.predict("tenant-a", &data).unwrap();
/// assert_eq!(resp.labels.len(), 60);
/// // admission of new tenants goes through the server too
/// server
///     .fit("tenant-b", KMeansConfig::new(2).with_seed(7), PredictPolicy::Fp16, &data)
///     .unwrap();
/// assert_eq!(server.registry().names(), ["tenant-a", "tenant-b"]);
/// ```
///
/// Dropping the server shuts the dispatcher down after draining queued
/// requests; [`Server::predict`] calls racing the drop get
/// [`ServeError::Shutdown`].
pub struct Server<T: Scalar> {
    session: Session,
    inner: Arc<ServerInner<T>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl<T: Scalar> Server<T> {
    /// Start a server over `registry`. `session` hosts models admitted via
    /// [`Server::fit`] (predicts always run on the session each model was
    /// fitted under).
    pub fn new(session: Session, registry: ModelRegistry<T>, config: ServerConfig) -> Self {
        let inner = Arc::new(ServerInner {
            registry,
            config,
            queue: Mutex::new(QueueState {
                pending: Vec::new(),
                shutdown: false,
            }),
            arrived: Condvar::new(),
            fit_counters: Counters::new(),
            stats: parking_lot::Mutex::new(ServerStats::default()),
            groups: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-dispatch".into())
                .spawn(move || dispatch_loop(inner))
                // Construction-time, not a request path: a host that cannot
                // spawn a thread cannot run a server at all.
                .expect("spawn dispatcher") // ftk-lint: allow(serve-unwrap)
        };
        Server {
            session,
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// The registry this server fronts.
    pub fn registry(&self) -> &ModelRegistry<T> {
        &self.inner.registry
    }

    /// The batching configuration in effect.
    pub fn config(&self) -> ServerConfig {
        self.inner.config
    }

    /// Cumulative traffic totals.
    pub fn stats(&self) -> ServerStats {
        let mut s = *self.inner.stats.lock();
        s.dispatch_groups = self.inner.groups.load(Ordering::Relaxed);
        s
    }

    /// Aggregate hardware-event counters of every fit admitted through
    /// this server. Each fit runs against its own scoped counters and is
    /// folded in on completion, so the total is exact under any request
    /// concurrency. (Predict-path counters stay per model:
    /// [`FittedModel::predict_counters`].)
    pub fn counters(&self) -> CounterSnapshot {
        self.inner.fit_counters.snapshot()
    }

    /// Label `queries` against the model registered under `name`.
    ///
    /// Small requests are queued for the batching window and may share
    /// their kernel launch with other callers ([`PredictResponse::coalesced_with`]);
    /// requests of [`ServerConfig::max_batch_rows`] rows or more — or every
    /// request, when batching is disabled — run directly on the calling
    /// thread. Blocks until the response is ready.
    pub fn predict(&self, name: &str, queries: &Matrix<T>) -> Result<PredictResponse, ServeError> {
        let start = Instant::now();
        let model = self
            .inner
            .registry
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        // Fail fast (and cheap) before queueing: shape errors should not
        // cost a batching window.
        if queries.cols() != model.dim() {
            return Err(KMeansError::ShapeMismatch {
                what: "samples",
                expected: (queries.rows(), model.dim()),
                got: (queries.rows(), queries.cols()),
            }
            .into());
        }
        if queries.rows() == 0 {
            return Ok(PredictResponse {
                labels: Vec::new(),
                coalesced_with: 1,
            });
        }
        let out = if self.inner.config.max_batch_rows <= 1
            || queries.rows() >= self.inner.config.max_batch_rows
        {
            self.inner.serve_direct(name, &model, queries)
        } else {
            let slot = Arc::new(ResponseSlot::new());
            {
                let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                if q.shutdown {
                    return Err(ServeError::Shutdown);
                }
                q.pending.push(Pending {
                    name: name.to_string(),
                    model,
                    queries: queries.clone(),
                    slot: Arc::clone(&slot),
                    enqueued: Instant::now(),
                });
                self.inner.arrived.notify_all();
            }
            slot.wait()
        };
        if out.is_ok() {
            self.inner.metrics.request(
                name,
                queries.rows() as u64,
                start.elapsed().as_micros() as u64,
            );
        }
        out
    }

    /// Prometheus text-exposition snapshot of the server's serving
    /// metrics: per-tenant request/row/fallback counters, per-tenant
    /// predict-latency histograms (derive p50/p99 from the bucket counts),
    /// the queue-delay histogram, and batch-occupancy gauges. Serve it
    /// from a `/metrics` endpoint or dump it after a bench run.
    ///
    /// ```
    /// use gpu_sim::Matrix;
    /// use kmeans::{KMeansConfig, Session};
    /// use serve::{ModelRegistry, Server, ServerConfig};
    ///
    /// let session = Session::a100();
    /// let data = Matrix::<f64>::from_fn(60, 4, |r, c| (r % 3) as f64 * 9.0 + c as f64 * 0.1);
    /// let registry = ModelRegistry::new();
    /// registry.register(
    ///     "svc",
    ///     session.kmeans(KMeansConfig::new(3).with_seed(1)).fit_model(&data).unwrap(),
    /// );
    /// let server = Server::new(session, registry, ServerConfig::default());
    /// server.predict("svc", &data).unwrap();
    /// let text = server.metrics_text();
    /// assert!(text.contains(r#"ftk_serve_requests_total{model="svc"} 1"#));
    /// assert!(text.contains("# TYPE ftk_serve_predict_latency_us histogram"));
    /// ```
    pub fn metrics_text(&self) -> String {
        self.inner.metrics.render()
    }

    /// Fit a new model on the server's session and register it under
    /// `name` (replacing any previous holder atomically).
    pub fn fit(
        &self,
        name: &str,
        config: KMeansConfig,
        policy: PredictPolicy,
        samples: &Matrix<T>,
    ) -> Result<Arc<FittedModel<T>>, ServeError> {
        let model = self
            .session
            .kmeans(config)
            .fit_model(samples)?
            .with_predict_policy(policy);
        self.inner.fit_counters.add_snapshot(&model.counters);
        self.inner.stats.lock().fits += 1;
        Ok(self.inner.registry.register(name, model))
    }

    /// Warm-started full refit of the model registered under `name`
    /// (same configuration and policy, current centroids as the starting
    /// point — `KMeans::fit_from`). In-flight predicts finish against the
    /// old model; the swap is atomic.
    pub fn refit(
        &self,
        name: &str,
        samples: &Matrix<T>,
    ) -> Result<Arc<FittedModel<T>>, ServeError> {
        let old = self
            .inner
            .registry
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        let fresh = old
            .session()
            .kmeans(old.config().clone())
            .fit_from(&old, samples)?
            .with_predict_policy(old.predict_policy());
        self.inner.fit_counters.add_snapshot(&fresh.counters);
        self.inner.stats.lock().refits += 1;
        Ok(self.inner.registry.register(name, fresh))
    }

    /// Streaming update of the model registered under `name`: one
    /// `partial_fit` batch folded into a *clone* of the serving model
    /// (device buffers Arc-aliased, so the clone costs no uploads),
    /// registered as the replacement when it completes.
    pub fn partial_fit(
        &self,
        name: &str,
        batch: &Matrix<T>,
    ) -> Result<Arc<FittedModel<T>>, ServeError> {
        let old = self
            .inner
            .registry
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        let before = old.counters;
        let policy = old.predict_policy();
        let cont = old
            .session()
            .kmeans(old.config().clone())
            .partial_fit(Some((*old).clone()), batch)?
            .with_predict_policy(policy);
        // `FitResult::counters` accumulates over the whole stream; only
        // this batch's delta is new work admitted through the server.
        self.inner
            .fit_counters
            .add_snapshot(&cont.counters.since(&before));
        self.inner.stats.lock().refits += 1;
        Ok(self.inner.registry.register(name, cont))
    }
}

impl<T: Scalar> Drop for Server<T> {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
            self.inner.arrived.notify_all();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl<T: Scalar> ServerInner<T> {
    /// Unbatched path: one request, one predict, caller's thread.
    fn serve_direct(
        &self,
        name: &str,
        model: &FittedModel<T>,
        queries: &Matrix<T>,
    ) -> Result<PredictResponse, ServeError> {
        let fallbacks_before = model.predict_counters().quant_fallbacks;
        let labels = model.predict(queries)?;
        self.metrics.fallbacks(
            name,
            model
                .predict_counters()
                .quant_fallbacks
                .saturating_sub(fallbacks_before),
        );
        self.metrics.group(1, queries.rows());
        self.groups.fetch_add(1, Ordering::Relaxed);
        {
            let mut s = self.stats.lock();
            s.predict_requests += 1;
            s.predict_rows += queries.rows() as u64;
        }
        Ok(PredictResponse {
            labels,
            coalesced_with: 1,
        })
    }

    /// Run one closed dispatch group: concatenate, predict once, scatter.
    fn execute_group(&self, batch: Vec<Pending<T>>) {
        let coalesced = batch.len();
        let total_rows: usize = batch.iter().map(|p| p.queries.rows()).sum();
        // Close out the queue-delay accounting: every member waited from
        // its enqueue until this dispatch moment.
        let dispatched = Instant::now();
        {
            let mut s = self.stats.lock();
            for p in &batch {
                let delay = dispatched.duration_since(p.enqueued).as_micros() as u64;
                self.metrics.queue_delay(delay);
                s.queued_requests += 1;
                s.queue_delay_us_total += delay;
                s.queue_delay_us_max = s.queue_delay_us_max.max(delay);
            }
        }
        let fallbacks_before = batch[0].model.predict_counters().quant_fallbacks;
        let outcome: Result<Vec<Vec<u32>>, ServeError> = (|| {
            if coalesced == 1 {
                return Ok(vec![batch[0].model.predict(&batch[0].queries)?]);
            }
            let model = &batch[0].model;
            let dim = model.dim();
            let mut flat = Vec::with_capacity(total_rows * dim);
            for p in &batch {
                flat.extend_from_slice(p.queries.as_slice());
            }
            // Rows×dim are consistent by construction, but a mismatch must
            // surface as a per-request error, not a dispatcher-killing panic.
            let fused =
                Matrix::from_vec(total_rows, dim, flat).map_err(kmeans::KMeansError::from)?;
            let labels = model.predict(&fused)?;
            let mut per_request = Vec::with_capacity(coalesced);
            let mut offset = 0usize;
            for p in &batch {
                per_request.push(labels[offset..offset + p.queries.rows()].to_vec());
                offset += p.queries.rows();
            }
            Ok(per_request)
        })();
        self.metrics.fallbacks(
            &batch[0].name,
            batch[0]
                .model
                .predict_counters()
                .quant_fallbacks
                .saturating_sub(fallbacks_before),
        );
        self.metrics.group(coalesced, total_rows);
        self.groups.fetch_add(1, Ordering::Relaxed);
        {
            let mut s = self.stats.lock();
            s.predict_requests += coalesced as u64;
            s.predict_rows += total_rows as u64;
            if coalesced > 1 {
                s.coalesced_requests += coalesced as u64;
            }
        }
        match outcome {
            Ok(per_request) => {
                for (p, labels) in batch.into_iter().zip(per_request) {
                    let response = if self.config.validate_batched && coalesced > 1 {
                        match p.model.predict(&p.queries) {
                            Ok(ref want) if *want == labels => Ok(PredictResponse {
                                labels,
                                coalesced_with: coalesced,
                            }),
                            Ok(_) => Err(ServeError::BatchMismatch {
                                model: p.name.clone(),
                            }),
                            Err(e) => Err(e.into()),
                        }
                    } else {
                        Ok(PredictResponse {
                            labels,
                            coalesced_with: coalesced,
                        })
                    };
                    p.slot.fill(response);
                }
            }
            Err(e) => {
                for p in batch {
                    p.slot.fill(Err(e.clone()));
                }
            }
        }
    }
}

fn dispatch_loop<T: Scalar>(inner: Arc<ServerInner<T>>) {
    loop {
        let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        // Sleep until there is work; exit only once shut down AND drained,
        // so requests accepted before shutdown are always answered.
        while q.pending.is_empty() {
            if q.shutdown {
                return;
            }
            q = inner.arrived.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        // Adopt the oldest request's model as this group's key and keep
        // the window open until the row budget fills or the deadline hits.
        let model = Arc::clone(&q.pending[0].model);
        let deadline = Instant::now() + Duration::from_micros(inner.config.max_delay_us);
        let mut batch: Vec<Pending<T>> = Vec::new();
        let mut rows = 0usize;
        loop {
            let mut i = 0;
            while i < q.pending.len() {
                if rows < inner.config.max_batch_rows && Arc::ptr_eq(&q.pending[i].model, &model) {
                    let p = q.pending.remove(i);
                    rows += p.queries.rows();
                    batch.push(p);
                } else {
                    i += 1;
                }
            }
            if rows >= inner.config.max_batch_rows || q.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _timeout) = inner
                .arrived
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = g;
        }
        drop(q);
        inner.execute_group(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(m: usize, salt: usize) -> Matrix<f64> {
        Matrix::from_fn(m, 4, |r, c| {
            ((r + salt) % 3) as f64 * 10.0 + ((r * 7 + c * 3 + salt) % 5) as f64 * 0.05
        })
    }

    fn serving_pair() -> (Session, ModelRegistry<f64>) {
        let session = Session::a100();
        let registry = ModelRegistry::new();
        registry.register(
            "svc",
            session
                .kmeans(KMeansConfig::new(3).with_seed(1))
                .fit_model(&blobs(120, 0))
                .expect("fit")
                .with_predict_policy(PredictPolicy::Int8),
        );
        (session, registry)
    }

    #[test]
    fn poisoned_locks_recover_instead_of_cascading() {
        // Regression pin for the ftk-lint serve-unwrap pass: a client
        // thread panicking while holding server-internal locks must not
        // take the server down with it. Poison a ResponseSlot's mutex and
        // the dispatch queue's mutex the same way a panicking caller
        // would, then verify both stay usable.
        let slot = Arc::new(ResponseSlot::new());
        {
            let slot = Arc::clone(&slot);
            let _ = std::thread::spawn(move || {
                let _g = slot.state.lock().unwrap();
                panic!("poison the slot lock");
            })
            .join();
        }
        slot.fill(Err(ServeError::Shutdown));
        assert!(matches!(slot.wait(), Err(ServeError::Shutdown)));

        let (session, registry) = serving_pair();
        let server = Server::new(session, registry, ServerConfig::default());
        {
            let inner = Arc::clone(&server.inner);
            let _ = std::thread::spawn(move || {
                let _g = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                panic!("poison the queue lock");
            })
            .join();
        }
        let q = blobs(16, 5);
        let resp = server.predict("svc", &q).expect("predict after poison");
        assert_eq!(resp.labels.len(), 16);
    }

    #[test]
    fn single_request_round_trip() {
        let (session, registry) = serving_pair();
        let model = registry.get("svc").unwrap();
        let server = Server::new(session, registry, ServerConfig::default());
        let q = blobs(16, 5);
        let want = model.predict(&q).unwrap();
        let resp = server.predict("svc", &q).unwrap();
        assert_eq!(resp.labels, want);
        let stats = server.stats();
        assert_eq!(stats.predict_requests, 1);
        assert_eq!(stats.predict_rows, 16);
        assert_eq!(stats.dispatch_groups, 1);
    }

    #[test]
    fn unknown_model_and_bad_shape_fail_fast() {
        let (session, registry) = serving_pair();
        let server = Server::new(session, registry, ServerConfig::default());
        assert_eq!(
            server.predict("nope", &blobs(4, 0)),
            Err(ServeError::UnknownModel("nope".into()))
        );
        let bad = Matrix::<f64>::zeros(4, 7);
        assert!(matches!(
            server.predict("svc", &bad),
            Err(ServeError::KMeans(KMeansError::ShapeMismatch { .. }))
        ));
        // empty requests are answered inline without queueing or launching
        let empty = Matrix::<f64>::zeros(0, 4);
        assert_eq!(
            server.predict("svc", &empty).unwrap(),
            PredictResponse {
                labels: Vec::new(),
                coalesced_with: 1
            }
        );
        assert_eq!(server.stats().predict_requests, 0);
    }

    #[test]
    fn large_requests_bypass_the_queue() {
        let (session, registry) = serving_pair();
        let server = Server::new(
            session,
            registry,
            ServerConfig {
                max_batch_rows: 32,
                max_delay_us: 10_000,
                validate_batched: false,
            },
        );
        // 32 rows ≥ max_batch_rows: served inline, no window latency
        let resp = server.predict("svc", &blobs(32, 1)).unwrap();
        assert_eq!(resp.coalesced_with, 1);
        assert_eq!(server.stats().dispatch_groups, 1);
    }

    #[test]
    fn concurrent_small_requests_coalesce_and_match_unbatched_labels() {
        let (session, registry) = serving_pair();
        let model = registry.get("svc").unwrap();
        let server = Server::new(
            session,
            registry,
            ServerConfig {
                max_batch_rows: 4096,
                max_delay_us: 20_000,
                validate_batched: true,
            },
        );
        std::thread::scope(|s| {
            for t in 0..8usize {
                let server = &server;
                let model = &model;
                s.spawn(move || {
                    let q = blobs(16, t * 13 + 1);
                    let want = model.predict(&q).unwrap();
                    let resp = server.predict("svc", &q).unwrap();
                    assert_eq!(resp.labels, want, "client {t}");
                });
            }
        });
        let stats = server.stats();
        assert_eq!(stats.predict_requests, 8);
        assert_eq!(stats.predict_rows, 128);
        assert!(
            stats.dispatch_groups < 8,
            "some coalescing must happen: {stats:?}"
        );
        assert!(stats.coalesced_requests > 0);
    }

    #[test]
    fn window_expiry_reports_nonzero_bounded_queue_delay() {
        let (session, registry) = serving_pair();
        let max_delay_us = 3_000u64;
        let server = Server::new(
            session,
            registry,
            ServerConfig {
                max_batch_rows: 4096, // never filled by one small request
                max_delay_us,
                validate_batched: false,
            },
        );
        // A lone queued request can only be released by window expiry, so
        // its dispatch wait is at least the window (minus timer coarseness)
        // and — absent pathological scheduling — well under a second.
        let resp = server.predict("svc", &blobs(8, 3)).unwrap();
        assert_eq!(resp.coalesced_with, 1);
        let stats = server.stats();
        assert_eq!(stats.queued_requests, 1);
        assert!(
            stats.queue_delay_us_total > 0,
            "a window-expired request must report a nonzero queue delay: {stats:?}"
        );
        assert_eq!(stats.queue_delay_us_total, stats.queue_delay_us_max);
        assert!(
            stats.queue_delay_us_max < 1_000_000,
            "queue delay must stay near the window bound: {stats:?}"
        );
        let text = server.metrics_text();
        assert!(text.contains("# TYPE ftk_serve_queue_delay_us histogram"));
        assert!(text.contains("ftk_serve_queue_delay_us_count 1"));
    }

    #[test]
    fn shutdown_rejects_new_requests_and_drains_old_ones() {
        let (session, registry) = serving_pair();
        let server = Server::new(session, registry, ServerConfig::default());
        let resp = server.predict("svc", &blobs(8, 2)).unwrap();
        assert_eq!(resp.labels.len(), 8);
        drop(server); // joins the dispatcher; must not hang
    }

    #[test]
    fn fit_refit_and_partial_fit_admit_through_the_server() {
        let session = Session::a100();
        let server: Server<f64> =
            Server::new(session, ModelRegistry::new(), ServerConfig::default());
        let data = blobs(120, 0);
        server
            .fit(
                "svc",
                KMeansConfig::new(3).with_seed(1),
                PredictPolicy::Fp16,
                &data,
            )
            .unwrap();
        assert!(server.counters().kernel_launches > 0, "fit work is metered");
        let before = server.counters();
        let first = server.registry().get("svc").unwrap();
        assert_eq!(first.predict_policy(), PredictPolicy::Fp16);

        let refit = server.refit("svc", &blobs(120, 3)).unwrap();
        assert!(!Arc::ptr_eq(&first, &refit), "refit hot-swaps the model");
        assert_eq!(refit.predict_policy(), PredictPolicy::Fp16, "policy sticks");
        assert!(server.counters().since(&before).kernel_launches > 0);

        let streamed = server.partial_fit("svc", &blobs(64, 4)).unwrap();
        assert_eq!(streamed.batches_seen(), 1);
        assert_eq!(streamed.predict_policy(), PredictPolicy::Fp16);
        let stats = server.stats();
        assert_eq!((stats.fits, stats.refits), (1, 2));
        assert_eq!(
            server.refit("ghost", &data).unwrap_err(),
            ServeError::UnknownModel("ghost".into())
        );
    }
}
