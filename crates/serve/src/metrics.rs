//! Prometheus-style serving metrics.
//!
//! One [`trace::metrics::Registry`] per [`crate::Server`], holding:
//!
//! * per-tenant request / row / quantized-fallback counters
//!   (`ftk_serve_requests_total{model="..."}`, ...),
//! * a per-tenant end-to-end predict latency histogram over
//!   [`trace::metrics::LATENCY_BUCKETS_US`] — p50/p99 come from the
//!   bucket counts ([`trace::metrics::HistogramSnapshot::quantile`]),
//!   never from retained samples,
//! * a queue-delay histogram (enqueue → dispatch) for requests that
//!   waited in the micro-batching window, and
//! * batch-occupancy gauges: rows and member-requests of the most recent
//!   dispatch group plus high-water marks.
//!
//! Wall-clock readings live only here — the byte-stable trace *event*
//! stream never carries them (see the `trace` crate docs), so a scrape
//! endpoint and a deterministic trace can coexist on one server.

use std::sync::Arc;
use trace::metrics::{Gauge, Histogram, Registry, LATENCY_BUCKETS_US};

/// The server's metric instruments. Global (label-free) instruments are
/// created eagerly so `render()` output has a stable family order from
/// the first scrape; per-tenant entries appear on first traffic.
pub(crate) struct ServeMetrics {
    registry: Registry,
    queue_delay: Arc<Histogram>,
    batch_rows: Arc<Gauge>,
    batch_rows_peak: Arc<Gauge>,
    batch_requests_peak: Arc<Gauge>,
}

impl ServeMetrics {
    pub(crate) fn new() -> Self {
        let registry = Registry::new();
        let queue_delay = registry.histogram(
            "ftk_serve_queue_delay_us",
            "Enqueue-to-dispatch wait of queued predict requests, microseconds",
            LATENCY_BUCKETS_US,
            &[],
        );
        let batch_rows = registry.gauge(
            "ftk_serve_batch_rows",
            "Query rows in the most recently dispatched batch group",
            &[],
        );
        let batch_rows_peak = registry.gauge(
            "ftk_serve_batch_rows_peak",
            "Largest dispatch-group row count observed",
            &[],
        );
        let batch_requests_peak = registry.gauge(
            "ftk_serve_batch_requests_peak",
            "Largest number of requests coalesced into one dispatch group",
            &[],
        );
        ServeMetrics {
            registry,
            queue_delay,
            batch_rows,
            batch_rows_peak,
            batch_requests_peak,
        }
    }

    /// Book one served predict request for `model`: traffic counters plus
    /// the end-to-end latency observation.
    pub(crate) fn request(&self, model: &str, rows: u64, latency_us: u64) {
        let labels = &[("model", model)];
        self.registry
            .counter(
                "ftk_serve_requests_total",
                "Predict requests served, by model",
                labels,
            )
            .inc();
        self.registry
            .counter(
                "ftk_serve_rows_total",
                "Query rows served across predict requests, by model",
                labels,
            )
            .add(rows);
        self.registry
            .histogram(
                "ftk_serve_predict_latency_us",
                "End-to-end predict latency (request entry to response), microseconds",
                LATENCY_BUCKETS_US,
                labels,
            )
            .observe(latency_us);
    }

    /// Book quantized-path exact-row fallbacks charged to `model`'s
    /// serving launches.
    pub(crate) fn fallbacks(&self, model: &str, n: u64) {
        if n == 0 {
            return;
        }
        self.registry
            .counter(
                "ftk_serve_quant_fallbacks_total",
                "Quantized predict rows that fell back to exact fp distances, by model",
                &[("model", model)],
            )
            .add(n);
    }

    /// Book one queued request's enqueue-to-dispatch wait.
    pub(crate) fn queue_delay(&self, delay_us: u64) {
        self.queue_delay.observe(delay_us);
    }

    /// Book one dispatched batch group's occupancy.
    pub(crate) fn group(&self, requests: usize, rows: usize) {
        self.batch_rows.set(rows as u64);
        self.batch_rows_peak.set_max(rows as u64);
        self.batch_requests_peak.set_max(requests as u64);
    }

    /// Prometheus text-format rendering of every instrument.
    pub(crate) fn render(&self) -> String {
        self.registry.render()
    }
}
