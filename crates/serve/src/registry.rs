//! Named catalog of fitted models.

use gpu_sim::Scalar;
use kmeans::FittedModel;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A concurrently readable registry of named [`FittedModel`]s — the
/// multi-tenant half of the serving layer.
///
/// Registration wraps the model in an [`Arc`]; lookups hand that `Arc`
/// out, so a request holds its model alive even while a refit hot-swaps
/// the name to a fresh one (the swap is atomic: in-flight requests finish
/// against the model they resolved, new requests see the replacement).
/// Model clones and registrations are cheap — the device-resident centroid
/// buffers and cached quantized tables are Arc-aliased device-pointer
/// copies, never re-uploaded. Each model carries its own
/// [`kmeans::PredictPolicy`], so tenants with different latency budgets
/// serve from different resident precisions side by side.
///
/// ```
/// use gpu_sim::Matrix;
/// use kmeans::{KMeansConfig, PredictPolicy, Session};
/// use serve::ModelRegistry;
///
/// let session = Session::a100();
/// let data = Matrix::<f64>::from_fn(60, 4, |r, c| (r % 3) as f64 * 9.0 + c as f64 * 0.1);
/// let registry = ModelRegistry::new();
/// registry.register(
///     "tenant-a",
///     session
///         .kmeans(KMeansConfig::new(3).with_seed(1))
///         .fit_model(&data)
///         .unwrap()
///         .with_predict_policy(PredictPolicy::Int8),
/// );
/// let model = registry.get("tenant-a").expect("registered");
/// assert_eq!(model.predict(&data).unwrap().len(), 60);
/// assert_eq!(registry.names(), ["tenant-a"]);
/// ```
pub struct ModelRegistry<T: Scalar> {
    models: RwLock<HashMap<String, Arc<FittedModel<T>>>>,
}

impl<T: Scalar> ModelRegistry<T> {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            models: RwLock::new(HashMap::new()),
        }
    }

    /// Register `model` under `name`, replacing any previous holder of the
    /// name (in-flight requests keep serving from the displaced model
    /// until their `Arc`s drop). Returns the shared handle.
    pub fn register(&self, name: impl Into<String>, model: FittedModel<T>) -> Arc<FittedModel<T>> {
        let model = Arc::new(model);
        self.install(name, Arc::clone(&model));
        model
    }

    /// Install an already-shared model under `name` — e.g. aliasing one
    /// model under a second tenant name without cloning any state. Returns
    /// the displaced model, if the name was taken.
    pub fn install(
        &self,
        name: impl Into<String>,
        model: Arc<FittedModel<T>>,
    ) -> Option<Arc<FittedModel<T>>> {
        self.models.write().insert(name.into(), model)
    }

    /// The model currently serving `name`.
    pub fn get(&self, name: &str) -> Option<Arc<FittedModel<T>>> {
        self.models.read().get(name).cloned()
    }

    /// Unregister `name`, returning the evicted model (in-flight requests
    /// holding its `Arc` still complete).
    pub fn remove(&self, name: &str) -> Option<Arc<FittedModel<T>>> {
        self.models.write().remove(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

impl<T: Scalar> Default for ModelRegistry<T> {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

impl<T: Scalar> std::fmt::Debug for ModelRegistry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Matrix;
    use kmeans::{KMeansConfig, PredictPolicy, Session};

    fn blobs(m: usize) -> Matrix<f64> {
        Matrix::from_fn(m, 4, |r, c| (r % 3) as f64 * 10.0 + c as f64 * 0.1)
    }

    fn model(seed: u64) -> FittedModel<f64> {
        Session::a100()
            .kmeans(KMeansConfig::new(3).with_seed(seed))
            .fit_model(&blobs(90))
            .expect("fit")
    }

    #[test]
    fn register_get_remove_round_trip() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.get("a").is_none());
        let a = reg.register("a", model(1));
        reg.register("b", model(2).with_predict_policy(PredictPolicy::Fp16));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), ["a", "b"]);
        assert!(Arc::ptr_eq(&reg.get("a").unwrap(), &a));
        assert_eq!(
            reg.get("b").unwrap().predict_policy(),
            PredictPolicy::Fp16,
            "per-model policy survives registration"
        );
        let evicted = reg.remove("a").unwrap();
        assert!(Arc::ptr_eq(&evicted, &a));
        assert!(reg.get("a").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn hot_swap_keeps_in_flight_handles_alive() {
        let reg = ModelRegistry::new();
        let old = reg.register("svc", model(1));
        // a "request" resolved the model before the swap
        let in_flight = reg.get("svc").unwrap();
        let displaced = reg.install("svc", Arc::new(model(2))).unwrap();
        assert!(Arc::ptr_eq(&displaced, &old));
        // the in-flight handle still predicts against the old model
        assert_eq!(in_flight.predict(&blobs(30)).unwrap().len(), 30);
        assert!(!Arc::ptr_eq(&reg.get("svc").unwrap(), &old));
    }

    #[test]
    fn aliased_names_share_one_model() {
        let reg = ModelRegistry::new();
        let m = reg.register("primary", model(3));
        assert!(reg.install("alias", Arc::clone(&m)).is_none());
        assert!(Arc::ptr_eq(
            &reg.get("primary").unwrap(),
            &reg.get("alias").unwrap()
        ));
    }
}
