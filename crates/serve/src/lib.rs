//! Multi-tenant serving layer for fitted K-means models.
//!
//! The estimator lifecycle (`Session` → `KMeans` → `FittedModel`) produces
//! models whose device state is Arc-aliased and whose predict path is
//! re-entrant; this crate puts a service on top of them:
//!
//! * [`ModelRegistry`] — a named, concurrently readable catalog of
//!   [`kmeans::FittedModel`]s. Registration, lookup, and hot-swap are
//!   device-pointer-copy cheap; each model keeps its own
//!   [`kmeans::PredictPolicy`].
//! * [`Server`] — a request front-end whose dispatcher **micro-batches
//!   concurrent `predict` calls into single kernel launches**: requests
//!   for the same model arriving within a batching window
//!   ([`ServerConfig::max_batch_rows`] × [`ServerConfig::max_delay_us`])
//!   are coalesced into one query upload + one assignment launch, and the
//!   label vector is scattered back to the callers. Because every predict
//!   path is label-exact per sample, the coalesced response is bit-identical
//!   to the unbatched one ([`ServerConfig::validate_batched`] asserts it).
//! * Admission of concurrent **fits** over the same shared executor:
//!   [`Server::fit`], [`Server::refit`] (warm-started via `fit_from`) and
//!   [`Server::partial_fit`] (streaming continuation of a registered
//!   model). Each fit charges its own scoped counters — no cross-talk
//!   between concurrent requests — and the finished totals are folded into
//!   the server-wide aggregate ([`Server::counters`]).
//!
//! See `examples/serving_mixed_traffic.rs` for a two-tenant mixed-traffic
//! walk-through and `bench_harness::servebench` for the gated
//! latency/throughput bench.

mod error;
mod metrics;
mod registry;
mod server;

pub use error::ServeError;
pub use registry::ModelRegistry;
pub use server::{PredictResponse, Server, ServerConfig, ServerStats};
