//! Serving-layer error type.

use kmeans::KMeansError;

/// Why a serving request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No model is registered under the requested name.
    UnknownModel(String),
    /// The server has shut down; the request was not served.
    Shutdown,
    /// A coalesced response failed the bit-identity check against the
    /// unbatched path (only produced with
    /// [`crate::ServerConfig::validate_batched`] on — it indicates a
    /// serving-layer bug, never expected in production).
    BatchMismatch {
        /// Name the offending request was addressed to.
        model: String,
    },
    /// The underlying estimator rejected the request (shape mismatch,
    /// invalid configuration, device error, ...).
    KMeans(KMeansError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(name) => {
                write!(f, "no model registered under {name:?}")
            }
            ServeError::Shutdown => write!(f, "server has shut down"),
            ServeError::BatchMismatch { model } => write!(
                f,
                "coalesced response for model {model:?} diverged from the unbatched path"
            ),
            ServeError::KMeans(e) => write!(f, "estimator error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::KMeans(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KMeansError> for ServeError {
    fn from(e: KMeansError) -> Self {
        ServeError::KMeans(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure() {
        let e = ServeError::UnknownModel("tenant-a".into());
        assert!(e.to_string().contains("tenant-a"));
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        let e = ServeError::BatchMismatch { model: "m".into() };
        assert!(e.to_string().contains("unbatched"));
    }

    #[test]
    fn kmeans_errors_convert_and_chain() {
        let inner = KMeansError::InvalidConfig {
            field: "k",
            reason: "must be at least 1".into(),
        };
        let e: ServeError = inner.clone().into();
        assert_eq!(e, ServeError::KMeans(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
