//! Automated bench-regression gate: compare a fresh (possibly reduced-size)
//! `fit_throughput` run against the committed baseline CSV with tolerance
//! bands.
//!
//! Comparison is on *rate* (samples x iterations per second), which is
//! approximately size-independent, so a quick reduced-`m` run can be checked
//! against the committed full-size baseline. Machines differ and small runs
//! amortize fixed overhead worse, hence bands rather than equality: the
//! check fails only when a variant's throughput regresses by more than the
//! tolerance factor (default 2.5x).

use crate::fitbench::FitMeasurement;

/// Default regression tolerance: fail when fresh throughput is more than
/// this factor below baseline.
pub const DEFAULT_TOLERANCE: f64 = 2.5;

/// One `fit` row parsed from the baseline CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Variant name.
    pub name: String,
    /// Sample count of the baseline run.
    pub m: usize,
    /// Median seconds per fit in the baseline run.
    pub median_s: f64,
    /// Baseline throughput (samples x iterations per second).
    pub rate: f64,
}

/// Outcome of checking one variant against its baseline row.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Variant name.
    pub name: String,
    /// Fresh throughput.
    pub fresh_rate: f64,
    /// Baseline throughput.
    pub baseline_rate: f64,
    /// `baseline_rate / fresh_rate` — > 1 means slower than baseline.
    pub regression_factor: f64,
    /// True when the regression factor is within the tolerance band.
    pub pass: bool,
}

/// Parse the committed `fit_throughput.csv`, keeping the `fit` rows.
/// Returns an error string naming the first malformed line.
pub fn parse_baseline(csv: &str) -> Result<Vec<BaselineRow>, String> {
    parse_baseline_kind(csv, "fit")
}

/// Parse a baseline CSV in the shared 8-field schema, keeping rows of the
/// given `kind` (first field: `fit`, `predict`, ...). Returns an error
/// string naming the first malformed line.
pub fn parse_baseline_kind(csv: &str, kind: &str) -> Result<Vec<BaselineRow>, String> {
    let mut rows = Vec::new();
    for (idx, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("bench,") {
            continue; // header
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(format!("line {}: expected 8 fields, got {line:?}", idx + 1));
        }
        if fields[0] != kind {
            continue; // e.g. launch_overhead rows
        }
        let parse_num = |s: &str, what: &str| {
            s.parse::<f64>()
                .map_err(|_| format!("line {}: bad {what} {s:?}", idx + 1))
        };
        rows.push(BaselineRow {
            name: fields[1].to_string(),
            m: parse_num(fields[2], "m")? as usize,
            median_s: parse_num(fields[6], "median_s")?,
            rate: parse_num(fields[7], "rate")?,
        });
    }
    if rows.is_empty() {
        return Err(format!("no {kind} rows found in baseline CSV"));
    }
    Ok(rows)
}

/// Check fresh measurements against baseline rows with tolerance factor
/// `tolerance`. The gate fails closed in both directions: a fresh variant
/// missing from the baseline fails, and a baseline variant missing from the
/// fresh run fails too (a silently unchecked variant is itself a regression
/// of the gate).
pub fn check(
    fresh: &[FitMeasurement],
    baseline: &[BaselineRow],
    tolerance: f64,
) -> Vec<CheckOutcome> {
    let mut outcomes: Vec<CheckOutcome> = fresh
        .iter()
        .map(|f| match baseline.iter().find(|b| b.name == f.name) {
            Some(b) if b.rate > 0.0 && f.rate > 0.0 => {
                let factor = b.rate / f.rate;
                CheckOutcome {
                    name: f.name.clone(),
                    fresh_rate: f.rate,
                    baseline_rate: b.rate,
                    regression_factor: factor,
                    pass: factor <= tolerance,
                }
            }
            _ => CheckOutcome {
                name: f.name.clone(),
                fresh_rate: f.rate,
                baseline_rate: 0.0,
                regression_factor: f64::INFINITY,
                pass: false,
            },
        })
        .collect();
    for b in baseline {
        if !fresh.iter().any(|f| f.name == b.name) {
            outcomes.push(CheckOutcome {
                name: b.name.clone(),
                fresh_rate: 0.0,
                baseline_rate: b.rate,
                regression_factor: f64::INFINITY,
                pass: false,
            });
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(name: &str, rate: f64) -> FitMeasurement {
        FitMeasurement {
            name: name.into(),
            m: 1024,
            median_s: 1.0,
            rate,
            inertia: 0.0,
        }
    }

    const CSV: &str = "bench,name,m,d,k,iters,median_s,rate\n\
        launch_overhead,noop64,64,0,0,1,0.000001315,0\n\
        fit,naive,131072,64,16,3,0.721496,545001.1\n\
        fit,fused_v2,131072,64,16,3,1.431587,274671.4\n";

    #[test]
    fn parses_fit_rows_and_skips_others() {
        let rows = parse_baseline(CSV).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "naive");
        assert_eq!(rows[0].m, 131072);
        assert!((rows[0].rate - 545001.1).abs() < 1e-6);
    }

    #[test]
    fn kind_parameter_selects_predict_rows() {
        let csv = "bench,name,m,d,k,iters,median_s,rate\n\
            fit,naive,131072,64,16,3,0.721496,545001.1\n\
            predict,exact,131072,64,16,1,0.50,262144.0\n\
            predict,int8,131072,64,16,1,0.125,1048576.0\n";
        let rows = parse_baseline_kind(csv, "predict").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "exact");
        assert_eq!(rows[1].name, "int8");
        assert!((rows[1].rate - 1048576.0).abs() < 1e-6);
        // a kind with no rows fails closed
        assert!(parse_baseline_kind(csv, "nope").is_err());
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(parse_baseline("fit,naive,xx\n").is_err());
        assert!(parse_baseline("").is_err());
        assert!(parse_baseline("fit,naive,1,2,3,4,notafloat,9\n").is_err());
    }

    #[test]
    fn within_band_passes_beyond_band_fails() {
        let baseline = parse_baseline(CSV).unwrap();
        // naive baseline rate 545001: 2x slower passes at tol 2.5 ...
        let out = check(&[meas("naive", 545001.1 / 2.0)], &baseline, 2.5);
        assert!(out[0].pass, "{out:?}");
        assert!((out[0].regression_factor - 2.0).abs() < 1e-9);
        // ... 3x slower fails
        let out = check(&[meas("naive", 545001.1 / 3.0)], &baseline, 2.5);
        assert!(!out[0].pass);
        // faster than baseline is of course fine
        let out = check(&[meas("naive", 545001.1 * 4.0)], &baseline, 2.5);
        assert!(out[0].pass);
    }

    #[test]
    fn missing_baseline_variant_fails_closed() {
        let baseline = parse_baseline(CSV).unwrap();
        let out = check(&[meas("tensor_v4", 1e6)], &baseline, 2.5);
        assert!(!out[0].pass);
        assert!(out[0].regression_factor.is_infinite());
    }

    #[test]
    fn baseline_variant_absent_from_fresh_run_fails_closed() {
        // A variant dropped (or renamed) in the fresh run must not pass
        // silently: the gate emits a failing outcome for the orphaned
        // baseline row.
        let baseline = parse_baseline(CSV).unwrap();
        let out = check(&[meas("naive", 1e6)], &baseline, 2.5);
        assert_eq!(out.len(), 2);
        assert!(out[0].pass, "naive itself is fine");
        let orphan = &out[1];
        assert_eq!(orphan.name, "fused_v2");
        assert!(!orphan.pass);
        assert!(orphan.regression_factor.is_infinite());
    }
}
