//! Figs. 15/16 — FT K-means with fault tolerance enabled (no injection):
//! cuML vs FT K-means vs FT K-means w/ FT over the four panel sweeps
//! (K=8, K=128 sweeping N; N=8, N=128 sweeping K).

use crate::figures::{best_tuned_gflops, feasible_params, gflops_for_params, M};
use crate::paper::ft_overhead as paper;
use crate::report::{fmt_gflops, FigureReport};
use codegen::KernelParams;
use gpu_sim::timing::FtMode;
use gpu_sim::{DeviceProfile, Precision};

/// The four panels of the figure.
fn panels() -> [(&'static str, bool, usize); 4] {
    // (label, sweep_is_features, fixed value)
    [
        ("K=8", true, 8),
        ("K=128", true, 128),
        ("N=8", false, 8),
        ("N=128", false, 128),
    ]
}

fn xs(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 64, 128]
    } else {
        (1..=16).map(|i| i * 8).collect()
    }
}

/// Shared engine for Figs. 15/16 (and the FT part of Fig. 21).
pub fn run_overhead(
    id: &str,
    device: &DeviceProfile,
    precision: Precision,
    quick: bool,
) -> FigureReport {
    let mut rep = FigureReport::new(
        id,
        format!(
            "FT K-means with fault tolerance, {} {}",
            device.name,
            precision.name()
        ),
        &[
            "panel",
            "x",
            "cuML",
            "FT K-Means",
            "FT K-Means w/ FT",
            "FT overhead",
        ],
    );
    let feasible = feasible_params(device, precision);
    let cuml = KernelParams::cuml(precision);
    let mut overhead_sum = 0.0;
    let mut count = 0usize;
    for (label, sweep_features, fixed) in panels() {
        for x in xs(quick) {
            let (clusters, dim) = if sweep_features {
                (fixed, x)
            } else {
                (x, fixed)
            };
            let cu = gflops_for_params(
                device,
                precision,
                &cuml,
                M,
                clusters,
                dim,
                FtMode::None,
                0.0,
            );
            let (plain, _) = best_tuned_gflops(
                device,
                precision,
                &feasible,
                M,
                clusters,
                dim,
                FtMode::None,
                0.0,
            );
            let (ft, _) = best_tuned_gflops(
                device,
                precision,
                &feasible,
                M,
                clusters,
                dim,
                FtMode::FtKMeans,
                0.0,
            );
            let overhead = plain / ft - 1.0;
            overhead_sum += overhead;
            count += 1;
            rep.push_row(vec![
                label.to_string(),
                x.to_string(),
                fmt_gflops(cu),
                fmt_gflops(plain),
                fmt_gflops(ft),
                format!("{:.2}%", overhead * 100.0),
            ]);
        }
    }
    rep.note(format!(
        "mean FT overhead over all panels: {:.2}%",
        overhead_sum / count as f64 * 100.0
    ));
    rep
}

/// Fig. 15 — A100 FP32.
pub fn fig15(quick: bool) -> FigureReport {
    let mut rep = run_overhead("fig15", &DeviceProfile::a100(), Precision::Fp32, quick);
    rep.note(format!(
        "paper: K=8 {:.2}% / K=128 {:.2}% / N-fixed {:.2}% — FP32 checksum MMAs hide in the bubble",
        paper::FP32_K8_PCT,
        paper::FP32_K128_PCT,
        paper::FP32_NFIXED_PCT
    ));
    rep
}

/// Fig. 16 — A100 FP64.
pub fn fig16(quick: bool) -> FigureReport {
    let mut rep = run_overhead("fig16", &DeviceProfile::a100(), Precision::Fp64, quick);
    rep.note(format!(
        "paper: avg {:.1}% (K=8 {:.1}%, K=128 {:.1}%, N-fixed {:.2}%) — FP64 tensor pipe is the binding leg",
        paper::FP64_AVG_PCT,
        paper::FP64_K8_PCT,
        paper::FP64_K128_PCT,
        paper::FP64_NFIXED_PCT
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_overhead(rep: &FigureReport) -> f64 {
        let v: Vec<f64> = rep
            .rows
            .iter()
            .map(|r| r[5].trim_end_matches('%').parse::<f64>().unwrap())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn fp32_overhead_is_negligible() {
        let rep = fig15(true);
        let mean = mean_overhead(&rep);
        assert!(mean < 5.0, "FP32 FT overhead {mean:.2}% should be tiny");
    }

    #[test]
    fn fp64_overhead_visible_but_bounded() {
        let rep = fig16(true);
        let mean = mean_overhead(&rep);
        assert!((0.5..=25.0).contains(&mean), "FP64 FT overhead {mean:.2}%");
        // the compute-bound K=128 panel must pay more than the N=8 panel
        let k128: Vec<f64> = rep
            .rows
            .iter()
            .filter(|r| r[0] == "K=128")
            .map(|r| r[5].trim_end_matches('%').parse().unwrap())
            .collect();
        let n8: Vec<f64> = rep
            .rows
            .iter()
            .filter(|r| r[0] == "N=8")
            .map(|r| r[5].trim_end_matches('%').parse().unwrap())
            .collect();
        let k128m = k128.iter().sum::<f64>() / k128.len() as f64;
        let n8m = n8.iter().sum::<f64>() / n8.len() as f64;
        assert!(
            k128m > n8m,
            "compute-bound panel {k128m:.2}% vs memory-bound {n8m:.2}%"
        );
    }
}
