//! Figs. 8–11 (A100) and 19–20 (T4): distance-step performance sweeps of
//! cuML, Parameter1, Parameter2 and FT K-means (tuned), without fault
//! tolerance.
//!
//! Figs. 8/9/19 fix M and K (clusters) and sweep N (features); Figs.
//! 10/11/20 fix M and N and sweep K.

use crate::figures::{best_tuned_gflops, feasible_params, gflops_for_params, M};
use crate::report::{fmt_gflops, FigureReport};
use codegen::KernelParams;
use gpu_sim::timing::FtMode;
use gpu_sim::{DeviceProfile, Precision};
use kmeans::baselines::{parameter1, parameter2};

/// Which axis a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Sweep the feature dimension N with clusters fixed.
    Features { clusters: usize },
    /// Sweep the cluster count K with features fixed.
    Clusters { dim: usize },
}

/// The x values of a sweep (paper plots 0..128 in steps of 8).
pub fn x_values(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 64, 128]
    } else {
        (1..=16).map(|i| i * 8).collect()
    }
}

/// Run one two-panel sweep figure.
pub fn run_sweep(
    id: &str,
    device: &DeviceProfile,
    precision: Precision,
    panels: [Axis; 2],
    quick: bool,
) -> FigureReport {
    let mut rep = FigureReport::new(
        id,
        format!(
            "distance-step perf, {} {}, M={M}: cuML vs Parameter1/2 vs FT K-Means",
            device.name,
            precision.name()
        ),
        &[
            "panel",
            "x",
            "cuML",
            "Parameter1",
            "Parameter2",
            "FT K-Means",
            "FT/cuML",
        ],
    );
    let feasible = feasible_params(device, precision);
    let cuml = KernelParams::cuml(precision);
    let p1 = parameter1(precision);
    let p2 = parameter2(precision);
    let mut ft_total = 0.0;
    let mut cu_total = 0.0;
    for axis in panels {
        let label = match axis {
            Axis::Features { clusters } => format!("K={clusters}"),
            Axis::Clusters { dim } => format!("N={dim}"),
        };
        for x in x_values(quick) {
            let (clusters, dim) = match axis {
                Axis::Features { clusters } => (clusters, x),
                Axis::Clusters { dim } => (x, dim),
            };
            let cu = gflops_for_params(
                device,
                precision,
                &cuml,
                M,
                clusters,
                dim,
                FtMode::None,
                0.0,
            );
            let g1 = {
                let t = p1;
                let params = KernelParams::new(
                    codegen::Tile3::new(t.tb_m, t.tb_n, t.tb_k),
                    codegen::Tile3::new(t.wm, t.wn, t.tb_k),
                    KernelParams::thread_tile(precision),
                );
                gflops_for_params(
                    device,
                    precision,
                    &params,
                    M,
                    clusters,
                    dim,
                    FtMode::None,
                    0.0,
                )
            };
            let g2 = {
                let t = p2;
                let params = KernelParams::new(
                    codegen::Tile3::new(t.tb_m, t.tb_n, t.tb_k),
                    codegen::Tile3::new(t.wm, t.wn, t.tb_k),
                    KernelParams::thread_tile(precision),
                );
                gflops_for_params(
                    device,
                    precision,
                    &params,
                    M,
                    clusters,
                    dim,
                    FtMode::None,
                    0.0,
                )
            };
            let (ft, _) = best_tuned_gflops(
                device,
                precision,
                &feasible,
                M,
                clusters,
                dim,
                FtMode::None,
                0.0,
            );
            ft_total += ft;
            cu_total += cu;
            rep.push_row(vec![
                label.clone(),
                x.to_string(),
                fmt_gflops(cu),
                fmt_gflops(g1),
                fmt_gflops(g2),
                fmt_gflops(ft),
                format!("{:.2}", ft / cu),
            ]);
        }
    }
    rep.note(format!(
        "aggregate FT K-Means / cuML speedup over the sweep: {:.2}x",
        ft_total / cu_total
    ));
    rep
}

/// Fig. 8 — A100 FP32, M and K fixed, N swept.
pub fn fig08(quick: bool) -> FigureReport {
    run_sweep(
        "fig08",
        &DeviceProfile::a100(),
        Precision::Fp32,
        [
            Axis::Features { clusters: 8 },
            Axis::Features { clusters: 128 },
        ],
        quick,
    )
}

/// Fig. 9 — A100 FP64, M and K fixed, N swept.
pub fn fig09(quick: bool) -> FigureReport {
    run_sweep(
        "fig09",
        &DeviceProfile::a100(),
        Precision::Fp64,
        [
            Axis::Features { clusters: 8 },
            Axis::Features { clusters: 128 },
        ],
        quick,
    )
}

/// Fig. 10 — A100 FP32, M and N fixed, K swept.
pub fn fig10(quick: bool) -> FigureReport {
    run_sweep(
        "fig10",
        &DeviceProfile::a100(),
        Precision::Fp32,
        [Axis::Clusters { dim: 8 }, Axis::Clusters { dim: 128 }],
        quick,
    )
}

/// Fig. 11 — A100 FP64, M and N fixed, K swept.
pub fn fig11(quick: bool) -> FigureReport {
    run_sweep(
        "fig11",
        &DeviceProfile::a100(),
        Precision::Fp64,
        [Axis::Clusters { dim: 8 }, Axis::Clusters { dim: 128 }],
        quick,
    )
}

/// Fig. 19 — T4 FP32, M and K fixed, N swept.
pub fn fig19(quick: bool) -> FigureReport {
    run_sweep(
        "fig19",
        &DeviceProfile::t4(),
        Precision::Fp32,
        [
            Axis::Features { clusters: 8 },
            Axis::Features { clusters: 128 },
        ],
        quick,
    )
}

/// Fig. 20 — T4 FP32, M and N fixed, K swept.
pub fn fig20(quick: bool) -> FigureReport {
    run_sweep(
        "fig20",
        &DeviceProfile::t4(),
        Precision::Fp32,
        [Axis::Clusters { dim: 8 }, Axis::Clusters { dim: 128 }],
        quick,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rep: &FigureReport, col: usize) -> Vec<f64> {
        rep.rows.iter().map(|r| r[col].parse().unwrap()).collect()
    }

    #[test]
    fn fig08_ft_dominates_cuml_at_small_k() {
        let rep = fig08(true);
        // rows: panel K=8 first 3 rows, then K=128
        let cuml = series(&rep, 2);
        let ft = series(&rep, 5);
        for i in 0..3 {
            assert!(
                ft[i] / cuml[i] > 1.5,
                "K=8 x={} FT {} vs cuML {}",
                rep.rows[i][1],
                ft[i],
                cuml[i]
            );
        }
    }

    #[test]
    fn fig09_fp64_curves_nearly_coincide_beyond_n32() {
        // Paper §V-A4: "When N exceeds 32, the performance of our method
        // drops to almost identical to cuML" (FP64); small N still gains.
        let rep = fig09(true);
        for (i, row) in rep.rows.iter().enumerate() {
            let x: usize = row[1].parse().unwrap();
            if x > 32 {
                let ratio = series(&rep, 5)[i] / series(&rep, 2)[i];
                assert!((0.95..=1.35).contains(&ratio), "FP64 N={x} ratio {ratio}");
            }
        }
    }

    #[test]
    fn parameter1_trails_cuml_on_average() {
        let rep = fig08(true);
        let cuml: f64 = series(&rep, 2).iter().sum();
        let p1: f64 = series(&rep, 3).iter().sum();
        assert!(p1 < cuml * 1.05, "Parameter1 should not beat cuML overall");
    }

    #[test]
    fn t4_speedup_band_matches_paper_shape() {
        // Paper §V-D: ~4x aggregate speedup on T4 FP32.
        let rep = fig19(true);
        let note = rep.notes.first().unwrap();
        let x: f64 = note
            .split_whitespace()
            .find_map(|w| w.strip_suffix('x').and_then(|v| v.parse().ok()))
            .unwrap();
        assert!((1.8..=8.0).contains(&x), "T4 aggregate speedup {x}");
    }
}
