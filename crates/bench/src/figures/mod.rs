//! One module per regenerated experiment, plus shared sweep machinery.

pub mod ablation;
pub mod fig07;
pub mod heatmap;
pub mod injection;
pub mod overhead;
pub mod sweeps;

use crate::report::FigureReport;
use codegen::feasibility::{feasible_set, stages_for};
use codegen::{enumerate_params, KernelParams};
use gpu_sim::timing::{estimate, FtMode, GemmShape, KernelClass, TimingInput};
use gpu_sim::{DeviceProfile, Precision};

/// Sample count used throughout the paper's evaluation.
pub const M: usize = 131_072;

/// Every figure/table id, in paper order — the expansion of `--fig all`.
pub const ALL_IDS: [&str; 17] = [
    "7", "8", "9", "10", "11", "12", "13", "14", "table1", "15", "16", "17", "18", "19", "20",
    "21", "ablation",
];

/// Regenerate the figure(s) named by `id` (a number, `figNN`, `table1`,
/// `ablation` or `all`). `None` for an unknown id — the CLI turns that
/// into a usage error, the drift gate into a failure.
pub fn run_figure(id: &str, quick: bool) -> Option<Vec<FigureReport>> {
    let one = |r: FigureReport| Some(vec![r]);
    match id {
        "7" | "fig07" => one(fig07::run(quick)),
        "8" | "fig08" => one(sweeps::fig08(quick)),
        "9" | "fig09" => one(sweeps::fig09(quick)),
        "10" | "fig10" => one(sweeps::fig10(quick)),
        "11" | "fig11" => one(sweeps::fig11(quick)),
        "12" | "fig12" => one(heatmap::fig12(quick)),
        "13" | "fig13" => one(heatmap::fig13(quick)),
        "14" | "fig14" => one(heatmap::fig14(quick)),
        "table1" => one(heatmap::table1(quick)),
        "15" | "fig15" => one(overhead::fig15(quick)),
        "16" | "fig16" => one(overhead::fig16(quick)),
        "17" | "fig17" => one(injection::fig17(quick)),
        "18" | "fig18" => one(injection::fig18(quick)),
        "19" | "fig19" => one(sweeps::fig19(quick)),
        "20" | "fig20" => one(sweeps::fig20(quick)),
        "21" | "fig21" => one(injection::fig21(quick)),
        "ablation" => one(ablation::run(quick)),
        "all" => Some(
            ALL_IDS
                .iter()
                .flat_map(|i| run_figure(i, quick).expect("ALL_IDS entries are valid"))
                .collect(),
        ),
        _ => None,
    }
}

/// Timing-model throughput of one parameter group at one shape.
#[allow(clippy::too_many_arguments)]
pub fn gflops_for_params(
    device: &DeviceProfile,
    precision: Precision,
    params: &KernelParams,
    m: usize,
    clusters: usize,
    dim: usize,
    ft: FtMode,
    inj_rate_hz: f64,
) -> f64 {
    let tile = params.tile_config(stages_for(device));
    let input = TimingInput {
        ft,
        inj_rate_hz,
        ..TimingInput::plain(
            device,
            precision,
            KernelClass::Tensor(tile),
            GemmShape::new(m, clusters, dim),
        )
    };
    estimate(&input).gflops
}

/// The feasible parameter space for a device/precision (cached per call
/// site — enumeration is cheap but callers sweep many shapes).
pub fn feasible_params(device: &DeviceProfile, precision: Precision) -> Vec<(usize, KernelParams)> {
    let space = enumerate_params(precision);
    feasible_set(device, precision, &space)
}

/// Best tuned throughput at a shape: argmax over the feasible set,
/// evaluated under the requested `ft`/`inj_rate_hz` — the code-generation
/// pipeline tunes the kernel it actually ships, so the FT variant may
/// legitimately select a different tile than the unprotected one (e.g.
/// FP64 prefers warp tiles with 16 MMA fragments so the checksum fraction
/// is 3/16 instead of 3/8).
#[allow(clippy::too_many_arguments)]
pub fn best_tuned_gflops(
    device: &DeviceProfile,
    precision: Precision,
    feasible: &[(usize, KernelParams)],
    m: usize,
    clusters: usize,
    dim: usize,
    ft: FtMode,
    inj_rate_hz: f64,
) -> (f64, usize) {
    let mut best = f64::NEG_INFINITY;
    let mut best_id = feasible[0].0;
    for (id, p) in feasible {
        let g = gflops_for_params(device, precision, p, m, clusters, dim, ft, inj_rate_hz);
        if g > best {
            best = g;
            best_id = *id;
        }
    }
    (best, best_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_tuned_beats_cuml_at_irregular_shape() {
        let dev = DeviceProfile::a100();
        let feasible = feasible_params(&dev, Precision::Fp32);
        let (best, _) = best_tuned_gflops(
            &dev,
            Precision::Fp32,
            &feasible,
            M,
            8,
            64,
            FtMode::None,
            0.0,
        );
        let cuml = gflops_for_params(
            &dev,
            Precision::Fp32,
            &KernelParams::cuml(Precision::Fp32),
            M,
            8,
            64,
            FtMode::None,
            0.0,
        );
        assert!(best / cuml > 1.5, "tuned {best:.0} vs cuML {cuml:.0}");
    }

    #[test]
    fn ft_mode_reduces_throughput_or_holds() {
        let dev = DeviceProfile::a100();
        let feasible = feasible_params(&dev, Precision::Fp64);
        let (plain, _) = best_tuned_gflops(
            &dev,
            Precision::Fp64,
            &feasible,
            M,
            128,
            128,
            FtMode::None,
            0.0,
        );
        let (ft, _) = best_tuned_gflops(
            &dev,
            Precision::Fp64,
            &feasible,
            M,
            128,
            128,
            FtMode::FtKMeans,
            0.0,
        );
        assert!(ft <= plain);
        assert!(ft > plain * 0.6, "FT should cost far less than 40%");
    }
}
