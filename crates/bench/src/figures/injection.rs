//! Figs. 17/18 (A100) and 21 (T4): FT K-means under error injection,
//! against Wu's ABFT under the same injection rate.
//!
//! Two parts per figure:
//!
//! 1. **throughput series** (timing model, paper scale): cuML, FT K-means,
//!    FT K-means w/ FT, FT K-means w/ FT under injection, Wu's w/
//!    injection;
//! 2. **functional campaign** (reduced M): real bit flips injected into the
//!    simulated MMA stream during full K-means fits; the report records
//!    injected/detected/corrected counts and whether the final clustering
//!    matches the fault-free run.

use crate::figures::{best_tuned_gflops, feasible_params, gflops_for_params, M};
use crate::paper::injection as paper;
use crate::report::{fmt_gflops, FigureReport};
use abft::SchemeKind;
use codegen::KernelParams;
use gpu_sim::timing::FtMode;
use gpu_sim::{DeviceProfile, Matrix, Precision, Scalar};
use kmeans::{FtConfig, KMeansConfig, Session, Variant};

/// Injection rate used by the throughput series — "tens of errors injected
/// per second".
pub const INJECTION_RATE_HZ: f64 = 50.0;

fn panels() -> [(&'static str, bool, usize); 4] {
    [
        ("K=8", true, 8),
        ("K=128", true, 128),
        ("N=8", false, 8),
        ("N=128", false, 128),
    ]
}

fn xs(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 64, 128]
    } else {
        (1..=16).map(|i| i * 8).collect()
    }
}

/// Shared engine: throughput series under injection.
pub fn run_injection(
    id: &str,
    device: &DeviceProfile,
    precision: Precision,
    quick: bool,
) -> FigureReport {
    let mut rep = FigureReport::new(
        id,
        format!("error injection, {} {}", device.name, precision.name()),
        &[
            "panel",
            "x",
            "cuML",
            "FT K-Means",
            "FT K-Means w/ FT",
            "FT K-Means w/ err. inj.",
            "Wu's w/ err. inj.",
        ],
    );
    let feasible = feasible_params(device, precision);
    let cuml = KernelParams::cuml(precision);
    let mut inj_overhead = 0.0;
    let mut wu_ratio = 0.0;
    let mut count = 0usize;
    for (label, sweep_features, fixed) in panels() {
        for x in xs(quick) {
            let (clusters, dim) = if sweep_features {
                (fixed, x)
            } else {
                (x, fixed)
            };
            let cu = gflops_for_params(
                device,
                precision,
                &cuml,
                M,
                clusters,
                dim,
                FtMode::None,
                0.0,
            );
            let (plain, _) = best_tuned_gflops(
                device,
                precision,
                &feasible,
                M,
                clusters,
                dim,
                FtMode::None,
                0.0,
            );
            let (ft, _) = best_tuned_gflops(
                device,
                precision,
                &feasible,
                M,
                clusters,
                dim,
                FtMode::FtKMeans,
                0.0,
            );
            let (inj, _) = best_tuned_gflops(
                device,
                precision,
                &feasible,
                M,
                clusters,
                dim,
                FtMode::FtKMeans,
                INJECTION_RATE_HZ,
            );
            let (wu, _) = best_tuned_gflops(
                device,
                precision,
                &feasible,
                M,
                clusters,
                dim,
                FtMode::Wu,
                INJECTION_RATE_HZ,
            );
            inj_overhead += ft / inj - 1.0;
            wu_ratio += inj / wu;
            count += 1;
            rep.push_row(vec![
                label.to_string(),
                x.to_string(),
                fmt_gflops(cu),
                fmt_gflops(plain),
                fmt_gflops(ft),
                fmt_gflops(inj),
                fmt_gflops(wu),
            ]);
        }
    }
    rep.note(format!(
        "mean extra overhead of injection over FT: {:.2}%; FT-under-injection vs Wu-under-injection: {:.2}x",
        inj_overhead / count as f64 * 100.0,
        wu_ratio / count as f64
    ));
    rep
}

/// Outcome of one functional injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    pub injected: u64,
    pub corrected: u64,
    pub rebaselined: u64,
    pub recomputed: u64,
    pub dmr_mismatches: u64,
    /// Bitwise-identical final assignment (FP64 with its tight threshold
    /// achieves this; FP32/TF32 may flip near-tie assignments on
    /// below-threshold mantissa flips — the paper's threshold δ faces the
    /// same physics).
    pub labels_match_clean: bool,
    /// Fraction of samples assigned identically to the clean run.
    pub label_agreement: f64,
    /// Relative difference of the final inertia vs the clean run — the
    /// clustering-quality criterion.
    pub inertia_rel_diff: f64,
}

/// Run a functional campaign: fit twice (clean, injected) at reduced scale
/// and compare.
pub fn functional_campaign<T: Scalar>(
    device: &DeviceProfile,
    m: usize,
    dim: usize,
    k: usize,
    per_block_probability: f64,
    seed: u64,
) -> CampaignOutcome {
    let data: Matrix<T> = synth_data(m, dim, k, seed);
    let base_cfg = KMeansConfig {
        k,
        max_iter: 6,
        tol: 0.0,
        seed,
        variant: Variant::Tensor(None),
        ..Default::default()
    };
    let clean_cfg = KMeansConfig {
        ft: FtConfig {
            scheme: SchemeKind::FtKMeans,
            dmr_update: true,
            ..Default::default()
        },
        ..base_cfg.clone()
    };
    let inj_cfg = KMeansConfig {
        ft: FtConfig {
            scheme: SchemeKind::FtKMeans,
            dmr_update: true,
            injection: fault::InjectionSchedule::PerBlock {
                probability: per_block_probability,
            },
            injection_seed: seed.wrapping_mul(31) + 7,
            ..Default::default()
        },
        ..base_cfg
    };
    // One session serves both fits (the estimator-lifecycle path).
    let session = Session::new(device.clone());
    let clean = session
        .kmeans(clean_cfg)
        .fit_model(&data)
        .expect("clean fit");
    let injected = session
        .kmeans(inj_cfg)
        .fit_model(&data)
        .expect("injected fit");
    let agree = clean
        .labels
        .iter()
        .zip(&injected.labels)
        .filter(|(a, b)| a == b)
        .count() as f64
        / m as f64;
    let denom = clean.inertia.abs().max(1e-12);
    CampaignOutcome {
        injected: injected.injected,
        corrected: injected.ft_stats.corrected,
        rebaselined: injected.ft_stats.rebaselined,
        recomputed: injected.ft_stats.recomputed,
        dmr_mismatches: injected.dmr.mismatches,
        labels_match_clean: injected.labels == clean.labels,
        label_agreement: agree,
        inertia_rel_diff: (injected.inertia - clean.inertia).abs() / denom,
    }
}

fn synth_data<T: Scalar>(m: usize, dim: usize, k: usize, seed: u64) -> Matrix<T> {
    // Deterministic well-separated blobs (no dependency on ftk-data to keep
    // the harness layering flat).
    Matrix::from_fn(m, dim, |r, c| {
        let cluster = (r % k) as f64;
        let jitter =
            (((r * 2654435761 + c * 40503 + seed as usize) % 1000) as f64 / 1000.0 - 0.5) * 0.4;
        T::from_f64(cluster * 8.0 + jitter + c as f64 * 0.01)
    })
}

fn campaign_rows<T: Scalar>(device: &DeviceProfile, rep: &mut FigureReport, quick: bool) {
    let (m, dim, k) = if quick { (1024, 16, 8) } else { (4096, 32, 16) };
    let out = functional_campaign::<T>(device, m, dim, k, 0.35, 17);
    rep.note(format!(
        "functional campaign (M={m}, N={dim}, K={k}): injected {}, corrected {}, rebaselined {}, \
         recomputed {}, DMR mismatches {}; label agreement {:.2}%, inertia drift {:.2e}, \
         bitwise-identical: {}",
        out.injected,
        out.corrected,
        out.rebaselined,
        out.recomputed,
        out.dmr_mismatches,
        out.label_agreement * 100.0,
        out.inertia_rel_diff,
        out.labels_match_clean
    ));
}

/// Fig. 17 — A100 FP32 under injection.
pub fn fig17(quick: bool) -> FigureReport {
    let dev = DeviceProfile::a100();
    let mut rep = run_injection("fig17", &dev, Precision::Fp32, quick);
    campaign_rows::<f32>(&dev, &mut rep, quick);
    rep.note(format!(
        "paper: avg injection overhead {:.2}%, Wu's scheme ≈ +{:.0}% from its non-async baseline",
        paper::FP32_AVG_PCT,
        paper::WU_OVERHEAD_PCT
    ));
    rep
}

/// Fig. 18 — A100 FP64 under injection.
pub fn fig18(quick: bool) -> FigureReport {
    let dev = DeviceProfile::a100();
    let mut rep = run_injection("fig18", &dev, Precision::Fp64, quick);
    campaign_rows::<f64>(&dev, &mut rep, quick);
    rep.note(format!(
        "paper: avg {:.2}% (K=8 {:.2}%, K=128 {:.2}%)",
        paper::FP64_AVG_PCT,
        paper::FP64_K8_PCT,
        paper::FP64_K128_PCT
    ));
    rep
}

/// Fig. 21 — T4 FP32 under injection.
pub fn fig21(quick: bool) -> FigureReport {
    let dev = DeviceProfile::t4();
    let mut rep = run_injection("fig21", &dev, Precision::Fp32, quick);
    campaign_rows::<f32>(&dev, &mut rep, quick);
    rep.note(format!(
        "paper: FT overhead {:.0}% / {:.0}% under injection on T4; ≥{:.0}% better than Wu's \
         (threadblock-sync elimination)",
        crate::paper::t4::FT_OVERHEAD_PCT,
        crate::paper::t4::INJECTION_OVERHEAD_PCT,
        crate::paper::t4::VS_WU_IMPROVEMENT_PCT
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_injection_overhead_small_and_wu_worse() {
        let rep = fig17(true);
        let note = &rep.notes[0];
        assert!(note.contains("vs Wu-under-injection"));
        // FT under injection must beat Wu under injection on average.
        let ratio: f64 = note
            .rsplit(' ')
            .next()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(ratio > 1.1, "FT/Wu ratio {ratio}");
    }

    #[test]
    fn functional_campaign_absorbs_all_faults_fp64() {
        let out = functional_campaign::<f64>(&DeviceProfile::a100(), 512, 16, 4, 0.6, 3);
        assert!(out.injected > 0, "campaign must inject something");
        assert!(
            out.labels_match_clean,
            "FP64 FT must absorb every fault: {out:?}"
        );
        assert!(out.inertia_rel_diff < 1e-9);
    }

    #[test]
    fn functional_campaign_preserves_quality_fp32() {
        // FP32/TF32 detection has a coarse threshold δ; below-threshold
        // mantissa flips may move near-tie assignments but must not damage
        // clustering quality.
        let out = functional_campaign::<f32>(&DeviceProfile::a100(), 1024, 16, 8, 0.5, 11);
        assert!(out.injected > 0);
        assert!(
            out.label_agreement > 0.99,
            "agreement {:.4}",
            out.label_agreement
        );
        assert!(
            out.inertia_rel_diff < 1e-2,
            "inertia drift {:.3e}",
            out.inertia_rel_diff
        );
    }

    #[test]
    fn fig21_runs_on_t4() {
        let rep = fig21(true);
        assert!(rep.title.contains("Tesla-T4"));
        assert!(!rep.rows.is_empty());
    }
}
