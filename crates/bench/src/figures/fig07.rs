//! Fig. 7 — step-wise optimization of the distance kernel.
//!
//! A100, FP32, M = 131072, N (features) = 128, K (clusters) swept. Bars:
//! Naive, V1 (GEMM), V2 (fused reduction), V3 (broadcast), FT K-means
//! (tensor + selection); line: ratio to cuML.

use crate::figures::{best_tuned_gflops, feasible_params, gflops_for_params, M};
use crate::paper::fig7 as paper;
use crate::report::{fmt_gflops, FigureReport};
use codegen::KernelParams;
use gpu_sim::timing::{estimate, FtMode, GemmShape, KernelClass, TimingInput};
use gpu_sim::{DeviceProfile, Precision};

/// K (cluster-count) sweep of the figure.
pub fn k_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![128]
    } else {
        vec![32, 64, 96, 128, 160, 192]
    }
}

/// Regenerate Fig. 7.
pub fn run(quick: bool) -> FigureReport {
    let dev = DeviceProfile::a100();
    let p = Precision::Fp32;
    let dim = 128;
    let mut rep = FigureReport::new(
        "fig07",
        "Step-wise optimizations, A100 FP32, M=131072, N=128",
        &[
            "K",
            "Naive",
            "V1",
            "V2",
            "V3",
            "FT K-Means",
            "cuML",
            "FT/cuML",
        ],
    );
    let feasible = feasible_params(&dev, p);
    let cuml = KernelParams::cuml(p);
    let simt = |class: KernelClass, clusters: usize| {
        estimate(&TimingInput::plain(
            &dev,
            p,
            class,
            GemmShape::new(M, clusters, dim),
        ))
        .gflops
    };
    for k in k_sweep(quick) {
        let naive = simt(KernelClass::Naive, k);
        let v1 = simt(KernelClass::GemmV1, k);
        let v2 = simt(KernelClass::FusedV2, k);
        let v3 = simt(KernelClass::BroadcastV3, k);
        let (ft, _) = best_tuned_gflops(&dev, p, &feasible, M, k, dim, FtMode::None, 0.0);
        let cu = gflops_for_params(&dev, p, &cuml, M, k, dim, FtMode::None, 0.0);
        rep.push_row(vec![
            k.to_string(),
            fmt_gflops(naive),
            fmt_gflops(v1),
            fmt_gflops(v2),
            fmt_gflops(v3),
            fmt_gflops(ft),
            fmt_gflops(cu),
            format!("{:.2}", ft / cu),
        ]);
    }
    rep.note(format!(
        "paper anchors (K=128): naive {} / V1 {} / V2 {} / V3 {} / FT {} / cuML {}",
        paper::NAIVE_GFLOPS,
        paper::V1_GFLOPS,
        paper::V2_GFLOPS,
        paper::V3_GFLOPS,
        paper::FT_KMEANS_GFLOPS,
        paper::CUML_GFLOPS
    ));
    rep.note("shape criterion: each step strictly faster, FT K-Means above cuML (5% -> ~180%)");
    // §III-A2's whole-iteration claim: GEMM + fused update vs the basic
    // implementation (naive assign + one update kernel per centroid).
    let s = GemmShape::new(M, 128, dim);
    let basic = estimate(&TimingInput::plain(&dev, p, KernelClass::Naive, s)).time_s
        + gpu_sim::timing::model::estimate_update_naive(&dev, p, s).time_s;
    let v1 = estimate(&TimingInput::plain(&dev, p, KernelClass::GemmV1, s)).time_s
        + gpu_sim::timing::model::estimate_update(&dev, p, s, false).time_s;
    rep.note(format!(
        "whole-iteration basic vs V1 (paper: 25x): measured {:.1}x",
        basic / v1
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_and_beats_cuml() {
        let rep = run(true);
        assert_eq!(rep.rows.len(), 1);
        let row = &rep.rows[0];
        let vals: Vec<f64> = row[1..7].iter().map(|s| s.parse().unwrap()).collect();
        let (naive, v1, v2, v3, ft, cuml) = (vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]);
        assert!(naive < v1 && v1 < v2 && v2 < v3 && v3 < ft, "{vals:?}");
        assert!(ft > cuml, "FT K-Means must beat cuML at the anchor shape");
        // within a loose band of the paper anchors
        assert!((naive / crate::paper::fig7::NAIVE_GFLOPS - 1.0).abs() < 0.5);
        assert!((ft / crate::paper::fig7::FT_KMEANS_GFLOPS - 1.0).abs() < 0.5);
    }
}
