//! Ablation study: switch individual timing-model terms off and show which
//! term produces which headline result. This validates that the
//! reproduction's conclusions follow from the paper's claimed mechanisms,
//! not from incidental calibration.
//!
//! | claim (paper) | driving term |
//! |---|---|
//! | FP64 ABFT overhead ≈ 13–20% while FP32 ≈ 0 (§IV-B, Figs. 15/16) | finite FP64 tensor-pipe ceiling |
//! | Wu's scheme pays ~30% on Ampere (§V-C) | operand re-reads + no `cp.async` overlap |
//! | cuML loses up to 4.5× at irregular shapes (§V-A) | threadblock tile padding (structural) |
//! | selection gains shrink for FP64 (§V-A6) | vectorization/alignment factor |

use crate::figures::{feasible_params, M};
use crate::report::FigureReport;
use codegen::feasibility::stages_for;
use codegen::KernelParams;
use gpu_sim::timing::{estimate_with, Calibration, FtMode, GemmShape, KernelClass, TimingInput};
use gpu_sim::{DeviceProfile, Precision};

fn gflops_with(
    cal: &Calibration,
    device: &DeviceProfile,
    precision: Precision,
    params: &KernelParams,
    clusters: usize,
    dim: usize,
    ft: FtMode,
) -> f64 {
    let tile = params.tile_config(stages_for(device));
    estimate_with(
        &TimingInput {
            ft,
            ..TimingInput::plain(
                device,
                precision,
                KernelClass::Tensor(tile),
                GemmShape::new(M, clusters, dim),
            )
        },
        cal,
    )
    .gflops
}

/// Run the ablation report.
pub fn run(_quick: bool) -> FigureReport {
    let dev = DeviceProfile::a100();
    let mut rep = FigureReport::new(
        "ablation",
        "timing-model term ablation (A100, M=131072, K=128, N=128)",
        &["experiment", "term state", "metric", "value"],
    );
    let (clusters, dim) = (128usize, 128usize);

    // --- 1. FP64 ABFT overhead is driven by the tensor-pipe ceiling -------
    {
        let p64 = Precision::Fp64;
        let best = best_params(&dev, p64, clusters, dim);
        let base_cal = Calibration::for_device(&dev, p64);
        let plain = gflops_with(&base_cal, &dev, p64, &best, clusters, dim, FtMode::None);
        let ft = gflops_with(&base_cal, &dev, p64, &best, clusters, dim, FtMode::FtKMeans);
        rep.push_row(vec![
            "fp64 ABFT overhead".into(),
            "tensor-pipe ceiling ON".into(),
            "overhead".into(),
            format!("{:.2}%", (plain / ft - 1.0) * 100.0),
        ]);
        let unbounded = Calibration {
            s_tensor_gflops: 1e9,
            ..base_cal
        };
        let plain2 = gflops_with(&unbounded, &dev, p64, &best, clusters, dim, FtMode::None);
        let ft2 = gflops_with(
            &unbounded,
            &dev,
            p64,
            &best,
            clusters,
            dim,
            FtMode::FtKMeans,
        );
        rep.push_row(vec![
            "fp64 ABFT overhead".into(),
            "tensor-pipe ceiling OFF".into(),
            "overhead".into(),
            format!("{:.2}%", (plain2 / ft2 - 1.0) * 100.0),
        ]);
    }

    // --- 2. Wu's Ampere penalty is the re-reads + lost overlap -------------
    {
        let p32 = Precision::Fp32;
        let best = best_params(&dev, p32, clusters, dim);
        let base_cal = Calibration::for_device(&dev, p32);
        let ftk = gflops_with(&base_cal, &dev, p32, &best, clusters, dim, FtMode::FtKMeans);
        let wu = gflops_with(&base_cal, &dev, p32, &best, clusters, dim, FtMode::Wu);
        rep.push_row(vec![
            "Wu vs FT K-Means".into(),
            "re-read + serialization ON".into(),
            "FT/Wu".into(),
            format!("{:.2}x", ftk / wu),
        ]);
        let forgiven = Calibration {
            wu_reread_frac: 0.0,
            no_async_serial_frac: 0.0,
            wu_block_sync_us: 0.0,
            wu_issue_penalty: 1.0,
            ..base_cal
        };
        let wu2 = gflops_with(&forgiven, &dev, p32, &best, clusters, dim, FtMode::Wu);
        rep.push_row(vec![
            "Wu vs FT K-Means".into(),
            "re-read + serialization OFF".into(),
            "FT/Wu".into(),
            format!("{:.2}x", ftk / wu2),
        ]);
    }

    // --- 3. cuML's loss is structural tile padding --------------------------
    {
        let p32 = Precision::Fp32;
        let base_cal = Calibration::for_device(&dev, p32);
        let cuml = KernelParams::cuml(p32);
        // cuML's own tile at an irregular shape (8 clusters)…
        let narrow = best_params(&dev, p32, 8, dim);
        let g_cuml = gflops_with(&base_cal, &dev, p32, &cuml, 8, dim, FtMode::None);
        let g_tuned = gflops_with(&base_cal, &dev, p32, &narrow, 8, dim, FtMode::None);
        rep.push_row(vec![
            "cuML at K=8".into(),
            "fixed tile <32,256,16>".into(),
            "speedup of tuned".into(),
            format!("{:.2}x", g_tuned / g_cuml),
        ]);
        // …vs the same shape where its tile fits (256 clusters).
        let g_cuml_fit = gflops_with(&base_cal, &dev, p32, &cuml, 256, dim, FtMode::None);
        let wide = best_params(&dev, p32, 256, dim);
        let g_tuned_fit = gflops_with(&base_cal, &dev, p32, &wide, 256, dim, FtMode::None);
        rep.push_row(vec![
            "cuML at K=256".into(),
            "fixed tile fits".into(),
            "speedup of tuned".into(),
            format!("{:.2}x", g_tuned_fit / g_cuml_fit),
        ]);
    }

    rep.note("term OFF rows must collapse toward 1.0x / 0% — each claim is carried by its term");
    rep
}

fn best_params(
    dev: &DeviceProfile,
    precision: Precision,
    clusters: usize,
    dim: usize,
) -> KernelParams {
    let feasible = feasible_params(dev, precision);
    let cal = Calibration::for_device(dev, precision);
    feasible
        .iter()
        .map(|(_, p)| *p)
        .max_by(|a, b| {
            gflops_with(&cal, dev, precision, a, clusters, dim, FtMode::None)
                .partial_cmp(&gflops_with(
                    &cal,
                    dev,
                    precision,
                    b,
                    clusters,
                    dim,
                    FtMode::None,
                ))
                .expect("finite")
        })
        .expect("non-empty feasible set")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse().unwrap()
    }

    fn ratio(s: &str) -> f64 {
        s.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn fp64_overhead_vanishes_without_tensor_ceiling() {
        let rep = run(true);
        let on = pct(&rep.rows[0][3]);
        let off = pct(&rep.rows[1][3]);
        assert!(on > 5.0, "with the ceiling the overhead is visible: {on}");
        // residual ≈ detection sweeps, not checksum MMAs
        assert!(off < 2.5, "without the ceiling it collapses: {off}");
    }

    #[test]
    fn wu_penalty_is_its_terms() {
        let rep = run(true);
        let on = ratio(&rep.rows[2][3]);
        let off = ratio(&rep.rows[3][3]);
        assert!(on > 1.15, "Wu visibly slower with terms on: {on}");
        assert!(
            off < on && off < 1.15,
            "forgiving the terms restores Wu: {off}"
        );
    }

    #[test]
    fn cuml_loss_is_padding() {
        let rep = run(true);
        let irregular = ratio(&rep.rows[4][3]);
        let fitting = ratio(&rep.rows[5][3]);
        assert!(irregular > 2.0, "big win at K=8: {irregular}");
        assert!(
            fitting < irregular / 2.0,
            "win collapses when the tile fits: {fitting}"
        );
    }
}
