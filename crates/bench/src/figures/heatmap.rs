//! Figs. 12–14 and Table I: the speedup heatmap over the 64-shape grid,
//! the parameter-selection footprint, the per-shape winning parameter ids,
//! and the winning tile table.

use crate::paper::{fig12 as paper12, fig13 as paper13};
use crate::report::FigureReport;
use codegen::tuner::{tune, SelectionTable, ShapeGrid};
use codegen::{KernelParams, ParamRegistry};
use gpu_sim::{DeviceProfile, Precision};

fn grids(quick: bool) -> ShapeGrid {
    if quick {
        ShapeGrid {
            m: 131_072,
            dims: vec![8, 56, 120],
            clusters: vec![32, 224, 480],
        }
    } else {
        ShapeGrid::paper()
    }
}

fn tuned(precision: Precision, quick: bool) -> (ParamRegistry, SelectionTable) {
    let dev = DeviceProfile::a100();
    let reg = ParamRegistry::new(precision);
    let table = tune(&dev, precision, &reg, &grids(quick));
    (reg, table)
}

/// Fig. 12 — speedup of FT K-means over cuML across the (K, N) grid.
pub fn fig12(quick: bool) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig12",
        "speedup over cuML across the shape grid, A100, M=131072",
        &["precision", "N (features)", "K (clusters)", "speedup"],
    );
    for p in Precision::all() {
        let (_, table) = tuned(p, quick);
        for e in &table.entries {
            rep.push_row(vec![
                p.name().into(),
                e.dim.to_string(),
                e.clusters.to_string(),
                format!("{:.2}", e.speedup()),
            ]);
        }
        rep.note(format!(
            "{}: mean speedup {:.2}x (paper {:.2}x), max {:.2}x (paper {:.2}x)",
            p.name(),
            table.mean_speedup(),
            if p == Precision::Fp32 {
                paper12::FP32_MEAN_SPEEDUP
            } else {
                paper12::FP64_MEAN_SPEEDUP
            },
            table.max_speedup(),
            if p == Precision::Fp32 {
                paper12::FP32_MAX_SPEEDUP
            } else {
                paper12::FP64_MAX_SPEEDUP
            },
        ));
    }
    rep.note(format!(
        "paper trend: FP32 speedup falls below 2x beyond N={} — check the fp32 rows",
        paper12::FP32_N_THRESHOLD
    ));
    rep
}

/// Fig. 13 — selected vs unselected parameters at threadblock/warp level.
pub fn fig13(quick: bool) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig13",
        "parameter-selection footprint (candidates vs winners)",
        &[
            "precision",
            "candidates",
            "feasible(A100)",
            "selected",
            "winner tiles (tb / warp)",
        ],
    );
    for p in Precision::all() {
        let (reg, table) = tuned(p, quick);
        let dev = DeviceProfile::a100();
        let feasible = codegen::feasibility::feasible_set(
            &dev,
            p,
            &reg.iter().map(|(_, k)| *k).collect::<Vec<_>>(),
        );
        let winners = table.distinct_winners();
        let tiles: Vec<String> = winners
            .iter()
            .map(|&id| {
                let k = reg.get(id).expect("winner id");
                format!("{}{}", k.threadblock, k.warp)
            })
            .collect();
        rep.push_row(vec![
            p.name().into(),
            reg.len().to_string(),
            feasible.len().to_string(),
            winners.len().to_string(),
            tiles.join(" "),
        ]);
    }
    rep.note(format!(
        "paper: {} FP32 / {} FP64 candidates defined; only {} / {} groups ever selected",
        paper13::FP32_CANDIDATES,
        paper13::FP64_CANDIDATES,
        paper13::FP32_SELECTED,
        paper13::FP64_SELECTED
    ));
    rep
}

/// Fig. 14 — the winning parameter id at every grid point.
pub fn fig14(quick: bool) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig14",
        "selected parameter id per (N, K) grid point, A100",
        &[
            "precision",
            "N (features)",
            "K (clusters)",
            "param id",
            "tb",
            "warp",
        ],
    );
    for p in Precision::all() {
        let (reg, table) = tuned(p, quick);
        for e in &table.entries {
            let k = reg.get(e.param_id).expect("id");
            rep.push_row(vec![
                p.name().into(),
                e.dim.to_string(),
                e.clusters.to_string(),
                e.param_id.to_string(),
                k.threadblock.to_string(),
                k.warp.to_string(),
            ]);
        }
    }
    rep.note("paper observes small-N shapes prefer narrow Threadblock.N; ids regroup by N bands");
    rep
}

/// Table I — winning parameter tiles beside cuML's fixed tiles.
pub fn table1(quick: bool) -> FigureReport {
    let mut rep = FigureReport::new(
        "table1",
        "parameter groups: tuned winners and cuML",
        &["precision", "id", "Threadblock", "Warp", "Thread"],
    );
    for p in Precision::all() {
        let (reg, table) = tuned(p, quick);
        for id in table.distinct_winners() {
            let k = reg.get(id).expect("id");
            rep.push_row(vec![
                p.name().into(),
                id.to_string(),
                k.threadblock.to_string(),
                k.warp.to_string(),
                k.thread.to_string(),
            ]);
        }
        let cuml = KernelParams::cuml(p);
        rep.push_row(vec![
            p.name().into(),
            "cuML".into(),
            cuml.threadblock.to_string(),
            cuml.warp.to_string(),
            cuml.thread.to_string(),
        ]);
        for (name, k) in KernelParams::table1(p) {
            rep.note(format!(
                "paper {} id {name}: tb{} warp{} (our registry id {:?})",
                p.name(),
                k.threadblock,
                k.warp,
                reg.id_of(&k)
            ));
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_speedups_within_band() {
        let rep = fig12(true);
        // fp32 speedups must include values well above 1; fp64 near 1.
        let fp32: Vec<f64> = rep
            .rows
            .iter()
            .filter(|r| r[0] == "fp32")
            .map(|r| r[3].parse().unwrap())
            .collect();
        assert!(fp32.iter().cloned().fold(0.0, f64::max) > 1.8);
        let fp64: Vec<f64> = rep
            .rows
            .iter()
            .filter(|r| r[0] == "fp64")
            .map(|r| r[3].parse().unwrap())
            .collect();
        let mean64 = fp64.iter().sum::<f64>() / fp64.len() as f64;
        assert!((0.95..=1.7).contains(&mean64), "fp64 mean {mean64}");
    }

    #[test]
    fn fig13_selected_is_small_subset() {
        let rep = fig13(true);
        for row in &rep.rows {
            let candidates: usize = row[1].parse().unwrap();
            let feasible: usize = row[2].parse().unwrap();
            let selected: usize = row[3].parse().unwrap();
            assert!(selected <= feasible && feasible <= candidates);
            assert!(selected * 4 <= candidates, "winners must be a small subset");
        }
    }

    #[test]
    fn fig14_ids_resolve() {
        let rep = fig14(true);
        assert!(!rep.rows.is_empty());
        for r in &rep.rows {
            assert!(r[4].starts_with('<'));
        }
    }

    #[test]
    fn table1_contains_cuml_rows() {
        let rep = table1(true);
        let cuml_rows: Vec<_> = rep.rows.iter().filter(|r| r[1] == "cuML").collect();
        assert_eq!(cuml_rows.len(), 2);
        assert!(cuml_rows[0][2] == "<32,256,16>" || cuml_rows[1][2] == "<32,256,16>");
    }
}
