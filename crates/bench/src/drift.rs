//! Baseline drift gates for generated tables.
//!
//! Two strengths, matched to how deterministic the artifact is:
//!
//! * **Schema drift** (figures): a fresh `--quick` figure run must produce
//!   the same CSV *shape* — identical column headers and row count — as the
//!   committed `baselines/figures/<id>.csv`. Cell contents are not
//!   compared: GFLOPS values shift with calibration and functional
//!   campaign notes depend on the execution policy.
//! * **Exact match** (campaign): the quick campaign table is deterministic
//!   by construction (per-cell serial execution, derived seeds), so the
//!   freshly rendered CSV must equal the committed baseline byte for byte —
//!   any diff is either a real behavior change (regenerate the baseline
//!   deliberately) or a lost determinism guarantee (a bug).
//!
//! Both gates fail closed: missing baseline files, orphaned baselines and
//! malformed CSVs are failures, not skips.

use crate::report::FigureReport;
use std::path::Path;

/// The shape of one CSV table: header columns + data row count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvSchema {
    /// Column names from the header line.
    pub columns: Vec<String>,
    /// Number of data rows (comment and header lines excluded).
    pub rows: usize,
}

/// Parse the schema of a report CSV (`# note` comment lines, then the
/// header, then data rows). `None` when no header line exists.
pub fn schema_of_csv(csv: &str) -> Option<CsvSchema> {
    let mut lines = csv
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next()?;
    Some(CsvSchema {
        columns: header.split(',').map(str::to_string).collect(),
        rows: lines.count(),
    })
}

/// The schema a [`FigureReport`] renders to.
pub fn schema_of_report(r: &FigureReport) -> CsvSchema {
    CsvSchema {
        columns: r.columns.clone(),
        rows: r.rows.len(),
    }
}

/// Outcome of one drift comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftOutcome {
    /// Table id (`fig07`, `campaign`, ...).
    pub id: String,
    /// True when the artifact matches its baseline.
    pub pass: bool,
    /// Human-readable verdict.
    pub detail: String,
}

/// Compare freshly generated reports against the committed per-figure CSVs
/// in `baseline_dir`. Fails closed in both directions: a fresh report
/// without a baseline file fails, and a committed baseline without a fresh
/// report fails too (a silently dropped figure is itself drift).
pub fn check_figure_schemas(fresh: &[FigureReport], baseline_dir: &Path) -> Vec<DriftOutcome> {
    let mut out: Vec<DriftOutcome> = fresh
        .iter()
        .map(|r| {
            let path = baseline_dir.join(format!("{}.csv", r.id));
            let verdict = match std::fs::read_to_string(&path) {
                Err(e) => DriftOutcome {
                    id: r.id.clone(),
                    pass: false,
                    detail: format!("missing baseline {}: {e}", path.display()),
                },
                Ok(csv) => match schema_of_csv(&csv) {
                    None => DriftOutcome {
                        id: r.id.clone(),
                        pass: false,
                        detail: format!("malformed baseline {}", path.display()),
                    },
                    Some(base) => {
                        let fresh_schema = schema_of_report(r);
                        if fresh_schema == base {
                            DriftOutcome {
                                id: r.id.clone(),
                                pass: true,
                                detail: format!("{} cols x {} rows", base.columns.len(), base.rows),
                            }
                        } else {
                            DriftOutcome {
                                id: r.id.clone(),
                                pass: false,
                                detail: format!(
                                    "schema drift: baseline {} cols x {} rows, fresh {} cols x {} \
                                     rows",
                                    base.columns.len(),
                                    base.rows,
                                    fresh_schema.columns.len(),
                                    fresh_schema.rows
                                ),
                            }
                        }
                    }
                },
            };
            verdict
        })
        .collect();
    // Orphaned baselines: committed CSVs no fresh report covers.
    if let Ok(entries) = std::fs::read_dir(baseline_dir) {
        let mut ids: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.strip_suffix(".csv").map(str::to_string)
            })
            .collect();
        ids.sort();
        for id in ids {
            if !fresh.iter().any(|r| r.id == id) {
                out.push(DriftOutcome {
                    id: id.clone(),
                    pass: false,
                    detail: "baseline exists but no fresh report regenerated it".to_string(),
                });
            }
        }
    } else {
        out.push(DriftOutcome {
            id: "<baseline dir>".to_string(),
            pass: false,
            detail: format!("cannot read {}", baseline_dir.display()),
        });
    }
    out
}

/// Compare a freshly rendered campaign CSV against the committed baseline,
/// byte for byte.
pub fn check_campaign_exact(fresh_csv: &str, baseline_path: &Path) -> DriftOutcome {
    match std::fs::read_to_string(baseline_path) {
        Err(e) => DriftOutcome {
            id: "campaign".to_string(),
            pass: false,
            detail: format!("missing baseline {}: {e}", baseline_path.display()),
        },
        Ok(base) => {
            if base == fresh_csv {
                DriftOutcome {
                    id: "campaign".to_string(),
                    pass: true,
                    detail: "byte-identical to baseline".to_string(),
                }
            } else {
                let diff_line = base
                    .lines()
                    .zip(fresh_csv.lines())
                    .position(|(a, b)| a != b)
                    .map_or_else(
                        || "line counts differ".to_string(),
                        |i| format!("first diff at line {}", i + 1),
                    );
                DriftOutcome {
                    id: "campaign".to_string(),
                    pass: false,
                    detail: format!(
                        "campaign table diverged from committed baseline ({diff_line}); \
                         regenerate deliberately with: campaign --quick --out baselines/campaign"
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: &str, cols: &[&str], rows: usize) -> FigureReport {
        let mut r = FigureReport::new(id, "t", cols);
        for i in 0..rows {
            r.push_row(cols.iter().map(|_| i.to_string()).collect());
        }
        r
    }

    #[test]
    fn schema_parses_comments_header_rows() {
        let s = schema_of_csv("# note\n# more\na,b,c\n1,2,3\n4,5,6\n").unwrap();
        assert_eq!(s.columns, vec!["a", "b", "c"]);
        assert_eq!(s.rows, 2);
        assert!(schema_of_csv("").is_none());
        assert!(schema_of_csv("# only notes\n").is_none());
    }

    #[test]
    fn matching_schema_passes_mismatch_fails() {
        let dir = std::env::temp_dir().join("ftk_drift_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("figA.csv"), "x,y\n1,2\n3,4\n").unwrap();
        let fresh = [report("figA", &["x", "y"], 2)];
        let out = check_figure_schemas(&fresh, &dir);
        assert!(out.iter().all(|o| o.pass), "{out:?}");
        // row-count drift
        let fresh = [report("figA", &["x", "y"], 3)];
        let out = check_figure_schemas(&fresh, &dir);
        assert!(!out[0].pass);
        // column drift
        let fresh = [report("figA", &["x", "z"], 2)];
        let out = check_figure_schemas(&fresh, &dir);
        assert!(!out[0].pass);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_orphaned_baselines_fail_closed() {
        let dir = std::env::temp_dir().join("ftk_drift_orphan_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("old.csv"), "x\n1\n").unwrap();
        let fresh = [report("new", &["x"], 1)];
        let out = check_figure_schemas(&fresh, &dir);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|o| !o.pass), "{out:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_exact_match() {
        let dir = std::env::temp_dir().join("ftk_drift_campaign_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.csv");
        std::fs::write(&path, "a,b\n1,2\n").unwrap();
        assert!(check_campaign_exact("a,b\n1,2\n", &path).pass);
        let miss = check_campaign_exact("a,b\n1,3\n", &path);
        assert!(!miss.pass);
        assert!(miss.detail.contains("line 2"));
        assert!(!check_campaign_exact("x", &dir.join("nope.csv")).pass);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
