//! Shared predict-throughput measurement used by the `predict_throughput`
//! bench and the `bench_check` serving-path gate.
//!
//! One measurement serves `m` query samples through a fitted model's
//! [`FittedModel::predict`] under one [`PredictPolicy`] — the steady-state
//! serving shape: the model (and for the quantized policies its resident
//! quantized table) is built once, then every repetition predicts a
//! *distinct* query matrix. Distinct matrices matter twice over: the model
//! memoizes its last assignment by sample identity, so re-predicting one
//! matrix would measure a `Vec::clone`, not the kernel; and fresh queries
//! are what a serving path actually sees.
//!
//! Timing is wall-clock median over the repetitions; the quantized
//! policies additionally report their exact-fallback rate (fraction of
//! samples whose argmin margin did not clear the quantization bound),
//! taken from the [`quant_fallbacks`](gpu_sim::CounterSnapshot) counter.

use crate::fitbench::{blobs, median, DIM, K, MAX_ITER};
use gpu_sim::{DeviceProfile, Matrix};
use kmeans::{FittedModel, KMeansConfig, PredictPolicy, Session};
use std::time::Instant;

/// Training-set size for the one-time fit the serving model derives from.
pub const TRAIN_M: usize = 8192;

/// The serving policies measured, exact first (the fp32 reference path).
pub const POLICY_NAMES: [&str; 3] = ["exact", "fp16", "int8"];

/// One policy's serving throughput at one query-batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictMeasurement {
    /// Policy label (one of [`POLICY_NAMES`]).
    pub name: String,
    /// Query samples per batch.
    pub m: usize,
    /// Median seconds per predict call.
    pub median_s: f64,
    /// Throughput in samples per second.
    pub rate: f64,
    /// Fraction of samples that fell back to the exact row scan
    /// (0 for the exact policy).
    pub fallback_rate: f64,
}

fn policy_by_name(name: &str) -> PredictPolicy {
    match name {
        "exact" => PredictPolicy::Exact,
        "fp16" => PredictPolicy::Fp16,
        "int8" => PredictPolicy::Int8,
        other => panic!("unknown predict policy {other}"),
    }
}

/// Deterministic query batch `salt` — same blob geometry as the training
/// set, different noise per salt so every repetition predicts fresh data.
pub fn queries(m: usize, salt: usize) -> Matrix<f32> {
    Matrix::from_fn(m, DIM, |r, c| {
        let center = ((r % K) * 8) as f32;
        let h = (r
            .wrapping_mul(2654435761)
            .wrapping_add(salt.wrapping_mul(97911)))
            ^ c.wrapping_mul(40503);
        center + ((h % 1000) as f32 / 1000.0 - 0.5) + c as f32 * 0.01
    })
}

/// Fit the serving model once: the paper shape (d = 64, k = 16), tensor
/// kernel, fixed seed — the model every policy is measured against.
pub fn serving_model(session: &Session) -> FittedModel<f32> {
    session
        .kmeans(KMeansConfig {
            k: K,
            max_iter: MAX_ITER,
            tol: 0.0,
            seed: 42,
            ..Default::default()
        })
        .fit_model(&blobs(TRAIN_M))
        .expect("serving fit failed")
}

/// Measure every policy serving `m`-sample batches, `reps` batches each.
/// One fitted model is shared across policies (resident centroids and
/// quantized tables persist), matching the serving lifecycle.
pub fn run_predict_bench(m: usize, reps: usize) -> Vec<PredictMeasurement> {
    let reps = reps.max(1);
    let session = Session::new(DeviceProfile::a100());
    let mut model = serving_model(&session);
    POLICY_NAMES
        .iter()
        .map(|&name| {
            model.set_predict_policy(policy_by_name(name));
            // Warmup batch: builds the quantized table on first use so the
            // one-time quantization cost is not misread as per-call cost.
            model.predict(&queries(m, 0)).expect("warmup predict");
            let before = model.predict_counters();
            let mut samples = Vec::with_capacity(reps);
            for rep in 0..reps {
                let batch = queries(m, rep + 1);
                let start = Instant::now();
                model.predict(&batch).expect("predict failed");
                samples.push(start.elapsed().as_secs_f64());
            }
            let fallbacks = model.predict_counters().since(&before).quant_fallbacks;
            let med = median(&mut samples);
            PredictMeasurement {
                name: name.to_string(),
                m,
                median_s: med,
                rate: m as f64 / med,
                fallback_rate: fallbacks as f64 / (m * reps) as f64,
            }
        })
        .collect()
}

/// Render one predict measurement as a CSV row (same 8-field schema as the
/// fit rows; `iters` is 1 — a predict is a single pass).
pub fn predict_csv_row(p: &PredictMeasurement) -> String {
    format!(
        "predict,{},{},{DIM},{K},1,{:.6},{:.1}\n",
        p.name, p.m, p.median_s, p.rate
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_deterministic_per_salt_and_distinct_across_salts() {
        let a = queries(32, 1);
        let b = queries(32, 1);
        let c = queries(32, 2);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn csv_row_matches_baseline_schema() {
        let row = predict_csv_row(&PredictMeasurement {
            name: "int8".into(),
            m: 131072,
            median_s: 0.25,
            rate: 524288.0,
            fallback_rate: 0.01,
        });
        assert_eq!(row, "predict,int8,131072,64,16,1,0.250000,524288.0\n");
    }

    #[test]
    fn bench_runs_and_policies_agree_at_small_scale() {
        let out = run_predict_bench(512, 1);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].name, "exact");
        assert_eq!(out[0].fallback_rate, 0.0, "exact never falls back");
        for p in &out {
            assert!(p.median_s > 0.0 && p.rate > 0.0, "{p:?}");
            assert!(
                (0.0..=1.0).contains(&p.fallback_rate),
                "fallback rate is a fraction: {p:?}"
            );
        }
    }
}
