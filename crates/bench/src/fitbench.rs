//! Shared fit-throughput measurement used by the `fit_throughput` bench and
//! the `bench_check` regression gate.
//!
//! One measurement is a full `KMeans::fit` at the paper's feature/cluster
//! shape (d = 64, k = 16) over `m` deterministic pseudo-random samples, per
//! assignment variant. Timing is wall-clock median over a fixed number of
//! repetitions (no calibration loops: each rep is already a macro-scale run).

use gpu_sim::{launch_grid, Counters, DeviceProfile, Dim3, LaunchConfig, Matrix};
use kmeans::{KMeansConfig, Session, Variant};
use std::time::Instant;

/// Feature dimension of the benchmark problem (paper headline shape).
pub const DIM: usize = 64;
/// Cluster count of the benchmark problem.
pub const K: usize = 16;
/// Lloyd iterations per fit (tol = 0 so every rep does identical work).
pub const MAX_ITER: usize = 3;

/// The six variants measured: the paper's optimization ladder in order,
/// then the bound-pruned Hamerly family.
pub const VARIANT_NAMES: [&str; 6] = [
    "naive",
    "gemm_v1",
    "fused_v2",
    "broadcast_v3",
    "tensor_v4",
    "hamerly",
];

/// One variant's timing at one problem size.
#[derive(Debug, Clone, PartialEq)]
pub struct FitMeasurement {
    /// Variant name (one of [`VARIANT_NAMES`]).
    pub name: String,
    /// Sample count.
    pub m: usize,
    /// Median seconds per fit.
    pub median_s: f64,
    /// Throughput in samples x iterations per second.
    pub rate: f64,
    /// Final inertia (work checksum — equal across reps by construction).
    pub inertia: f64,
}

/// Parse a `usize` knob from the environment, falling back to `default`
/// when unset or unparsable.
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse an `f64` knob from the environment, falling back to `default`
/// when unset or unparsable.
pub fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic pseudo-random blobs: K well-separated centers plus hash
/// noise, no RNG dependency so every run measures identical work.
pub fn blobs(m: usize) -> Matrix<f32> {
    Matrix::from_fn(m, DIM, |r, c| {
        let center = ((r % K) * 8) as f32;
        let h = (r.wrapping_mul(2654435761) ^ c.wrapping_mul(40503)) % 1000;
        center + (h as f32 / 1000.0 - 0.5) + c as f32 * 0.01
    })
}

/// Median of a sample set (destructive sort).
pub fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn variant_by_name(name: &str) -> Variant {
    match name {
        "naive" => Variant::Naive,
        "gemm_v1" => Variant::GemmV1,
        "fused_v2" => Variant::FusedV2,
        "broadcast_v3" => Variant::BroadcastV3,
        "tensor_v4" => Variant::Tensor(None),
        "hamerly" => Variant::Hamerly,
        other => panic!("unknown variant {other}"),
    }
}

/// Measure every variant at sample count `m` with `reps` repetitions each.
/// One [`Session`] is shared across every variant and repetition — the
/// estimator-lifecycle shape production callers are expected to use.
pub fn run_fit_bench(m: usize, reps: usize) -> Vec<FitMeasurement> {
    let reps = reps.max(1);
    let data = blobs(m);
    let session = Session::new(DeviceProfile::a100());
    VARIANT_NAMES
        .iter()
        .map(|&name| {
            let km = session.kmeans(KMeansConfig {
                k: K,
                max_iter: MAX_ITER,
                tol: 0.0, // run all iterations: fixed work per rep
                seed: 42,
                variant: variant_by_name(name),
                ..Default::default()
            });
            let mut samples = Vec::with_capacity(reps);
            let mut inertia = 0.0f64;
            for _ in 0..reps {
                let start = Instant::now();
                let r = km.fit_model(&data).expect("fit failed");
                samples.push(start.elapsed().as_secs_f64());
                inertia = r.inertia;
            }
            let med = median(&mut samples);
            FitMeasurement {
                name: name.to_string(),
                m,
                median_s: med,
                rate: (m * MAX_ITER) as f64 / med,
                inertia,
            }
        })
        .collect()
}

/// Many tiny launches of a near-empty kernel: isolates per-kernel-launch
/// engine overhead. Returns median seconds per launch.
pub fn measure_launch_overhead() -> f64 {
    let dev = DeviceProfile::a100();
    let counters = Counters::new();
    let cfg = LaunchConfig {
        grid: Dim3::x(64),
        threads_per_block: 128,
        smem_bytes: 0,
    };
    let launches = 2000usize;
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..launches {
            launch_grid(&dev, cfg, &counters, |ctx| {
                std::hint::black_box(ctx.bx);
            })
            .unwrap();
        }
        samples.push(start.elapsed().as_secs_f64() / launches as f64);
    }
    median(&mut samples)
}

/// The CSV header shared by the bench output and the committed baseline.
pub const CSV_HEADER: &str = "bench,name,m,d,k,iters,median_s,rate\n";

/// Render a launch-overhead measurement as a CSV row.
pub fn launch_overhead_csv_row(med_s: f64) -> String {
    format!("launch_overhead,noop64,64,0,0,1,{med_s:.9},0\n")
}

/// Render one fit measurement as a CSV row.
pub fn fit_csv_row(m: &FitMeasurement) -> String {
    format!(
        "fit,{},{},{DIM},{K},{MAX_ITER},{:.6},{:.1}\n",
        m.name, m.m, m.median_s, m.rate
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        // even length takes the upper-middle element
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 3.0);
    }

    #[test]
    fn blobs_are_deterministic() {
        let a = blobs(16);
        let b = blobs(16);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn csv_rows_match_baseline_schema() {
        let row = fit_csv_row(&FitMeasurement {
            name: "naive".into(),
            m: 1024,
            median_s: 0.125,
            rate: 24576.0,
            inertia: 0.0,
        });
        assert_eq!(row, "fit,naive,1024,64,16,3,0.125000,24576.0\n");
        assert!(launch_overhead_csv_row(1.5e-6).starts_with("launch_overhead,noop64,"));
    }
}
