//! Trace-overhead measurement and the at-scale phase-profile consistency
//! check behind `bench_check`'s trace gate.
//!
//! Two properties are gated:
//!
//! 1. **Overhead** — a fit with a [`trace::RecordingSink`] attached must
//!    stay within the regression tolerance band of the identical untraced
//!    fit. The instrumentation is branch-gated on [`trace::active`], so the
//!    *untraced* cost is already covered by the fit-throughput gate; this
//!    measures the enabled path (snapshotting counters, formatting modeled
//!    times, ring-buffer pushes).
//! 2. **Attribution consistency** — the phase profiler's modeled-time
//!    breakdown must reproduce the committed `baselines/fit_throughput.csv`
//!    ordering at the committed scale: the naive variant's assignment phase
//!    (which materializes the m×k distance matrix) must cost more modeled
//!    time than the fused variant's. This ordering only holds once the
//!    extra distance-matrix traffic (2·m·k·4 bytes per iteration) outweighs
//!    the fused path's extra per-iteration launch (~4 us on the A100
//!    profile), i.e. m·k ≳ 1.7M — which is why the check runs at the
//!    baseline's m = 131072 rather than the reduced `FTK_BENCH_M`.

use crate::fitbench::{blobs, median, K, MAX_ITER};
use gpu_sim::DeviceProfile;
use kmeans::{KMeansConfig, Session, Variant};
use std::sync::Arc;
use std::time::Instant;
use trace::RecordingSink;

/// Sample count for the attribution-consistency check: the committed
/// `baselines/fit_throughput.csv` scale (see module docs for why the
/// reduced bench size is not enough).
pub const TRACE_PROFILE_M: usize = 131_072;

/// Overhead of running a fit with a recording sink attached, versus the
/// identical fit untraced.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOverhead {
    /// Sample count of both fits.
    pub m: usize,
    /// Median seconds per untraced fit.
    pub untraced_s: f64,
    /// Median seconds per fit with a `RecordingSink` attached.
    pub traced_s: f64,
    /// Records the sink captured during one traced fit.
    pub events: usize,
}

impl TraceOverhead {
    /// `traced / untraced` wall-time ratio (1.0 = free).
    pub fn factor(&self) -> f64 {
        self.traced_s / self.untraced_s
    }
}

fn bench_config(variant: Variant) -> KMeansConfig {
    KMeansConfig {
        k: K,
        max_iter: MAX_ITER,
        tol: 0.0, // fixed work per rep, matching fitbench
        seed: 42,
        variant,
        ..Default::default()
    }
}

/// One traced fit of `variant` over `m` samples: the recorded sink plus
/// the fit's wall time.
pub fn traced_fit(m: usize, variant: Variant) -> (Arc<RecordingSink>, f64) {
    let sink = Arc::new(RecordingSink::default());
    let session = Session::new(DeviceProfile::a100())
        .with_trace_sink(Arc::clone(&sink) as Arc<dyn trace::TraceSink>);
    let data = blobs(m);
    let start = Instant::now();
    session
        .kmeans(bench_config(variant))
        .fit_model(&data)
        .expect("fit failed");
    (sink, start.elapsed().as_secs_f64())
}

/// Measure the recording-sink overhead on the fused variant: `reps`
/// untraced fits vs `reps` traced fits, medians compared.
pub fn run_trace_overhead(m: usize, reps: usize) -> TraceOverhead {
    let reps = reps.max(1);
    let data = blobs(m);
    let session = Session::new(DeviceProfile::a100());
    let km = session.kmeans(bench_config(Variant::FusedV2));
    let mut untraced = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        km.fit_model(&data).expect("fit failed");
        untraced.push(start.elapsed().as_secs_f64());
    }
    let mut traced = Vec::with_capacity(reps);
    let mut events = 0usize;
    for _ in 0..reps {
        let (sink, elapsed) = traced_fit(m, Variant::FusedV2);
        traced.push(elapsed);
        events = sink.len();
    }
    TraceOverhead {
        m,
        untraced_s: median(&mut untraced),
        traced_s: median(&mut traced),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitbench::DIM;

    #[test]
    fn traced_fit_records_assignment_spans() {
        let (sink, _) = traced_fit(512, Variant::FusedV2);
        let profile = sink.phase_profile();
        let stats = profile
            .get(trace::phases::ASSIGNMENT)
            .expect("fit records assignment spans");
        assert_eq!(stats.spans, MAX_ITER as u64);
        assert!(stats.launches >= stats.spans);
        assert!(profile.modeled_s(trace::phases::UPDATE) > 0.0);
        // The bench shape is what the spans describe.
        assert_eq!(DIM, 64);
        assert_eq!(K, 16);
    }

    #[test]
    fn overhead_factor_is_finite_and_sane() {
        let o = run_trace_overhead(512, 1);
        assert!(o.untraced_s > 0.0 && o.traced_s > 0.0);
        assert!(o.factor().is_finite());
        assert!(o.events > 0, "traced fit must record events");
    }
}
