//! Tabular figure reports with CSV and markdown output.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One regenerated table/figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Identifier, e.g. `"fig07"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: paper-vs-measured commentary.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Start an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row (must match the column count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as CSV (notes become `#` comments).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        for n in &self.notes {
            let _ = writeln!(s, "# {n}");
        }
        let _ = writeln!(s, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        s
    }

    /// Render as a GitHub markdown table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(s, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        if !self.notes.is_empty() {
            let _ = writeln!(s);
            for n in &self.notes {
                let _ = writeln!(s, "> {n}");
            }
        }
        s
    }

    /// Write the CSV into `dir/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Destination for a batch of reports.
#[derive(Debug, Default)]
pub struct ReportSink {
    pub reports: Vec<FigureReport>,
}

impl ReportSink {
    pub fn add(&mut self, r: FigureReport) {
        self.reports.push(r);
    }

    /// Write every report's CSV and return the combined markdown.
    pub fn flush(&self, dir: &Path) -> io::Result<String> {
        let mut md = String::new();
        for r in &self.reports {
            r.write_csv(dir)?;
            md.push_str(&r.to_markdown());
            md.push('\n');
        }
        Ok(md)
    }
}

/// Format a GFLOPS value compactly.
pub fn fmt_gflops(v: f64) -> String {
    format!("{v:.0}")
}

/// Format a ratio/overhead as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut r = FigureReport::new("figXX", "demo", &["x", "y"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.note("paper says 3");
        r
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        assert!(csv.contains("# paper says 3"));
        assert!(csv.contains("x,y"));
        assert!(csv.contains("1,2"));
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.contains("| x | y |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("> paper says 3"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_enforced() {
        let mut r = FigureReport::new("f", "t", &["a", "b"]);
        r.push_row(vec!["1".into()]);
    }

    #[test]
    fn sink_flush_writes_files() {
        let dir = std::env::temp_dir().join("ftk_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = ReportSink::default();
        sink.add(sample());
        let md = sink.flush(&dir).unwrap();
        assert!(md.contains("figXX"));
        assert!(dir.join("figXX.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_gflops(1234.56), "1235");
        assert_eq!(fmt_pct(0.113), "11.30%");
    }
}
