//! The paper's published numbers, used for paper-vs-measured reporting.

/// Fig. 7 anchors (A100, FP32, M=131072, N=128): GFLOPS per variant.
pub mod fig7 {
    pub const NAIVE_GFLOPS: f64 = 482.0;
    pub const V1_GFLOPS: f64 = 4662.0;
    pub const V2_GFLOPS: f64 = 5902.0;
    pub const V3_GFLOPS: f64 = 6916.0;
    pub const FT_KMEANS_GFLOPS: f64 = 17686.0;
    pub const CUML_GFLOPS: f64 = 9676.0;
}

/// Fig. 12 speedup statistics over cuML.
pub mod fig12 {
    pub const FP32_MEAN_SPEEDUP: f64 = 2.49;
    pub const FP32_MAX_SPEEDUP: f64 = 4.55;
    pub const FP64_MEAN_SPEEDUP: f64 = 1.04;
    pub const FP64_MAX_SPEEDUP: f64 = 1.39;
    /// Beyond this feature dimension the FP32 speedup falls below 2x.
    pub const FP32_N_THRESHOLD: usize = 64;
}

/// §V-A5 parameter-selection counts.
pub mod fig13 {
    pub const FP32_CANDIDATES: usize = 157;
    pub const FP64_CANDIDATES: usize = 145;
    pub const FP32_SELECTED: usize = 7;
    pub const FP64_SELECTED: usize = 4;
}

/// Fig. 15/16 fault-tolerance overheads (A100).
pub mod ft_overhead {
    pub const FP32_K8_PCT: f64 = -0.24;
    pub const FP32_K128_PCT: f64 = 1.93;
    pub const FP32_NFIXED_PCT: f64 = 0.96;
    pub const FP64_AVG_PCT: f64 = 13.0;
    pub const FP64_K8_PCT: f64 = 7.9;
    pub const FP64_K128_PCT: f64 = 20.0;
    pub const FP64_NFIXED_PCT: f64 = 0.89;
}

/// Fig. 17/18 error-injection overheads (A100).
pub mod injection {
    pub const FP32_AVG_PCT: f64 = 2.36;
    pub const FP64_AVG_PCT: f64 = 9.21;
    pub const FP64_K8_PCT: f64 = 10.12;
    pub const FP64_K128_PCT: f64 = 24.07;
    pub const WU_OVERHEAD_PCT: f64 = 30.0;
}

/// §V-D T4 results.
pub mod t4 {
    pub const FP32_SPEEDUP_MK_PCT: f64 = 413.0;
    pub const FP32_SPEEDUP_MN_PCT: f64 = 381.0;
    pub const FT_OVERHEAD_PCT: f64 = 18.0;
    pub const INJECTION_OVERHEAD_PCT: f64 = 30.0;
    pub const VS_WU_IMPROVEMENT_PCT: f64 = 60.0;
}

#[cfg(test)]
mod tests {
    #[test]
    fn constants_are_ordered() {
        let ladder = [
            super::fig7::NAIVE_GFLOPS,
            super::fig7::V1_GFLOPS,
            super::fig7::CUML_GFLOPS,
            super::fig7::FT_KMEANS_GFLOPS,
        ];
        assert!(ladder.windows(2).all(|w| w[0] < w[1]), "{ladder:?}");
        let speedups = [
            super::fig12::FP64_MEAN_SPEEDUP,
            super::fig12::FP32_MEAN_SPEEDUP,
        ];
        assert!(speedups.windows(2).all(|w| w[0] < w[1]));
    }
}
