//! The full-stack device-sanitizer sweep: every assignment variant, the
//! update/drift/revalidation kernels, the quantized predict epilogues, the
//! mini-batch path and a multi-client serve storm, all executed under a
//! [`gpu_sim::sanitizer`] checker.
//!
//! This is the dynamic-analysis companion to the byte-exactness gates: the
//! campaign baseline proves the kernels produce the right answer under
//! today's schedule, the sweep proves no kernel *depends* on the schedule
//! (racecheck), reads memory it never defined (initcheck), or indexes
//! outside an allocation (oobcheck). CI runs it via the `sanitize_sweep`
//! bin at a reduced shape and fails on any finding.
//!
//! The checker is installed process-globally for the duration of the sweep
//! (not thread-locally) because the serve storm's client threads and the
//! server's batch formation must be checked too, and they do not inherit a
//! thread-local scope. Run the sweep in a dedicated process (the bin) or as
//! the only concurrently-running user of the global checker.

use gpu_sim::sanitizer::{self, Checker, SanitizeConfig, SanitizerReport};
use gpu_sim::Matrix;
use kmeans::{FtConfig, KMeansConfig, PredictPolicy, Session, Variant};
use serve::{ModelRegistry, Server, ServerConfig};
use std::sync::Arc;

use crate::fitbench::{blobs, DIM, K};

/// The variants the sweep fits, with the names findings are grouped under.
pub const SWEEP_VARIANTS: [(&str, Variant); 6] = [
    ("naive", Variant::Naive),
    ("gemm_v1", Variant::GemmV1),
    ("fused_v2", Variant::FusedV2),
    ("broadcast_v3", Variant::BroadcastV3),
    ("tensor_v4", Variant::Tensor(None)),
    ("hamerly", Variant::Hamerly),
];

/// Clients in the serve-storm phase.
const STORM_CLIENTS: usize = 4;
/// Requests per storm client.
const STORM_REQUESTS: usize = 3;
/// Rows per storm request.
const STORM_ROWS: usize = 16;

fn fit_config(variant: Variant) -> KMeansConfig {
    KMeansConfig {
        k: K,
        // Enough iterations to cross the Hamerly revalidation cadence
        // (revalidate_every defaults to 4), so the revalidation and repair
        // kernels run under the checker too.
        max_iter: 5,
        tol: 0.0,
        seed: 42,
        variant,
        ft: FtConfig {
            revalidate_every: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// One sweep phase: name plus what it exercised (for the log).
#[derive(Debug, Clone)]
pub struct SweepPhase {
    /// Phase label (`fit:naive`, `predict:int8`, `serve:storm`, ...).
    pub name: String,
}

/// Run the whole sweep under a fresh checker running `cfg` and return its
/// report plus the phases executed. Installs the checker globally for the
/// duration (see module docs) and uninstalls it before returning.
pub fn run_sanitize_sweep(m: usize, cfg: SanitizeConfig) -> (SanitizerReport, Vec<SweepPhase>) {
    let checker = Arc::new(Checker::new(cfg));
    sanitizer::install_global(Arc::clone(&checker));
    let phases = run_phases(m);
    sanitizer::uninstall_global();
    (checker.report(), phases)
}

fn run_phases(m: usize) -> Vec<SweepPhase> {
    let mut phases = Vec::new();
    let data = blobs(m.max(2 * K));
    let session = Session::a100();

    // Phase 1: full fits, every assignment variant (assignment + update +
    // drift + revalidation kernels).
    for (name, variant) in SWEEP_VARIANTS {
        let km = session.kmeans(fit_config(variant));
        km.fit_model(&data).expect("sweep fit");
        phases.push(SweepPhase {
            name: format!("fit:{name}"),
        });
    }

    // Phase 2: mini-batch streaming (init-from-batch + learning-rate fold).
    let km = session.kmeans(fit_config(Variant::BroadcastV3));
    let half = data.rows() / 2;
    let first = Matrix::from_fn(half, DIM, |r, c| data.get(r, c));
    let second = Matrix::from_fn(data.rows() - half, DIM, |r, c| data.get(half + r, c));
    let model = km.partial_fit(None, &first).expect("sweep partial_fit 1");
    let model = km
        .partial_fit(Some(model), &second)
        .expect("sweep partial_fit 2");
    phases.push(SweepPhase {
        name: "fit:minibatch".to_string(),
    });

    // Phase 3: the serving epilogues — exact and both quantized predict
    // policies (quant table build + fused label-exact predict).
    let queries = Matrix::from_fn(64, DIM, |r, c| data.get(r % data.rows(), c));
    let mut model = model;
    for (label, policy) in [
        ("exact", PredictPolicy::Exact),
        ("fp16", PredictPolicy::Fp16),
        ("int8", PredictPolicy::Int8),
    ] {
        model.set_predict_policy(policy);
        model.predict(&queries).expect("sweep predict");
        phases.push(SweepPhase {
            name: format!("predict:{label}"),
        });
    }

    // Phase 4: a multi-client serve storm through the micro-batching
    // server — request validation, batch formation, the shared resident
    // model and the leased-buffer reuse path, all across threads.
    let registry = ModelRegistry::new();
    let storm_model = session
        .kmeans(fit_config(Variant::BroadcastV3))
        .fit_model(&data)
        .expect("storm fit");
    registry.register("svc", storm_model.with_predict_policy(PredictPolicy::Int8));
    let server = Server::new(
        session,
        registry,
        ServerConfig {
            max_batch_rows: STORM_CLIENTS * STORM_ROWS,
            max_delay_us: 200,
            validate_batched: false,
        },
    );
    std::thread::scope(|s| {
        for c in 0..STORM_CLIENTS {
            let server = &server;
            let data = &data;
            s.spawn(move || {
                for i in 0..STORM_REQUESTS {
                    let q = Matrix::from_fn(STORM_ROWS, DIM, |r, col| {
                        data.get((c * STORM_REQUESTS + i + r) % data.rows(), col)
                    });
                    server.predict("svc", &q).expect("storm predict");
                }
            });
        }
    });
    phases.push(SweepPhase {
        name: "serve:storm".to_string(),
    });
    phases
}
