//! Mixed-traffic serving benchmark: latency/throughput of the
//! multi-tenant [`serve::Server`] under concurrent clients, used by the
//! `serve_bench` bin and the `bench_check` serve gate.
//!
//! Four scenarios over the same serving model (the paper shape, d = 64,
//! k = 16, int8 resident policy — see
//! [`predictbench::serving_model`](crate::predictbench::serving_model)):
//!
//! * **`unbatched64`** — 64 closed-loop clients of 16-row requests
//!   through a server with micro-batching disabled: one query upload and
//!   one kernel launch *per call*. This is the one-call-per-launch
//!   baseline the headline claim is measured against.
//! * **`batched64`** — the identical traffic through a micro-batching
//!   window: concurrent requests coalesce into single fused launches.
//! * **`paced64`** — open-loop: every client issues requests on a fixed
//!   schedule rather than back-to-back; latency includes queueing delay,
//!   so this probes the grouping achieved below saturation.
//! * **`mixed64`** — the closed-loop batched traffic with a maintenance
//!   thread concurrently refitting and streaming batches into a second
//!   tenant through the same server (admission over one shared executor).
//!
//! Two currencies, deliberately distinct:
//!
//! * **p50/p99 request latency** is host wall-clock around each `predict`
//!   call — the orchestration cost a client actually observes, including
//!   the batching window (micro-batching *buys* device throughput *with*
//!   bounded added latency; both sides of that trade are reported).
//! * **`rows_per_s` is modeled device throughput**: the kernel-launch
//!   count is measured from the live run (hardware counters), and each
//!   launch is priced by the calibrated timing model
//!   ([`gpu_sim::timing::estimate`]) at its mean row count — launch
//!   overhead plus kernel time, exactly the currency every GFLOPS figure
//!   in this harness uses. A functional simulator executes a 16-row
//!   kernel in host time unrelated to device time, so host wall-clock
//!   (reported separately as `wall_rows_per_s`) cannot witness the
//!   launch-amortization claim; the timing model is what does.
//!
//! Query matrices are pre-generated per client before the clock starts,
//! so host-side data synthesis is excluded from every number.

use crate::fitbench::{blobs, FitMeasurement, DIM, K};
use crate::predictbench::{queries, serving_model};
use gpu_sim::timing::{estimate, GemmShape, KernelClass, TimingInput};
use gpu_sim::{DeviceProfile, Matrix, Precision};
use kmeans::{FittedModel, PredictPolicy, Session};
use serve::{ModelRegistry, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent clients in every scenario.
pub const CLIENTS: usize = 64;

/// Rows per predict request — small on purpose: per-launch fixed cost
/// dominates, which is exactly the regime micro-batching targets.
pub const ROWS_PER_REQUEST: usize = 16;

/// Scenario names, the one-call-per-launch baseline first.
pub const SCENARIO_NAMES: [&str; 4] = ["unbatched64", "batched64", "paced64", "mixed64"];

/// Open-loop inter-request interval per client in `paced64`.
const PACE: Duration = Duration::from_millis(2);

/// One scenario's measured serving behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMeasurement {
    /// Scenario name (one of [`SCENARIO_NAMES`]).
    pub name: String,
    /// Concurrent clients.
    pub clients: usize,
    /// Rows per request.
    pub rows: usize,
    /// Total predict requests completed.
    pub requests: usize,
    /// Median client-observed request latency, microseconds (wall-clock).
    pub p50_us: f64,
    /// 99th-percentile client-observed request latency, microseconds.
    pub p99_us: f64,
    /// Modeled device throughput, rows per second: measured launch count
    /// priced by the calibrated timing model (see module docs).
    pub rows_per_s: f64,
    /// Kernel launches the scenario actually issued (measured; not part
    /// of the CSV row — `requests / launches` is the mean group size).
    pub launches: usize,
    /// Host wall-clock aggregate throughput, rows per second (diagnostic;
    /// not part of the CSV row).
    pub wall_rows_per_s: f64,
}

/// Nearest-rank percentile of an unsorted latency sample, `p` in `[0, 1]`.
pub fn percentile_us(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Modeled device seconds for `launches` fused predict launches covering
/// `total_rows` query rows: each launch priced at the mean row count by
/// the calibrated timing model (launch overhead + kernel time for the
/// fully fused assignment class at the serving shape).
pub fn modeled_device_s(launches: usize, total_rows: usize) -> f64 {
    assert!(launches > 0 && total_rows > 0);
    let mean_rows = (total_rows as f64 / launches as f64).ceil() as usize;
    let dev = DeviceProfile::a100();
    let per_launch = estimate(&TimingInput::plain(
        &dev,
        Precision::Fp32,
        KernelClass::BroadcastV3,
        GemmShape::new(mean_rows, K, DIM),
    ))
    .time_s;
    launches as f64 * per_launch
}

/// The micro-batching window every batched scenario runs under.
fn batching_window() -> ServerConfig {
    ServerConfig {
        max_batch_rows: CLIENTS * ROWS_PER_REQUEST,
        max_delay_us: 200,
        validate_batched: false,
    }
}

fn build_server(config: ServerConfig) -> (Server<f32>, Arc<FittedModel<f32>>) {
    let session = Session::a100();
    let registry = ModelRegistry::new();
    let model = registry.register(
        "svc",
        serving_model(&session).with_predict_policy(PredictPolicy::Int8),
    );
    // Build the resident quantized table outside the timed region — its
    // one-time cost belongs to model admission, not to serving latency.
    model
        .predict(&queries(ROWS_PER_REQUEST, usize::MAX / 2))
        .expect("warmup predict");
    (Server::new(session, registry, config), model)
}

/// Drive `CLIENTS` client threads through `server`, each issuing
/// `reqs_per_client` requests of `ROWS_PER_REQUEST` rows — back-to-back
/// when `pace` is `None` (closed loop), on a fixed per-client schedule
/// otherwise (open loop, latency counted from the *scheduled* send time so
/// queueing delay is visible). Returns per-request latencies in
/// microseconds and the scenario wall-clock in seconds.
fn drive_clients(
    server: &Server<f32>,
    reqs_per_client: usize,
    pace: Option<Duration>,
) -> (Vec<f64>, f64) {
    // Pre-generate every client's query matrices before starting the clock.
    let plans: Vec<Vec<Matrix<f32>>> = (0..CLIENTS)
        .map(|c| {
            (0..reqs_per_client)
                .map(|i| queries(ROWS_PER_REQUEST, c * reqs_per_client + i + 1))
                .collect()
        })
        .collect();
    let start = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(plan.len());
                    let origin = Instant::now();
                    for (i, q) in plan.iter().enumerate() {
                        let sent = match pace {
                            Some(gap) => {
                                let due = gap * i as u32;
                                if let Some(wait) = due.checked_sub(origin.elapsed()) {
                                    std::thread::sleep(wait);
                                }
                                origin + due
                            }
                            None => Instant::now(),
                        };
                        server.predict("svc", q).expect("serve");
                        lat.push(sent.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    (latencies, start.elapsed().as_secs_f64())
}

fn measure(
    name: &str,
    server: &Server<f32>,
    model: &FittedModel<f32>,
    reqs_per_client: usize,
    pace: Option<Duration>,
) -> ServeMeasurement {
    let before = model.predict_counters();
    let (mut lat, elapsed) = drive_clients(server, reqs_per_client, pace);
    let launches = model.predict_counters().since(&before).kernel_launches as usize;
    let requests = lat.len();
    let total_rows = requests * ROWS_PER_REQUEST;
    ServeMeasurement {
        name: name.to_string(),
        clients: CLIENTS,
        rows: ROWS_PER_REQUEST,
        requests,
        p50_us: percentile_us(&mut lat, 0.50),
        p99_us: percentile_us(&mut lat, 0.99),
        rows_per_s: total_rows as f64 / modeled_device_s(launches, total_rows),
        launches,
        wall_rows_per_s: total_rows as f64 / elapsed,
    }
}

/// Run all four scenarios serving ~`total_rows` rows each (the
/// `FTK_BENCH_SERVE_M` knob; requests per client is derived from it).
pub fn run_serve_bench(total_rows: usize) -> Vec<ServeMeasurement> {
    let reqs_per_client = (total_rows / (CLIENTS * ROWS_PER_REQUEST)).max(2);
    let mut out = Vec::with_capacity(SCENARIO_NAMES.len());

    let (server, model) = build_server(ServerConfig::unbatched());
    out.push(measure(
        "unbatched64",
        &server,
        &model,
        reqs_per_client,
        None,
    ));
    drop(server);

    let (server, model) = build_server(batching_window());
    out.push(measure("batched64", &server, &model, reqs_per_client, None));
    drop(server);

    let (server, model) = build_server(batching_window());
    out.push(measure(
        "paced64",
        &server,
        &model,
        reqs_per_client,
        Some(PACE),
    ));
    drop(server);

    // Mixed traffic: the predict storm races refits of a second tenant and
    // mini-batch streaming into it, all admitted over the same server.
    let (server, model) = build_server(batching_window());
    server
        .fit(
            "background",
            kmeans::KMeansConfig {
                k: K,
                max_iter: 2,
                tol: 0.0,
                seed: 7,
                ..Default::default()
            },
            PredictPolicy::Exact,
            &blobs(2048),
        )
        .expect("admit background tenant");
    let mixed = std::thread::scope(|s| {
        let maintenance = s.spawn(|| {
            for i in 0..2usize {
                server.refit("background", &blobs(2048)).expect("refit");
                server
                    .partial_fit("background", &queries(256, 9000 + i))
                    .expect("stream batch");
            }
        });
        let m = measure("mixed64", &server, &model, reqs_per_client, None);
        maintenance.join().expect("maintenance thread");
        m
    });
    out.push(mixed);
    out
}

/// CSV header for `serve_throughput.csv` — 8 fields like every other
/// baseline, with serve-specific columns.
pub const SERVE_CSV_HEADER: &str = "bench,name,clients,rows,requests,p50_us,p99_us,rows_per_s\n";

/// Render one measurement as a `serve_throughput.csv` row. The measured
/// `launches` and host-side `wall_rows_per_s` are diagnostics, not part of
/// the committed schema.
pub fn serve_csv_row(s: &ServeMeasurement) -> String {
    format!(
        "serve,{},{},{},{},{:.1},{:.1},{:.1}\n",
        s.name, s.clients, s.rows, s.requests, s.p50_us, s.p99_us, s.rows_per_s
    )
}

/// Parse a committed `serve_throughput.csv`. Returns an error string naming
/// the first malformed line; fails closed on an empty table. The two
/// diagnostic fields absent from the schema parse as zero.
pub fn parse_serve_baseline(csv: &str) -> Result<Vec<ServeMeasurement>, String> {
    let mut rows = Vec::new();
    for (idx, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("bench,") {
            continue; // header
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(format!("line {}: expected 8 fields, got {line:?}", idx + 1));
        }
        if fields[0] != "serve" {
            continue;
        }
        let num = |s: &str, what: &str| {
            s.parse::<f64>()
                .map_err(|_| format!("line {}: bad {what} {s:?}", idx + 1))
        };
        rows.push(ServeMeasurement {
            name: fields[1].to_string(),
            clients: num(fields[2], "clients")? as usize,
            rows: num(fields[3], "rows")? as usize,
            requests: num(fields[4], "requests")? as usize,
            p50_us: num(fields[5], "p50_us")?,
            p99_us: num(fields[6], "p99_us")?,
            rows_per_s: num(fields[7], "rows_per_s")?,
            launches: 0,
            wall_rows_per_s: 0.0,
        });
    }
    if rows.is_empty() {
        return Err("no serve rows found in baseline CSV".into());
    }
    Ok(rows)
}

/// Adapt serve measurements into the generic regression-band machinery
/// ([`crate::regression::check`] compares on `rate`).
pub fn as_fit_measurements(serve: &[ServeMeasurement]) -> Vec<FitMeasurement> {
    serve
        .iter()
        .map(|s| FitMeasurement {
            name: s.name.clone(),
            m: s.requests * s.rows,
            median_s: s.p50_us / 1e6,
            rate: s.rows_per_s,
            inertia: 0.0,
        })
        .collect()
}

/// The headline ratio: batched modeled device throughput over the
/// one-call-per-launch baseline. `None` when either scenario is missing.
pub fn batching_speedup(rows: &[ServeMeasurement]) -> Option<f64> {
    let rate = |name: &str| rows.iter().find(|s| s.name == name).map(|s| s.rows_per_s);
    Some(rate("batched64")? / rate("unbatched64")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(name: &str, rate: f64) -> ServeMeasurement {
        ServeMeasurement {
            name: name.into(),
            clients: CLIENTS,
            rows: ROWS_PER_REQUEST,
            requests: 1024,
            p50_us: 150.0,
            p99_us: 900.0,
            rows_per_s: rate,
            launches: 0,
            wall_rows_per_s: 0.0,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_us(&mut v, 0.50), 50.0);
        assert_eq!(percentile_us(&mut v, 0.99), 99.0);
        assert_eq!(percentile_us(&mut v, 1.0), 100.0);
        let mut one = [42.0];
        assert_eq!(percentile_us(&mut one, 0.5), 42.0);
    }

    #[test]
    fn modeled_time_rewards_launch_amortization() {
        // Same rows, 64x fewer launches: the modeled device time must drop
        // by well over 2x — launch overhead is the dominant term at 16-row
        // launches on the serving shape.
        let rows = 64 * ROWS_PER_REQUEST;
        let unbatched = modeled_device_s(64, rows);
        let batched = modeled_device_s(1, rows);
        assert!(unbatched > 0.0 && batched > 0.0);
        assert!(
            unbatched / batched >= 2.0,
            "one-call-per-launch {unbatched:.6}s vs coalesced {batched:.6}s"
        );
    }

    #[test]
    fn csv_round_trips_through_the_parser() {
        let m = meas("batched64", 123456.7);
        let csv = format!("{}{}", SERVE_CSV_HEADER, serve_csv_row(&m));
        let parsed = parse_serve_baseline(&csv).unwrap();
        assert_eq!(parsed, vec![m]);
        assert!(
            parse_serve_baseline(SERVE_CSV_HEADER).is_err(),
            "fails closed when empty"
        );
        assert!(parse_serve_baseline("serve,x,1,2,3\n").is_err());
    }

    #[test]
    fn speedup_reads_the_two_headline_scenarios() {
        let rows = vec![meas("unbatched64", 50_000.0), meas("batched64", 150_000.0)];
        assert_eq!(batching_speedup(&rows), Some(3.0));
        assert_eq!(batching_speedup(&rows[..1]), None);
    }

    #[test]
    fn bench_runs_at_tiny_scale_and_batching_coalesces() {
        // Smallest meaningful traffic: 2 requests per client. The full-size
        // throughput claim lives in bench_check against the committed
        // baseline; here we assert shape, sanity and that batching actually
        // reduced launches.
        let out = run_serve_bench(CLIENTS * ROWS_PER_REQUEST * 2);
        assert_eq!(out.len(), SCENARIO_NAMES.len());
        for (m, name) in out.iter().zip(SCENARIO_NAMES) {
            assert_eq!(m.name, name);
            assert_eq!(m.requests, CLIENTS * 2);
            assert!(m.rows_per_s > 0.0 && m.wall_rows_per_s > 0.0, "{m:?}");
            assert!(m.p50_us > 0.0 && m.p99_us >= m.p50_us, "{m:?}");
        }
        assert_eq!(
            out[0].launches, out[0].requests,
            "unbatched: launch per call"
        );
        assert!(out[1].launches < out[1].requests, "batched: coalesced");
        assert!(batching_speedup(&out).unwrap() > 1.0);
    }
}
