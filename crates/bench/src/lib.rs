//! # bench_harness — the evaluation harness
//!
//! Regenerates every table and figure of the paper's §V on the simulated
//! GPU: the step-wise optimization ladder (Fig. 7), the parameter sweeps
//! against cuML (Figs. 8–11, 19–20), the speedup heatmap and parameter
//! selection analysis (Figs. 12–14, Table I), the fault-tolerance overhead
//! studies (Figs. 15–16) and the error-injection campaigns (Figs. 17–18,
//! 21).
//!
//! GFLOPS series come from the calibrated timing model at paper scale
//! (M = 131072); the injection figures additionally run *functional*
//! campaigns at reduced scale where real bit flips are injected, detected
//! and corrected, so the correctness claims are exercised, not asserted.
//!
//! The [`campaign`] subsystem generalizes those functional campaigns into
//! a declarative sweep over injection rates × schemes × precisions ×
//! variants × shapes with SDC classification against fault-free twin fits
//! (§V-C tables; `campaign` bin), and [`drift`] gates generated tables
//! against committed baselines (`bench_check` bin).
//!
//! Run `cargo run -p bench_harness --release --bin figures -- --fig all` to
//! write `results/figNN.csv` plus a printed summary per figure, and
//! `cargo run -p bench_harness --release --bin campaign -- --quick` for
//! the fault-injection campaign table.

pub mod campaign;
pub mod drift;
pub mod figures;
pub mod fitbench;
pub mod paper;
pub mod predictbench;
pub mod regression;
pub mod report;
pub mod sanitize;
pub mod servebench;
pub mod tracebench;

pub use report::{FigureReport, ReportSink};
