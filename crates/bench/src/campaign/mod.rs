//! The fault-injection campaign subsystem: sweep injection rates × ABFT
//! schemes × precisions × variants × dataset shapes, classify silent data
//! corruption against fault-free twin runs, and aggregate the paper's §V-C
//! detection / correction / SDC tables from one command.
//!
//! * [`grid`] — declarative sweep spec, expanded to deterministically
//!   seeded cells,
//! * [`runner`] — parallel cell execution with per-cell serial determinism,
//! * [`mod@classify`] — benign-vs-SDC classification via fault-free twins,
//! * [`table`] — aggregation into [`crate::report::FigureReport`] tables
//!   plus per-injection JSONL logs,
//! * [`quant`] — the serving-path axis: bit flips in resident quantized
//!   centroid tables, classified against host-reference labels
//!   (`campaign --quant-table N`).
//!
//! `cargo run -p bench_harness --release --bin campaign -- --quick` is the
//! one-command entry point (see the `campaign` binary).

pub mod classify;
pub mod grid;
pub mod quant;
pub mod runner;
pub mod table;

pub use classify::{classify, Classification, SdcPolicy};
pub use grid::{
    parse_precision, parse_scheme, scheme_token, CampaignCell, CampaignGrid, DataShape,
};
pub use quant::{quant_table_csv, run_quant_campaign, QuantCampaignRow, QuantCampaignSpec};
pub use runner::{run_campaign, run_cell, CellOutcome};
pub use table::{aggregate, campaign_table, records_jsonl, CampaignRow};
