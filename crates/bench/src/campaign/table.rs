//! Aggregate cell outcomes into the paper's §V-C detection / correction /
//! SDC tables (one row per scheme × precision × rate) and render
//! per-injection JSONL logs.
//!
//! Every formatted value is a pure function of the outcomes, and outcomes
//! are ordered by cell index, so the rendered table is byte-identical
//! across runs and execution policies — the committed baseline compares
//! with `==`.

use super::grid::{scheme_token, variant_token};
use super::runner::CellOutcome;
use crate::report::FigureReport;
use fault::CampaignStats;

/// One aggregated row: all cells sharing (scheme, precision, variant, rate).
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Scheme token (`ftkmeans` / `kosaian` / `wu` / `none`).
    pub scheme: String,
    /// Precision name (`fp32` / `fp64`).
    pub precision: String,
    /// Kernel-variant token (`tensor_v4` / `hamerly`).
    pub variant: String,
    /// Requested rate in errors per modeled second.
    pub rate_hz: f64,
    /// Mean achieved rate after the per-block clamp.
    pub achieved_hz: f64,
    /// Cells aggregated into this row.
    pub cells: usize,
    /// Cells whose result was corrupted (SDC verdict).
    pub sdc_cells: usize,
    /// Summed campaign ledger.
    pub stats: CampaignStats,
}

impl CampaignRow {
    /// Detected faults including update-phase DMR mismatches.
    pub fn detected_total(&self) -> u64 {
        self.stats.detected + self.stats.dmr_mismatches
    }

    /// Repaired faults (in-place corrections, re-baselines, recomputations
    /// and DMR majority votes).
    pub fn handled_total(&self) -> u64 {
        self.stats.handled() + self.stats.dmr_mismatches
    }

    /// Fraction of injected faults visibly detected.
    pub fn detection_rate(&self) -> Option<f64> {
        ratio(self.detected_total(), self.stats.injected)
    }

    /// Fraction of detected faults repaired.
    pub fn correction_rate(&self) -> Option<f64> {
        ratio(self.handled_total(), self.detected_total())
    }

    /// Fraction of injected faults that caused silent data corruption.
    pub fn sdc_rate(&self) -> Option<f64> {
        ratio(self.stats.sdc, self.stats.injected)
    }
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

/// Group outcomes by (scheme, precision, variant, rate) preserving
/// first-seen order (which is grid-expansion order, since outcomes arrive
/// by cell index).
pub fn aggregate(outcomes: &[CellOutcome]) -> Vec<CampaignRow> {
    let mut rows: Vec<CampaignRow> = Vec::new();
    for o in outcomes {
        let scheme = scheme_token(o.cell.scheme).to_string();
        let precision = o.cell.precision.name().to_string();
        let variant = variant_token(o.cell.variant).to_string();
        let row = match rows.iter_mut().find(|r| {
            r.scheme == scheme
                && r.precision == precision
                && r.variant == variant
                && r.rate_hz == o.cell.rate_hz
        }) {
            Some(r) => r,
            None => {
                rows.push(CampaignRow {
                    scheme,
                    precision,
                    variant,
                    rate_hz: o.cell.rate_hz,
                    achieved_hz: 0.0,
                    cells: 0,
                    sdc_cells: 0,
                    stats: CampaignStats::default(),
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.cells += 1;
        row.sdc_cells += o.verdict.is_sdc as usize;
        row.stats.merge(&o.stats);
        row.achieved_hz += o.realization.map_or(0.0, |r| r.achieved_hz);
    }
    for r in &mut rows {
        if r.cells > 0 {
            r.achieved_hz /= r.cells as f64;
        }
    }
    rows
}

/// Render the aggregated detection/correction/SDC table.
pub fn campaign_table(outcomes: &[CellOutcome]) -> FigureReport {
    let mut rep = FigureReport::new(
        "campaign",
        "fault-injection campaign: detection / correction / SDC by scheme, precision, variant \
         and rate",
        &[
            "scheme",
            "precision",
            "variant",
            "rate_hz",
            "achieved_hz",
            "cells",
            "injected",
            "detected",
            "corrected",
            "rebaselined",
            "recomputed",
            "dmr",
            "benign",
            "sdc",
            "detection_rate",
            "correction_rate",
            "sdc_rate",
            "sdc_cells",
        ],
    );
    let rows = aggregate(outcomes);
    for r in &rows {
        rep.push_row(vec![
            r.scheme.clone(),
            r.precision.clone(),
            r.variant.clone(),
            format!("{:.1}", r.rate_hz),
            format!("{:.1}", r.achieved_hz),
            r.cells.to_string(),
            r.stats.injected.to_string(),
            r.stats.detected.to_string(),
            r.stats.corrected.to_string(),
            r.stats.rebaselined.to_string(),
            r.stats.recomputed.to_string(),
            r.stats.dmr_mismatches.to_string(),
            r.stats.benign.to_string(),
            r.stats.sdc.to_string(),
            fmt_rate(r.detection_rate()),
            fmt_rate(r.correction_rate()),
            fmt_rate(r.sdc_rate()),
            r.sdc_cells.to_string(),
        ]);
    }
    let saturated: u64 = rows.iter().map(|r| r.stats.saturated_launches).sum();
    let launches: u64 = rows.iter().map(|r| r.stats.injection_launches).sum();
    if saturated > 0 {
        rep.note(format!(
            "{saturated}/{launches} injected launches saturated the per-block probability clamp \
             (achieved_hz < rate_hz): the schedule cannot deliver more than one fault per \
             threadblock per launch"
        ));
    }
    let total_injected: u64 = rows.iter().map(|r| r.stats.injected).sum();
    let total_sdc: u64 = rows.iter().map(|r| r.stats.sdc).sum();
    rep.note(format!(
        "{} cells, {total_injected} faults injected, {total_sdc} classified SDC; rates are \
         errors per modeled second of GPU residency (paper §V-C protocol)",
        outcomes.len()
    ));
    rep
}

/// Render every injection of every cell as one JSON object per line.
///
/// Hand-rolled serialization (the offline serde shim is declaration-only);
/// all fields are numbers, booleans or fixed tokens, so no string escaping
/// is needed.
pub fn records_jsonl(outcomes: &[CellOutcome]) -> String {
    let mut s = String::new();
    for o in outcomes {
        for r in &o.records {
            let field = format!("{:?}", r.field()).to_ascii_lowercase();
            s.push_str(&format!(
                concat!(
                    "{{\"cell\":{},\"scheme\":\"{}\",\"precision\":\"{}\",\"variant\":\"{}\",",
                    "\"rate_hz\":{},",
                    "\"rep\":{},\"shape\":\"{}\",\"block\":[{},{}],\"warp\":{},\"k_step\":{},",
                    "\"hit_checksum\":{},\"elem_idx\":{},\"bit\":{},\"width\":{},\"field\":\"{}\",",
                    "\"magnitude\":{},\"cell_sdc\":{}}}\n"
                ),
                o.cell.idx,
                scheme_token(o.cell.scheme),
                o.cell.precision.name(),
                variant_token(o.cell.variant),
                o.cell.rate_hz,
                o.cell.rep,
                o.cell.shape.label(),
                r.block.0,
                r.block.1,
                r.warp,
                r.k_step,
                r.hit_checksum,
                r.elem_idx,
                r.bit,
                r.width,
                field,
                json_f64(r.magnitude),
                o.verdict.is_sdc,
            ));
        }
    }
    s
}

fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    }
}

/// JSON has no NaN/inf literals; a flipped exponent bit can produce both.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::super::classify::Classification;
    use super::super::grid::{CampaignCell, DataShape};
    use super::*;
    use abft::SchemeKind;
    use fault::{InjectionRecord, RateRealization};
    use gpu_sim::Precision;
    use kmeans::Variant;

    fn outcome(scheme: SchemeKind, rate: f64, injected: u64, sdc: bool) -> CellOutcome {
        CellOutcome {
            cell: CampaignCell {
                idx: 0,
                rate_hz: rate,
                scheme,
                precision: Precision::Fp32,
                variant: Variant::Tensor(None),
                shape: DataShape {
                    m: 64,
                    dim: 4,
                    k: 2,
                },
                rep: 0,
                seed: 1,
            },
            stats: {
                let mut s = CampaignStats {
                    injected,
                    detected: injected / 2,
                    corrected: injected / 2,
                    ..Default::default()
                };
                s.classify_unhandled(sdc);
                s
            },
            realization: Some(RateRealization {
                requested_hz: rate,
                achieved_hz: rate,
            }),
            verdict: Classification {
                label_agreement: if sdc { 0.5 } else { 1.0 },
                inertia_rel_diff: 0.0,
                labels_match: !sdc,
                is_sdc: sdc,
            },
            iterations: 4,
            records: vec![InjectionRecord {
                block: (0, 1),
                warp: 2,
                k_step: 8,
                hit_checksum: false,
                elem_idx: 3,
                bit: 30,
                width: 32,
                magnitude: 2.5,
            }],
        }
    }

    #[test]
    fn aggregation_merges_same_coordinates() {
        let outs = vec![
            outcome(SchemeKind::FtKMeans, 50.0, 10, false),
            outcome(SchemeKind::FtKMeans, 50.0, 6, true),
            outcome(SchemeKind::Wu, 50.0, 4, false),
        ];
        let rows = aggregate(&outs);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cells, 2);
        assert_eq!(rows[0].stats.injected, 16);
        assert_eq!(rows[0].sdc_cells, 1);
        assert_eq!(rows[1].scheme, "wu");
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let row = CampaignRow {
            scheme: "none".into(),
            precision: "fp32".into(),
            variant: "tensor_v4".into(),
            rate_hz: 0.0,
            achieved_hz: 0.0,
            cells: 1,
            sdc_cells: 0,
            stats: CampaignStats::default(),
        };
        assert_eq!(row.detection_rate(), None);
        assert_eq!(row.correction_rate(), None);
        assert_eq!(row.sdc_rate(), None);
        assert_eq!(fmt_rate(None), "-");
        assert_eq!(fmt_rate(Some(0.99555)), "0.9956");
    }

    #[test]
    fn table_has_one_row_per_group_and_stable_columns() {
        let outs = vec![
            outcome(SchemeKind::FtKMeans, 50.0, 10, false),
            outcome(SchemeKind::Kosaian, 50.0, 8, false),
        ];
        let rep = campaign_table(&outs);
        assert_eq!(rep.rows.len(), 2);
        assert_eq!(rep.columns.len(), rep.rows[0].len());
        assert_eq!(rep.id, "campaign");
        let csv = rep.to_csv();
        assert!(csv.contains("ftkmeans,fp32,tensor_v4,50.0"));
    }

    #[test]
    fn jsonl_lines_parse_shape() {
        let outs = vec![outcome(SchemeKind::Wu, 50.0, 1, false)];
        let j = records_jsonl(&outs);
        assert_eq!(j.lines().count(), 1);
        let line = j.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"scheme\":\"wu\""));
        assert!(line.contains("\"variant\":\"tensor_v4\""));
        assert!(line.contains("\"bit\":30"));
        assert!(line.contains("\"field\":\"exponent\""));
        assert!(line.contains("\"magnitude\":2.5"));
    }

    #[test]
    fn non_finite_magnitudes_stay_valid_json() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
