//! Quantized-resident-state fault campaign: bit flips in the serving
//! path's quantized centroid tables (packed codes, per-centroid scales,
//! cached norms), classified against host-reference labels.
//!
//! The fit-time campaign ([`super::runner`]) strikes the distance-kernel
//! arithmetic; this axis strikes *state at rest* — the resident quantized
//! table a model serves from between batches. Protection is the digest
//! guard in the predict path ([`kmeans::QuantizedCentroids::verify`] before
//! every quantized launch): a corrupted table must be detected, rebuilt
//! from the fp centroids, and the served labels must equal the exact
//! reference — any mismatch is silent data corruption.
//!
//! Deterministic by construction: fault sites come from splitmix64
//! chains, fits and queries from fixed seeds, so `quant_table.csv` is
//! byte-stable across runs and executors.

use super::grid::splitmix64;
use gpu_sim::{DeviceProfile, Matrix, Scalar};
use kmeans::quant::QuantKind;
use kmeans::reference::assign_reference;
use kmeans::{FittedModel, KMeansConfig, PredictPolicy, Session};

/// Which piece of resident quantized state a rep corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantTarget {
    /// The packed fp16/int8 code words.
    Codes,
    /// The per-centroid int8 dequantization scales.
    Scales,
    /// The cached quantized-centroid norms the fused scan reads.
    Norms,
}

impl QuantTarget {
    pub const ALL: [QuantTarget; 3] = [QuantTarget::Codes, QuantTarget::Scales, QuantTarget::Norms];

    pub fn label(self) -> &'static str {
        match self {
            QuantTarget::Codes => "codes",
            QuantTarget::Scales => "scales",
            QuantTarget::Norms => "norms",
        }
    }
}

/// Campaign shape knobs (one cell = one kind × target pair).
#[derive(Debug, Clone)]
pub struct QuantCampaignSpec {
    /// Bit flips per kind × target cell.
    pub reps: u64,
    /// Base seed for fit data, query batches, and fault sites.
    pub seed: u64,
    /// Training samples for the one-time fit per kind.
    pub train_m: usize,
    /// Query samples per served batch.
    pub query_m: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Cluster count.
    pub k: usize,
}

impl Default for QuantCampaignSpec {
    fn default() -> Self {
        QuantCampaignSpec {
            reps: 8,
            seed: 0xF7CA_2024,
            train_m: 1024,
            query_m: 512,
            dim: 16,
            k: 8,
        }
    }
}

/// One aggregated row of the quantized-state campaign table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantCampaignRow {
    /// Quantization kind label (`fp16` / `int8`).
    pub kind: String,
    /// Corrupted state ([`QuantTarget::label`]).
    pub target: String,
    /// Bit flips injected (one per rep).
    pub injected: u64,
    /// Flips the digest guard caught before serving.
    pub detected: u64,
    /// Reps whose served labels matched the exact reference.
    pub benign: u64,
    /// Reps that served wrong labels — silent data corruption.
    pub sdc: u64,
}

impl QuantCampaignRow {
    /// SDC fraction of this row (None when nothing was injected).
    pub fn sdc_rate(&self) -> Option<f64> {
        (self.injected > 0).then(|| self.sdc as f64 / self.injected as f64)
    }
}

fn blobs(m: usize, dim: usize, k: usize, seed: u64) -> Matrix<f32> {
    Matrix::from_fn(m, dim, |r, c| {
        let h = splitmix64(seed ^ (r as u64).wrapping_mul(0x9E37_79B9) ^ (c as u64));
        ((r % k) * 10) as f32 + (h % 1000) as f32 / 1000.0 + c as f32 * 0.01
    })
}

fn serving_model(spec: &QuantCampaignSpec, kind: QuantKind) -> FittedModel<f32> {
    let mut model = Session::new(DeviceProfile::a100())
        .kmeans(KMeansConfig {
            k: spec.k,
            max_iter: 3,
            tol: 0.0,
            seed: spec.seed,
            ..Default::default()
        })
        .fit_model(&blobs(spec.train_m, spec.dim, spec.k, spec.seed))
        .expect("quant campaign fit");
    model.set_predict_policy(match kind {
        QuantKind::Fp16 => PredictPolicy::Fp16,
        QuantKind::Int8 => PredictPolicy::Int8,
    });
    model
}

/// Run one kind × target cell: `reps` independent bit flips, each against
/// a fresh query batch, served through the guarded quantized predict path
/// and compared to the host reference labels.
fn run_cell(spec: &QuantCampaignSpec, kind: QuantKind, target: QuantTarget) -> QuantCampaignRow {
    let model = serving_model(spec, kind);
    let detected_before = model.predict_stats().detected;
    let mut benign = 0u64;
    let mut sdc = 0u64;
    for rep in 0..spec.reps {
        let site = splitmix64(
            spec.seed ^ 0xC0DE ^ (rep << 8) ^ (target.label().len() as u64) ^ (kind as u64),
        );
        // Corrupt the *live* resident table (the cache hands out shared
        // device pointers, so this is the table the next predict serves).
        let table = model.quantized_table(kind);
        match target {
            QuantTarget::Codes => {
                let lanes = spec.k * spec.dim;
                let bits = match kind {
                    QuantKind::Fp16 => 16,
                    QuantKind::Int8 => 8,
                };
                table.corrupt_code_bit(site as usize % lanes, (site >> 32) as u32 % bits);
            }
            QuantTarget::Scales => {
                let idx = site as usize % spec.k;
                let prev = table.scales.load(idx);
                table
                    .scales
                    .store(idx, prev.flip_bit((site >> 32) as u32 % 32));
            }
            QuantTarget::Norms => {
                let idx = site as usize % spec.k;
                let prev = table.norms.load(idx);
                table
                    .norms
                    .store(idx, prev.flip_bit((site >> 32) as u32 % 32));
            }
        }
        let batch = blobs(
            spec.query_m,
            spec.dim,
            spec.k,
            splitmix64(spec.seed ^ (rep + 1)),
        );
        let served = model.predict(&batch).expect("guarded quantized predict");
        let (want, _) = assign_reference(&batch, &model.centroids);
        if served == want {
            benign += 1;
        } else {
            sdc += 1;
        }
    }
    QuantCampaignRow {
        kind: kind.label().to_string(),
        target: target.label().to_string(),
        injected: spec.reps,
        detected: model.predict_stats().detected - detected_before,
        benign,
        sdc,
    }
}

/// Sweep both quantization kinds over every [`QuantTarget`].
pub fn run_quant_campaign(spec: &QuantCampaignSpec) -> Vec<QuantCampaignRow> {
    let mut rows = Vec::new();
    for kind in [QuantKind::Fp16, QuantKind::Int8] {
        for target in QuantTarget::ALL {
            rows.push(run_cell(spec, kind, target));
        }
    }
    rows
}

/// Render the campaign rows as the committed-artifact CSV.
pub fn quant_table_csv(rows: &[QuantCampaignRow]) -> String {
    let mut out = String::from("kind,target,injected,detected,benign,sdc\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.kind, r.target, r.injected, r.detected, r.benign, r.sdc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> QuantCampaignSpec {
        QuantCampaignSpec {
            reps: 2,
            seed: 11,
            train_m: 256,
            query_m: 128,
            dim: 8,
            k: 4,
        }
    }

    #[test]
    fn guarded_predict_detects_every_flip_and_serves_exact_labels() {
        let rows = run_quant_campaign(&tiny_spec());
        assert_eq!(rows.len(), 6, "2 kinds x 3 targets");
        for r in &rows {
            assert_eq!(r.injected, 2);
            assert_eq!(
                r.detected, r.injected,
                "digest guard must catch every {}/{} flip",
                r.kind, r.target
            );
            assert_eq!(r.sdc, 0, "guarded serving must stay label-exact: {r:?}");
            assert_eq!(r.benign, r.injected);
            assert_eq!(r.sdc_rate(), Some(0.0));
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_quant_campaign(&tiny_spec());
        let b = run_quant_campaign(&tiny_spec());
        assert_eq!(a, b);
        assert_eq!(quant_table_csv(&a), quant_table_csv(&b));
    }

    #[test]
    fn csv_schema_is_stable() {
        let csv = quant_table_csv(&[QuantCampaignRow {
            kind: "int8".into(),
            target: "codes".into(),
            injected: 8,
            detected: 8,
            benign: 8,
            sdc: 0,
        }]);
        assert_eq!(
            csv,
            "kind,target,injected,detected,benign,sdc\nint8,codes,8,8,8,0\n"
        );
    }
}
