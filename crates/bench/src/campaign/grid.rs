//! Declarative sweep specification: the cartesian grid of injection rates ×
//! ABFT schemes × precisions × kernel variants × dataset shapes × reps.
//!
//! A [`CampaignGrid`] expands into a flat, deterministically ordered and
//! deterministically seeded list of [`CampaignCell`]s; the runner executes
//! cells in any order (including in parallel) and results are re-assembled
//! by cell index, so the emitted table is byte-identical regardless of
//! execution policy.

use abft::SchemeKind;
use gpu_sim::Precision;
use kmeans::Variant;

/// One dataset shape swept by a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataShape {
    /// Samples (M).
    pub m: usize,
    /// Feature dimension (N).
    pub dim: usize,
    /// Clusters (K).
    pub k: usize,
}

impl DataShape {
    /// Compact `MxNxK` label used in reports.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.m, self.dim, self.k)
    }
}

/// The declarative sweep specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignGrid {
    /// Injection rates in errors per modeled second of GPU residency (the
    /// paper's §V-C axis: "tens of errors injected per second"). Each rep
    /// models [`CampaignGrid::residency_s`] seconds of execution, so a
    /// 50 err/s cell sees ≈ `50 × residency_s` injections per fit.
    pub rates_hz: Vec<f64>,
    /// ABFT schemes under test.
    pub schemes: Vec<SchemeKind>,
    /// Floating-point precisions under test.
    pub precisions: Vec<Precision>,
    /// Assignment-kernel variants under test.
    pub variants: Vec<Variant>,
    /// Dataset shapes under test.
    pub shapes: Vec<DataShape>,
    /// Statistical repetitions per cell (distinct data/injection seeds).
    pub reps: usize,
    /// Modeled GPU residency per fit, in seconds (see
    /// `kmeans::FtConfig::modeled_residency_s`).
    pub residency_s: f64,
    /// Lloyd iterations per fit (tol = 0, so every fit does fixed work).
    pub max_iter: usize,
    /// Base seed every per-cell seed derives from.
    pub base_seed: u64,
}

/// One executable cell of the expanded grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignCell {
    /// Flat index in grid-expansion order (stable output ordering).
    pub idx: usize,
    /// Injection rate in errors per modeled second.
    pub rate_hz: f64,
    /// ABFT scheme.
    pub scheme: SchemeKind,
    /// Precision.
    pub precision: Precision,
    /// Assignment-kernel variant.
    pub variant: Variant,
    /// Dataset shape.
    pub shape: DataShape,
    /// Repetition index within the cell's coordinates.
    pub rep: usize,
    /// Derived seed (data generation, centroid init and injection stream).
    pub seed: u64,
}

impl CampaignGrid {
    /// The reduced-scale grid behind `campaign --quick`, the committed
    /// baseline table and the CI smoke leg: every scheme × both precisions
    /// at the paper's 50 err/s plus a lighter 10 err/s point.
    ///
    /// `k = 64` fills the FP64 warp tile (and half the FP32 one), so most
    /// injections strike *live* accumulator lanes — zero-valued padding
    /// lanes can only produce sub-threshold flips, which would depress the
    /// detection column into noise.
    pub fn quick() -> Self {
        CampaignGrid {
            rates_hz: vec![10.0, 50.0],
            schemes: vec![SchemeKind::FtKMeans, SchemeKind::Kosaian, SchemeKind::Wu],
            precisions: vec![Precision::Fp32, Precision::Fp64],
            variants: vec![Variant::Tensor(None), Variant::Hamerly],
            shapes: vec![DataShape {
                m: 640,
                dim: 8,
                k: 64,
            }],
            reps: 2,
            residency_s: 1.0,
            max_iter: 6,
            base_seed: 0xF7CA_2024,
        }
    }

    /// The full default grid: the paper's rate axis extended past the
    /// saturation knee, with an unprotected control scheme and more reps.
    pub fn full() -> Self {
        CampaignGrid {
            rates_hz: vec![10.0, 50.0, 100.0, 200.0],
            schemes: vec![
                SchemeKind::None,
                SchemeKind::FtKMeans,
                SchemeKind::Kosaian,
                SchemeKind::Wu,
            ],
            precisions: vec![Precision::Fp32, Precision::Fp64],
            variants: vec![Variant::Tensor(None), Variant::Hamerly],
            shapes: vec![DataShape {
                m: 2048,
                dim: 32,
                k: 64,
            }],
            reps: 3,
            residency_s: 1.0,
            max_iter: 6,
            base_seed: 0xF7CA_2024,
        }
    }

    /// Expand into the flat, deterministically seeded cell list. Axis
    /// nesting order (outer → inner): scheme, precision, rate, variant,
    /// shape, rep — so the emitted table groups naturally by scheme.
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut out = Vec::new();
        for (si, &scheme) in self.schemes.iter().enumerate() {
            for (pi, &precision) in self.precisions.iter().enumerate() {
                for (ri, &rate_hz) in self.rates_hz.iter().enumerate() {
                    for (vi, &variant) in self.variants.iter().enumerate() {
                        for (hi, &shape) in self.shapes.iter().enumerate() {
                            for rep in 0..self.reps.max(1) {
                                // The seed mixes only *axis positions*, never
                                // the expansion counter, so inserting a new
                                // rate does not reshuffle every other cell.
                                let seed = cell_seed(self.base_seed, &[si, pi, ri, vi, hi, rep]);
                                out.push(CampaignCell {
                                    idx: out.len(),
                                    rate_hz,
                                    scheme,
                                    precision,
                                    variant,
                                    shape,
                                    rep,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.rates_hz.len()
            * self.schemes.len()
            * self.precisions.len()
            * self.variants.len()
            * self.shapes.len()
            * self.reps.max(1)
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// SplitMix64 step — the standard 64-bit finalizer used to derive
/// independent per-cell seeds from the base seed and axis coordinates
/// (and, in the runner, injection seeds from cell seeds).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn cell_seed(base: u64, coords: &[usize]) -> u64 {
    let mut s = splitmix64(base);
    for &c in coords {
        s = splitmix64(s ^ (c as u64).wrapping_add(0xA5A5_5A5A_0F0F_F0F0));
    }
    s
}

/// Stable lowercase token for a scheme — shared by CLI parsing, table rows
/// and JSONL records.
pub fn scheme_token(s: SchemeKind) -> &'static str {
    match s {
        SchemeKind::None => "none",
        SchemeKind::FtKMeans => "ftkmeans",
        SchemeKind::Kosaian => "kosaian",
        SchemeKind::Wu => "wu",
    }
}

/// Parse a scheme token (the inverse of [`scheme_token`]).
pub fn parse_scheme(s: &str) -> Option<SchemeKind> {
    match s.to_ascii_lowercase().as_str() {
        "none" | "off" => Some(SchemeKind::None),
        "ftkmeans" | "ft" | "ft-kmeans" => Some(SchemeKind::FtKMeans),
        "kosaian" => Some(SchemeKind::Kosaian),
        "wu" => Some(SchemeKind::Wu),
        _ => None,
    }
}

/// Stable lowercase token for a campaign variant — shared by table rows
/// and JSONL records. Only the variants the campaign axes actually sweep
/// get tokens; `Tensor` is reported with its paper-series name.
pub fn variant_token(v: Variant) -> &'static str {
    match v {
        Variant::Naive => "naive",
        Variant::GemmV1 => "gemm_v1",
        Variant::FusedV2 => "fused_v2",
        Variant::BroadcastV3 => "broadcast_v3",
        Variant::Tensor(_) => "tensor_v4",
        Variant::Hamerly => "hamerly",
    }
}

/// Parse a precision token (`fp32` / `fp64`).
pub fn parse_precision(s: &str) -> Option<Precision> {
    match s.to_ascii_lowercase().as_str() {
        "fp32" | "f32" | "32" => Some(Precision::Fp32),
        "fp64" | "f64" | "64" => Some(Precision::Fp64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_schemes_and_precisions() {
        let g = CampaignGrid::quick();
        let cells = g.cells();
        assert_eq!(cells.len(), g.len());
        assert!(g.rates_hz.contains(&50.0), "the paper's headline rate");
        for &s in &[SchemeKind::FtKMeans, SchemeKind::Kosaian, SchemeKind::Wu] {
            for &p in &[Precision::Fp32, Precision::Fp64] {
                assert!(
                    cells.iter().any(|c| c.scheme == s && c.precision == p),
                    "missing {s:?}/{p:?}"
                );
            }
        }
    }

    #[test]
    fn quick_grid_sweeps_both_kernel_families() {
        let cells = CampaignGrid::quick().cells();
        assert!(cells.iter().any(|c| c.variant == Variant::Tensor(None)));
        assert!(cells.iter().any(|c| c.variant == Variant::Hamerly));
        assert_eq!(variant_token(Variant::Tensor(None)), "tensor_v4");
        assert_eq!(variant_token(Variant::Hamerly), "hamerly");
    }

    #[test]
    fn cell_indices_are_dense_and_ordered() {
        let cells = CampaignGrid::quick().cells();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.idx, i);
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = CampaignGrid::quick().cells();
        let b = CampaignGrid::quick().cells();
        assert_eq!(a, b, "expansion must be reproducible");
        let mut seeds: Vec<u64> = a.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "per-cell seeds must be distinct");
    }

    #[test]
    fn adding_a_rate_preserves_other_cells_seeds() {
        let base = CampaignGrid::quick();
        let mut wider = base.clone();
        wider.rates_hz.push(500.0);
        let find = |cells: &[CampaignCell], rate: f64| -> Vec<u64> {
            cells
                .iter()
                .filter(|c| c.rate_hz == rate)
                .map(|c| c.seed)
                .collect()
        };
        assert_eq!(
            find(&base.cells(), 50.0),
            find(&wider.cells(), 50.0),
            "axis-position seeding: existing cells keep their seeds"
        );
    }

    #[test]
    fn scheme_tokens_roundtrip() {
        for s in [
            SchemeKind::None,
            SchemeKind::FtKMeans,
            SchemeKind::Kosaian,
            SchemeKind::Wu,
        ] {
            assert_eq!(parse_scheme(scheme_token(s)), Some(s));
        }
        assert_eq!(parse_scheme("bogus"), None);
        assert_eq!(parse_precision("fp32"), Some(Precision::Fp32));
        assert_eq!(parse_precision("fp64"), Some(Precision::Fp64));
        assert_eq!(parse_precision("fp16"), None);
    }
}
