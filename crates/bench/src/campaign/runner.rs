//! Campaign execution: run every cell of an expanded grid, in parallel over
//! the `gpu_sim::exec` pool, with per-cell determinism.
//!
//! Each cell fits twice — once under injection, once as the fault-free twin
//! — inside a **serial executor scope**: random-mode injection consumes RNG
//! draws in block-execution order, so parallel block scheduling would make
//! the fault *sites* scheduling-dependent. Pinning each cell's fits to
//! serial block order makes every cell's outcome a pure function of its
//! seed; the campaign then parallelizes across cells instead (results are
//! written into a pre-sized slot array by cell index), so the emitted table
//! is byte-identical between `FTK_EXEC=serial` and the worker pool.

use super::classify::{classify, Classification, SdcPolicy};
use super::grid::{splitmix64, CampaignCell, CampaignGrid};
use abft::SchemeKind;
use data::{make_blobs, BlobSpec};
use fault::{CampaignStats, FaultTarget, InjectionRecord, InjectionSchedule, RateRealization};
use gpu_sim::exec::{self, Executor};
use gpu_sim::{DeviceProfile, Precision, Scalar};
use kmeans::{FtConfig, KMeansConfig, Session, Variant};

/// Everything recorded about one executed cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell that ran.
    pub cell: CampaignCell,
    /// Campaign ledger of the injected fit, with update-phase DMR
    /// mismatches folded in and `benign`/`sdc` filled from the twin
    /// comparison.
    pub stats: CampaignStats,
    /// Requested vs. achieved injection rate (None when the cell's rate
    /// is zero).
    pub realization: Option<RateRealization>,
    /// Twin-comparison verdict.
    pub verdict: Classification,
    /// Lloyd iterations the injected fit executed.
    pub iterations: usize,
    /// Per-injection records of the injected fit (JSONL fodder).
    pub records: Vec<InjectionRecord>,
}

/// Run every cell of `grid` and return outcomes ordered by cell index.
///
/// Cells are distributed over the current executor (the global worker pool
/// unless the caller scoped a different one with
/// [`gpu_sim::exec::with_executor`]); each individual cell runs its fits
/// under a private serial executor, so the outcome vector — and any table
/// rendered from it — is identical whatever the outer policy.
pub fn run_campaign(grid: &CampaignGrid) -> Vec<CellOutcome> {
    let cells = grid.cells();
    let mut slots: Vec<Option<CellOutcome>> = Vec::new();
    slots.resize_with(cells.len(), || None);
    exec::with_current(|e| {
        e.par_chunks_mut(&mut slots, 1, |offset, piece| {
            let serial = Executor::serial();
            exec::with_executor(&serial, || {
                for (i, slot) in piece.iter_mut().enumerate() {
                    *slot = Some(run_cell(grid, &cells[offset + i]));
                }
            });
        });
    });
    slots
        .into_iter()
        .map(|s| s.expect("every cell slot filled"))
        .collect()
}

/// Execute one cell (twin fit + classification) under the ambient executor.
pub fn run_cell(grid: &CampaignGrid, cell: &CampaignCell) -> CellOutcome {
    match cell.precision {
        Precision::Fp32 => run_cell_typed::<f32>(grid, cell),
        Precision::Fp64 => run_cell_typed::<f64>(grid, cell),
    }
}

fn run_cell_typed<T: Scalar>(grid: &CampaignGrid, cell: &CampaignCell) -> CellOutcome {
    let (data, _, _) = make_blobs::<T>(&BlobSpec {
        samples: cell.shape.m,
        dim: cell.shape.dim,
        centers: cell.shape.k,
        cluster_std: 0.3,
        center_box: 7.0,
        seed: cell.seed,
    });
    let injection = if cell.rate_hz > 0.0 {
        InjectionSchedule::Rate {
            errors_per_second: cell.rate_hz,
        }
    } else {
        InjectionSchedule::Off
    };
    let cfg = KMeansConfig {
        k: cell.shape.k,
        max_iter: grid.max_iter,
        tol: 0.0, // fixed work per fit: rates stay comparable across cells
        seed: cell.seed,
        variant: cell.variant,
        ft: FtConfig {
            scheme: cell.scheme,
            // The unprotected control runs genuinely unprotected.
            dmr_update: cell.scheme != SchemeKind::None,
            injection,
            injection_seed: splitmix64(cell.seed),
            // The paper's §V-C protocol: corrupt the distance-kernel MMA
            // stream (the thing the schemes axis protects); the update
            // phase is DMR territory with its own benches. The Hamerly
            // variant computes distances on scalar SIMT FMAs — its sites
            // never match the tensor-payload filter, so it gets the SIMT
            // target or the whole cell would inject nothing.
            fault_target: if cell.variant == Variant::Hamerly {
                FaultTarget::SimtFma
            } else {
                FaultTarget::PayloadMma
            },
            // Revalidate Hamerly bounds every iteration: campaign cells
            // exist to measure detection, not to amortize sweep cost.
            revalidate_every: 1,
            modeled_residency_s: grid.residency_s,
        },
        ..Default::default()
    };
    let twin = Session::new(DeviceProfile::a100())
        .kmeans(cfg)
        .fit_with_twin(&data)
        .expect("campaign cell fit");

    let verdict = classify(
        &twin.clean,
        &twin.injected,
        &SdcPolicy::for_precision(cell.precision),
    );
    let mut stats = twin.injected.ft_stats;
    // Update-phase faults absorbed by DMR live in the separate DmrStats
    // ledger; fold them into the campaign view so the table sees them.
    stats.dmr_mismatches += twin.injected.dmr.mismatches;
    stats.classify_unhandled(verdict.is_sdc);

    CellOutcome {
        cell: *cell,
        stats,
        realization: twin.injected.injection_realization,
        verdict,
        iterations: twin.injected.iterations,
        records: twin.injected.injection_records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Precision;
    use kmeans::Variant;

    fn tiny_grid() -> CampaignGrid {
        CampaignGrid {
            rates_hz: vec![50.0],
            schemes: vec![SchemeKind::FtKMeans],
            precisions: vec![Precision::Fp64],
            variants: vec![Variant::Tensor(None)],
            shapes: vec![super::super::grid::DataShape {
                m: 512,
                dim: 8,
                k: 4,
            }],
            reps: 1,
            residency_s: 1.0,
            max_iter: 4,
            base_seed: 7,
        }
    }

    #[test]
    fn ftkmeans_fp64_cell_absorbs_the_rate() {
        let grid = tiny_grid();
        let out = run_campaign(&grid);
        assert_eq!(out.len(), 1);
        let o = &out[0];
        assert!(o.stats.injected > 10, "50 err/s must inject: {:?}", o.stats);
        assert!(!o.verdict.is_sdc, "FP64 FtKMeans absorbs faults: {o:?}");
        assert_eq!(o.stats.sdc, 0);
        assert_eq!(o.stats.benign, o.stats.unhandled());
        assert_eq!(o.records.len() as u64, o.stats.injected);
        assert!(o.realization.is_some());
    }

    #[test]
    fn unprotected_cell_shows_sdc_under_heavy_rate() {
        // Negative control. Conditions chosen so corruption *persists*:
        // k = 64 fills the FP64 warp tile (no padding lanes to absorb
        // flips), max_iter = 1 makes the injected assignment the final one
        // (Lloyd cannot self-correct a transient mislabel), and a large M
        // gives the saturated schedule many blocks to strike. Label flips
        // need an *upward* exponent flip on a product term (downward flips
        // only make the victim lose the argmin), so dozens of injections
        // are required for a reliable hit.
        let mut grid = tiny_grid();
        grid.schemes = vec![SchemeKind::None];
        grid.rates_hz = vec![1e5];
        grid.shapes = vec![super::super::grid::DataShape {
            m: 4096,
            dim: 8,
            k: 64,
        }];
        grid.max_iter = 1;
        grid.reps = 2;
        let out = run_campaign(&grid);
        let sdc: u64 = out.iter().map(|o| o.stats.sdc).sum();
        assert!(
            sdc > 0,
            "a saturated unprotected barrage must corrupt at least one rep: {:?}",
            out.iter().map(|o| &o.verdict).collect::<Vec<_>>()
        );
        // The requested rate is far past what the per-block clamp can
        // deliver — the shortfall must be surfaced, not silent.
        for o in &out {
            let r = o.realization.expect("rate schedule must report");
            assert!(r.saturated(), "1e5 err/s must saturate: {r:?}");
            assert_eq!(o.stats.saturated_launches, o.stats.injection_launches);
        }
    }

    #[test]
    fn outcomes_arrive_in_cell_order() {
        let mut grid = tiny_grid();
        grid.rates_hz = vec![0.0, 50.0];
        grid.reps = 2;
        let out = run_campaign(&grid);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.cell.idx, i);
        }
        // rate 0 cells inject nothing and classify clean
        for o in out.iter().filter(|o| o.cell.rate_hz == 0.0) {
            assert_eq!(o.stats.injected, 0);
            assert!(!o.verdict.is_sdc);
            assert!(o.verdict.labels_match);
        }
    }
}
