//! SDC classification: compare an injected fit against its fault-free twin
//! and split the unhandled faults into *benign* (result preserved) vs *SDC*
//! (silent data corruption — the result diverged with no detection).
//!
//! The twin shares data, seeding, scheme and numerics with the injected
//! run, so the comparison isolates the effect of the faults the FT layer
//! did **not** visibly handle. Classification is conservative at cell
//! granularity: when the final clustering is corrupted, every unhandled
//! fault of that fit is charged as SDC (any of them could have been the
//! culprit); when it is preserved, all of them were benign.

use gpu_sim::{Precision, Scalar};
use kmeans::FitResult;

/// Tolerances deciding when an injected result counts as corrupted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdcPolicy {
    /// Minimum fraction of samples assigned identically to the twin.
    pub min_label_agreement: f64,
    /// Maximum relative difference of final inertia vs. the twin.
    pub max_inertia_rel_diff: f64,
}

impl SdcPolicy {
    /// Per-precision defaults mirroring the repo's FT guarantees: FP64's
    /// tight detection threshold δ yields bitwise-identical clusterings, so
    /// any divergence is SDC; FP32/TF32's coarser δ admits below-threshold
    /// mantissa flips that may move near-tie assignments without damaging
    /// clustering quality, so small drift is benign (the paper's threshold
    /// faces the same physics).
    pub fn for_precision(p: Precision) -> Self {
        match p {
            Precision::Fp32 => SdcPolicy {
                min_label_agreement: 0.99,
                max_inertia_rel_diff: 1e-2,
            },
            Precision::Fp64 => SdcPolicy {
                min_label_agreement: 1.0,
                max_inertia_rel_diff: 1e-9,
            },
        }
    }
}

/// Outcome of comparing an injected fit against its fault-free twin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// Fraction of samples assigned identically to the twin.
    pub label_agreement: f64,
    /// Relative difference of final inertia vs. the twin.
    pub inertia_rel_diff: f64,
    /// Bitwise-identical final assignment.
    pub labels_match: bool,
    /// True when the result diverged beyond the policy's tolerances — the
    /// fit suffered silent data corruption.
    pub is_sdc: bool,
}

/// Compare `injected` against its fault-free `clean` twin under `policy`.
pub fn classify<T: Scalar>(
    clean: &FitResult<T>,
    injected: &FitResult<T>,
    policy: &SdcPolicy,
) -> Classification {
    assert_eq!(
        clean.labels.len(),
        injected.labels.len(),
        "twin runs must cover the same samples"
    );
    let n = clean.labels.len().max(1);
    let same = clean
        .labels
        .iter()
        .zip(&injected.labels)
        .filter(|(a, b)| a == b)
        .count();
    let label_agreement = same as f64 / n as f64;
    let denom = clean.inertia.abs().max(1e-12);
    let inertia_rel_diff = (injected.inertia - clean.inertia).abs() / denom;
    let is_sdc = label_agreement < policy.min_label_agreement
        || inertia_rel_diff > policy.max_inertia_rel_diff
        || !injected.inertia.is_finite();
    Classification {
        label_agreement,
        inertia_rel_diff,
        labels_match: clean.labels == injected.labels,
        is_sdc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abft::dmr::DmrStats;
    use fault::CampaignStats;
    use gpu_sim::counters::CounterSnapshot;
    use gpu_sim::Matrix;

    fn result(labels: Vec<u32>, inertia: f64) -> FitResult<f64> {
        FitResult {
            centroids: Matrix::zeros(1, 1),
            labels,
            inertia,
            iterations: 1,
            converged: true,
            ft_stats: CampaignStats::default(),
            dmr: DmrStats::default(),
            counters: CounterSnapshot::default(),
            injected: 0,
            injection_records: Vec::new(),
            injection_realization: None,
            history: Vec::new(),
        }
    }

    #[test]
    fn identical_results_are_benign() {
        let clean = result(vec![0, 1, 2, 1], 10.0);
        let hit = result(vec![0, 1, 2, 1], 10.0);
        let c = classify(&clean, &hit, &SdcPolicy::for_precision(Precision::Fp64));
        assert!(!c.is_sdc);
        assert!(c.labels_match);
        assert_eq!(c.label_agreement, 1.0);
        assert_eq!(c.inertia_rel_diff, 0.0);
    }

    #[test]
    fn fp64_policy_flags_any_label_flip() {
        let clean = result(vec![0; 100], 10.0);
        let mut flipped = vec![0; 100];
        flipped[7] = 1;
        let hit = result(flipped, 10.0);
        let c = classify(&clean, &hit, &SdcPolicy::for_precision(Precision::Fp64));
        assert!(c.is_sdc, "one flipped label out of 100 is SDC at fp64");
        assert!((c.label_agreement - 0.99).abs() < 1e-12);
    }

    #[test]
    fn fp32_policy_tolerates_near_tie_flips() {
        let clean = result(vec![0; 1000], 10.0);
        let mut flipped = vec![0; 1000];
        flipped[3] = 1; // 99.9% agreement
        let hit = result(flipped, 10.0 * (1.0 + 1e-3));
        let c = classify(&clean, &hit, &SdcPolicy::for_precision(Precision::Fp32));
        assert!(!c.is_sdc, "{c:?}");
        assert!(!c.labels_match);
    }

    #[test]
    fn inertia_explosion_is_sdc_even_with_matching_labels() {
        let clean = result(vec![0, 1], 10.0);
        let hit = result(vec![0, 1], 14.0);
        let c = classify(&clean, &hit, &SdcPolicy::for_precision(Precision::Fp32));
        assert!(c.is_sdc);
        let nan = result(vec![0, 1], f64::NAN);
        let c = classify(&clean, &nan, &SdcPolicy::for_precision(Precision::Fp32));
        assert!(c.is_sdc, "non-finite inertia is always SDC");
    }
}
