//! Fit-throughput benchmark: end-to-end `KMeans::fit` at the paper's
//! headline problem size (M = 131072, d = 64, k = 16) across every
//! assignment variant, plus a launch-overhead microbenchmark that isolates
//! the per-kernel-launch cost of the execution engine.
//!
//! Hand-rolled harness (no criterion): each measurement is a full fit, so
//! calibration loops would only add minutes; instead we run a fixed number
//! of repetitions and report the median. Output is both human-readable
//! lines and CSV rows; set `FTK_WRITE_BASELINE=1` to (over)write
//! `baselines/fit_throughput.csv` with the CSV for regression comparison.
//!
//! Knobs:
//! * `FTK_BENCH_REPS` — repetitions per variant (default 3),
//! * `FTK_BENCH_M`    — sample count (default 131072).

use gpu_sim::{launch_grid, Counters, DeviceProfile, Dim3, LaunchConfig, Matrix};
use kmeans::{KMeans, KMeansConfig, Variant};
use std::time::Instant;

const DIM: usize = 64;
const K: usize = 16;
const MAX_ITER: usize = 3;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic pseudo-random blobs: K well-separated centers plus hash
/// noise, no RNG dependency so every run measures identical work.
fn blobs(m: usize) -> Matrix<f32> {
    Matrix::from_fn(m, DIM, |r, c| {
        let center = ((r % K) * 8) as f32;
        let h = (r.wrapping_mul(2654435761) ^ c.wrapping_mul(40503)) % 1000;
        center + (h as f32 / 1000.0 - 0.5) + c as f32 * 0.01
    })
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bench_fit(m: usize, reps: usize, csv: &mut String) {
    let data = blobs(m);
    let variants: [(&str, Variant); 5] = [
        ("naive", Variant::Naive),
        ("gemm_v1", Variant::GemmV1),
        ("fused_v2", Variant::FusedV2),
        ("broadcast_v3", Variant::BroadcastV3),
        ("tensor_v4", Variant::Tensor(None)),
    ];
    for (name, variant) in variants {
        let km = KMeans::new(
            DeviceProfile::a100(),
            KMeansConfig {
                k: K,
                max_iter: MAX_ITER,
                tol: 0.0, // run all iterations: fixed work per rep
                seed: 42,
                variant,
                ..Default::default()
            },
        );
        let mut samples = Vec::with_capacity(reps);
        let mut checksum = 0.0f64;
        for _ in 0..reps {
            let start = Instant::now();
            let r = km.fit(&data).expect("fit failed");
            samples.push(start.elapsed().as_secs_f64());
            checksum = r.inertia;
        }
        let med = median(&mut samples);
        let rate = (m * MAX_ITER) as f64 / med;
        println!(
            "bench: fit_throughput/{name:<24} {med:>9.3} s/fit  {rate:>12.0} samples·iter/s  (inertia {checksum:.3e})"
        );
        csv.push_str(&format!(
            "fit,{name},{m},{DIM},{K},{MAX_ITER},{med:.6},{rate:.1}\n"
        ));
    }
}

/// Many tiny launches of a near-empty kernel: isolates per-launch engine
/// overhead (pre-refactor: thread spawn/join per launch; post-refactor:
/// one enqueue on the persistent pool).
fn bench_launch_overhead(csv: &mut String) {
    let dev = DeviceProfile::a100();
    let counters = Counters::new();
    let cfg = LaunchConfig {
        grid: Dim3::x(64),
        threads_per_block: 128,
        smem_bytes: 0,
    };
    let launches = 2000usize;
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..launches {
            launch_grid(&dev, cfg, &counters, |ctx| {
                std::hint::black_box(ctx.bx);
            })
            .unwrap();
        }
        samples.push(start.elapsed().as_secs_f64() / launches as f64);
    }
    let med = median(&mut samples);
    println!(
        "bench: launch_overhead/64-block-noop           {:>9.2} µs/launch",
        med * 1e6
    );
    csv.push_str(&format!("launch_overhead,noop64,64,0,0,1,{med:.9},0\n"));
}

fn main() {
    let m = env_usize("FTK_BENCH_M", 131072);
    let reps = env_usize("FTK_BENCH_REPS", 3).max(1);
    let mut csv = String::from("bench,name,m,d,k,iters,median_s,rate\n");
    bench_launch_overhead(&mut csv);
    bench_fit(m, reps, &mut csv);
    if std::env::var("FTK_WRITE_BASELINE").is_ok() {
        // crates/bench → workspace root → baselines/
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("baselines");
        std::fs::create_dir_all(&dir).expect("create baselines/");
        let path = dir.join("fit_throughput.csv");
        std::fs::write(&path, &csv).expect("write baseline CSV");
        println!("baseline written to {}", path.display());
    }
}
