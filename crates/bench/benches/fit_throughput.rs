//! Fit-throughput benchmark: end-to-end `KMeans::fit` at the paper's
//! headline problem size (M = 131072, d = 64, k = 16) across every
//! assignment variant, plus a launch-overhead microbenchmark that isolates
//! the per-kernel-launch cost of the execution engine.
//!
//! Hand-rolled harness (no criterion): each measurement is a full fit, so
//! calibration loops would only add minutes; instead we run a fixed number
//! of repetitions and report the median. The measurement machinery lives in
//! [`bench_harness::fitbench`], shared with the `bench_check` regression
//! gate. Output is both human-readable lines and CSV rows; set
//! `FTK_WRITE_BASELINE=1` to (over)write `baselines/fit_throughput.csv`
//! with the CSV for regression comparison.
//!
//! Knobs:
//! * `FTK_BENCH_REPS` — repetitions per variant (default 3),
//! * `FTK_BENCH_M`    — sample count (default 131072).

use bench_harness::fitbench::{
    env_usize, fit_csv_row, launch_overhead_csv_row, measure_launch_overhead, run_fit_bench,
    CSV_HEADER,
};

fn main() {
    let m = env_usize("FTK_BENCH_M", 131072);
    let reps = env_usize("FTK_BENCH_REPS", 3).max(1);
    let mut csv = String::from(CSV_HEADER);

    let overhead = measure_launch_overhead();
    println!(
        "bench: launch_overhead/64-block-noop           {:>9.2} µs/launch",
        overhead * 1e6
    );
    csv.push_str(&launch_overhead_csv_row(overhead));

    for meas in run_fit_bench(m, reps) {
        let rate = meas.rate;
        println!(
            "bench: fit_throughput/{:<24} {:>9.3} s/fit  {rate:>12.0} samples·iter/s  (inertia {:.3e})",
            meas.name, meas.median_s, meas.inertia
        );
        csv.push_str(&fit_csv_row(&meas));
    }

    if std::env::var("FTK_WRITE_BASELINE").is_ok() {
        // crates/bench → workspace root → baselines/
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("baselines");
        std::fs::create_dir_all(&dir).expect("create baselines/");
        let path = dir.join("fit_throughput.csv");
        std::fs::write(&path, &csv).expect("write baseline CSV");
        println!("baseline written to {}", path.display());
    }
}
