//! Microbenchmarks of the ABFT arithmetic: checksum accumulation, tile
//! verification, location decoding and correction — the per-interval costs
//! the paper's overhead figures are built from.

use abft::checksum::ChecksumTriple;
use abft::online::{OnlineMode, WarpOnlineState};
use abft::{compare, correct_in_place, locate, Located, ThresholdPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::mma::{MmaSite, NoFault};
use gpu_sim::{Counters, Precision};
use std::hint::black_box;

const WM: usize = 32;
const WN: usize = 32;
const KK: usize = 4;

fn site() -> MmaSite {
    MmaSite {
        block: (0, 0),
        warp: 0,
        k_step: 0,
        is_checksum: false,
    }
}

fn bench_accumulate(c: &mut Criterion) {
    let counters = Counters::new();
    let policy = ThresholdPolicy::for_precision(Precision::Fp64);
    let a: Vec<f64> = (0..WM * KK).map(|i| (i % 13) as f64 * 0.3 - 1.5).collect();
    let b: Vec<f64> = (0..WN * KK).map(|i| (i % 11) as f64 * 0.25 - 1.0).collect();
    let mut g = c.benchmark_group("warp_checksum_accumulate");
    g.throughput(Throughput::Elements(((WM + WN) * KK) as u64));
    for (name, mode) in [
        ("detect_correct", OnlineMode::DetectCorrect),
        ("detect_only", OnlineMode::DetectOnly),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |bch, &mode| {
            let mut st = WarpOnlineState::<f64>::new(WM, WN, policy, mode);
            bch.iter(|| {
                st.accumulate(
                    black_box(&a),
                    black_box(&b),
                    KK,
                    site(),
                    &NoFault,
                    &counters,
                )
            })
        });
    }
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let counters = Counters::new();
    let policy = ThresholdPolicy::for_precision(Precision::Fp64);
    let mut st = WarpOnlineState::<f64>::new(WM, WN, policy, OnlineMode::DetectCorrect);
    let mut acc: Vec<f64> = (0..WM * WN).map(|i| (i % 29) as f64 * 0.1).collect();
    st.rebaseline(&acc, &counters);
    let mut g = c.benchmark_group("verification_sweep");
    g.throughput(Throughput::Elements((WM * WN) as u64));
    g.bench_function("clean_tile", |b| {
        b.iter(|| black_box(st.check(black_box(&mut acc), 256, &counters)))
    });
    g.bench_function("detect_locate_correct", |b| {
        b.iter(|| {
            acc[5 * WN + 7] += 42.0;
            black_box(st.check(black_box(&mut acc), 256, &counters))
        })
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let policy = ThresholdPolicy::for_precision(Precision::Fp64);
    let tile: Vec<f64> = (0..WM * WN).map(|i| (i % 23) as f64 - 11.0).collect();
    let reference = ChecksumTriple::from_tile(&tile, WM, WN);
    let mut corrupted = tile.clone();
    corrupted[100] += 7.5;
    let observed = ChecksumTriple::from_tile(&corrupted, WM, WN);
    let disc = compare(&observed, &reference, &policy).expect("detected");

    c.bench_function("checksum_triple_from_tile", |b| {
        b.iter(|| black_box(ChecksumTriple::from_tile(black_box(&tile), WM, WN)))
    });
    c.bench_function("compare_triples", |b| {
        b.iter(|| {
            black_box(compare(
                black_box(&observed),
                black_box(&reference),
                &policy,
            ))
        })
    });
    c.bench_function("locate_and_correct", |b| {
        b.iter(|| {
            let l = locate(black_box(&disc), WM, WN);
            if let Located::At { row, col } = l {
                let mut acc = corrupted.clone();
                black_box(correct_in_place(&mut acc, WN, row, col, disc.d));
            }
        })
    });
}

criterion_group!(benches, bench_accumulate, bench_verify, bench_primitives);
criterion_main!(benches);
