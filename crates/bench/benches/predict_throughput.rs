//! Predict-throughput benchmark: steady-state serving of query batches
//! through a fitted model at the paper's feature/cluster shape
//! (d = 64, k = 16), across the three [`kmeans::PredictPolicy`] settings.
//!
//! The exact policy is the current fp32 assignment path; fp16/int8 serve
//! from the quantized resident table through the fused distance+argmin
//! kernel. Every policy returns identical labels (the margin check falls
//! back to exact rows when quantization could flip an argmin), so the
//! printed speedup is free accuracy-wise; the fallback column shows how
//! often the exact row scan had to run.
//!
//! Hand-rolled harness like `fit_throughput`: fixed repetitions, median
//! reported, each repetition predicting a distinct query batch (the model
//! memoizes repeat matrices — see [`bench_harness::predictbench`]). Set
//! `FTK_WRITE_BASELINE=1` to (over)write `baselines/predict_throughput.csv`.
//!
//! Knobs:
//! * `FTK_BENCH_PREDICT_M` — query batch size (default 131072),
//! * `FTK_BENCH_REPS`      — batches per policy (default 3).

use bench_harness::fitbench::env_usize;
use bench_harness::predictbench::{predict_csv_row, run_predict_bench};

fn main() {
    let m = env_usize("FTK_BENCH_PREDICT_M", 131072);
    let reps = env_usize("FTK_BENCH_REPS", 3).max(1);
    let mut csv = String::from(bench_harness::fitbench::CSV_HEADER);

    let out = run_predict_bench(m, reps);
    let exact_rate = out
        .iter()
        .find(|p| p.name == "exact")
        .map(|p| p.rate)
        .unwrap_or(f64::NAN);
    for meas in &out {
        println!(
            "bench: predict_throughput/{:<8} {:>9.3} s/batch  {:>12.0} samples/s  {:>5.2}x vs exact  fallback {:.3}%",
            meas.name,
            meas.median_s,
            meas.rate,
            meas.rate / exact_rate,
            meas.fallback_rate * 100.0
        );
        csv.push_str(&predict_csv_row(meas));
    }

    if std::env::var("FTK_WRITE_BASELINE").is_ok() {
        // crates/bench → workspace root → baselines/
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("baselines");
        std::fs::create_dir_all(&dir).expect("create baselines/");
        let path = dir.join("predict_throughput.csv");
        std::fs::write(&path, &csv).expect("write baseline CSV");
        println!("baseline written to {}", path.display());
    }
}
