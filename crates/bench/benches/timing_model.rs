//! Benches of the analytic layer: single kernel-time estimates, full
//! 64-shape tuning runs, and selector queries. These bound the cost of the
//! auto-tuning pipeline itself.

use codegen::tuner::{tune, ShapeGrid};
use codegen::{KernelSelector, ParamRegistry};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::timing::{estimate, FtMode, GemmShape, KernelClass, TimingInput};
use gpu_sim::{DeviceProfile, Precision};
use kmeans::assign::default_tile;
use std::hint::black_box;

fn bench_estimate(c: &mut Criterion) {
    let dev = DeviceProfile::a100();
    let tile = default_tile(Precision::Fp32);
    let shape = GemmShape::new(131_072, 128, 128);
    let mut g = c.benchmark_group("estimate_kernel_time");
    for (name, ft) in [
        ("plain", FtMode::None),
        ("ftkmeans", FtMode::FtKMeans),
        ("wu", FtMode::Wu),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &ft, |b, &ft| {
            b.iter(|| {
                black_box(estimate(&TimingInput {
                    ft,
                    inj_rate_hz: 10.0,
                    ..TimingInput::plain(&dev, Precision::Fp32, KernelClass::Tensor(tile), shape)
                }))
            })
        });
    }
    g.finish();
}

fn bench_tune(c: &mut Criterion) {
    let dev = DeviceProfile::a100();
    let mut g = c.benchmark_group("autotune");
    g.sample_size(10);
    for p in Precision::all() {
        let reg = ParamRegistry::new(p);
        g.bench_with_input(
            BenchmarkId::new("paper_grid_64_shapes", p.name()),
            &p,
            |b, &p| b.iter(|| black_box(tune(&dev, p, &reg, &ShapeGrid::paper()))),
        );
    }
    g.finish();
}

fn bench_selector(c: &mut Criterion) {
    let dev = DeviceProfile::a100();
    let selector = KernelSelector::build(&dev, Precision::Fp32);
    c.bench_function("selector_query", |b| {
        b.iter(|| black_box(selector.select(black_box(77), black_box(33))))
    });
    let text = selector.to_text();
    c.bench_function("selector_parse", |b| {
        b.iter(|| black_box(KernelSelector::from_text(black_box(&text)).unwrap()))
    });
}

criterion_group!(benches, bench_estimate, bench_tune, bench_selector);
criterion_main!(benches);
