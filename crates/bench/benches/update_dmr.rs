//! Benches of the centroid-update phase with and without DMR — the
//! functional counterpart of the paper's "<1% overhead" claim for the
//! memory-bound phase.

use abft::dmr::{protected, DmrStats};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::mma::NoFault;
use gpu_sim::{Counters, DeviceProfile, GlobalBuffer, Matrix};
use kmeans::update::update_centroids;
use std::hint::black_box;

const M: usize = 2048;
const DIM: usize = 16;
const K: usize = 16;

fn bench_update(c: &mut Criterion) {
    let dev = DeviceProfile::a100();
    let counters = Counters::new();
    let samples = Matrix::<f32>::from_fn(M, DIM, |r, cc| ((r + cc * 3) % 19) as f32 - 9.0);
    let buf = GlobalBuffer::from_matrix(&samples);
    let labels: Vec<u32> = (0..M).map(|i| (i % K) as u32).collect();
    let old = Matrix::<f32>::zeros(K, DIM);

    let mut g = c.benchmark_group("centroid_update");
    g.throughput(Throughput::Elements((M * DIM) as u64));
    for (name, dmr) in [("plain", false), ("dmr", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &dmr, |b, &dmr| {
            b.iter(|| {
                black_box(
                    update_centroids(&dev, &buf, M, DIM, &labels, &old, dmr, &NoFault, &counters)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_dmr_combinator(c: &mut Criterion) {
    c.bench_function("dmr_protected_agreeing", |b| {
        let mut stats = DmrStats::default();
        b.iter(|| black_box(protected(|_| black_box(3.25f64) * 2.0, 3, &mut stats)))
    });
    c.bench_function("dmr_protected_disagreeing", |b| {
        let mut stats = DmrStats::default();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            black_box(protected(
                |replica| if replica == 0 && flip { 99.0f64 } else { 6.5 },
                3,
                &mut stats,
            ))
        })
    });
}

criterion_group!(benches, bench_update, bench_dmr_combinator);
criterion_main!(benches);
