//! Criterion benches of the *functional* simulated kernels — how fast the
//! simulator itself executes the paper's kernels on the host CPU. (GPU
//! GFLOPS figures come from the analytic model; these numbers measure the
//! reproduction's own engine.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fault::CampaignStats;
use gpu_sim::mma::NoFault;
use gpu_sim::{Counters, DeviceProfile, Matrix};
use kmeans::assign::default_tile;
use kmeans::device_data::DeviceData;
use kmeans::variants::{broadcast, gemm, naive, tensor};
use parking_lot::Mutex;
use std::hint::black_box;

const M: usize = 1024;
const DIM: usize = 32;
const K: usize = 32;

fn data_f32(dev: &DeviceProfile, c: &Counters) -> DeviceData<f32> {
    let samples = Matrix::<f32>::from_fn(M, DIM, |r, cc| ((r * 7 + cc * 3) % 17) as f32 - 8.0);
    let cents = Matrix::<f32>::from_fn(K, DIM, |r, cc| ((r * 5 + cc * 11) % 13) as f32 - 6.0);
    DeviceData::upload(dev, &samples, &cents, c).unwrap()
}

fn data_f64(dev: &DeviceProfile, c: &Counters) -> DeviceData<f64> {
    let samples = Matrix::<f64>::from_fn(M, DIM, |r, cc| ((r * 7 + cc * 3) % 17) as f64 - 8.0);
    let cents = Matrix::<f64>::from_fn(K, DIM, |r, cc| ((r * 5 + cc * 11) % 13) as f64 - 6.0);
    DeviceData::upload(dev, &samples, &cents, c).unwrap()
}

fn bench_variants(c: &mut Criterion) {
    let dev = DeviceProfile::a100();
    let counters = Counters::new();
    let data = data_f32(&dev, &counters);
    let flops = (2 * M * K * DIM) as u64;

    let mut g = c.benchmark_group("assignment_variants_f32");
    g.throughput(Throughput::Elements(flops));
    g.bench_function("naive", |b| {
        b.iter(|| black_box(naive::naive_assign(&dev, &data, &NoFault, &counters).unwrap()))
    });
    g.bench_function("gemm_v1", |b| {
        b.iter(|| black_box(gemm::gemm_assign(&dev, &data, &NoFault, &counters).unwrap()))
    });
    g.bench_function("broadcast_v3", |b| {
        b.iter(|| black_box(broadcast::broadcast_assign(&dev, &data, &NoFault, &counters).unwrap()))
    });
    let stats = Mutex::new(CampaignStats::default());
    let tile = default_tile(gpu_sim::Precision::Fp32);
    g.bench_function("tensor_v4", |b| {
        b.iter(|| {
            black_box(
                tensor::tensor_assign(
                    &dev,
                    tile,
                    &data,
                    abft::SchemeKind::None,
                    &NoFault,
                    &counters,
                    &stats,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_ft_schemes(c: &mut Criterion) {
    let dev = DeviceProfile::a100();
    let counters = Counters::new();
    let data = data_f64(&dev, &counters);
    let tile = default_tile(gpu_sim::Precision::Fp64);
    let mut g = c.benchmark_group("tensor_ft_schemes_f64");
    g.sample_size(20);
    for scheme in [
        abft::SchemeKind::None,
        abft::SchemeKind::FtKMeans,
        abft::SchemeKind::Kosaian,
        abft::SchemeKind::Wu,
    ] {
        let stats = Mutex::new(CampaignStats::default());
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    black_box(
                        tensor::tensor_assign(&dev, tile, &data, s, &NoFault, &counters, &stats)
                            .unwrap(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_variants, bench_ft_schemes);
criterion_main!(benches);
