//! `trace_demo` — produce one of every observability artifact.
//!
//! Runs a traced fused-variant fit plus a short micro-batched serve storm,
//! then writes into the output directory (first CLI argument, default
//! `target/trace_demo`):
//!
//! * `trace.json`         — Chrome-trace export of both workloads (load in
//!   `chrome://tracing` or Perfetto),
//! * `phase_profile.txt`  — the phase profiler's modeled-time table,
//! * `metrics.txt`        — the server's Prometheus text-format scrape.
//!
//! The CI serve-smoke leg uploads all three as build artifacts; locally the
//! same files are a quick way to eyeball what the trace subsystem records.
//!
//! Knobs: `FTK_BENCH_M` (fit sample count, default 16384),
//! `FTK_BENCH_SERVE_M` (total storm rows, default 16384).

use bench_harness::fitbench::{blobs, env_usize, DIM};
use bench_harness::tracebench::traced_fit;
use gpu_sim::DeviceProfile;
use kmeans::{KMeansConfig, PredictPolicy, Session, Variant};
use serve::{ModelRegistry, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use trace::RecordingSink;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace_demo".into())
        .into();
    std::fs::create_dir_all(&out).expect("create output directory");

    // 1. Traced fit: phase spans, launch spans, fault events.
    let m = env_usize("FTK_BENCH_M", 16384);
    println!("trace_demo: traced fused fit at m = {m} (d = {DIM})");
    let (fit_sink, elapsed) = traced_fit(m, Variant::FusedV2);
    println!(
        "trace_demo: fit took {elapsed:.3} s wall, {} records",
        fit_sink.len()
    );

    // 2. Serve storm through the global sink (the dispatcher thread has no
    //    thread-local override), scraping the metrics registry afterwards.
    let serve_m = env_usize("FTK_BENCH_SERVE_M", 16384);
    let session = Session::new(DeviceProfile::a100());
    let registry = ModelRegistry::new();
    registry.register(
        "demo",
        session
            .kmeans(KMeansConfig::new(16).with_seed(42))
            .fit_model(&blobs(4096))
            .expect("fit")
            .with_predict_policy(PredictPolicy::Int8),
    );
    let serve_sink = Arc::new(RecordingSink::default());
    trace::install_global(Arc::clone(&serve_sink) as Arc<dyn trace::TraceSink>);
    let server = Server::new(
        session,
        registry,
        ServerConfig {
            max_batch_rows: 4096,
            max_delay_us: 200,
            validate_batched: false,
        },
    );
    let clients = 8usize;
    let rows = (serve_m / clients).max(1);
    println!("trace_demo: serve storm — {clients} clients x {rows} rows");
    std::thread::scope(|s| {
        for _ in 0..clients {
            let server = &server;
            s.spawn(move || {
                server.predict("demo", &blobs(rows)).expect("predict");
            });
        }
    });
    let metrics = server.metrics_text();
    drop(server);
    trace::uninstall_global();

    // 3. Exports: one merged Chrome trace (serve tracks offset past the
    //    fit's so the two workloads land on distinct timeline rows), the
    //    fit's phase table, and the metrics scrape.
    let mut records = fit_sink.records();
    let fit_tracks = records.iter().map(|r| r.track + 1).max().unwrap_or(0);
    records.extend(serve_sink.records().into_iter().map(|mut r| {
        r.track += fit_tracks;
        r
    }));
    let json = trace::chrome::chrome_json(&records);
    std::fs::write(out.join("trace.json"), json).expect("write trace.json");
    std::fs::write(
        out.join("phase_profile.txt"),
        fit_sink.phase_profile().to_table(),
    )
    .expect("write phase_profile.txt");
    std::fs::write(out.join("metrics.txt"), metrics).expect("write metrics.txt");
    println!(
        "trace_demo: wrote trace.json, phase_profile.txt, metrics.txt under {}",
        out.display()
    );
}
