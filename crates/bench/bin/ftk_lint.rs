//! `ftk-lint` — workspace source lint for rules `cargo clippy` cannot see.
//!
//! A std-only source scanner over `crates/*/src`, enforcing repo-specific
//! invariants that live above the language level:
//!
//! * `raw-access`  — in `crates/kmeans/src/variants/`, per-element
//!   `.load(` / `.store(` bypass the coalesced-run accessors and (on scalar
//!   buffers) the byte counters feeding the timing model. Use
//!   `load_counted` / `store_counted` / `read_range` / `write_range` /
//!   `load_run` / `store_run`, or annotate the line with
//!   `ftk-lint: allow(raw-access)` and say why (index traffic is not
//!   byte-counted by design; host-side single-cell readbacks are fine).
//! * `serve-unwrap` — in `crates/serve/src/`, `.unwrap()` / `.expect(` on a
//!   request path turns a recoverable condition (lock poisoning, a malformed
//!   batch) into a server-killing panic. Recover poisoned locks with
//!   `unwrap_or_else(|e| e.into_inner())` or return a `ServeError`;
//!   `ftk-lint: allow(serve-unwrap)` marks audited invariants.
//! * `label-unique` — kernel-launch labels (`launch_grid_labeled`,
//!   `launch_serial_labeled`, `launch_labeled`) must be globally unique so
//!   sanitizer findings, trace phases and fault-campaign site attribution
//!   are unambiguous. The `"kernel"` default used by unlabeled launches is
//!   exempt.
//! * `site-unique` — two textually identical `MmaSite { .. }` literals in
//!   one file alias the same fault-injection site id, so an injection
//!   targeting one silently hits both.
//!
//! Doc comments, line comments and `#[cfg(test)] mod` bodies are skipped.
//! Findings print one per line sorted by `(file, line)`; exit status is 1
//! when any rule fires, 0 otherwise. Run from anywhere:
//! `cargo run -p bench_harness --bin ftk-lint`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
struct LintFinding {
    rule: &'static str,
    file: String,
    line: usize,
    message: String,
}

fn main() {
    // crates/bench/ -> workspace root, so the bin works from any cwd.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/bench")
        .to_path_buf();
    let findings = run_lint(&root);
    let mut out = String::new();
    for f in &findings {
        let _ = writeln!(
            out,
            "ftk-lint: {} {}:{} {}",
            f.rule, f.file, f.line, f.message
        );
    }
    print!("{out}");
    if findings.is_empty() {
        eprintln!("ftk-lint: OK — no findings");
    } else {
        eprintln!("ftk-lint: FAILED — {} finding(s)", findings.len());
        std::process::exit(1);
    }
}

fn run_lint(root: &Path) -> Vec<LintFinding> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    // label -> (file, line) of first sighting; the "kernel" default used by
    // unlabeled Executor::launch/launch_serial may repeat.
    let mut labels: HashMap<String, (String, usize)> = HashMap::new();

    for path in &files {
        // Lint covers shipped code only: crates/*/src, not tests/ or bin/
        // (this linter and the harness bins drive the checks, they are not
        // kernel or request-path code).
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if !rel_str.contains("/src/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let lines = scannable_lines(&text);

        if rel_str.starts_with("crates/kmeans/src/variants/") {
            lint_raw_access(&rel_str, &lines, &mut findings);
        }
        if rel_str.starts_with("crates/serve/src/") {
            lint_serve_unwrap(&rel_str, &lines, &mut findings);
        }
        lint_labels(&rel_str, &lines, &mut labels, &mut findings);
        lint_mma_sites(&rel_str, &lines, &mut findings);
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Source lines with comments blanked and `#[cfg(test)] mod` bodies removed,
/// keeping line numbers stable (1-based alongside the original file). A line
/// carrying an `ftk-lint: allow(rule)` marker records it for itself and the
/// following line.
struct ScanLine {
    number: usize,
    code: String,
    allows: Vec<String>,
}

fn scannable_lines(text: &str) -> Vec<ScanLine> {
    let mut out = Vec::new();
    let mut in_test_mod = false;
    let mut test_depth = 0usize;
    let mut pending_cfg_test = false;
    let mut pending_allows: Vec<String> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let mut allows = std::mem::take(&mut pending_allows);
        for marker in raw.split("ftk-lint: allow(").skip(1) {
            if let Some(end) = marker.find(')') {
                allows.push(marker[..end].trim().to_string());
            }
        }
        // Markers on a comment-only line also cover the next line.
        if raw.trim_start().starts_with("//") {
            pending_allows = allows.clone();
        }

        let code = strip_line_comment(raw);
        let trimmed = code.trim();

        if in_test_mod {
            test_depth += brace_delta_open(trimmed);
            let closes = brace_delta_close(trimmed);
            if closes >= test_depth {
                in_test_mod = false;
                test_depth = 0;
            } else {
                test_depth -= closes;
            }
            continue;
        }
        if pending_cfg_test && trimmed.starts_with("mod ") {
            pending_cfg_test = false;
            in_test_mod = true;
            test_depth = brace_delta_open(trimmed).saturating_sub(brace_delta_close(trimmed));
            if test_depth == 0 && trimmed.ends_with(';') {
                in_test_mod = false; // out-of-line `mod tests;`
            }
            continue;
        }
        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if trimmed.is_empty() {
            continue;
        }
        pending_cfg_test = false;
        out.push(ScanLine {
            number: i + 1,
            code,
            allows,
        });
    }
    out
}

fn strip_line_comment(line: &str) -> String {
    // Good enough for this workspace: `//` inside string literals does not
    // occur on lines any rule matches.
    match line.find("//") {
        Some(pos) => line[..pos].to_string(),
        None => line.to_string(),
    }
}

fn brace_delta_open(s: &str) -> usize {
    s.matches('{').count()
}

fn brace_delta_close(s: &str) -> usize {
    s.matches('}').count()
}

fn lint_raw_access(file: &str, lines: &[ScanLine], findings: &mut Vec<LintFinding>) {
    for l in lines {
        if l.allows.iter().any(|a| a == "raw-access") {
            continue;
        }
        for pat in [".load(", ".store("] {
            if l.code.contains(pat) {
                findings.push(LintFinding {
                    rule: "raw-access",
                    file: file.to_string(),
                    line: l.number,
                    message: format!(
                        "per-element `{pat}..)` in a variant hot path; use the counted or \
                         run accessors, or annotate `ftk-lint: allow(raw-access)` with a reason"
                    ),
                });
            }
        }
    }
}

fn lint_serve_unwrap(file: &str, lines: &[ScanLine], findings: &mut Vec<LintFinding>) {
    for l in lines {
        if l.allows.iter().any(|a| a == "serve-unwrap") {
            continue;
        }
        for pat in [".unwrap()", ".expect("] {
            if l.code.contains(pat) {
                findings.push(LintFinding {
                    rule: "serve-unwrap",
                    file: file.to_string(),
                    line: l.number,
                    message: format!(
                        "`{pat}` on a serve request path; recover (e.g. \
                         `unwrap_or_else(|e| e.into_inner())` for locks) or return a ServeError"
                    ),
                });
            }
        }
    }
}

fn lint_labels(
    file: &str,
    lines: &[ScanLine],
    labels: &mut HashMap<String, (String, usize)>,
    findings: &mut Vec<LintFinding>,
) {
    const CALLS: [&str; 3] = [
        "launch_grid_labeled(",
        "launch_serial_labeled(",
        "launch_labeled(",
    ];
    for (i, l) in lines.iter().enumerate() {
        if !CALLS.iter().any(|c| l.code.contains(c)) || l.code.contains("fn ") {
            continue;
        }
        // The label is the first string literal at or shortly after the call
        // site (labels are `&'static str` literals by convention).
        let label = lines[i..lines.len().min(i + 4)]
            .iter()
            .find_map(|cand| extract_str_literal(&cand.code));
        let Some(label) = label else { continue };
        if label == "kernel" {
            continue; // default for unlabeled Executor::launch/launch_serial
        }
        match labels.get(&label) {
            None => {
                labels.insert(label, (file.to_string(), l.number));
            }
            Some((first_file, first_line)) => {
                findings.push(LintFinding {
                    rule: "label-unique",
                    file: file.to_string(),
                    line: l.number,
                    message: format!(
                        "kernel label \"{label}\" already used at {first_file}:{first_line}; \
                         labels key sanitizer findings and trace phases and must be unique"
                    ),
                });
            }
        }
    }
}

fn extract_str_literal(code: &str) -> Option<String> {
    let start = code.find('"')?;
    let rest = &code[start + 1..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn lint_mma_sites(file: &str, lines: &[ScanLine], findings: &mut Vec<LintFinding>) {
    // Signature = the field lines of the literal, whitespace-normalized.
    // Two identical signatures in one file alias one injection site id.
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (i, l) in lines.iter().enumerate() {
        if !l.code.contains("MmaSite {") || l.code.contains("struct") {
            continue;
        }
        let mut depth = brace_delta_open(&l.code) - brace_delta_close(&l.code);
        let mut sig = String::new();
        let mut j = i + 1;
        while depth > 0 && j < lines.len() {
            let body = lines[j].code.trim();
            depth += brace_delta_open(body);
            depth = depth.saturating_sub(brace_delta_close(body));
            if depth > 0 {
                sig.push_str(&body.split_whitespace().collect::<Vec<_>>().join(" "));
                sig.push(';');
            }
            j += 1;
        }
        if sig.is_empty() {
            continue;
        }
        match seen.get(&sig) {
            None => {
                seen.insert(sig, l.number);
            }
            Some(first) => {
                findings.push(LintFinding {
                    rule: "site-unique",
                    file: file.to_string(),
                    line: l.number,
                    message: format!(
                        "MmaSite literal identical to the one at line {first}; duplicate \
                         fault-injection site ids make campaign attribution ambiguous"
                    ),
                });
            }
        }
    }
}
