//! CLI harness: regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench_harness --release --bin figures -- [--fig all|7|8|...|21|table1] [--quick] [--out DIR]
//! ```

use bench_harness::figures::run_figure;
use bench_harness::report::{FigureReport, ReportSink};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: figures [--fig all|7|8|9|10|11|12|13|14|15|16|17|18|19|20|21|table1|ablation] [--quick] [--out DIR]"
    );
    std::process::exit(2)
}

fn run_one(id: &str, quick: bool) -> Vec<FigureReport> {
    run_figure(id, quick).unwrap_or_else(|| {
        eprintln!("unknown figure id: {id}");
        usage()
    })
}

fn main() {
    let mut fig = "all".to_string();
    let mut quick = false;
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fig" => fig = args.next().unwrap_or_else(|| usage()),
            "--quick" => quick = true,
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let mut sink = ReportSink::default();
    for rep in run_one(&fig, quick) {
        println!("{}", rep.to_markdown());
        sink.add(rep);
    }
    match sink.flush(&out) {
        Ok(_) => eprintln!(
            "wrote {} CSV file(s) to {}",
            sink.reports.len(),
            out.display()
        ),
        Err(e) => {
            eprintln!("failed to write results: {e}");
            std::process::exit(1);
        }
    }
}
