//! CLI harness: regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench_harness --release --bin figures -- [--fig all|7|8|...|21|table1] [--quick] [--out DIR]
//! ```

use bench_harness::figures;
use bench_harness::report::{FigureReport, ReportSink};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: figures [--fig all|7|8|9|10|11|12|13|14|15|16|17|18|19|20|21|table1] [--quick] [--out DIR]"
    );
    std::process::exit(2)
}

fn run_one(id: &str, quick: bool) -> Vec<FigureReport> {
    match id {
        "7" | "fig07" => vec![figures::fig07::run(quick)],
        "8" | "fig08" => vec![figures::sweeps::fig08(quick)],
        "9" | "fig09" => vec![figures::sweeps::fig09(quick)],
        "10" | "fig10" => vec![figures::sweeps::fig10(quick)],
        "11" | "fig11" => vec![figures::sweeps::fig11(quick)],
        "12" | "fig12" => vec![figures::heatmap::fig12(quick)],
        "13" | "fig13" => vec![figures::heatmap::fig13(quick)],
        "14" | "fig14" => vec![figures::heatmap::fig14(quick)],
        "table1" => vec![figures::heatmap::table1(quick)],
        "15" | "fig15" => vec![figures::overhead::fig15(quick)],
        "16" | "fig16" => vec![figures::overhead::fig16(quick)],
        "17" | "fig17" => vec![figures::injection::fig17(quick)],
        "18" | "fig18" => vec![figures::injection::fig18(quick)],
        "19" | "fig19" => vec![figures::sweeps::fig19(quick)],
        "20" | "fig20" => vec![figures::sweeps::fig20(quick)],
        "21" | "fig21" => vec![figures::injection::fig21(quick)],
        "ablation" => vec![figures::ablation::run(quick)],
        "all" => {
            let ids = [
                "7", "8", "9", "10", "11", "12", "13", "14", "table1", "15", "16", "17", "18",
                "19", "20", "21", "ablation",
            ];
            ids.iter().flat_map(|i| run_one(i, quick)).collect()
        }
        other => {
            eprintln!("unknown figure id: {other}");
            usage()
        }
    }
}

fn main() {
    let mut fig = "all".to_string();
    let mut quick = false;
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fig" => fig = args.next().unwrap_or_else(|| usage()),
            "--quick" => quick = true,
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let mut sink = ReportSink::default();
    for rep in run_one(&fig, quick) {
        println!("{}", rep.to_markdown());
        sink.add(rep);
    }
    match sink.flush(&out) {
        Ok(_) => eprintln!(
            "wrote {} CSV file(s) to {}",
            sink.reports.len(),
            out.display()
        ),
        Err(e) => {
            eprintln!("failed to write results: {e}");
            std::process::exit(1);
        }
    }
}
