//! `serve_bench` — mixed-traffic serving latency/throughput benchmark.
//!
//! Runs the four [`bench_harness::servebench`] scenarios (closed-loop
//! unbatched and micro-batched, open-loop paced, and batched with
//! concurrent refit/streaming maintenance) at 64 clients x 16-row
//! requests, printing per-scenario p50/p99 request latency and aggregate
//! served rows/s, plus the headline batched-over-unbatched throughput
//! ratio. Set `FTK_WRITE_BASELINE=1` to (over)write
//! `baselines/serve_throughput.csv`.
//!
//! Knobs:
//! * `FTK_BENCH_SERVE_M` — rows served per scenario (default 16384; the
//!   per-client request count is derived from it).

use bench_harness::fitbench::env_usize;
use bench_harness::servebench::{
    batching_speedup, run_serve_bench, serve_csv_row, SERVE_CSV_HEADER,
};

fn main() {
    let total_rows = env_usize("FTK_BENCH_SERVE_M", 16384);
    let mut csv = String::from(SERVE_CSV_HEADER);

    let out = run_serve_bench(total_rows);
    println!(
        "{:<12} {:>8} {:>6} {:>9} {:>9} {:>10} {:>10} {:>14} {:>12}",
        "scenario",
        "clients",
        "rows",
        "requests",
        "launches",
        "p50 us",
        "p99 us",
        "device rows/s",
        "wall rows/s"
    );
    for m in &out {
        println!(
            "{:<12} {:>8} {:>6} {:>9} {:>9} {:>10.1} {:>10.1} {:>14.1} {:>12.1}",
            m.name,
            m.clients,
            m.rows,
            m.requests,
            m.launches,
            m.p50_us,
            m.p99_us,
            m.rows_per_s,
            m.wall_rows_per_s
        );
        csv.push_str(&serve_csv_row(m));
    }
    if let Some(speedup) = batching_speedup(&out) {
        println!(
            "micro-batching device-throughput speedup (batched64 / unbatched64): {speedup:.2}x"
        );
    }

    if std::env::var("FTK_WRITE_BASELINE").is_ok() {
        // crates/bench → workspace root → baselines/
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("baselines");
        std::fs::create_dir_all(&dir).expect("create baselines/");
        let path = dir.join("serve_throughput.csv");
        std::fs::write(&path, &csv).expect("write baseline CSV");
        println!("baseline written to {}", path.display());
    }
}
