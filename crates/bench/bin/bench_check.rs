//! `bench_check` — the automated fit-throughput regression gate.
//!
//! Runs a (by default reduced) `fit_throughput` configuration and compares
//! each variant's throughput against the committed
//! `baselines/fit_throughput.csv` with tolerance bands; exits non-zero when
//! any variant regressed beyond the band. Intended for CI (bench-smoke leg)
//! and local pre-merge checks.
//!
//! Knobs:
//! * `FTK_BENCH_M`    — sample count for the fresh run (default 16384; the
//!   committed baseline is 131072 — rates are compared, which is
//!   approximately size-independent),
//! * `FTK_BENCH_REPS` — repetitions per variant (default 1),
//! * `FTK_BENCH_TOL`  — regression tolerance factor (default 2.5).

use bench_harness::fitbench::{env_f64, env_usize, run_fit_bench};
use bench_harness::regression::{check, parse_baseline, DEFAULT_TOLERANCE};

fn main() {
    let m = env_usize("FTK_BENCH_M", 16384);
    let reps = env_usize("FTK_BENCH_REPS", 1);
    let tol = env_f64("FTK_BENCH_TOL", DEFAULT_TOLERANCE);

    // crates/bench → workspace root → baselines/
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("baselines/fit_throughput.csv");
    let csv = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let baseline = match parse_baseline(&csv) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: malformed baseline: {e}");
            std::process::exit(2);
        }
    };

    println!("bench_check: fresh run at m = {m} ({reps} rep(s)), tolerance {tol}x");
    let fresh = run_fit_bench(m, reps);
    let outcomes = check(&fresh, &baseline, tol);

    let mut failed = false;
    println!(
        "{:<14} {:>14} {:>14} {:>8}  verdict",
        "variant", "fresh rate", "baseline rate", "factor"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>7.2}x  {}",
            o.name,
            o.fresh_rate,
            o.baseline_rate,
            o.regression_factor,
            if o.pass { "ok" } else { "REGRESSED" }
        );
        failed |= !o.pass;
    }
    if failed {
        eprintln!("bench_check: throughput regression beyond {tol}x tolerance band");
        std::process::exit(1);
    }
    println!("bench_check: all variants within the tolerance band");
}
