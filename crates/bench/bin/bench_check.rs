//! `bench_check` — the automated fit-throughput regression gate.
//!
//! Runs a (by default reduced) `fit_throughput` configuration and compares
//! each variant's throughput against the committed
//! `baselines/fit_throughput.csv` with tolerance bands; exits non-zero when
//! any variant regressed beyond the band. Intended for CI (bench-smoke leg)
//! and local pre-merge checks.
//!
//! Three stages, each against a committed artifact under `baselines/`:
//!
//! 1. **Throughput** — fresh fit rates vs `baselines/fit_throughput.csv`
//!    with tolerance bands.
//! 2. **Figure schemas** — a fresh `figures --fig all --quick` run must
//!    match the column headers and row counts of `baselines/figures/*.csv`
//!    (contents are calibration-dependent; the shape is not).
//! 3. **Campaign table** — a fresh quick campaign must reproduce
//!    `baselines/campaign/campaign.csv` byte for byte (the campaign is
//!    deterministic by construction).
//!
//! Three stages plus a serving-path gate: fresh predict rates per
//! [`kmeans::PredictPolicy`] vs `baselines/predict_throughput.csv`, and the
//! committed baseline must witness the quantized paths' >=3x speedup over
//! the exact path.
//!
//! Knobs:
//! * `FTK_BENCH_M`    — sample count for the fresh run (default 16384; the
//!   committed baseline is 131072 — rates are compared, which is
//!   approximately size-independent),
//! * `FTK_BENCH_PREDICT_M` — query batch size for the predict gate
//!   (default 16384; committed baseline is 131072),
//! * `FTK_BENCH_REPS` — repetitions per variant (default 1),
//! * `FTK_BENCH_TOL`  — regression tolerance factor (default 2.5),
//! * `FTK_BENCH_SERVE_M` — rows per serving scenario for the serve gate
//!   (default 16384),
//! * `FTK_BENCH_TRACE_M` — sample count for the trace gate's phase-profile
//!   attribution check (default 131072, the committed-baseline scale: the
//!   naive-vs-fused modeled ordering only emerges once distance-matrix
//!   traffic outweighs launch overhead),
//! * `FTK_CHECK_FIT=0` / `FTK_CHECK_PREDICT=0` / `FTK_CHECK_SERVE=0` /
//!   `FTK_CHECK_TRACE=0` / `FTK_CHECK_FIGURES=0` / `FTK_CHECK_CAMPAIGN=0`
//!   — skip individual gates (e.g. `FTK_CHECK_FIT=0` plus the other skips
//!   for a serve-only CI leg).

use bench_harness::campaign::{campaign_table, run_campaign, CampaignGrid};
use bench_harness::drift::{check_campaign_exact, check_figure_schemas};
use bench_harness::figures::run_figure;
use bench_harness::fitbench::{env_f64, env_usize, run_fit_bench, FitMeasurement};
use bench_harness::predictbench::run_predict_bench;
use bench_harness::regression::{
    check, parse_baseline, parse_baseline_kind, BaselineRow, DEFAULT_TOLERANCE,
};
use bench_harness::servebench::{
    as_fit_measurements, batching_speedup, parse_serve_baseline, run_serve_bench,
};
use bench_harness::tracebench::{run_trace_overhead, traced_fit, TRACE_PROFILE_M};
use kmeans::Variant;
use std::path::{Path, PathBuf};

fn baselines_root() -> PathBuf {
    // crates/bench → workspace root → baselines/
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("baselines")
}

fn env_enabled(key: &str) -> bool {
    std::env::var(key).map_or(true, |v| v != "0")
}

fn check_throughput() -> bool {
    let m = env_usize("FTK_BENCH_M", 16384);
    let reps = env_usize("FTK_BENCH_REPS", 1);
    let tol = env_f64("FTK_BENCH_TOL", DEFAULT_TOLERANCE);

    let path = baselines_root().join("fit_throughput.csv");
    let csv = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let baseline = match parse_baseline(&csv) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: malformed baseline: {e}");
            std::process::exit(2);
        }
    };

    println!("bench_check: fresh run at m = {m} ({reps} rep(s)), tolerance {tol}x");
    let fresh = run_fit_bench(m, reps);
    let outcomes = check(&fresh, &baseline, tol);

    let mut failed = false;
    println!(
        "{:<14} {:>14} {:>14} {:>8}  verdict",
        "variant", "fresh rate", "baseline rate", "factor"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>7.2}x  {}",
            o.name,
            o.fresh_rate,
            o.baseline_rate,
            o.regression_factor,
            if o.pass { "ok" } else { "REGRESSED" }
        );
        failed |= !o.pass;
    }
    if failed {
        eprintln!("bench_check: throughput regression beyond {tol}x tolerance band");
    } else {
        println!("bench_check: all variants within the tolerance band");
    }
    !failed
}

/// Serving-path gate: fresh predict rates for every policy against the
/// committed `baselines/predict_throughput.csv` with the same tolerance
/// band, plus the headline claim itself — the committed quantized rates
/// must be at least 3x the committed exact rate (the baseline is the
/// measured evidence for that claim; regenerate it deliberately with
/// `FTK_WRITE_BASELINE=1 cargo bench -p bench_harness --bench
/// predict_throughput`).
fn check_predict() -> bool {
    let m = env_usize("FTK_BENCH_PREDICT_M", 16384);
    let reps = env_usize("FTK_BENCH_REPS", 1);
    let tol = env_f64("FTK_BENCH_TOL", DEFAULT_TOLERANCE);

    let path = baselines_root().join("predict_throughput.csv");
    let csv = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let baseline = match parse_baseline_kind(&csv, "predict") {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: malformed predict baseline: {e}");
            std::process::exit(2);
        }
    };

    let mut failed = false;
    // The committed baseline must itself witness the >=3x serving speedup.
    if let Some(exact) = baseline.iter().find(|b| b.name == "exact") {
        for b in baseline.iter().filter(|b| b.name != "exact") {
            let speedup = b.rate / exact.rate;
            let pass = speedup >= 3.0;
            println!(
                "predict baseline {:<6} {:>7.2}x vs exact  {}",
                b.name,
                speedup,
                if pass { "ok" } else { "BELOW 3x" }
            );
            failed |= !pass;
        }
    } else {
        eprintln!("bench_check: predict baseline has no exact row");
        failed = true;
    }

    println!("bench_check: fresh predict run at m = {m} ({reps} rep(s)), tolerance {tol}x");
    let fresh: Vec<FitMeasurement> = run_predict_bench(m, reps)
        .into_iter()
        .map(|p| {
            println!(
                "  {:<6} {:>12.0} samples/s  fallback {:.3}%",
                p.name,
                p.rate,
                p.fallback_rate * 100.0
            );
            FitMeasurement {
                name: p.name,
                m: p.m,
                median_s: p.median_s,
                rate: p.rate,
                inertia: 0.0,
            }
        })
        .collect();
    let outcomes = check(&fresh, &baseline, tol);
    println!(
        "{:<14} {:>14} {:>14} {:>8}  verdict",
        "policy", "fresh rate", "baseline rate", "factor"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>7.2}x  {}",
            o.name,
            o.fresh_rate,
            o.baseline_rate,
            o.regression_factor,
            if o.pass { "ok" } else { "REGRESSED" }
        );
        failed |= !o.pass;
    }
    if failed {
        eprintln!("bench_check: serving-path gate failed");
    } else {
        println!("bench_check: serving path within bands, speedup claim holds");
    }
    !failed
}

/// Serving-layer gate: the committed `baselines/serve_throughput.csv` must
/// witness the headline claim — micro-batched aggregate device throughput
/// at least 2x the one-call-per-launch baseline at 64 concurrent clients
/// of small requests — and a fresh mixed-traffic run must both reproduce
/// the >=2x ratio and stay within the tolerance band per scenario.
/// Regenerate the baseline deliberately with `FTK_WRITE_BASELINE=1 cargo
/// run --release -p bench_harness --bin serve_bench`.
fn check_serve() -> bool {
    let serve_m = env_usize("FTK_BENCH_SERVE_M", 16384);
    let tol = env_f64("FTK_BENCH_TOL", DEFAULT_TOLERANCE);

    let path = baselines_root().join("serve_throughput.csv");
    let csv = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let baseline = match parse_serve_baseline(&csv) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: malformed serve baseline: {e}");
            std::process::exit(2);
        }
    };

    let mut failed = false;
    match batching_speedup(&baseline) {
        Some(speedup) => {
            let pass = speedup >= 2.0;
            println!(
                "serve baseline micro-batching speedup {:>6.2}x  {}",
                speedup,
                if pass { "ok" } else { "BELOW 2x" }
            );
            failed |= !pass;
        }
        None => {
            eprintln!("bench_check: serve baseline lacks unbatched64/batched64 rows");
            failed = true;
        }
    }

    println!("bench_check: fresh serve run at {serve_m} rows/scenario, tolerance {tol}x");
    let fresh = run_serve_bench(serve_m);
    for s in &fresh {
        println!(
            "  {:<12} {:>5} launches  p50 {:>8.1} us  p99 {:>8.1} us  {:>14.0} device rows/s",
            s.name, s.launches, s.p50_us, s.p99_us, s.rows_per_s
        );
    }
    match batching_speedup(&fresh) {
        Some(speedup) => {
            let pass = speedup >= 2.0;
            println!(
                "serve fresh micro-batching speedup {:>6.2}x  {}",
                speedup,
                if pass { "ok" } else { "BELOW 2x" }
            );
            failed |= !pass;
        }
        None => {
            eprintln!("bench_check: fresh serve run lacks unbatched64/batched64 rows");
            failed = true;
        }
    }
    let baseline_rows: Vec<BaselineRow> = baseline
        .iter()
        .map(|s| BaselineRow {
            name: s.name.clone(),
            m: s.requests * s.rows,
            median_s: s.p50_us / 1e6,
            rate: s.rows_per_s,
        })
        .collect();
    let outcomes = check(&as_fit_measurements(&fresh), &baseline_rows, tol);
    println!(
        "{:<14} {:>14} {:>14} {:>8}  verdict",
        "scenario", "fresh rate", "baseline rate", "factor"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>7.2}x  {}",
            o.name,
            o.fresh_rate,
            o.baseline_rate,
            o.regression_factor,
            if o.pass { "ok" } else { "REGRESSED" }
        );
        failed |= !o.pass;
    }
    if failed {
        eprintln!("bench_check: serve gate failed");
    } else {
        println!("bench_check: serve gate green, micro-batching claim holds");
    }
    !failed
}

/// Trace gate: attaching a recording sink must not push fit wall time out
/// of the tolerance band, and the phase profiler's modeled-time attribution
/// must reproduce the committed fit-throughput ordering (naive assignment
/// costs more than fused) at the committed baseline scale.
fn check_trace() -> bool {
    let m = env_usize("FTK_BENCH_M", 16384);
    let reps = env_usize("FTK_BENCH_REPS", 1);
    let tol = env_f64("FTK_BENCH_TOL", DEFAULT_TOLERANCE);
    let mut failed = false;

    println!("bench_check: recording-sink overhead at m = {m} ({reps} rep(s)), tolerance {tol}x");
    let o = run_trace_overhead(m, reps);
    let pass = o.factor() <= tol;
    println!(
        "trace overhead  untraced {:>9.6} s  traced {:>9.6} s  {:>5.2}x  ({} events)  {}",
        o.untraced_s,
        o.traced_s,
        o.factor(),
        o.events,
        if pass { "ok" } else { "REGRESSED" }
    );
    failed |= !pass;

    let profile_m = env_usize("FTK_BENCH_TRACE_M", TRACE_PROFILE_M);
    println!(
        "bench_check: phase-profile attribution at m = {profile_m} (committed-baseline scale)"
    );
    let naive = traced_fit(profile_m, Variant::Naive).0.phase_profile();
    let fused = traced_fit(profile_m, Variant::FusedV2).0.phase_profile();
    let assignment = trace::phases::ASSIGNMENT;
    let (na, fa) = (naive.modeled_s(assignment), fused.modeled_s(assignment));
    let pass = na > fa && fa > 0.0;
    println!(
        "assignment modeled  naive {:>9.3} ms  fused_v2 {:>9.3} ms  {}",
        na * 1e3,
        fa * 1e3,
        if pass { "ok" } else { "ORDER VIOLATED" }
    );
    failed |= !pass;
    print!("{}", fused.to_table());

    if failed {
        eprintln!("bench_check: trace gate failed");
    } else {
        println!("bench_check: trace gate green — overhead bounded, attribution matches baseline ordering");
    }
    !failed
}

fn check_figures() -> bool {
    let dir = baselines_root().join("figures");
    println!(
        "bench_check: regenerating all figures (--quick) for schema drift vs {}",
        dir.display()
    );
    let fresh = run_figure("all", true).expect("'all' is a valid figure id");
    let outcomes = check_figure_schemas(&fresh, &dir);
    let mut failed = false;
    for o in &outcomes {
        println!(
            "{:<10} {}  {}",
            o.id,
            if o.pass { "ok      " } else { "DRIFTED " },
            o.detail
        );
        failed |= !o.pass;
    }
    if failed {
        eprintln!(
            "bench_check: figure schema drift — update baselines/figures/ deliberately with: \
             figures --fig all --quick --out baselines/figures"
        );
    }
    !failed
}

fn check_campaign() -> bool {
    let path = baselines_root().join("campaign").join("campaign.csv");
    println!(
        "bench_check: running the quick campaign grid for exact-match vs {}",
        path.display()
    );
    let outcomes = run_campaign(&CampaignGrid::quick());
    let fresh_csv = campaign_table(&outcomes).to_csv();
    let o = check_campaign_exact(&fresh_csv, &path);
    println!(
        "{:<10} {}  {}",
        o.id,
        if o.pass { "ok      " } else { "DRIFTED " },
        o.detail
    );
    if !o.pass {
        eprintln!("bench_check: campaign table drift");
    }
    o.pass
}

fn main() {
    let mut ok = true;
    if env_enabled("FTK_CHECK_FIT") {
        ok &= check_throughput();
    }
    if env_enabled("FTK_CHECK_PREDICT") {
        ok &= check_predict();
    }
    if env_enabled("FTK_CHECK_SERVE") {
        ok &= check_serve();
    }
    if env_enabled("FTK_CHECK_TRACE") {
        ok &= check_trace();
    }
    if env_enabled("FTK_CHECK_FIGURES") {
        ok &= check_figures();
    }
    if env_enabled("FTK_CHECK_CAMPAIGN") {
        ok &= check_campaign();
    }
    if !ok {
        std::process::exit(1);
    }
    println!("bench_check: all gates green");
}
