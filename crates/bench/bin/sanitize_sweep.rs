//! `sanitize_sweep` — run the device sanitizer over the whole stack and
//! fail on any finding.
//!
//! Fits all six assignment variants (crossing the Hamerly revalidation
//! cadence), streams a mini-batch fit, runs the exact and quantized predict
//! epilogues, and drives a multi-client serve storm — all under a
//! `gpu_sim::sanitizer` checker. Prints the deterministic report and exits
//! non-zero when it is non-empty. Intended for the CI `sanitize-smoke` leg
//! and local pre-merge checks.
//!
//! Knobs:
//! * `FTK_SANITIZE`        — checks to run (default `race,init,oob`;
//!   `leak` and `all` also accepted). The leak check is not in the default
//!   gate: a fit legitimately leaves e.g. `sample_norms` unread under
//!   variants that never use norms, and the serve path retains resident
//!   buffers past the sweep.
//! * `FTK_SANITIZE_M`      — sample count for the fits (default 2048).
//! * `FTK_SANITIZE_REPORT` — also write the report text to this path.

use bench_harness::fitbench::env_usize;
use bench_harness::sanitize::run_sanitize_sweep;
use gpu_sim::sanitizer::SanitizeConfig;

fn main() {
    let m = env_usize("FTK_SANITIZE_M", 2048);
    let cfg = std::env::var("FTK_SANITIZE")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .map(|s| SanitizeConfig::parse(&s))
        .unwrap_or(SanitizeConfig {
            race: true,
            init: true,
            oob: true,
            leak: false,
        });

    let (report, phases) = run_sanitize_sweep(m, cfg);
    for p in &phases {
        eprintln!("sanitize_sweep: ran {}", p.name);
    }
    let text = report.to_text();
    print!("{text}");
    if let Ok(path) = std::env::var("FTK_SANITIZE_REPORT") {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("sanitize_sweep: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if !report.is_empty() {
        eprintln!(
            "sanitize_sweep: FAILED — {} finding(s) at m={m}",
            report.findings.len()
        );
        std::process::exit(1);
    }
    eprintln!("sanitize_sweep: OK — no findings at m={m}");
}
