//! `campaign` — one-command fault-injection campaign reproducing the
//! paper's §V-C detection / correction / SDC tables.
//!
//! ```text
//! cargo run -p bench_harness --release --bin campaign -- --quick
//! cargo run -p bench_harness --release --bin campaign -- \
//!     --rates 10,50,200 --schemes ftkmeans,wu --precisions fp64 \
//!     --reps 3 --out results --jsonl results/injections.jsonl --max-sdc 0.01
//! cargo run -p bench_harness --release --bin campaign -- \
//!     --quant-table 8 --max-sdc 0 --out results
//! ```
//!
//! `--quant-table REPS` is an exclusive mode targeting the *serving* path:
//! per quantization kind (fp16/int8) and state target (codes/scales/norms)
//! it flips REPS bits in the resident quantized table, serves a batch
//! through the guarded quantized predict, and classifies against host
//! reference labels, writing `<out>/quant_table.csv`. The fit-time grid
//! (and `campaign.csv`) is untouched by this mode.
//!
//! Sweeps injection rates × ABFT schemes × precisions over full K-means
//! fits with real bit flips, classifies silent data corruption against
//! fault-free twin runs, prints the aggregated table as markdown and writes
//! `<out>/campaign.csv`. With `--jsonl` every individual injection is
//! logged as one JSON object per line. With `--max-sdc` the process exits
//! non-zero when any protected scheme's SDC rate exceeds the threshold
//! (the CI assertion mode).
//!
//! The table is deterministic: identical under `FTK_EXEC=serial` and the
//! parallel worker pool (cells parallelize, each cell runs serially).

use bench_harness::campaign::{
    campaign_table, parse_precision, parse_scheme, quant_table_csv, records_jsonl, run_campaign,
    run_quant_campaign, CampaignGrid, QuantCampaignSpec,
};
use bench_harness::report::ReportSink;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--quick] [--rates R1,R2,...] [--schemes ftkmeans|kosaian|wu|none,...]\n\
         \x20                [--precisions fp32|fp64,...] [--reps N] [--out DIR]\n\
         \x20                [--jsonl PATH] [--max-sdc FRACTION]\n\
         \x20                [--quant-table REPS]   (exclusive: serving-path quantized-state axis)"
    );
    std::process::exit(2)
}

/// The `--quant-table` exclusive mode: bit flips in resident quantized
/// centroid tables served through the guarded predict path. Prints the
/// table, writes `<out>/quant_table.csv`, and applies `--max-sdc` to every
/// row (the guard is the protection — there is no unprotected control).
fn run_quant_mode(reps: u64, out: &PathBuf, max_sdc: Option<f64>) -> ! {
    let spec = QuantCampaignSpec {
        reps,
        ..Default::default()
    };
    eprintln!(
        "campaign: quantized-table axis, {} reps per kind x target cell",
        spec.reps
    );
    let rows = run_quant_campaign(&spec);
    println!("| kind | target | injected | detected | benign | sdc |");
    println!("|------|--------|----------|----------|--------|-----|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            r.kind, r.target, r.injected, r.detected, r.benign, r.sdc
        );
    }
    let csv = quant_table_csv(&rows);
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("campaign: cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    let path = out.join("quant_table.csv");
    if let Err(e) = std::fs::write(&path, &csv) {
        eprintln!("campaign: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote quant_table.csv to {}", out.display());
    if let Some(threshold) = max_sdc {
        let mut tripped = false;
        for r in &rows {
            if let Some(rate) = r.sdc_rate() {
                if rate > threshold {
                    eprintln!(
                        "campaign: SDC gate tripped: {} {} has SDC rate {:.4} > {:.4}",
                        r.kind, r.target, rate, threshold
                    );
                    tripped = true;
                }
            }
        }
        if tripped {
            std::process::exit(1);
        }
        eprintln!("campaign: quantized serving path within the {threshold} SDC threshold");
    }
    std::process::exit(0)
}

fn parse_list<T>(raw: &str, what: &str, f: impl Fn(&str) -> Option<T>) -> Vec<T> {
    let items: Vec<T> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            f(s).unwrap_or_else(|| {
                eprintln!("campaign: bad {what} value {s:?}");
                usage()
            })
        })
        .collect();
    if items.is_empty() {
        eprintln!("campaign: empty {what} list");
        usage()
    }
    items
}

fn main() {
    let mut quick = false;
    let mut rates: Option<Vec<f64>> = None;
    let mut schemes = None;
    let mut precisions = None;
    let mut reps: Option<usize> = None;
    let mut out = PathBuf::from("results");
    let mut jsonl: Option<PathBuf> = None;
    let mut max_sdc: Option<f64> = None;
    let mut quant_reps: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("campaign: {what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--quick" => quick = true,
            "--rates" => {
                rates = Some(parse_list(&next("--rates"), "rate", |s| {
                    s.parse::<f64>().ok().filter(|r| r.is_finite() && *r >= 0.0)
                }))
            }
            "--schemes" => schemes = Some(parse_list(&next("--schemes"), "scheme", parse_scheme)),
            "--precisions" => {
                precisions = Some(parse_list(
                    &next("--precisions"),
                    "precision",
                    parse_precision,
                ))
            }
            "--reps" => {
                reps = Some(
                    next("--reps")
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => out = PathBuf::from(next("--out")),
            "--jsonl" => jsonl = Some(PathBuf::from(next("--jsonl"))),
            "--max-sdc" => {
                max_sdc = Some(
                    next("--max-sdc")
                        .parse::<f64>()
                        .ok()
                        .filter(|v| (0.0..=1.0).contains(v))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--quant-table" => {
                quant_reps = Some(
                    next("--quant-table")
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if let Some(reps) = quant_reps {
        run_quant_mode(reps, &out, max_sdc);
    }

    let mut grid = if quick {
        CampaignGrid::quick()
    } else {
        CampaignGrid::full()
    };
    if let Some(r) = rates {
        grid.rates_hz = r;
    }
    if let Some(s) = schemes {
        grid.schemes = s;
    }
    if let Some(p) = precisions {
        grid.precisions = p;
    }
    if let Some(n) = reps {
        grid.reps = n;
    }

    eprintln!(
        "campaign: {} cells ({} rates x {} schemes x {} precisions x {} variants x {} shapes x \
         {} reps)",
        grid.len(),
        grid.rates_hz.len(),
        grid.schemes.len(),
        grid.precisions.len(),
        grid.variants.len(),
        grid.shapes.len(),
        grid.reps
    );
    let outcomes = run_campaign(&grid);
    let rep = campaign_table(&outcomes);
    println!("{}", rep.to_markdown());

    if let Some(path) = &jsonl {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("campaign: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
        let lines = records_jsonl(&outcomes);
        match std::fs::write(path, &lines) {
            Ok(_) => eprintln!(
                "wrote {} injection record(s) to {}",
                lines.lines().count(),
                path.display()
            ),
            Err(e) => {
                eprintln!("campaign: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    // Gate before flushing nothing on error paths: the CSV is the artifact
    // CI archives, so write it even when the SDC gate trips below.
    let mut sink = ReportSink::default();
    sink.add(rep);
    match sink.flush(&out) {
        Ok(_) => eprintln!("wrote campaign.csv to {}", out.display()),
        Err(e) => {
            eprintln!("campaign: failed to write results: {e}");
            std::process::exit(1);
        }
    }

    if let Some(threshold) = max_sdc {
        let mut tripped = false;
        for row in bench_harness::campaign::aggregate(&outcomes) {
            // The unprotected control is expected to corrupt; the gate
            // guards the protected schemes' SDC-freedom claim.
            if row.scheme == "none" {
                continue;
            }
            if let Some(rate) = row.sdc_rate() {
                if rate > threshold {
                    eprintln!(
                        "campaign: SDC gate tripped: {} {} at {} err/s has SDC rate {:.4} > {:.4}",
                        row.scheme, row.precision, row.rate_hz, rate, threshold
                    );
                    tripped = true;
                }
            }
        }
        if tripped {
            std::process::exit(1);
        }
        eprintln!("campaign: all protected schemes within the {threshold} SDC threshold");
    }
}
