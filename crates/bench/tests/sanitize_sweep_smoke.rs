//! Smoke test for the full-stack sanitizer sweep the CI `sanitize-smoke`
//! leg runs via the `sanitize_sweep` bin.
//!
//! The sweep installs a process-global checker (its serve-storm phase spans
//! threads that cannot inherit a thread-local scope), so this file holds
//! exactly ONE `#[test]`: a second concurrent test in this binary would
//! share — and pollute — the global checker.

use bench_harness::sanitize::{run_sanitize_sweep, SWEEP_VARIANTS};
use gpu_sim::sanitizer::SanitizeConfig;

#[test]
fn reduced_shape_sweep_is_clean() {
    let cfg = SanitizeConfig {
        race: true,
        init: true,
        oob: true,
        leak: false,
    };
    let (report, phases) = run_sanitize_sweep(256, cfg);
    assert!(
        report.is_empty(),
        "sanitize sweep must be clean, got:\n{}",
        report.to_text()
    );
    // Every advertised phase ran: one fit per variant, the mini-batch fit,
    // three predict policies, the serve storm.
    let names: Vec<&str> = phases.iter().map(|p| p.name.as_str()).collect();
    for (variant, _) in SWEEP_VARIANTS {
        assert!(names.contains(&format!("fit:{variant}").as_str()));
    }
    for phase in [
        "fit:minibatch",
        "predict:exact",
        "predict:fp16",
        "predict:int8",
        "serve:storm",
    ] {
        assert!(names.contains(&phase), "missing phase {phase}");
    }
}
