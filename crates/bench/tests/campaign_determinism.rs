//! The campaign's headline reproducibility guarantee: the same grid renders
//! a byte-identical table whatever the execution policy, because every cell
//! pins its fits to serial block order and only the cell-level scheduling
//! parallelizes.

use abft::SchemeKind;
use bench_harness::campaign::{
    campaign_table, records_jsonl, run_campaign, CampaignGrid, DataShape,
};
use gpu_sim::exec::{with_executor, Executor};
use gpu_sim::Precision;
use kmeans::Variant;

fn grid() -> CampaignGrid {
    CampaignGrid {
        rates_hz: vec![50.0],
        schemes: vec![SchemeKind::FtKMeans, SchemeKind::Wu],
        precisions: vec![Precision::Fp64],
        variants: vec![Variant::Tensor(None), Variant::Hamerly],
        shapes: vec![DataShape {
            m: 256,
            dim: 8,
            k: 16,
        }],
        reps: 2,
        residency_s: 1.0,
        max_iter: 4,
        base_seed: 99,
    }
}

#[test]
fn table_is_byte_identical_serial_vs_parallel() {
    let g = grid();
    let serial = Executor::serial();
    let (csv_serial, jsonl_serial) = with_executor(&serial, || {
        let out = run_campaign(&g);
        (campaign_table(&out).to_csv(), records_jsonl(&out))
    });
    let pool = Executor::with_workers(4);
    let (csv_pool, jsonl_pool) = with_executor(&pool, || {
        let out = run_campaign(&g);
        (campaign_table(&out).to_csv(), records_jsonl(&out))
    });
    assert!(
        csv_serial.contains("ftkmeans,fp64,tensor_v4,50.0"),
        "sanity: table rendered\n{csv_serial}"
    );
    assert!(
        csv_serial.contains("ftkmeans,fp64,hamerly,50.0"),
        "the bound-pruned grid cell must render its own row\n{csv_serial}"
    );
    assert_eq!(
        csv_serial, csv_pool,
        "campaign table must not depend on the execution policy"
    );
    assert_eq!(
        jsonl_serial, jsonl_pool,
        "per-injection logs must not depend on the execution policy"
    );
}

#[test]
fn repeat_runs_are_byte_identical() {
    let g = grid();
    let a = campaign_table(&run_campaign(&g)).to_csv();
    let b = campaign_table(&run_campaign(&g)).to_csv();
    assert_eq!(a, b);
}
