//! Property-based tests of the simulator substrate.

use gpu_sim::atomics::ArgminStore;
use gpu_sim::matrix::gemm_abt_reference;
use gpu_sim::{AsyncPipeline, CopyPath, Counters, GlobalBuffer, Matrix, Scalar};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pipeline discipline: for any number of tiles and stages, the
    /// prologue/prefetch/wait pattern used by the tensor kernel never reads
    /// an in-flight stage and always drains.
    #[test]
    fn pipeline_pattern_never_races(
        n_tiles in 1usize..20,
        k_stages in 2usize..5,
    ) {
        let c = Counters::new();
        let mut p = AsyncPipeline::<f32>::new(k_stages, 4, 4, 2, CopyPath::AsyncBypass);
        let prologue = (k_stages - 1).min(n_tiles);
        for s in 0..prologue {
            p.cp_async(s, &c, |t| t.set(0, 0, s as f32), |_| {});
            p.commit_group();
        }
        let mut committed = prologue;
        for kt in 0..n_tiles {
            let pf = kt + k_stages - 1;
            if pf < n_tiles {
                p.cp_async(pf % k_stages, &c, |t| t.set(0, 0, pf as f32), |_| {});
                p.commit_group();
                committed += 1;
            }
            p.wait_group(committed - kt - 1);
            // reading must not panic, and the stage holds tile kt's data
            let v = p.a(kt % k_stages).get(0, 0);
            prop_assert_eq!(v, kt as f32);
        }
        prop_assert_eq!(p.pending_groups(), 0);
    }

    /// Concurrent atomic adds are lossless for any partition of work.
    #[test]
    fn atomic_add_total_is_exact(
        threads in 1usize..8,
        per_thread in 1usize..200,
    ) {
        let c = Counters::new();
        let buf = GlobalBuffer::<f64>::zeros(1);
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| {
                    for _ in 0..per_thread {
                        buf.atomic_add(0, 1.0, &c);
                    }
                });
            }
        })
        .unwrap();
        prop_assert_eq!(buf.load(0), (threads * per_thread) as f64);
    }

    /// ArgminStore finds the same winner as a sequential scan, for any
    /// merge order.
    #[test]
    fn argmin_store_matches_sequential(
        dists in prop::collection::vec(0u32..1000, 1..60),
    ) {
        let c = Counters::new();
        let store = ArgminStore::<f32>::new(1);
        for (i, &d) in dists.iter().enumerate() {
            store.merge(0, d as f32, i as u32, &c);
        }
        let (best_d, best_i) = store.get(0);
        // sequential argmin with the same tie-break (smallest index)
        let mut want = (f32::INFINITY, u32::MAX);
        for (i, &d) in dists.iter().enumerate() {
            let d = d as f32;
            if d < want.0 || (d == want.0 && (i as u32) < want.1) {
                want = (d, i as u32);
            }
        }
        prop_assert_eq!((best_d, best_i), want);
    }

    /// GEMM reference transpose identity: (A·Bᵀ)ᵀ == B·Aᵀ.
    #[test]
    fn gemm_transpose_identity(
        m in 1usize..8,
        n in 1usize..8,
        k in 1usize..6,
        seed in 0u64..300,
    ) {
        let a = Matrix::<f64>::from_fn(m, k, |r, c| (((r * 3 + c + seed as usize) % 17) as f64) - 8.0);
        let b = Matrix::<f64>::from_fn(n, k, |r, c| (((r * 5 + c * 2 + seed as usize) % 13) as f64) - 6.0);
        let ab = gemm_abt_reference(&a, &b);
        let ba = gemm_abt_reference(&b, &a);
        prop_assert_eq!(ab.transposed(), ba);
    }

    /// TF32 truncation stays within the 10-bit-mantissa relative error
    /// bound and is idempotent.
    #[test]
    fn tf32_error_bound(x in -1e30f32..1e30f32) {
        let t = x.to_tf32();
        prop_assert_eq!(t.to_tf32(), t, "idempotent");
        if x != 0.0 && x.is_finite() && t.is_finite() {
            let rel = ((t - x) / x).abs();
            prop_assert!(rel <= 2.0f32.powi(-10), "rel err {rel} for {x}");
        }
    }

    /// Raw-u64 round trip for both scalar widths.
    #[test]
    fn raw_u64_roundtrip(x in prop::num::f64::ANY, y in prop::num::f32::ANY) {
        prop_assert_eq!(f64::from_raw_u64(x.to_raw_u64()).to_bits(), x.to_bits());
        prop_assert_eq!(f32::from_raw_u64(y.to_raw_u64()).to_bits(), y.to_bits());
    }
}
