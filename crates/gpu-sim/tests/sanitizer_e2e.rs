//! End-to-end device sanitizer behavior: deliberately buggy kernels must
//! produce exactly their expected findings, clean kernels must produce
//! empty reports, and reports must be byte-stable across executor policies.

use gpu_sim::memory::GlobalIndexBuffer;
use gpu_sim::sanitizer::{self, Checker, FindingKind, SanitizeConfig};
use gpu_sim::{Counters, DeviceProfile, Dim3, Executor, GlobalBuffer, LaunchConfig};
use std::sync::Arc;

fn cfg(blocks: usize) -> LaunchConfig {
    LaunchConfig {
        grid: Dim3::x(blocks),
        threads_per_block: 128,
        smem_bytes: 0,
    }
}

fn checker() -> Arc<Checker> {
    Arc::new(Checker::new(SanitizeConfig::all()))
}

#[test]
fn racy_accumulate_kernel_is_reported() {
    // Every block does a plain read-modify-write of cell 0 — the textbook
    // unsynchronized accumulate that atomicAdd exists to fix.
    let c = checker();
    let report = sanitizer::with_checker(&c, || {
        let exec = Executor::serial();
        let dev = DeviceProfile::a100();
        let counters = Counters::new();
        let accum = GlobalBuffer::<f32>::zeros(4);
        accum.set_sanitizer_label("accum");
        exec.launch_labeled(&dev, cfg(8), &counters, "racy_accumulate", |ctx| {
            let cur = accum.load(0);
            accum.store(0, cur + ctx.bx as f32);
        })
        .unwrap();
        let _ = accum.to_vec();
        c.report()
    });
    let ww = report.of_kind(FindingKind::RaceWriteWrite);
    assert_eq!(
        ww.len(),
        1,
        "one write-write race line: {}",
        report.to_text()
    );
    assert_eq!(ww[0].buffer, "accum");
    assert_eq!(ww[0].launch, "racy_accumulate");
    assert_eq!(ww[0].cells, 1);
    assert_eq!(ww[0].first_index, 0);
    assert_eq!(
        report.of_kind(FindingKind::RaceReadWrite).len(),
        1,
        "the unsynchronized load is a read-write race too"
    );
}

#[test]
fn disjoint_writes_and_atomics_are_clean() {
    // Each block writes its own cell and atomicAdds a shared cell — the
    // correct pattern; racecheck must stay quiet.
    let c = checker();
    let report = sanitizer::with_checker(&c, || {
        let exec = Executor::with_workers(4);
        let dev = DeviceProfile::a100();
        let counters = Counters::new();
        let out = GlobalBuffer::<f32>::zeros(16);
        let total = GlobalBuffer::<f32>::zeros(1);
        out.set_sanitizer_label("out");
        total.set_sanitizer_label("total");
        exec.launch_labeled(&dev, cfg(16), &counters, "disjoint", |ctx| {
            out.store(ctx.bx, ctx.bx as f32);
            total.atomic_add(0, 1.0, ctx.counters);
        })
        .unwrap();
        let _ = (out.to_vec(), total.to_vec());
        c.report()
    });
    assert!(
        report.is_empty(),
        "unexpected findings:\n{}",
        report.to_text()
    );
}

#[test]
fn atomic_mixed_with_plain_store_is_reported() {
    let c = checker();
    let report = sanitizer::with_checker(&c, || {
        let exec = Executor::serial();
        let dev = DeviceProfile::a100();
        let counters = Counters::new();
        let buf = GlobalBuffer::<f64>::zeros(2);
        buf.set_sanitizer_label("mixed");
        exec.launch_labeled(&dev, cfg(4), &counters, "atomic_mix", |ctx| {
            if ctx.bx == 0 {
                buf.store(0, 7.0); // plain store...
            } else {
                buf.atomic_add(0, 1.0, ctx.counters); // ...races the atomics
            }
        })
        .unwrap();
        let _ = buf.to_vec();
        c.report()
    });
    let am = report.of_kind(FindingKind::RaceAtomicMix);
    assert_eq!(am.len(), 1, "{}", report.to_text());
    assert_eq!(am[0].buffer, "mixed");
}

#[test]
fn uninit_read_kernel_is_reported_and_full_overwrite_is_clean() {
    let c = checker();
    let report = sanitizer::with_checker(&c, || {
        let exec = Executor::serial();
        let dev = DeviceProfile::a100();
        let counters = Counters::new();

        // Scratch the kernel is supposed to fill before reading — but the
        // buggy kernel reads cell bx + 4 having only written bx.
        let scratch = GlobalBuffer::<f32>::uninit(8);
        scratch.set_sanitizer_label("scratch");
        exec.launch_labeled(&dev, cfg(4), &counters, "uninit_read", |ctx| {
            scratch.store(ctx.bx, 1.0);
            let _ = scratch.load(ctx.bx + 4);
        })
        .unwrap();

        // A correct kernel over a second uninit buffer: write, then read
        // the same cell. No finding.
        let ok = GlobalBuffer::<f32>::uninit(4);
        ok.set_sanitizer_label("ok_scratch");
        exec.launch_labeled(&dev, cfg(4), &counters, "writes_first", |ctx| {
            ok.store(ctx.bx, 2.0);
            let _ = ok.load(ctx.bx);
        })
        .unwrap();
        c.report()
    });
    let ui = report.of_kind(FindingKind::UninitLoad);
    assert_eq!(ui.len(), 1, "{}", report.to_text());
    assert_eq!(ui[0].buffer, "scratch");
    assert_eq!(ui[0].launch, "uninit_read");
    assert_eq!(ui[0].cells, 4);
    assert_eq!(ui[0].first_index, 4);
    assert!(report.of_kind(FindingKind::RaceWriteWrite).is_empty());
}

#[test]
fn oob_access_is_reported_not_fatal() {
    let c = checker();
    let report = sanitizer::with_checker(&c, || {
        let exec = Executor::serial();
        let dev = DeviceProfile::a100();
        let counters = Counters::new();
        let buf = GlobalBuffer::<f32>::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        buf.set_sanitizer_label("small");
        let idx = GlobalIndexBuffer::zeros(4);
        idx.set_sanitizer_label("small_idx");
        exec.launch_labeled(&dev, cfg(2), &counters, "oob_kernel", |ctx| {
            // Off-by-len indexing: reads return zero, stores are dropped,
            // the process survives to report every offender.
            let v = buf.load(buf.len() + ctx.bx);
            assert_eq!(v, 0.0, "suppressed OOB load reads zero");
            buf.store(buf.len() + 7, v);
            idx.store(99, 1);
        })
        .unwrap();
        assert_eq!(buf.to_vec(), vec![1.0, 2.0, 3.0, 4.0], "stores dropped");
        let _ = idx.to_vec();
        c.report()
    });
    let oob = report.of_kind(FindingKind::OutOfBounds);
    assert_eq!(oob.len(), 2, "{}", report.to_text());
    let buffers: Vec<&str> = oob.iter().map(|f| f.buffer.as_str()).collect();
    assert_eq!(buffers, vec!["small", "small_idx"]);
    assert_eq!(oob[0].cells, 4, "2 loads + 2 stores on `small`");
    assert_eq!(oob[0].launch, "oob_kernel");
}

#[test]
fn never_read_buffer_is_a_leak_finding() {
    let c = checker();
    let report = sanitizer::with_checker(&c, || {
        let exec = Executor::serial();
        let dev = DeviceProfile::a100();
        let counters = Counters::new();
        let used = GlobalBuffer::<f32>::zeros(4);
        used.set_sanitizer_label("used");
        let wasted = GlobalBuffer::<f32>::zeros(1024);
        wasted.set_sanitizer_label("wasted");
        exec.launch_labeled(&dev, cfg(4), &counters, "writer", |ctx| {
            used.store(ctx.bx, 1.0);
            wasted.store(ctx.bx, 1.0); // written but never read
        })
        .unwrap();
        let _ = used.to_vec();
        c.report()
    });
    let leaks = report.of_kind(FindingKind::LeakNeverRead);
    assert_eq!(leaks.len(), 1, "{}", report.to_text());
    assert_eq!(leaks[0].buffer, "wasted");
    assert_eq!(leaks[0].cells, 1024);
}

#[test]
fn executor_attached_checker_checks_launches() {
    // No thread-local scope: the checker rides on the executor itself.
    let c = checker();
    let exec = Executor::serial().with_sanitizer(Arc::clone(&c));
    let dev = DeviceProfile::a100();
    let counters = Counters::new();
    // Allocated outside any scope: untracked (documented), but *launch*
    // race analysis still applies to tracked buffers. Allocate one under a
    // scope to have something tracked.
    let buf = sanitizer::with_checker(&c, || {
        let b = GlobalBuffer::<f32>::zeros(1);
        b.set_sanitizer_label("exec_buf");
        b
    });
    exec.launch_labeled(&dev, cfg(4), &counters, "exec_racy", |_| {
        let cur = buf.load(0);
        buf.store(0, cur + 1.0);
    })
    .unwrap();
    let report = c.report();
    assert_eq!(report.of_kind(FindingKind::RaceWriteWrite).len(), 1);
    assert_eq!(
        report.of_kind(FindingKind::RaceWriteWrite)[0].launch,
        "exec_racy"
    );
}

#[test]
fn race_findings_are_schedule_independent_and_reports_byte_stable() {
    // The same racy kernel under serial and heavily-parallel execution must
    // produce byte-identical reports: detection is from access *sets*, not
    // from observed interleavings.
    let run = |exec: Executor| {
        let c = checker();
        sanitizer::with_checker(&c, || {
            let dev = DeviceProfile::a100();
            let counters = Counters::new();
            let a = GlobalBuffer::<f32>::zeros(64);
            a.set_sanitizer_label("a");
            // Overlapping tiles: block b writes [4b, 4b+8), so consecutive
            // blocks collide on 4 cells each.
            exec.launch_labeled(&dev, cfg(8), &counters, "overlap", |ctx| {
                let base = ctx.bx * 4;
                for i in 0..8 {
                    if base + i < a.len() {
                        a.store(base + i, 1.0);
                    }
                }
            })
            .unwrap();
            let _ = a.to_vec();
            c.report().to_text()
        })
    };
    let serial = run(Executor::serial());
    let parallel = run(Executor::with_workers(8));
    assert_eq!(serial, parallel, "report must not depend on the schedule");
    assert!(serial.contains("race-write-write buffer=a launch=overlap cells=28 first=4"));
}

#[test]
fn buffers_allocated_outside_any_scope_are_never_checked() {
    let buf = GlobalBuffer::<f32>::zeros(4);
    buf.set_sanitizer_label("ignored"); // no-op without shadow state
    let c = checker();
    let report = sanitizer::with_checker(&c, || {
        let exec = Executor::serial();
        let dev = DeviceProfile::a100();
        let counters = Counters::new();
        exec.launch(&dev, cfg(4), &counters, |_| {
            let cur = buf.load(0);
            buf.store(0, cur + 1.0); // racy, but the buffer is untracked
        })
        .unwrap();
        c.report()
    });
    assert!(report.is_empty(), "{}", report.to_text());
}
