//! The bulk-transaction contract at launch granularity: a kernel written
//! against the run-based APIs must produce the same outputs AND the same
//! `CounterSnapshot` as the identical kernel written element-at-a-time.
//! This is what lets kernels migrate to the coalesced data path without
//! perturbing any counter-based structural test.

use gpu_sim::{launch_grid, Counters, DeviceProfile, Dim3, GlobalBuffer, LaunchConfig, ScratchBuf};

const ROWS: usize = 70; // not a multiple of the block size
const COLS: usize = 9;
const ROWS_PER_BLOCK: usize = 16;

fn input() -> GlobalBuffer<f64> {
    GlobalBuffer::from_slice(
        &(0..ROWS * COLS)
            .map(|i| (i as f64 * 0.37).sin())
            .collect::<Vec<_>>(),
    )
}

fn cfg() -> LaunchConfig {
    LaunchConfig {
        grid: Dim3::x(ROWS.div_ceil(ROWS_PER_BLOCK)),
        threads_per_block: 128,
        smem_bytes: 0,
    }
}

/// Row-sum kernel, element-at-a-time path.
fn row_sums_elementwise(dev: &DeviceProfile, data: &GlobalBuffer<f64>, c: &Counters) -> Vec<f64> {
    let out = GlobalBuffer::<f64>::zeros(ROWS);
    launch_grid(dev, cfg(), c, |ctx| {
        let row0 = ctx.bx * ROWS_PER_BLOCK;
        for r in row0..(row0 + ROWS_PER_BLOCK).min(ROWS) {
            let mut acc = 0.0;
            for col in 0..COLS {
                acc += data.load_counted(r * COLS + col, ctx.counters);
            }
            out.store_counted(r, acc, ctx.counters);
        }
    })
    .unwrap();
    out.to_vec()
}

/// The same kernel on the bulk path: one run per row, one run per block of
/// results.
fn row_sums_bulk(dev: &DeviceProfile, data: &GlobalBuffer<f64>, c: &Counters) -> Vec<f64> {
    let out = GlobalBuffer::<f64>::zeros(ROWS);
    launch_grid(dev, cfg(), c, |ctx| {
        let row0 = ctx.bx * ROWS_PER_BLOCK;
        let rows = ROWS_PER_BLOCK.min(ROWS.saturating_sub(row0));
        let mut row = ScratchBuf::<f64, 64>::filled(COLS, 0.0);
        let mut sums = [0.0f64; ROWS_PER_BLOCK];
        for (i, slot) in sums[..rows].iter_mut().enumerate() {
            data.load_run((row0 + i) * COLS, &mut row, ctx.counters);
            *slot = row.iter().sum();
        }
        out.store_run(row0, &sums[..rows], ctx.counters);
    })
    .unwrap();
    out.to_vec()
}

#[test]
fn bulk_kernel_matches_elementwise_kernel_in_outputs_and_counters() {
    let dev = DeviceProfile::a100();
    let data = input();

    let c_elem = Counters::new();
    let sums_elem = row_sums_elementwise(&dev, &data, &c_elem);
    let c_bulk = Counters::new();
    let sums_bulk = row_sums_bulk(&dev, &data, &c_bulk);

    assert_eq!(sums_elem, sums_bulk, "outputs must be identical");
    assert_eq!(
        c_elem.snapshot(),
        c_bulk.snapshot(),
        "bulk-path CounterSnapshot must equal the per-element path"
    );
    // Sanity: the totals are the closed-form element counts.
    let s = c_bulk.snapshot();
    assert_eq!(s.bytes_loaded, (ROWS * COLS * 8) as u64);
    assert_eq!(s.bytes_stored, (ROWS * 8) as u64);
}
