//! Grid/block dimension helpers mirroring CUDA's `dim3`.

use serde::{Deserialize, Serialize};

/// A three-component extent, as in CUDA `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    pub x: usize,
    pub y: usize,
    pub z: usize,
}

impl Dim3 {
    /// A 1-D extent.
    pub const fn x(x: usize) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D extent.
    pub const fn xy(x: usize, y: usize) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements covered.
    pub const fn volume(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Linearize an index within this extent (x fastest).
    pub fn linear(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.x && y < self.y && z < self.z);
        (z * self.y + y) * self.x + x
    }

    /// Inverse of [`Dim3::linear`].
    pub fn unlinear(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.volume());
        let x = idx % self.x;
        let y = (idx / self.x) % self.y;
        let z = idx / (self.x * self.y);
        (x, y, z)
    }
}

/// `ceil(a / b)` for grid sizing.
pub const fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Round `a` up to the next multiple of `b`.
pub const fn round_up(a: usize, b: usize) -> usize {
    ceil_div(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_linearization() {
        let d = Dim3 { x: 4, y: 3, z: 2 };
        assert_eq!(d.volume(), 24);
        for idx in 0..d.volume() {
            let (x, y, z) = d.unlinear(idx);
            assert_eq!(d.linear(x, y, z), idx);
        }
    }

    #[test]
    fn constructors() {
        assert_eq!(Dim3::x(7).volume(), 7);
        assert_eq!(Dim3::xy(3, 5).volume(), 15);
    }

    #[test]
    fn rounding_helpers() {
        assert_eq!(ceil_div(10, 4), 3);
        assert_eq!(ceil_div(8, 4), 2);
        assert_eq!(round_up(10, 4), 12);
        assert_eq!(round_up(8, 4), 8);
        assert_eq!(ceil_div(1, 256), 1);
    }
}
