//! Hardware-event counters collected during functional kernel execution.
//!
//! The functional simulator counts the events that the analytic timing model
//! reasons about: global-memory traffic, MMA/FMA issue counts, atomics and
//! barriers. Tests use them to assert structural properties of kernels (e.g.
//! "the fused variant does not write the distance matrix back to global
//! memory", paper §III-A3).

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic event counters. Cheap to increment from parallel
/// threadblocks; snapshot with [`Counters::snapshot`].
#[derive(Debug, Default)]
pub struct Counters {
    /// Bytes read from global memory.
    pub bytes_loaded: AtomicU64,
    /// Bytes written to global memory.
    pub bytes_stored: AtomicU64,
    /// Warp-level tensor-core MMA instructions issued.
    pub mma_ops: AtomicU64,
    /// Scalar fused-multiply-add operations on CUDA cores.
    pub fma_ops: AtomicU64,
    /// Atomic read-modify-write operations on global memory.
    pub atomic_ops: AtomicU64,
    /// `__syncthreads()` barriers executed (per threadblock).
    pub barriers: AtomicU64,
    /// `cp.async` copy instructions issued.
    pub cp_async_ops: AtomicU64,
    /// Extra global reads forced on a fault-tolerance scheme when the
    /// register-staged path is unavailable (Wu's scheme on Ampere).
    pub ft_extra_loads: AtomicU64,
    /// Checksum-related arithmetic performed on CUDA cores.
    pub ft_cuda_ops: AtomicU64,
    /// Checksum-related MMA instructions on tensor cores.
    pub ft_mma_ops: AtomicU64,
    /// Kernel launches performed.
    pub kernel_launches: AtomicU64,
}

/// A plain-value copy of [`Counters`] at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub bytes_loaded: u64,
    pub bytes_stored: u64,
    pub mma_ops: u64,
    pub fma_ops: u64,
    pub atomic_ops: u64,
    pub barriers: u64,
    pub cp_async_ops: u64,
    pub ft_extra_loads: u64,
    pub ft_cuda_ops: u64,
    pub ft_mma_ops: u64,
    pub kernel_launches: u64,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add_loaded(&self, bytes: u64) {
        self.bytes_loaded.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_stored(&self, bytes: u64) {
        self.bytes_stored.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_mma(&self, n: u64) {
        self.mma_ops.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_fma(&self, n: u64) {
        self.fma_ops.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_atomic(&self, n: u64) {
        self.atomic_ops.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_barrier(&self) {
        self.barriers.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_cp_async(&self, n: u64) {
        self.cp_async_ops.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_ft_extra_loads(&self, bytes: u64) {
        self.ft_extra_loads.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_ft_cuda(&self, n: u64) {
        self.ft_cuda_ops.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_ft_mma(&self, n: u64) {
        self.ft_mma_ops.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_launch(&self) {
        self.kernel_launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Capture current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            bytes_loaded: self.bytes_loaded.load(Ordering::Relaxed),
            bytes_stored: self.bytes_stored.load(Ordering::Relaxed),
            mma_ops: self.mma_ops.load(Ordering::Relaxed),
            fma_ops: self.fma_ops.load(Ordering::Relaxed),
            atomic_ops: self.atomic_ops.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            cp_async_ops: self.cp_async_ops.load(Ordering::Relaxed),
            ft_extra_loads: self.ft_extra_loads.load(Ordering::Relaxed),
            ft_cuda_ops: self.ft_cuda_ops.load(Ordering::Relaxed),
            ft_mma_ops: self.ft_mma_ops.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.bytes_loaded.store(0, Ordering::Relaxed);
        self.bytes_stored.store(0, Ordering::Relaxed);
        self.mma_ops.store(0, Ordering::Relaxed);
        self.fma_ops.store(0, Ordering::Relaxed);
        self.atomic_ops.store(0, Ordering::Relaxed);
        self.barriers.store(0, Ordering::Relaxed);
        self.cp_async_ops.store(0, Ordering::Relaxed);
        self.ft_extra_loads.store(0, Ordering::Relaxed);
        self.ft_cuda_ops.store(0, Ordering::Relaxed);
        self.ft_mma_ops.store(0, Ordering::Relaxed);
        self.kernel_launches.store(0, Ordering::Relaxed);
    }
}

impl CounterSnapshot {
    /// Difference `self - earlier`, elementwise (saturating).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            bytes_loaded: self.bytes_loaded.saturating_sub(earlier.bytes_loaded),
            bytes_stored: self.bytes_stored.saturating_sub(earlier.bytes_stored),
            mma_ops: self.mma_ops.saturating_sub(earlier.mma_ops),
            fma_ops: self.fma_ops.saturating_sub(earlier.fma_ops),
            atomic_ops: self.atomic_ops.saturating_sub(earlier.atomic_ops),
            barriers: self.barriers.saturating_sub(earlier.barriers),
            cp_async_ops: self.cp_async_ops.saturating_sub(earlier.cp_async_ops),
            ft_extra_loads: self.ft_extra_loads.saturating_sub(earlier.ft_extra_loads),
            ft_cuda_ops: self.ft_cuda_ops.saturating_sub(earlier.ft_cuda_ops),
            ft_mma_ops: self.ft_mma_ops.saturating_sub(earlier.ft_mma_ops),
            kernel_launches: self.kernel_launches.saturating_sub(earlier.kernel_launches),
        }
    }

    /// Total global traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_and_snapshot() {
        let c = Counters::new();
        c.add_loaded(100);
        c.add_stored(40);
        c.add_mma(3);
        c.add_barrier();
        c.add_atomic(2);
        let s = c.snapshot();
        assert_eq!(s.bytes_loaded, 100);
        assert_eq!(s.bytes_stored, 40);
        assert_eq!(s.mma_ops, 3);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.atomic_ops, 2);
        assert_eq!(s.total_bytes(), 140);
    }

    #[test]
    fn since_computes_delta() {
        let c = Counters::new();
        c.add_loaded(10);
        let before = c.snapshot();
        c.add_loaded(25);
        c.add_fma(7);
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.bytes_loaded, 25);
        assert_eq!(delta.fma_ops, 7);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = Counters::new();
        c.add_loaded(1);
        c.add_ft_mma(5);
        c.add_launch();
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = Counters::new();
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        c.add_mma(1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(c.snapshot().mma_ops, 8000);
    }
}
