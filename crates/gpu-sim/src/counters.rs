//! Hardware-event counters collected during functional kernel execution.
//!
//! The functional simulator counts the events that the analytic timing model
//! reasons about: global-memory traffic, MMA/FMA issue counts, atomics and
//! barriers. Tests use them to assert structural properties of kernels (e.g.
//! "the fused variant does not write the distance matrix back to global
//! memory", paper §III-A3).
//!
//! Two charging paths exist, unified by the [`EventSink`] trait:
//!
//! * [`Counters`] — the shared, atomic accumulator a launch is charged to.
//!   Host-side code (uploads, unit tests) charges it directly.
//! * [`CounterSink`] — a worker-local, non-atomic shard used inside kernel
//!   execution. Every counted primitive inside a threadblock charges plain
//!   [`Cell`]s; the execution engine merges the shard into the shared
//!   [`Counters`] exactly once per block, eliminating the shared-cache-line
//!   ping-pong of per-element `fetch_add`s while keeping totals bit-identical
//!   (u64 addition is exact and commutative, so serial and parallel launches
//!   produce the same [`CounterSnapshot`]).
//!
//! The event list lives in one place — the `counter_events!` invocation —
//! which generates the structs, the snapshot/flush plumbing and both
//! [`EventSink`] impls, so adding an event kind cannot leave a path out of
//! sync.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Defines every counter-carrying type from one event list.
///
/// `counted` events expose `fn add(&self, n: u64)`; `unit` events expose
/// `fn add(&self)` (increment by one). Generates [`Counters`],
/// [`CounterSnapshot`], [`CounterSink`], the [`EventSink`] trait and its two
/// impls, plus the snapshot/reset/flush/since plumbing.
macro_rules! counter_events {
    (
        counted { $($(#[doc = $cdoc:literal])* $cfield:ident => $cadd:ident),+ $(,)? }
        unit { $($(#[doc = $udoc:literal])* $ufield:ident => $uadd:ident),+ $(,)? }
    ) => {
        /// Shared atomic event counters. Cheap to increment from parallel
        /// threadblocks; snapshot with [`Counters::snapshot`].
        #[derive(Debug, Default)]
        pub struct Counters {
            $($(#[doc = $cdoc])* pub $cfield: AtomicU64,)+
            $($(#[doc = $udoc])* pub $ufield: AtomicU64,)+
        }

        /// A plain-value copy of [`Counters`] at a point in time.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct CounterSnapshot {
            $($(#[doc = $cdoc])* pub $cfield: u64,)+
            $($(#[doc = $udoc])* pub $ufield: u64,)+
        }

        /// Anything hardware events can be charged to: the shared
        /// [`Counters`] (atomic, host-side) or a worker-local
        /// [`CounterSink`] (non-atomic, inside kernels). Counted primitives
        /// are generic over this trait so the same kernel code runs against
        /// either.
        pub trait EventSink {
            $($(#[doc = $cdoc])* fn $cadd(&self, n: u64);)+
            $($(#[doc = $udoc])* fn $uadd(&self);)+
        }

        impl Counters {
            $(
                $(#[doc = $cdoc])*
                #[inline]
                pub fn $cadd(&self, n: u64) {
                    self.$cfield.fetch_add(n, Ordering::Relaxed);
                }
            )+
            $(
                $(#[doc = $udoc])*
                #[inline]
                pub fn $uadd(&self) {
                    self.$ufield.fetch_add(1, Ordering::Relaxed);
                }
            )+

            /// Capture current values.
            pub fn snapshot(&self) -> CounterSnapshot {
                CounterSnapshot {
                    $($cfield: self.$cfield.load(Ordering::Relaxed),)+
                    $($ufield: self.$ufield.load(Ordering::Relaxed),)+
                }
            }

            /// Reset every counter to zero.
            pub fn reset(&self) {
                $(self.$cfield.store(0, Ordering::Relaxed);)+
                $(self.$ufield.store(0, Ordering::Relaxed);)+
            }

            /// Fold a plain-value snapshot into these live counters — the
            /// aggregation half of per-request scoping. A serving layer
            /// charges each admitted request its own scoped [`Counters`]
            /// (so concurrent requests never cross-talk), then folds the
            /// request's finished [`CounterSnapshot`] into a shared total
            /// with one call. Zero fields cost nothing (no atomic issued).
            pub fn add_snapshot(&self, s: &CounterSnapshot) {
                $(if s.$cfield != 0 {
                    self.$cfield.fetch_add(s.$cfield, Ordering::Relaxed);
                })+
                $(if s.$ufield != 0 {
                    self.$ufield.fetch_add(s.$ufield, Ordering::Relaxed);
                })+
            }
        }

        impl EventSink for Counters {
            $(fn $cadd(&self, n: u64) { Counters::$cadd(self, n); })+
            $(fn $uadd(&self) { Counters::$uadd(self); })+
        }

        /// A worker-local counter shard. Accumulates events in plain
        /// [`Cell`]s (no atomics, no sharing — the type is deliberately
        /// `!Sync`) and merges them into the shared [`Counters`] on
        /// [`CounterSink::flush`] or drop.
        ///
        /// The execution engine creates one per worker and flushes once per
        /// threadblock, so the shared cache line is touched O(blocks) times
        /// instead of O(memory accesses).
        #[derive(Debug)]
        pub struct CounterSink<'a> {
            shared: &'a Counters,
            $($cfield: Cell<u64>,)+
            $($ufield: Cell<u64>,)+
        }

        impl<'a> CounterSink<'a> {
            /// A zeroed sink draining into `shared`.
            pub fn new(shared: &'a Counters) -> Self {
                CounterSink {
                    shared,
                    $($cfield: Cell::new(0),)+
                    $($ufield: Cell::new(0),)+
                }
            }

            /// The shared counters this sink drains into.
            pub fn shared(&self) -> &'a Counters {
                self.shared
            }

            $(
                $(#[doc = $cdoc])*
                #[inline]
                pub fn $cadd(&self, n: u64) {
                    self.$cfield.set(self.$cfield.get().wrapping_add(n));
                }
            )+
            $(
                $(#[doc = $udoc])*
                #[inline]
                pub fn $uadd(&self) {
                    self.$ufield.set(self.$ufield.get().wrapping_add(1));
                }
            )+

            /// Merge the local tallies into the shared [`Counters`] and
            /// reset them. Zero fields cost nothing (no atomic issued).
            pub fn flush(&self) {
                fn drain(cell: &Cell<u64>, target: &AtomicU64) {
                    let v = cell.replace(0);
                    if v != 0 {
                        target.fetch_add(v, Ordering::Relaxed);
                    }
                }
                $(drain(&self.$cfield, &self.shared.$cfield);)+
                $(drain(&self.$ufield, &self.shared.$ufield);)+
            }
        }

        impl EventSink for CounterSink<'_> {
            $(fn $cadd(&self, n: u64) { CounterSink::$cadd(self, n); })+
            $(fn $uadd(&self) { CounterSink::$uadd(self); })+
        }

        impl CounterSnapshot {
            /// Difference `self - earlier`, elementwise (saturating).
            pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
                CounterSnapshot {
                    $($cfield: self.$cfield.saturating_sub(earlier.$cfield),)+
                    $($ufield: self.$ufield.saturating_sub(earlier.$ufield),)+
                }
            }

            /// Sum `self + other`, elementwise (saturating): folds a
            /// per-step snapshot into a running total (e.g. per-batch
            /// counters of a streaming fit).
            pub fn merged(&self, other: &CounterSnapshot) -> CounterSnapshot {
                CounterSnapshot {
                    $($cfield: self.$cfield.saturating_add(other.$cfield),)+
                    $($ufield: self.$ufield.saturating_add(other.$ufield),)+
                }
            }

            /// The nonzero fields as `(name, value)` pairs in declaration
            /// order — the flat form the `trace` crate consumes (it sits
            /// below this crate, so it cannot see [`CounterSnapshot`]).
            /// Declaration order is part of the trace byte-stability
            /// contract.
            pub fn nonzero_fields(&self) -> Vec<(&'static str, u64)> {
                let mut out = Vec::new();
                $(if self.$cfield != 0 {
                    out.push((stringify!($cfield), self.$cfield));
                })+
                $(if self.$ufield != 0 {
                    out.push((stringify!($ufield), self.$ufield));
                })+
                out
            }
        }
    };
}

counter_events! {
    counted {
        /// Bytes read from global memory.
        bytes_loaded => add_loaded,
        /// Bytes written to global memory.
        bytes_stored => add_stored,
        /// Warp-level tensor-core MMA instructions issued.
        mma_ops => add_mma,
        /// Scalar fused-multiply-add operations on CUDA cores.
        fma_ops => add_fma,
        /// Atomic read-modify-write operations on global memory.
        atomic_ops => add_atomic,
        /// `cp.async` copy instructions issued.
        cp_async_ops => add_cp_async,
        /// Extra global reads forced on a fault-tolerance scheme when the
        /// register-staged path is unavailable (Wu's scheme on Ampere).
        ft_extra_loads => add_ft_extra_loads,
        /// Checksum-related arithmetic performed on CUDA cores.
        ft_cuda_ops => add_ft_cuda,
        /// Checksum-related MMA instructions on tensor cores.
        ft_mma_ops => add_ft_mma,
        /// Candidate distance computations skipped by triangle-inequality
        /// bound pruning (Hamerly-style assignment kernels).
        pruned_candidates => add_pruned,
        /// Samples whose quantized argmin margin did not clear the
        /// quantization error bound and fell back to the exact fp scan
        /// (fused quantized predict kernels).
        quant_fallbacks => add_quant_fallback,
    }
    unit {
        /// `__syncthreads()` barriers executed (per threadblock).
        barriers => add_barrier,
        /// Kernel launches performed.
        kernel_launches => add_launch,
    }
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh local shard draining into these counters (see
    /// [`CounterSink`]).
    pub fn sink(&self) -> CounterSink<'_> {
        CounterSink::new(self)
    }
}

impl Drop for CounterSink<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl CounterSnapshot {
    /// Total global traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_and_snapshot() {
        let c = Counters::new();
        c.add_loaded(100);
        c.add_stored(40);
        c.add_mma(3);
        c.add_barrier();
        c.add_atomic(2);
        let s = c.snapshot();
        assert_eq!(s.bytes_loaded, 100);
        assert_eq!(s.bytes_stored, 40);
        assert_eq!(s.mma_ops, 3);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.atomic_ops, 2);
        assert_eq!(s.total_bytes(), 140);
    }

    #[test]
    fn since_computes_delta() {
        let c = Counters::new();
        c.add_loaded(10);
        let before = c.snapshot();
        c.add_loaded(25);
        c.add_fma(7);
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.bytes_loaded, 25);
        assert_eq!(delta.fma_ops, 7);
    }

    #[test]
    fn merged_sums_elementwise_and_inverts_since() {
        let c = Counters::new();
        c.add_loaded(10);
        c.add_launch();
        let a = c.snapshot();
        c.add_loaded(25);
        c.add_fma(7);
        let total = c.snapshot();
        let delta = total.since(&a);
        assert_eq!(a.merged(&delta), total);
        assert_eq!(a.merged(&CounterSnapshot::default()), a);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = Counters::new();
        c.add_loaded(1);
        c.add_ft_mma(5);
        c.add_launch();
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn sink_merges_on_flush_and_drop() {
        let c = Counters::new();
        let sink = c.sink();
        sink.add_loaded(64);
        sink.add_mma(3);
        sink.add_barrier();
        // nothing visible until the sink flushes
        assert_eq!(c.snapshot(), CounterSnapshot::default());
        sink.flush();
        let s = c.snapshot();
        assert_eq!(s.bytes_loaded, 64);
        assert_eq!(s.mma_ops, 3);
        assert_eq!(s.barriers, 1);
        // flush reset the locals: a second flush adds nothing
        sink.flush();
        assert_eq!(c.snapshot(), s);
        sink.add_fma(7);
        drop(sink); // drop flushes the remainder
        assert_eq!(c.snapshot().fma_ops, 7);
    }

    #[test]
    fn sink_totals_match_direct_charging() {
        let direct = Counters::new();
        let sharded = Counters::new();
        for i in 0..100u64 {
            direct.add_loaded(i);
            direct.add_atomic(1);
            let sink = sharded.sink();
            sink.add_loaded(i);
            sink.add_atomic(1);
        }
        assert_eq!(direct.snapshot(), sharded.snapshot());
    }

    #[test]
    fn every_event_kind_survives_the_sink_round_trip() {
        // One charge per event kind through a sink must land in the shared
        // counters — guards the macro-generated flush list.
        let c = Counters::new();
        {
            let sink = c.sink();
            sink.add_loaded(1);
            sink.add_stored(2);
            sink.add_mma(3);
            sink.add_fma(4);
            sink.add_atomic(5);
            sink.add_cp_async(6);
            sink.add_ft_extra_loads(7);
            sink.add_ft_cuda(8);
            sink.add_ft_mma(9);
            sink.add_pruned(10);
            sink.add_quant_fallback(11);
            sink.add_barrier();
            sink.add_launch();
        }
        let s = c.snapshot();
        assert_eq!(
            (
                s.bytes_loaded,
                s.bytes_stored,
                s.mma_ops,
                s.fma_ops,
                s.atomic_ops,
                s.cp_async_ops,
                s.ft_extra_loads
            ),
            (1, 2, 3, 4, 5, 6, 7)
        );
        assert_eq!(
            (
                s.ft_cuda_ops,
                s.ft_mma_ops,
                s.pruned_candidates,
                s.quant_fallbacks,
                s.barriers,
                s.kernel_launches
            ),
            (8, 9, 10, 11, 1, 1)
        );
    }

    #[test]
    fn add_snapshot_folds_scoped_totals() {
        // Per-request scoping: two "requests" charge their own counters;
        // folding both snapshots into a shared total must equal charging
        // the total directly (u64 addition is exact and commutative).
        let total = Counters::new();
        let req_a = Counters::new();
        req_a.add_loaded(100);
        req_a.add_launch();
        let req_b = Counters::new();
        req_b.add_loaded(30);
        req_b.add_quant_fallback(2);
        total.add_snapshot(&req_a.snapshot());
        total.add_snapshot(&req_b.snapshot());
        assert_eq!(total.snapshot(), req_a.snapshot().merged(&req_b.snapshot()));
        // every field kind survives the fold, not just the touched ones
        let full = Counters::new();
        {
            let sink = full.sink();
            sink.add_loaded(1);
            sink.add_stored(2);
            sink.add_mma(3);
            sink.add_fma(4);
            sink.add_atomic(5);
            sink.add_cp_async(6);
            sink.add_ft_extra_loads(7);
            sink.add_ft_cuda(8);
            sink.add_ft_mma(9);
            sink.add_pruned(10);
            sink.add_quant_fallback(11);
            sink.add_barrier();
            sink.add_launch();
        }
        let copy = Counters::new();
        copy.add_snapshot(&full.snapshot());
        assert_eq!(copy.snapshot(), full.snapshot());
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = Counters::new();
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        c.add_mma(1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(c.snapshot().mma_ops, 8000);
    }
}
