//! Error type for simulator misuse (resource overflows, shape mismatches).

use std::fmt;

/// Errors surfaced by the functional simulator.
///
/// These correspond to conditions that would be compile-time or launch-time
/// failures on a real GPU (the paper's "demo compile & run" feasibility
/// probe, Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A threadblock requested more shared memory than the device allows.
    SharedMemoryOverflow { requested: usize, limit: usize },
    /// A threadblock requested more threads than the device allows.
    ThreadLimitExceeded { requested: usize, limit: usize },
    /// Estimated register usage exceeds the per-thread architectural cap.
    RegisterOverflow { requested: usize, limit: usize },
    /// Host-side shape mismatch (buffer too small, incompatible matrices).
    ShapeMismatch(String),
    /// Kernel configuration violates a structural rule (e.g. warp tile does
    /// not divide threadblock tile).
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SharedMemoryOverflow { requested, limit } => write!(
                f,
                "shared memory overflow: requested {requested} B, limit {limit} B"
            ),
            SimError::ThreadLimitExceeded { requested, limit } => {
                write!(
                    f,
                    "thread limit exceeded: requested {requested}, limit {limit}"
                )
            }
            SimError::RegisterOverflow { requested, limit } => {
                write!(f, "register overflow: requested {requested}, limit {limit}")
            }
            SimError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid kernel config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::SharedMemoryOverflow {
            requested: 200_000,
            limit: 163_840,
        };
        let s = e.to_string();
        assert!(s.contains("200000"));
        assert!(s.contains("163840"));
        let e2 = SimError::InvalidConfig("warp tile".into());
        assert!(e2.to_string().contains("warp tile"));
    }
}
