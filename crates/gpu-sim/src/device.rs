//! Device profiles for the GPUs evaluated in the paper.
//!
//! The paper benchmarks an NVIDIA A100-PCIE-40GB (Ampere, SM80) and a Tesla
//! T4 (Turing, SM75). The profile captures the architectural quantities the
//! timing model and the feasibility checker consume. Throughput figures are
//! *sustained* numbers used as model ceilings, annotated with the paper's
//! quoted peaks.

use serde::{Deserialize, Serialize};

/// Floating-point precision of a kernel instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit IEEE-754 (tensor cores operate in TF32 on Ampere).
    Fp32,
    /// 64-bit IEEE-754 (tensor cores use DMMA `m8n8k4` on Ampere).
    Fp64,
}

impl Precision {
    /// Size of one element in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp64 => 8,
        }
    }

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Fp64 => "fp64",
        }
    }

    /// Both precisions, in report order.
    pub fn all() -> [Precision; 2] {
        [Precision::Fp32, Precision::Fp64]
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static description of a GPU used by the timing model and feasibility
/// checks. All throughputs are in GFLOP/s, bandwidth in GB/s, capacities in
/// bytes unless stated otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing name, e.g. `"A100-PCIE-40GB"`.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// SM clock in GHz (boost).
    pub clock_ghz: f64,
    /// Sustained CUDA-core (SIMT) FP32 throughput, GFLOP/s.
    pub cuda_fp32_gflops: f64,
    /// Sustained CUDA-core (SIMT) FP64 throughput, GFLOP/s.
    pub cuda_fp64_gflops: f64,
    /// Sustained tensor-core throughput for FP32-accumulate (TF32 on Ampere,
    /// FP16-accumulate-FP32 on Turing), GFLOP/s.
    pub tensor_fp32_gflops: f64,
    /// Sustained tensor-core FP64 (DMMA) throughput, GFLOP/s. Zero when the
    /// architecture has no FP64 tensor path (Turing).
    pub tensor_fp64_gflops: f64,
    /// Global-memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// L2 cache capacity in bytes (drives operand-reuse modeling: a
    /// centroid matrix that fits in L2 is fetched from DRAM once, not once
    /// per threadblock).
    pub l2_bytes: usize,
    /// Shared memory available per SM (bytes, opted-in maximum).
    pub smem_per_sm: usize,
    /// Maximum shared memory a single threadblock may allocate (bytes).
    pub smem_per_block: usize,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
    /// Maximum registers per thread.
    pub regs_per_thread: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident threadblocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum threads per threadblock.
    pub max_threads_per_block: usize,
    /// Whether the architecture has `cp.async` (global→shared bypassing the
    /// register file). True from Ampere (SM80) on. This is the architectural
    /// property that invalidates register-reuse ABFT (paper §I, §II-C).
    pub has_async_copy: bool,
    /// Kernel launch overhead in microseconds (used by multi-kernel variants).
    pub launch_overhead_us: f64,
}

impl DeviceProfile {
    /// NVIDIA A100-PCIE-40GB (SM80) as used in the paper's main evaluation.
    ///
    /// Paper-quoted peaks: 19.5 TFLOPS FP32 (CUDA cores), 9.7 TFLOPS FP64,
    /// 1.55 TB/s HBM2. TF32 tensor peak is 156 TFLOPS but the fused
    /// distance kernel is bandwidth/epilogue limited far below that; the
    /// sustained ceiling here is set so the tuned kernel tops out near the
    /// paper's measured 17.7 TFLOPS (Fig. 7).
    pub fn a100() -> Self {
        DeviceProfile {
            name: "A100-PCIE-40GB",
            sm_count: 108,
            clock_ghz: 1.41,
            cuda_fp32_gflops: 19_500.0,
            cuda_fp64_gflops: 9_700.0,
            tensor_fp32_gflops: 52_000.0,
            tensor_fp64_gflops: 19_500.0,
            mem_bw_gbs: 1555.0,
            l2_bytes: 40 * 1024 * 1024,
            smem_per_sm: 164 * 1024,
            smem_per_block: 160 * 1024,
            regs_per_sm: 65_536,
            regs_per_thread: 255,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            has_async_copy: true,
            launch_overhead_us: 4.0,
        }
    }

    /// Tesla T4 (SM75, Turing) as used in the paper's §V-D evaluation.
    ///
    /// Paper-quoted peaks: 8.1 TFLOPS FP32, 0.253 TFLOPS FP64, 320 GB/s.
    /// Turing has no `cp.async` and no FP64 tensor cores; its FP16 tensor
    /// cores still accelerate the FP32-accumulate distance kernel.
    pub fn t4() -> Self {
        DeviceProfile {
            name: "Tesla-T4",
            sm_count: 40,
            clock_ghz: 1.59,
            cuda_fp32_gflops: 8_100.0,
            cuda_fp64_gflops: 253.0,
            tensor_fp32_gflops: 24_000.0,
            tensor_fp64_gflops: 0.0,
            mem_bw_gbs: 320.0,
            l2_bytes: 4 * 1024 * 1024,
            smem_per_sm: 64 * 1024,
            smem_per_block: 64 * 1024,
            regs_per_sm: 65_536,
            regs_per_thread: 255,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            has_async_copy: false,
            launch_overhead_us: 5.0,
        }
    }

    /// Sustained CUDA-core throughput for a precision.
    pub fn cuda_gflops(&self, p: Precision) -> f64 {
        match p {
            Precision::Fp32 => self.cuda_fp32_gflops,
            Precision::Fp64 => self.cuda_fp64_gflops,
        }
    }

    /// Sustained tensor-core throughput for a precision. Falls back to the
    /// CUDA-core rate when the device lacks a tensor path for `p` (T4 FP64),
    /// matching how CUTLASS instantiates SIMT kernels there.
    pub fn tensor_gflops(&self, p: Precision) -> f64 {
        let t = match p {
            Precision::Fp32 => self.tensor_fp32_gflops,
            Precision::Fp64 => self.tensor_fp64_gflops,
        };
        if t > 0.0 {
            t
        } else {
            self.cuda_gflops(p)
        }
    }

    /// True when the device executes `p` on tensor cores.
    pub fn has_tensor_path(&self, p: Precision) -> bool {
        match p {
            Precision::Fp32 => self.tensor_fp32_gflops > 0.0,
            Precision::Fp64 => self.tensor_fp64_gflops > 0.0,
        }
    }

    /// Peak warps per SM.
    pub fn max_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_paper_quotes() {
        let d = DeviceProfile::a100();
        assert_eq!(d.sm_count, 108);
        assert!((d.cuda_fp32_gflops - 19_500.0).abs() < 1.0);
        assert!((d.cuda_fp64_gflops - 9_700.0).abs() < 1.0);
        assert!((d.mem_bw_gbs - 1555.0).abs() < 1.0);
        assert!(d.has_async_copy);
    }

    #[test]
    fn t4_matches_paper_quotes() {
        let d = DeviceProfile::t4();
        assert!((d.cuda_fp32_gflops - 8_100.0).abs() < 1.0);
        assert!((d.cuda_fp64_gflops - 253.0).abs() < 1.0);
        assert!((d.mem_bw_gbs - 320.0).abs() < 1.0);
        assert!(!d.has_async_copy);
        assert!(!d.has_tensor_path(Precision::Fp64));
        // FP64 "tensor" rate falls back to SIMT.
        assert_eq!(d.tensor_gflops(Precision::Fp64), 253.0);
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Fp64.bytes(), 8);
        assert_eq!(Precision::all().len(), 2);
    }

    #[test]
    fn warps_per_sm() {
        assert_eq!(DeviceProfile::a100().max_warps_per_sm(), 64);
        assert_eq!(DeviceProfile::t4().max_warps_per_sm(), 32);
    }
}
