//! Threadblock-to-problem-tile mapping helpers.

use crate::dim::ceil_div;

/// The sub-rectangle of the GEMM output a threadblock owns, clamped to the
/// problem edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTile {
    /// First output row (sample index).
    pub row0: usize,
    /// Number of valid rows (≤ tile M).
    pub rows: usize,
    /// First output column (centroid index).
    pub col0: usize,
    /// Number of valid columns (≤ tile N).
    pub cols: usize,
}

/// Maps grid coordinates to output tiles for a `tb_m x tb_n` blocking of an
/// `m x n` GEMM output.
#[derive(Debug, Clone, Copy)]
pub struct BlockGrid {
    pub m: usize,
    pub n: usize,
    pub tb_m: usize,
    pub tb_n: usize,
}

impl BlockGrid {
    pub fn new(m: usize, n: usize, tb_m: usize, tb_n: usize) -> Self {
        assert!(tb_m > 0 && tb_n > 0);
        BlockGrid { m, n, tb_m, tb_n }
    }

    /// Grid extent in blocks (rows of blocks, cols of blocks).
    pub fn grid_dims(&self) -> (usize, usize) {
        (ceil_div(self.m, self.tb_m), ceil_div(self.n, self.tb_n))
    }

    /// Total number of threadblocks.
    pub fn block_count(&self) -> usize {
        let (gm, gn) = self.grid_dims();
        gm * gn
    }

    /// The output tile of block `(bm, bn)`.
    pub fn tile(&self, bm: usize, bn: usize) -> BlockTile {
        let (gm, gn) = self.grid_dims();
        assert!(
            bm < gm && bn < gn,
            "block ({bm},{bn}) outside grid ({gm},{gn})"
        );
        let row0 = bm * self.tb_m;
        let col0 = bn * self.tb_n;
        BlockTile {
            row0,
            rows: self.tb_m.min(self.m - row0),
            col0,
            cols: self.tb_n.min(self.n - col0),
        }
    }

    /// Fraction of tile slots that hold valid output (the paper's occupancy
    /// collapse for cuML's fixed `Threadblock.N = 256` at small cluster
    /// counts is exactly this ratio, §V-A6).
    pub fn utilization(&self) -> f64 {
        let (gm, gn) = self.grid_dims();
        let covered = (gm * self.tb_m * gn * self.tb_n) as f64;
        (self.m * self.n) as f64 / covered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dims_and_tiles() {
        let g = BlockGrid::new(100, 30, 32, 16);
        assert_eq!(g.grid_dims(), (4, 2));
        assert_eq!(g.block_count(), 8);
        let t = g.tile(0, 0);
        assert_eq!((t.row0, t.rows, t.col0, t.cols), (0, 32, 0, 16));
        // edge tile is clamped
        let t = g.tile(3, 1);
        assert_eq!((t.row0, t.rows, t.col0, t.cols), (96, 4, 16, 14));
    }

    #[test]
    fn utilization_matches_paper_example() {
        // cuML FP32: Threadblock.N = 256 with only 8 clusters
        let g = BlockGrid::new(131072, 8, 32, 256);
        assert!(g.utilization() <= 8.0 / 256.0 + 1e-12);
        // a matched tile wastes nothing
        let g2 = BlockGrid::new(128, 128, 32, 32);
        assert_eq!(g2.utilization(), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn out_of_grid_panics() {
        let g = BlockGrid::new(64, 64, 32, 32);
        let _ = g.tile(2, 0);
    }
}
