//! Warp-level tensor-core matrix-multiply-accumulate.
//!
//! The paper's kernels issue `mma.sync` instructions over register fragments
//! (`m16n8k8` for TF32, `m8n8k4` for FP64, Fig. 4 line 17). The simulator
//! executes MMA at warp-tile granularity: a warp owns a `wm x wn` block of
//! accumulators and each call performs `acc[i][j] += Σ_k a[i][k] * b[j][k]`
//! for a `kk`-deep slab, applying TF32 input truncation for `f32`.
//!
//! Every MMA call passes through a [`FaultHook`], the interception point the
//! fault injector (crate `ftk-fault`) uses to flip bits in accumulator
//! outputs — errors born *inside the compute units*, exactly the paper's
//! fail-continue fault model (§II-A).

use crate::counters::EventSink;
use crate::scalar::Scalar;

/// Hardware MMA tile shapes per precision (M, N, K of one `mma.sync`).
pub mod shapes {
    /// Ampere TF32 `mma.sync.aligned.m16n8k8`.
    pub const FP32_MMA: (usize, usize, usize) = (16, 8, 8);
    /// Ampere FP64 `mma.sync.aligned.m8n8k4`.
    pub const FP64_MMA: (usize, usize, usize) = (8, 8, 4);
}

/// Identifies one warp-level MMA issue site, for fault targeting and
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmaSite {
    /// Threadblock coordinates in the launch grid.
    pub block: (usize, usize),
    /// Warp index within the threadblock.
    pub warp: usize,
    /// Position along the GEMM K dimension (start of the slab).
    pub k_step: usize,
    /// True when this MMA computes an ABFT checksum rather than payload.
    pub is_checksum: bool,
}

/// Interception point for transient-fault injection into compute results.
///
/// Implementations must be cheap in the common (no fault) case; the hook is
/// invoked once per warp-tile MMA slab.
pub trait FaultHook<T: Scalar>: Sync {
    /// Inspect/corrupt the accumulator tile (`wm x wn`, row-major) after the
    /// MMA slab at `site` completed.
    fn post_mma(&self, site: &MmaSite, acc: &mut [T], wn: usize);

    /// Inspect/corrupt a single SIMT FMA result (used by the CUDA-core
    /// kernels of the step-wise variants).
    fn post_fma(&self, site: &MmaSite, value: T) -> T {
        let _ = site;
        value
    }
}

/// The default hook: faults disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFault;

impl<T: Scalar> FaultHook<T> for NoFault {
    #[inline]
    fn post_mma(&self, _site: &MmaSite, _acc: &mut [T], _wn: usize) {}
}

/// Functional warp-tile MMA executor.
///
/// `wm`/`wn` are the warp tile dimensions in elements; the executor derives
/// how many hardware `mma.sync` instructions one slab costs from the
/// precision's tile shape, for counter purposes.
#[derive(Debug, Clone, Copy)]
pub struct FragmentMma {
    wm: usize,
    wn: usize,
    mma_shape: (usize, usize, usize),
}

impl FragmentMma {
    /// Create an executor for a `wm x wn` warp tile of precision `P`.
    pub fn new<T: Scalar>(wm: usize, wn: usize) -> Self {
        let mma_shape = match T::PRECISION {
            crate::device::Precision::Fp32 => shapes::FP32_MMA,
            crate::device::Precision::Fp64 => shapes::FP64_MMA,
        };
        FragmentMma { wm, wn, mma_shape }
    }

    pub fn wm(&self) -> usize {
        self.wm
    }

    pub fn wn(&self) -> usize {
        self.wn
    }

    /// Number of hardware `mma.sync` instructions one `kk`-deep slab costs.
    pub fn hw_mma_count(&self, kk: usize) -> u64 {
        let (tm, tn, tk) = self.mma_shape;
        (self.wm.div_ceil(tm) * self.wn.div_ceil(tn) * kk.div_ceil(tk)) as u64
    }

    /// `acc[i][j] += Σ_k a[i*kk+k] * b[j*kk+k]`, with TF32 truncation of the
    /// inputs for `f32`, fault-hook interception, and MMA counting.
    ///
    /// * `acc` — `wm*wn` row-major accumulator fragment,
    /// * `a` — `wm*kk` row-major A fragment (rows of X),
    /// * `b` — `wn*kk` row-major B fragment (rows of Y),
    /// * `kk` — slab depth.
    ///
    /// The micro-kernel is register-blocked four output columns wide: the
    /// four dot products run as independent accumulation chains over the
    /// contiguous fragment rows. Every output still accumulates its `k`
    /// terms in ascending order, so results are bitwise identical to the
    /// scalar triple loop — only instruction-level parallelism changes.
    #[allow(clippy::too_many_arguments)]
    pub fn mma<T: Scalar, H: FaultHook<T> + ?Sized, C: EventSink + ?Sized>(
        &self,
        acc: &mut [T],
        a: &[T],
        b: &[T],
        kk: usize,
        site: MmaSite,
        hook: &H,
        counters: &C,
    ) {
        debug_assert_eq!(acc.len(), self.wm * self.wn);
        debug_assert_eq!(a.len(), self.wm * kk);
        debug_assert_eq!(b.len(), self.wn * kk);
        // Fast path: stage B transposed to k-major in registers/local
        // scratch, TF32-converted exactly once per element. The inner loop
        // then walks contiguous j-runs, which vectorizes across output
        // columns; every output still accumulates its k terms in ascending
        // order, so results stay bitwise identical to the scalar triple
        // loop (TF32 conversion is elementwise and deterministic).
        const AMAX: usize = 64;
        const BT_MAX: usize = 512;
        if kk <= AMAX && self.wn * kk <= BT_MAX {
            let mut bt = [T::ZERO; BT_MAX];
            for j in 0..self.wn {
                let brow = &b[j * kk..(j + 1) * kk];
                for (k, &v) in brow.iter().enumerate() {
                    bt[k * self.wn + j] = v.to_tf32();
                }
            }
            // One zero-init per slab, refilled (first kk slots) per row.
            let mut at = [T::ZERO; AMAX];
            for i in 0..self.wm {
                for (d, s) in at[..kk].iter_mut().zip(&a[i * kk..(i + 1) * kk]) {
                    *d = s.to_tf32();
                }
                let crow = &mut acc[i * self.wn..(i + 1) * self.wn];
                let mut j = 0;
                while j + 16 <= self.wn {
                    dot_block::<T, 16>(crow, &at[..kk], &bt, self.wn, j);
                    j += 16;
                }
                while j + 4 <= self.wn {
                    dot_block::<T, 4>(crow, &at[..kk], &bt, self.wn, j);
                    j += 4;
                }
                while j < self.wn {
                    dot_block::<T, 1>(crow, &at[..kk], &bt, self.wn, j);
                    j += 1;
                }
            }
        } else {
            // Fallback for oversized fragments: the scalar triple loop.
            for i in 0..self.wm {
                let arow = &a[i * kk..(i + 1) * kk];
                let crow = &mut acc[i * self.wn..(i + 1) * self.wn];
                for (j, cj) in crow.iter_mut().enumerate() {
                    let brow = &b[j * kk..(j + 1) * kk];
                    let mut sum = T::ZERO;
                    for k in 0..kk {
                        sum += arow[k].to_tf32() * brow[k].to_tf32();
                    }
                    *cj += sum;
                }
            }
        }
        let n = self.hw_mma_count(kk);
        if site.is_checksum {
            counters.add_ft_mma(n);
        } else {
            counters.add_mma(n);
        }
        hook.post_mma(&site, acc, self.wn);
    }
}

/// `W` independent dot-product chains over a k-major transposed B panel:
/// `crow[j+l] += Σ_k at[k] * bt[k*wn + j+l]` for `l in 0..W`. Each output's
/// k terms accumulate in ascending order, preserving the bitwise-identity
/// contract of [`FragmentMma::mma`] at every block width.
#[inline]
fn dot_block<T: Scalar, const W: usize>(crow: &mut [T], at: &[T], bt: &[T], wn: usize, j: usize) {
    let mut s = [T::ZERO; W];
    for (k, &av) in at.iter().enumerate() {
        let brun = &bt[k * wn + j..k * wn + j + W];
        for (sl, &bv) in s.iter_mut().zip(brun) {
            *sl += av * bv;
        }
    }
    for (cj, &sl) in crow[j..j + W].iter_mut().zip(&s) {
        *cj += sl;
    }
}

/// A scalar checksum MMA: `acc += a * b` on a tensor core (the paper uses a
/// single `mma.sync` for each of the three checksum products, Fig. 6 lines
/// 22–24). Counted as one checksum MMA.
pub fn checksum_mma<T: Scalar, H: FaultHook<T> + ?Sized, C: EventSink + ?Sized>(
    acc: &mut T,
    a: T,
    b: T,
    site: MmaSite,
    hook: &H,
    counters: &C,
) {
    let mut tile = [*acc];
    tile[0] += a.to_tf32() * b.to_tf32();
    counters.add_ft_mma(1);
    hook.post_mma(&site, &mut tile, 1);
    *acc = tile[0];
}

/// SIMT fused multiply-add with fault-hook interception (CUDA-core path of
/// the naive/V1/V2/V3 kernels).
#[inline]
pub fn simt_fma<T: Scalar, H: FaultHook<T> + ?Sized, C: EventSink + ?Sized>(
    acc: T,
    a: T,
    b: T,
    site: &MmaSite,
    hook: &H,
    counters: &C,
) -> T {
    counters.add_fma(1);
    hook.post_fma(site, acc + a * b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;

    struct FlipFirst;
    impl FaultHook<f64> for FlipFirst {
        fn post_mma(&self, _site: &MmaSite, acc: &mut [f64], _wn: usize) {
            acc[0] = acc[0].flip_bit(52); // flip an exponent bit
        }
    }

    fn site() -> MmaSite {
        MmaSite {
            block: (0, 0),
            warp: 0,
            k_step: 0,
            is_checksum: false,
        }
    }

    #[test]
    fn mma_matches_reference_f64() {
        let exec = FragmentMma::new::<f64>(4, 3);
        let kk = 5;
        let a: Vec<f64> = (0..4 * kk).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..3 * kk).map(|i| 1.0 - i as f64 * 0.25).collect();
        let mut acc = vec![0.0f64; 12];
        let c = Counters::new();
        exec.mma(&mut acc, &a, &b, kk, site(), &NoFault, &c);
        for i in 0..4 {
            for j in 0..3 {
                let expect: f64 = (0..kk).map(|k| a[i * kk + k] * b[j * kk + k]).sum();
                assert!((acc[i * 3 + j] - expect).abs() < 1e-12);
            }
        }
        assert!(c.snapshot().mma_ops > 0);
    }

    #[test]
    fn register_blocked_path_matches_scalar_reference_bitwise() {
        // wn = 9 exercises both the 4-wide blocked loop and the scalar tail;
        // equality must be bitwise, not approximate — the register blocking
        // may not change any output's accumulation order.
        let (wm, wn, kk) = (5, 9, 7);
        let exec = FragmentMma::new::<f32>(wm, wn);
        let a: Vec<f32> = (0..wm * kk).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..wn * kk).map(|i| (i as f32 * 0.37).cos()).collect();
        let mut acc: Vec<f32> = (0..wm * wn).map(|i| i as f32 * 0.01).collect();
        let mut want = acc.clone();
        for i in 0..wm {
            for j in 0..wn {
                let mut sum = 0.0f32;
                for k in 0..kk {
                    sum += a[i * kk + k].to_tf32() * b[j * kk + k].to_tf32();
                }
                want[i * wn + j] += sum;
            }
        }
        let c = Counters::new();
        exec.mma(&mut acc, &a, &b, kk, site(), &NoFault, &c);
        for (got, want) in acc.iter().zip(want.iter()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn mma_accumulates() {
        let exec = FragmentMma::new::<f64>(2, 2);
        let mut acc = vec![10.0f64; 4];
        let c = Counters::new();
        exec.mma(&mut acc, &[1.0, 1.0], &[2.0, 3.0], 1, site(), &NoFault, &c);
        assert_eq!(acc, vec![12.0, 13.0, 12.0, 13.0]);
    }

    #[test]
    fn tf32_truncation_applies_to_f32_inputs() {
        let exec = FragmentMma::new::<f32>(1, 1);
        let c = Counters::new();
        let mut acc = vec![0.0f32];
        // 1 + 2^-12 is below TF32 resolution -> truncates to 1.0
        let a = [1.0f32 + 2.0_f32.powi(-12)];
        let b = [1.0f32];
        exec.mma(&mut acc, &a, &b, 1, site(), &NoFault, &c);
        assert_eq!(acc[0], 1.0);
    }

    #[test]
    fn hw_mma_count_uses_tile_shapes() {
        let e32 = FragmentMma::new::<f32>(64, 32);
        // 64/16 * 32/8 * 8/8 = 16 instructions per 8-deep slab
        assert_eq!(e32.hw_mma_count(8), 16);
        let e64 = FragmentMma::new::<f64>(32, 32);
        // 32/8 * 32/8 * 4/4 = 16
        assert_eq!(e64.hw_mma_count(4), 16);
    }

    #[test]
    fn fault_hook_corrupts_output() {
        let exec = FragmentMma::new::<f64>(2, 2);
        let c = Counters::new();
        let mut acc = vec![0.0f64; 4];
        exec.mma(
            &mut acc,
            &[1.0, 0.0],
            &[1.0, 1.0],
            1,
            site(),
            &FlipFirst,
            &c,
        );
        // clean result would be [1,1,0,0]; hook flipped a bit of acc[0]
        assert_ne!(acc[0], 1.0);
        assert_eq!(acc[1], 1.0);
    }

    #[test]
    fn checksum_mma_counts_separately() {
        let c = Counters::new();
        let mut acc = 1.0f64;
        checksum_mma(
            &mut acc,
            2.0,
            3.0,
            MmaSite {
                is_checksum: true,
                ..site()
            },
            &NoFault,
            &c,
        );
        assert_eq!(acc, 7.0);
        let s = c.snapshot();
        assert_eq!(s.ft_mma_ops, 1);
        assert_eq!(s.mma_ops, 0);
    }

    #[test]
    fn simt_fma_counts() {
        let c = Counters::new();
        let v = simt_fma(1.0f32, 2.0, 4.0, &site(), &NoFault, &c);
        assert_eq!(v, 9.0);
        assert_eq!(c.snapshot().fma_ops, 1);
    }
}
