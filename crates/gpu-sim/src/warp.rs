//! Warp-level helpers: fragment loading from shared tiles and the shuffle
//! reductions the ABFT encodings rely on.

use crate::scalar::Scalar;
use crate::shared::SharedTile;

/// Load a `wm x kk` A-fragment (rows `row0..row0+wm` of the shared A tile at
/// columns `k0..k0+kk`) into `frag`, row-major. Rows beyond the tile are
/// zero-filled (edge tiles). Each in-bounds row is one contiguous slice copy
/// (`ldmatrix` moves whole rows, not scalars).
pub fn load_a_fragment<T: Scalar>(
    tile: &SharedTile<T>,
    row0: usize,
    k0: usize,
    wm: usize,
    kk: usize,
    frag: &mut [T],
) {
    debug_assert_eq!(frag.len(), wm * kk);
    if kk == 0 {
        return;
    }
    for (i, dst) in frag.chunks_exact_mut(kk).enumerate() {
        let r = row0 + i;
        if r < tile.rows() && k0 < tile.cols() {
            let run = kk.min(tile.cols() - k0);
            dst[..run].copy_from_slice(&tile.row(r)[k0..k0 + run]);
            dst[run..].fill(T::ZERO);
        } else {
            dst.fill(T::ZERO);
        }
    }
}

/// Load a `wn x kk` B-fragment (rows of the shared B tile = centroids).
pub fn load_b_fragment<T: Scalar>(
    tile: &SharedTile<T>,
    row0: usize,
    k0: usize,
    wn: usize,
    kk: usize,
    frag: &mut [T],
) {
    load_a_fragment(tile, row0, k0, wn, kk, frag);
}

/// Warp reduction: plain sum over a fragment's rows at one k column —
/// computes `e1ᵀ·frag[:,k]` (Fig. 6 line 15/16). `frag` is `rows x kk`
/// row-major.
pub fn frag_col_sum<T: Scalar>(frag: &[T], rows: usize, kk: usize, k: usize) -> T {
    debug_assert!(k < kk);
    let mut s = T::ZERO;
    for i in 0..rows {
        s += frag[i * kk + k];
    }
    s
}

/// Warp reduction: index-weighted sum `Σ_i (i+1)·frag[i,k]` — computes
/// `e2ᵀ·frag[:,k]` (Fig. 6 line 17/18). Weights start at 1 as in the paper's
/// `e2 = [1, 2, …, n]`.
pub fn frag_col_weighted_sum<T: Scalar>(frag: &[T], rows: usize, kk: usize, k: usize) -> T {
    debug_assert!(k < kk);
    let mut s = T::ZERO;
    for i in 0..rows {
        s += T::from_usize(i + 1) * frag[i * kk + k];
    }
    s
}

/// Sum of all elements of a `wm x wn` accumulator tile (`e1ᵀ C e1`).
pub fn tile_sum<T: Scalar>(acc: &[T]) -> T {
    acc.iter().copied().sum()
}

/// Row-index-weighted sum `Σ_ij (i+1)·C[i,j]` (`e2ᵀ C e1`).
pub fn tile_row_weighted_sum<T: Scalar>(acc: &[T], wn: usize) -> T {
    let mut s = T::ZERO;
    for (i, row) in acc.chunks_exact(wn).enumerate() {
        let w = T::from_usize(i + 1);
        for &v in row {
            s += w * v;
        }
    }
    s
}

/// Column-index-weighted sum `Σ_ij (j+1)·C[i,j]` (`e1ᵀ C e2`).
pub fn tile_col_weighted_sum<T: Scalar>(acc: &[T], wn: usize) -> T {
    let mut s = T::ZERO;
    for row in acc.chunks_exact(wn) {
        for (j, &v) in row.iter().enumerate() {
            s += T::from_usize(j + 1) * v;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_3x4() -> SharedTile<f64> {
        let mut t = SharedTile::new(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                t.set(r, c, (r * 4 + c) as f64);
            }
        }
        t
    }

    #[test]
    fn fragment_load_in_bounds() {
        let t = tile_3x4();
        let mut frag = vec![0.0f64; 2 * 2];
        load_a_fragment(&t, 1, 1, 2, 2, &mut frag);
        assert_eq!(frag, vec![5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn fragment_load_zero_pads_edges() {
        let t = tile_3x4();
        let mut frag = vec![7.0f64; 2 * 2];
        load_a_fragment(&t, 2, 3, 2, 2, &mut frag);
        assert_eq!(frag, vec![11.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn column_sums() {
        // frag rows = [1,2], [3,4], [5,6] ; kk = 2
        let frag = vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(frag_col_sum(&frag, 3, 2, 0), 9.0);
        assert_eq!(frag_col_sum(&frag, 3, 2, 1), 12.0);
        // weighted: 1*1 + 2*3 + 3*5 = 22 ; 1*2 + 2*4 + 3*6 = 28
        assert_eq!(frag_col_weighted_sum(&frag, 3, 2, 0), 22.0);
        assert_eq!(frag_col_weighted_sum(&frag, 3, 2, 1), 28.0);
    }

    #[test]
    fn tile_checksum_sums() {
        // C = [[1,2],[3,4]]
        let acc = vec![1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(tile_sum(&acc), 10.0);
        // rows: 1*(1+2) + 2*(3+4) = 17
        assert_eq!(tile_row_weighted_sum(&acc, 2), 17.0);
        // cols: 1*(1+3) + 2*(2+4) = 16
        assert_eq!(tile_col_weighted_sum(&acc, 2), 16.0);
    }
}
