//! # ftk-gpu-sim — a warp/threadblock-level GPU simulator
//!
//! This crate is the hardware substrate for the FT K-means reproduction.
//! The original paper runs hand-written CUDA/CUTLASS kernels on NVIDIA A100
//! and T4 GPUs; here the same kernels are expressed against a *functional*
//! model of the relevant GPU machinery:
//!
//! * [`GlobalBuffer`] — device global memory with transaction accounting at
//!   per-element (uncoalesced) and per-run (coalesced) granularity,
//! * [`SharedTile`] / [`AsyncPipeline`] — shared-memory staging with the
//!   Ampere `cp.async` multi-stage pipeline semantics (commit/wait groups),
//!   including the distinction between the pre-Ampere *register-staged* copy
//!   path and the Ampere *bypass* path that breaks register-reuse ABFT,
//! * [`mma`] — warp-level tensor-core fragment multiply-accumulate with a
//!   fault-injection interception point,
//! * [`launch`] / [`exec`] — grid/threadblock execution on a persistent
//!   worker pool with chunked block scheduling, per-worker counter shards
//!   and a deterministic serial policy (`FTK_EXEC=serial`),
//! * [`timing`] — an analytic performance model (occupancy, tile and wave
//!   quantization, compute/memory overlap, ABFT overhead terms) calibrated
//!   against the paper's published A100/T4 anchors.
//!
//! The functional side computes *real numerical results* so the ABFT layers
//! above can detect and correct *real injected bit flips*; the timing side
//! regenerates the shape of every figure in the paper's evaluation.
//!
//! ```
//! use gpu_sim::{DeviceProfile, Matrix};
//!
//! let dev = DeviceProfile::a100();
//! assert_eq!(dev.sm_count, 108);
//! let m = Matrix::<f32>::zeros(4, 8);
//! assert_eq!(m.rows() * m.cols(), 32);
//! ```

pub mod async_copy;
pub mod atomics;
pub mod counters;
pub mod device;
pub mod dim;
pub mod error;
pub mod exec;
pub mod launch;
pub mod matrix;
pub mod memory;
pub mod mma;
pub mod sanitizer;
pub mod scalar;
pub mod scratch;
pub mod shared;
pub mod threadblock;
pub mod timing;
pub mod warp;

pub use async_copy::{AsyncPipeline, CopyPath};
pub use counters::{CounterSink, CounterSnapshot, Counters, EventSink};
pub use device::{DeviceProfile, Precision};
pub use dim::Dim3;
pub use error::SimError;
pub use exec::{ExecPolicy, Executor};
pub use launch::{
    launch_grid, launch_grid_labeled, launch_grid_serial, launch_grid_serial_labeled, BlockCtx,
    LaunchConfig,
};
pub use matrix::Matrix;
pub use memory::{GlobalBuffer, GlobalPackedBuffer, PackedLane};
pub use mma::{FaultHook, FragmentMma, MmaSite, NoFault};
pub use sanitizer::{Finding, FindingKind, SanitizeConfig, SanitizerReport};
pub use scalar::Scalar;
pub use scratch::ScratchBuf;
pub use shared::SharedTile;
pub use timing::model::{KernelClass, KernelTiming, TimingInput};
