//! Device sanitizer suite: shadow-memory analysis for the simulated GPU.
//!
//! The byte-exactness tests in this workspace prove kernels produce the
//! right answer *under today's pool schedule*; they cannot prove the absence
//! of the bug classes that only show up under a different schedule or a
//! different allocator. CUDA ships `compute-sanitizer`
//! (racecheck/initcheck/memcheck) for exactly this, and since the simulator
//! already intercepts every device memory access, the analogous analysis
//! layer can be built natively:
//!
//! * **racecheck** — records per-cell access sets (block id × read / write /
//!   atomic) on [`crate::GlobalBuffer`], [`crate::memory::GlobalIndexBuffer`]
//!   and [`crate::GlobalPackedBuffer`] within one kernel launch and reports
//!   any cross-block write–write or read–write conflict not mediated by
//!   atomics — i.e. kernels that are only *accidentally* deterministic under
//!   the current chunk-stealing schedule.
//! * **initcheck** — tracks a written-bitmap per buffer and flags device
//!   loads of never-stored cells. Allocation via `zeros` / `filled` /
//!   `from_slice` marks cells initialized (the values are defined);
//!   [`crate::GlobalBuffer::uninit`] models `cudaMalloc` garbage and starts
//!   all-clear. `corrupt_bit` does not mark anything.
//! * **oobcheck** — turns the existing bounds asserts into structured
//!   findings: an out-of-range device access is reported (and suppressed —
//!   loads return zero, stores are dropped) instead of tearing down the
//!   whole process, so one sweep can collect every offender.
//! * **leakcheck** — reports buffers that were allocated under the checker
//!   but never read by anything (wasted resident memory on the serve path).
//!
//! # Activation
//!
//! Checking is **zero-cost when disabled**: a buffer allocated with no
//! checker in scope carries no shadow state, and every hot-path hook is a
//! single `Option` branch on an already-loaded field (the same contract as
//! `trace::active()`). A checker is resolved at *allocation* and *launch*
//! time from, in order:
//!
//! 1. the thread-local scope installed by [`with_checker`],
//! 2. the launching [`crate::Executor`]'s own checker
//!    ([`crate::Executor::with_sanitizer`], launches only),
//! 3. the process-global checker — [`install_global`], or the
//!    `FTK_SANITIZE=race,init,oob` environment variable on first use.
//!
//! # Determinism
//!
//! Access *sets* are schedule-independent (every block performs the same
//! accesses whatever order blocks run in), so the conflict analysis — and
//! therefore [`SanitizerReport::to_text`] — is byte-stable run-to-run,
//! pool or serial, as long as buffer labels are assigned. Findings sort by
//! (buffer label, kind, launch label).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which checkers a [`Checker`] runs. Parsed from `FTK_SANITIZE` as a
/// comma-separated token list: `race`, `init`, `oob`, `leak`, or `all`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizeConfig {
    /// Cross-block data-race detection within one launch.
    pub race: bool,
    /// Read-before-write detection on device loads.
    pub init: bool,
    /// Structured out-of-bounds reporting (instead of a panic).
    pub oob: bool,
    /// Allocated-but-never-read buffer reporting.
    pub leak: bool,
}

impl SanitizeConfig {
    /// Every checker on.
    pub fn all() -> Self {
        SanitizeConfig {
            race: true,
            init: true,
            oob: true,
            leak: true,
        }
    }

    /// Parse a `FTK_SANITIZE`-style token list (`"race,init,oob"`).
    /// Unknown tokens are ignored; an empty string enables nothing.
    pub fn parse(spec: &str) -> Self {
        let mut cfg = SanitizeConfig::default();
        for tok in spec.split(',') {
            match tok.trim() {
                "race" => cfg.race = true,
                "init" => cfg.init = true,
                "oob" => cfg.oob = true,
                "leak" => cfg.leak = true,
                "all" | "1" => cfg = SanitizeConfig::all(),
                _ => {}
            }
        }
        cfg
    }

    /// Read `FTK_SANITIZE` from the environment; `None` when unset/empty.
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("FTK_SANITIZE").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(Self::parse(&spec))
    }

    fn any(&self) -> bool {
        self.race || self.init || self.oob || self.leak
    }

    fn tokens(&self) -> String {
        let mut t = Vec::new();
        if self.race {
            t.push("race");
        }
        if self.init {
            t.push("init");
        }
        if self.oob {
            t.push("oob");
        }
        if self.leak {
            t.push("leak");
        }
        t.join(",")
    }
}

/// The kind of defect a [`Finding`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingKind {
    /// Two different blocks issued non-atomic writes to the same cell
    /// within one launch.
    RaceWriteWrite,
    /// One block wrote a cell non-atomically while a different block read
    /// it within the same launch.
    RaceReadWrite,
    /// A cell was touched both atomically and non-atomically by different
    /// blocks within one launch (atomics only mediate against atomics).
    RaceAtomicMix,
    /// A device load of a cell no store ever defined.
    UninitLoad,
    /// A device access outside the buffer's allocation.
    OutOfBounds,
    /// A buffer allocated under the checker that nothing ever read.
    LeakNeverRead,
}

impl FindingKind {
    fn as_str(self) -> &'static str {
        match self {
            FindingKind::RaceWriteWrite => "race-write-write",
            FindingKind::RaceReadWrite => "race-read-write",
            FindingKind::RaceAtomicMix => "race-atomic-mix",
            FindingKind::UninitLoad => "uninit-load",
            FindingKind::OutOfBounds => "out-of-bounds",
            FindingKind::LeakNeverRead => "leak-never-read",
        }
    }
}

/// One aggregated sanitizer finding: a defect kind observed on one buffer
/// (optionally within one labeled kernel launch), with the number of
/// affected cells and the smallest affected index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// Buffer label (set via the labeling hooks, e.g.
    /// `GlobalBuffer::set_sanitizer_label`), else `buf#<ordinal>`.
    pub buffer: String,
    /// Label of the launch the defect was observed in (`-` for findings
    /// that are not launch-scoped, e.g. leaks).
    pub launch: String,
    /// Number of affected cells (summed across launches of the same label).
    pub cells: u64,
    /// Smallest affected element index.
    pub first_index: u64,
}

/// The outcome of a sanitizer pass: every [`Finding`] the checker
/// accumulated, in a deterministic order.
///
/// The text rendering is **byte-stable**: findings sort by
/// `(buffer, kind, launch)` and carry no wall-clock or pointer material, so
/// a report can be pinned in tests exactly like a campaign table.
///
/// ```
/// use gpu_sim::sanitizer::{Checker, SanitizeConfig};
/// use std::sync::Arc;
///
/// let checker = Arc::new(Checker::new(SanitizeConfig::all()));
/// let report = gpu_sim::sanitizer::with_checker(&checker, || {
///     let buf = gpu_sim::GlobalBuffer::<f32>::zeros(8);
///     buf.set_sanitizer_label("demo");
///     let _ = buf.to_vec(); // read it so leakcheck stays quiet
///     checker.report()
/// });
/// assert!(report.is_empty());
/// assert!(report.to_text().starts_with("sanitizer report"));
/// ```
#[derive(Debug, Clone)]
pub struct SanitizerReport {
    /// Which checkers produced this report.
    pub checks: SanitizeConfig,
    /// All findings, sorted by `(buffer, kind, launch)`.
    pub findings: Vec<Finding>,
}

impl SanitizerReport {
    /// True when no checker found anything.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Deterministic, byte-stable text rendering (pin it in tests).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sanitizer report (checks: {})\n",
            self.checks.tokens()
        ));
        out.push_str(&format!("findings: {}\n", self.findings.len()));
        for f in &self.findings {
            out.push_str(&format!(
                "{} buffer={} launch={} cells={} first={}\n",
                f.kind.as_str(),
                f.buffer,
                f.launch,
                f.cells,
                f.first_index
            ));
        }
        out
    }

    /// Findings of one kind (test helper).
    pub fn of_kind(&self, kind: FindingKind) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.kind == kind).collect()
    }
}

// ---------------------------------------------------------------------------
// Shadow state
// ---------------------------------------------------------------------------

/// Sentinel for "no block" / "more than one distinct block" in the packed
/// per-cell race word. Block ids are stored as `id + 1` in 21-bit fields.
const FIELD_BITS: u32 = 21;
const FIELD_MASK: u64 = (1 << FIELD_BITS) - 1;
const MULTI: u64 = FIELD_MASK;
/// Largest encodable block id (+1 encoding); bigger grids saturate to it,
/// trading exactness far beyond any shape this workspace launches.
const MAX_BLOCK: u64 = MULTI - 2;

#[inline]
fn encode_block(block: u32) -> u64 {
    (block as u64 + 1).min(MAX_BLOCK + 1)
}

/// Per-buffer shadow state, shared by every device-pointer alias of the
/// buffer (it lives behind the same `Arc` the storage does).
pub(crate) struct BufShadow {
    checker: Arc<Checker>,
    ordinal: u64,
    len: usize,
    label: Mutex<Option<String>>,
    /// Written-bitmap (one bit per cell); `None` when initcheck is off or
    /// the allocation was born fully initialized *and* nothing needs the
    /// map (uninit allocations always build it).
    init: Option<Box<[AtomicU64]>>,
    ever_read: AtomicBool,
    /// initcheck accumulator: count + min index + first launch label.
    uninit_loads: AtomicU64,
    uninit_first: AtomicU64,
    uninit_launch: Mutex<Option<&'static str>>,
    /// oobcheck accumulator.
    oob_accesses: AtomicU64,
    oob_first: AtomicU64,
    oob_launch: Mutex<Option<&'static str>>,
}

impl std::fmt::Debug for BufShadow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufShadow")
            .field("ordinal", &self.ordinal)
            .field("len", &self.len)
            .finish()
    }
}

impl BufShadow {
    fn name(&self) -> String {
        self.label
            .lock()
            .clone()
            .unwrap_or_else(|| format!("buf#{}", self.ordinal))
    }

    #[inline]
    fn mark_init_range(&self, start: usize, n: usize) {
        if let Some(bits) = &self.init {
            for idx in start..start + n {
                bits[idx / 64].fetch_or(1 << (idx % 64), Ordering::Relaxed);
            }
        }
    }

    #[inline]
    fn is_init(&self, idx: usize) -> bool {
        match &self.init {
            Some(bits) => bits[idx / 64].load(Ordering::Relaxed) & (1 << (idx % 64)) != 0,
            None => true,
        }
    }

    fn note_uninit(&self, idx: usize, launch: Option<&'static str>) {
        self.uninit_loads.fetch_add(1, Ordering::Relaxed);
        self.uninit_first.fetch_min(idx as u64, Ordering::Relaxed);
        if let Some(l) = launch {
            let mut slot = self.uninit_launch.lock();
            if slot.is_none() {
                *slot = Some(l);
            }
        }
    }

    fn note_oob(&self, idx: usize, launch: Option<&'static str>) {
        self.oob_accesses.fetch_add(1, Ordering::Relaxed);
        self.oob_first.fetch_min(idx as u64, Ordering::Relaxed);
        if let Some(l) = launch {
            let mut slot = self.oob_launch.lock();
            if slot.is_none() {
                *slot = Some(l);
            }
        }
    }
}

/// Race-shadow words for one buffer within one launch.
struct RaceCells {
    shadow: Arc<BufShadow>,
    words: Box<[AtomicU64]>,
}

/// Per-launch sanitizer state created by the execution engine around each
/// kernel launch; block closures record accesses into it via the
/// thread-local scope, and the engine analyzes + retires it at launch end.
pub struct LaunchShadow {
    checker: Arc<Checker>,
    label: &'static str,
    race: Mutex<HashMap<u64, Arc<RaceCells>>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Read,
    Write,
    Atomic,
}

impl LaunchShadow {
    fn record(
        &self,
        shadow: &Arc<BufShadow>,
        block: u32,
        start: usize,
        n: usize,
        kind: AccessKind,
    ) {
        let cells = {
            let mut map = self.race.lock();
            Arc::clone(map.entry(shadow.ordinal).or_insert_with(|| {
                Arc::new(RaceCells {
                    shadow: Arc::clone(shadow),
                    words: (0..shadow.len).map(|_| AtomicU64::new(0)).collect(),
                })
            }))
        };
        let enc = encode_block(block);
        let shift = match kind {
            AccessKind::Write => 0,
            AccessKind::Read => FIELD_BITS,
            AccessKind::Atomic => 2 * FIELD_BITS,
        };
        for idx in start..start + n {
            let cell = &cells.words[idx];
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let field = (cur >> shift) & FIELD_MASK;
                if field == enc || field == MULTI {
                    break; // same block again, or already saturated
                }
                let new_field = if field == 0 { enc } else { MULTI };
                let new = (cur & !(FIELD_MASK << shift)) | (new_field << shift);
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Analyze the access sets and fold conflicts into the checker. The
    /// per-cell summaries are schedule-independent, so so is this.
    fn finish(&self) {
        struct Agg {
            cells: u64,
            first: u64,
        }
        let map = self.race.lock();
        let mut out: Vec<(u64, String, FindingKind, Agg)> = Vec::new();
        for rc in map.values() {
            let mut ww = Agg {
                cells: 0,
                first: u64::MAX,
            };
            let mut rw = Agg {
                cells: 0,
                first: u64::MAX,
            };
            let mut am = Agg {
                cells: 0,
                first: u64::MAX,
            };
            for (idx, word) in rc.words.iter().enumerate() {
                let w = word.load(Ordering::Relaxed);
                if w == 0 {
                    continue;
                }
                let writer = w & FIELD_MASK;
                let reader = (w >> FIELD_BITS) & FIELD_MASK;
                let atomic = (w >> (2 * FIELD_BITS)) & FIELD_MASK;
                if writer == MULTI {
                    ww.cells += 1;
                    ww.first = ww.first.min(idx as u64);
                }
                if writer != 0
                    && reader != 0
                    && (writer == MULTI || reader == MULTI || writer != reader)
                {
                    rw.cells += 1;
                    rw.first = rw.first.min(idx as u64);
                }
                if atomic != 0
                    && ((writer != 0 && (writer == MULTI || atomic == MULTI || writer != atomic))
                        || (reader != 0
                            && (reader == MULTI || atomic == MULTI || reader != atomic)))
                {
                    am.cells += 1;
                    am.first = am.first.min(idx as u64);
                }
            }
            for (kind, agg) in [
                (FindingKind::RaceWriteWrite, ww),
                (FindingKind::RaceReadWrite, rw),
                (FindingKind::RaceAtomicMix, am),
            ] {
                if agg.cells > 0 {
                    out.push((rc.shadow.ordinal, rc.shadow.name(), kind, agg));
                }
            }
        }
        drop(map);
        if out.is_empty() {
            return;
        }
        let mut races = self.checker.races.lock();
        for (_, name, kind, agg) in out {
            let entry = races
                .entry((name, kind, self.label))
                .or_insert((0, u64::MAX));
            entry.0 += agg.cells;
            entry.1 = entry.1.min(agg.first);
        }
    }
}

/// A sanitizer instance: configuration plus every shadow it has registered
/// and every finding it has accumulated. Cheap to share (`Arc`); one
/// checker typically scopes one fit / sweep / storm.
pub struct Checker {
    cfg: SanitizeConfig,
    shadows: Mutex<Vec<Arc<BufShadow>>>,
    next_ordinal: AtomicU64,
    /// Race findings keyed by (buffer name, kind, launch label) →
    /// (cells, first index). Aggregated across launches of the same label
    /// so an N-iteration fit with one racy kernel reports one line.
    #[allow(clippy::type_complexity)] // flat aggregation key, local to this impl
    races: Mutex<HashMap<(String, FindingKind, &'static str), (u64, u64)>>,
}

impl Checker {
    /// A checker running the given checks.
    pub fn new(cfg: SanitizeConfig) -> Self {
        Checker {
            cfg,
            shadows: Mutex::new(Vec::new()),
            next_ordinal: AtomicU64::new(0),
            races: Mutex::new(HashMap::new()),
        }
    }

    /// The checks this checker runs.
    pub fn config(&self) -> SanitizeConfig {
        self.cfg
    }

    fn register(self: &Arc<Self>, len: usize, pre_init: bool) -> Arc<BufShadow> {
        let want_bitmap = self.cfg.init && !pre_init;
        let shadow = Arc::new(BufShadow {
            checker: Arc::clone(self),
            ordinal: self.next_ordinal.fetch_add(1, Ordering::Relaxed),
            len,
            label: Mutex::new(None),
            init: want_bitmap.then(|| (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect()),
            ever_read: AtomicBool::new(false),
            uninit_loads: AtomicU64::new(0),
            uninit_first: AtomicU64::new(u64::MAX),
            uninit_launch: Mutex::new(None),
            oob_accesses: AtomicU64::new(0),
            oob_first: AtomicU64::new(u64::MAX),
            oob_launch: Mutex::new(None),
        });
        self.shadows.lock().push(Arc::clone(&shadow));
        shadow
    }

    /// Build the report from everything accumulated so far. Leakcheck runs
    /// here (a buffer is a leak only once the scope it served is over).
    pub fn report(&self) -> SanitizerReport {
        let mut findings = Vec::new();
        for ((buffer, kind, launch), (cells, first)) in self.races.lock().iter() {
            findings.push(Finding {
                kind: *kind,
                buffer: buffer.clone(),
                launch: (*launch).to_string(),
                cells: *cells,
                first_index: *first,
            });
        }
        for sh in self.shadows.lock().iter() {
            let uninit = sh.uninit_loads.load(Ordering::Relaxed);
            if uninit > 0 {
                findings.push(Finding {
                    kind: FindingKind::UninitLoad,
                    buffer: sh.name(),
                    launch: sh.uninit_launch.lock().unwrap_or("-").to_string(),
                    cells: uninit,
                    first_index: sh.uninit_first.load(Ordering::Relaxed),
                });
            }
            let oob = sh.oob_accesses.load(Ordering::Relaxed);
            if oob > 0 {
                findings.push(Finding {
                    kind: FindingKind::OutOfBounds,
                    buffer: sh.name(),
                    launch: sh.oob_launch.lock().unwrap_or("-").to_string(),
                    cells: oob,
                    first_index: sh.oob_first.load(Ordering::Relaxed),
                });
            }
            if self.cfg.leak && sh.len > 0 && !sh.ever_read.load(Ordering::Relaxed) {
                findings.push(Finding {
                    kind: FindingKind::LeakNeverRead,
                    buffer: sh.name(),
                    launch: "-".to_string(),
                    cells: sh.len as u64,
                    first_index: 0,
                });
            }
        }
        findings
            .sort_by(|a, b| (&a.buffer, a.kind, &a.launch).cmp(&(&b.buffer, b.kind, &b.launch)));
        // Distinct allocations sharing a label (e.g. one `centroid_norms`
        // per fit in a sweep) collapse to one line per (buffer, kind,
        // launch): cells sum, first index is the minimum.
        findings.dedup_by(|b, a| {
            let same = a.buffer == b.buffer && a.kind == b.kind && a.launch == b.launch;
            if same {
                a.cells += b.cells;
                a.first_index = a.first_index.min(b.first_index);
            }
            same
        });
        SanitizerReport {
            checks: self.cfg,
            findings,
        }
    }
}

impl std::fmt::Debug for Checker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checker").field("cfg", &self.cfg).finish()
    }
}

// ---------------------------------------------------------------------------
// Scope resolution
// ---------------------------------------------------------------------------

struct Scope {
    checker: Arc<Checker>,
    /// Set while executing one block of a launch: (launch shadow, block id).
    launch: Option<(Arc<LaunchShadow>, u32)>,
}

thread_local! {
    static SCOPE: std::cell::RefCell<Option<Scope>> = const { std::cell::RefCell::new(None) };
}

static GLOBAL_INIT: std::sync::Once = std::sync::Once::new();
static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL_CHECKER: OnceLock<Mutex<Option<Arc<Checker>>>> = OnceLock::new();

fn global_slot() -> &'static Mutex<Option<Arc<Checker>>> {
    GLOBAL_CHECKER.get_or_init(|| Mutex::new(None))
}

fn init_global_from_env() {
    if let Some(cfg) = SanitizeConfig::from_env() {
        if cfg.any() {
            *global_slot().lock() = Some(Arc::new(Checker::new(cfg)));
            GLOBAL_ACTIVE.store(true, Ordering::Relaxed);
        }
    }
}

/// Install a process-wide checker (overrides any `FTK_SANITIZE` checker).
pub fn install_global(checker: Arc<Checker>) {
    GLOBAL_INIT.call_once(init_global_from_env);
    *global_slot().lock() = Some(checker);
    GLOBAL_ACTIVE.store(true, Ordering::Relaxed);
}

/// Remove the process-wide checker (the env-var one included) and return
/// it, so a caller can take its report after a storm.
pub fn uninstall_global() -> Option<Arc<Checker>> {
    GLOBAL_INIT.call_once(init_global_from_env);
    GLOBAL_ACTIVE.store(false, Ordering::Relaxed);
    global_slot().lock().take()
}

/// The process-global checker, if one is installed (via [`install_global`]
/// or `FTK_SANITIZE`).
pub fn global() -> Option<Arc<Checker>> {
    GLOBAL_INIT.call_once(init_global_from_env);
    global_slot().lock().clone()
}

#[inline]
fn global_checker_fast() -> Option<Arc<Checker>> {
    GLOBAL_INIT.call_once(init_global_from_env);
    if !GLOBAL_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    global_slot().lock().clone()
}

/// Run `f` with `checker` installed as this thread's sanitizer. Buffer
/// allocations inside the scope register shadow state with it; launches on
/// this thread check against it. Nested scopes shadow outer ones; the
/// previous scope is restored on exit (panic-safe).
pub fn with_checker<R>(checker: &Arc<Checker>, f: impl FnOnce() -> R) -> R {
    let prev = SCOPE.with(|s| {
        s.borrow_mut().replace(Scope {
            checker: Arc::clone(checker),
            launch: None,
        })
    });
    struct Restore(Option<Scope>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPE.with(|s| *s.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The checker the current thread resolves to (thread-local scope, else
/// global), if any.
pub fn current() -> Option<Arc<Checker>> {
    if let Some(c) = SCOPE.with(|s| s.borrow().as_ref().map(|sc| Arc::clone(&sc.checker))) {
        return Some(c);
    }
    global_checker_fast()
}

/// Allocation hook: build shadow state for a buffer of `len` cells when a
/// checker is in scope. `pre_init` marks the whole allocation initialized
/// (host uploads and zero-fills — the values are defined).
pub(crate) fn alloc_shadow(len: usize, pre_init: bool) -> Option<Arc<BufShadow>> {
    let checker = current()?;
    if !checker.cfg.any() {
        return None;
    }
    Some(checker.register(len, pre_init))
}

// ---------------------------------------------------------------------------
// Executor integration
// ---------------------------------------------------------------------------

/// Open a launch scope: resolve the current checker (thread-local scope →
/// the launching executor's checker → global) and build the per-launch race
/// shadow. Called by the execution engine; `None` when no checker resolves.
pub(crate) fn launch_begin(
    exec_checker: Option<&Arc<Checker>>,
    label: &'static str,
) -> Option<Arc<LaunchShadow>> {
    let checker = current().or_else(|| exec_checker.map(Arc::clone))?;
    if !checker.cfg.any() {
        return None;
    }
    Some(Arc::new(LaunchShadow {
        checker,
        label,
        race: Mutex::new(HashMap::new()),
    }))
}

/// Close a launch scope: analyze the race shadow into checker findings.
pub(crate) fn launch_end(shadow: &Arc<LaunchShadow>) {
    if shadow.checker.cfg.race {
        shadow.finish();
    }
}

/// Run `f` (one block's kernel body) with the launch scope installed on
/// this thread, so every shadowed memory access records against `block`.
pub(crate) fn with_block<R>(shadow: &Arc<LaunchShadow>, block: u32, f: impl FnOnce() -> R) -> R {
    let prev = SCOPE.with(|s| {
        s.borrow_mut().replace(Scope {
            checker: Arc::clone(&shadow.checker),
            launch: Some((Arc::clone(shadow), block)),
        })
    });
    struct Restore(Option<Scope>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPE.with(|s| *s.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(prev);
    f()
}

#[inline]
fn current_block() -> Option<(Arc<LaunchShadow>, u32, &'static str)> {
    SCOPE.with(|s| {
        s.borrow()
            .as_ref()
            .and_then(|sc| sc.launch.as_ref())
            .map(|(sh, b)| (Arc::clone(sh), *b, sh.label))
    })
}

// ---------------------------------------------------------------------------
// Access hooks (called from the buffer types when shadow state is present)
// ---------------------------------------------------------------------------

/// Shared bounds handling: `true` means proceed with the real access,
/// `false` means the access was out of bounds and has been reported — the
/// caller must suppress it. When oobcheck is off the caller proceeds and
/// the underlying slice indexing panics exactly as before.
#[inline]
fn bounds_ok(shadow: &BufShadow, start: usize, n: usize, launch: Option<&'static str>) -> bool {
    if start + n <= shadow.len {
        return true;
    }
    if !shadow.checker.cfg.oob {
        return true; // let the pre-existing assert/panic fire
    }
    shadow.note_oob(start.min(shadow.len), launch);
    false
}

/// Hook for a load of `n` cells at `start`. Returns `false` when the access
/// must be suppressed (out of bounds under oobcheck).
pub(crate) fn check_load(shadow: &Arc<BufShadow>, start: usize, n: usize) -> bool {
    let block = current_block();
    let launch_label = block.as_ref().map(|(_, _, l)| *l);
    if !bounds_ok(shadow, start, n, launch_label) {
        return false;
    }
    shadow.ever_read.store(true, Ordering::Relaxed);
    if let Some((launch, b, label)) = block {
        if shadow.checker.cfg.race {
            launch.record(shadow, b, start, n, AccessKind::Read);
        }
        if shadow.checker.cfg.init {
            for idx in start..start + n {
                if !shadow.is_init(idx) {
                    shadow.note_uninit(idx, Some(label));
                }
            }
        }
    }
    true
}

/// Hook for a store of `n` cells at `start`. Returns `false` when the
/// access must be suppressed.
pub(crate) fn check_store(shadow: &Arc<BufShadow>, start: usize, n: usize) -> bool {
    let block = current_block();
    let launch_label = block.as_ref().map(|(_, _, l)| *l);
    if !bounds_ok(shadow, start, n, launch_label) {
        return false;
    }
    if let Some((launch, b, _)) = block {
        if shadow.checker.cfg.race {
            launch.record(shadow, b, start, n, AccessKind::Write);
        }
    }
    shadow.mark_init_range(start, n);
    true
}

/// Hook for an atomic read-modify-write of one cell.
pub(crate) fn check_atomic(shadow: &Arc<BufShadow>, idx: usize) -> bool {
    let block = current_block();
    let launch_label = block.as_ref().map(|(_, _, l)| *l);
    if !bounds_ok(shadow, idx, 1, launch_label) {
        return false;
    }
    shadow.ever_read.store(true, Ordering::Relaxed);
    if let Some((launch, b, _)) = block {
        if shadow.checker.cfg.race {
            launch.record(shadow, b, idx, 1, AccessKind::Atomic);
        }
    }
    shadow.mark_init_range(idx, 1);
    true
}

/// Label the buffer behind `shadow` for reports.
pub(crate) fn set_label(shadow: &Arc<BufShadow>, label: &str) {
    *shadow.label.lock() = Some(label.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(cfg: SanitizeConfig) -> Arc<Checker> {
        Arc::new(Checker::new(cfg))
    }

    #[test]
    fn config_parses_token_lists() {
        let cfg = SanitizeConfig::parse("race, init ,oob");
        assert!(cfg.race && cfg.init && cfg.oob && !cfg.leak);
        assert_eq!(SanitizeConfig::parse("all"), SanitizeConfig::all());
        assert_eq!(SanitizeConfig::parse("bogus"), SanitizeConfig::default());
        assert_eq!(SanitizeConfig::parse("race").tokens(), "race");
        assert_eq!(SanitizeConfig::all().tokens(), "race,init,oob,leak");
    }

    #[test]
    fn empty_report_is_stable_text() {
        let c = checker(SanitizeConfig::all());
        let r = c.report();
        assert!(r.is_empty());
        assert_eq!(
            r.to_text(),
            "sanitizer report (checks: race,init,oob,leak)\nfindings: 0\n"
        );
    }

    #[test]
    fn with_checker_scopes_and_restores() {
        let c = checker(SanitizeConfig::all());
        assert!(SCOPE.with(|s| s.borrow().is_none()));
        with_checker(&c, || {
            assert!(current().is_some());
            let inner = checker(SanitizeConfig::all());
            with_checker(&inner, || {
                let got = current().unwrap();
                assert!(Arc::ptr_eq(&got, &inner));
            });
            let got = current().unwrap();
            assert!(Arc::ptr_eq(&got, &c));
        });
        assert!(SCOPE.with(|s| s.borrow().is_none()));
    }

    #[test]
    fn race_word_encoding_saturates() {
        assert_eq!(encode_block(0), 1);
        assert_eq!(encode_block(5), 6);
        assert!(encode_block(u32::MAX) <= MAX_BLOCK + 1);
    }

    #[test]
    fn findings_sort_deterministically() {
        let c = checker(SanitizeConfig::all());
        {
            let mut races = c.races.lock();
            races.insert(("b".into(), FindingKind::RaceWriteWrite, "k2"), (3, 7));
            races.insert(("a".into(), FindingKind::RaceReadWrite, "k1"), (1, 0));
            races.insert(("a".into(), FindingKind::RaceWriteWrite, "k1"), (2, 4));
        }
        let r = c.report();
        let kinds: Vec<_> = r
            .findings
            .iter()
            .map(|f| (f.buffer.as_str(), f.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("a", FindingKind::RaceWriteWrite),
                ("a", FindingKind::RaceReadWrite),
                ("b", FindingKind::RaceWriteWrite),
            ]
        );
        let text = r.to_text();
        assert!(text.contains("race-write-write buffer=a launch=k1 cells=2 first=4"));
    }
}
