//! Unified scalar abstraction over `f32` and `f64`.
//!
//! The fault-tolerance layers need raw bit access (single-event upsets flip
//! one bit of an IEEE-754 value) and precision-aware tolerances, so the trait
//! exposes both numeric and bit-level views.

use crate::device::Precision;
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A floating-point element type usable in simulated kernels.
///
/// Implemented for `f32` and `f64` only. All kernels, checksum routines and
/// fault injectors in the workspace are generic over this trait.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Raw-bits integer representation of the same width.
    type Bits: Copy + Eq + Debug;

    /// Number of bits in the representation (32 or 64).
    const BITS: u32;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Positive infinity, used as the initial value of min-reductions.
    const INFINITY: Self;
    /// Machine epsilon of the format.
    const EPSILON: Self;
    /// Which [`Precision`] this type corresponds to.
    const PRECISION: Precision;

    /// Reinterpret as raw bits.
    fn to_bits(self) -> Self::Bits;
    /// Reinterpret raw bits as a value.
    fn from_bits(bits: Self::Bits) -> Self;
    /// Flip a single bit (0 = least-significant mantissa bit).
    fn flip_bit(self, bit: u32) -> Self;
    /// Lossless-ish conversion from `f64` (used by data generators).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used by metrics and thresholds).
    fn to_f64(self) -> f64;
    /// Conversion from a small index (checksum weight vectors `e2 = [1,2,..]`).
    fn from_usize(v: usize) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `self * a + b` fused for readability (not necessarily hardware-fused).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Largest of two values with NaN-poisoning semantics of `max`.
    fn max_s(self, other: Self) -> Self;
    /// True if the value is finite.
    fn is_finite_s(self) -> bool;
    /// Round to the TF32 storage format (10-bit mantissa) as tensor cores do
    /// for FP32 inputs on Ampere. Identity for `f64`.
    fn to_tf32(self) -> Self;
    /// Raw bits widened to `u64` (f32 bits live in the low half). Used by the
    /// generic atomic global-memory storage.
    fn to_raw_u64(self) -> u64;
    /// Inverse of [`Scalar::to_raw_u64`].
    fn from_raw_u64(bits: u64) -> Self;
}

impl Scalar for f32 {
    type Bits = u32;
    const BITS: u32 = 32;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const INFINITY: Self = f32::INFINITY;
    const EPSILON: Self = f32::EPSILON;
    const PRECISION: Precision = Precision::Fp32;

    #[inline]
    fn to_bits(self) -> u32 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u32) -> Self {
        f32::from_bits(bits)
    }
    #[inline]
    fn flip_bit(self, bit: u32) -> Self {
        debug_assert!(bit < 32);
        f32::from_bits(self.to_bits() ^ (1u32 << bit))
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_usize(v: usize) -> Self {
        v as f32
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn max_s(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn is_finite_s(self) -> bool {
        self.is_finite()
    }
    #[inline]
    fn to_tf32(self) -> Self {
        // TF32 keeps the FP32 exponent and truncates the mantissa to 10 bits;
        // Ampere rounds to nearest even. Emulate by masking after adding half
        // of the dropped range.
        let bits = self.to_bits();
        let round = bits.wrapping_add(0x0000_1000); // half of 2^13
        f32::from_bits(round & 0xFFFF_E000)
    }
    #[inline]
    fn to_raw_u64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_raw_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Scalar for f64 {
    type Bits = u64;
    const BITS: u32 = 64;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const INFINITY: Self = f64::INFINITY;
    const EPSILON: Self = f64::EPSILON;
    const PRECISION: Precision = Precision::Fp64;

    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    #[inline]
    fn flip_bit(self, bit: u32) -> Self {
        debug_assert!(bit < 64);
        f64::from_bits(self.to_bits() ^ (1u64 << bit))
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_usize(v: usize) -> Self {
        v as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn max_s(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn is_finite_s(self) -> bool {
        self.is_finite()
    }
    #[inline]
    fn to_tf32(self) -> Self {
        self
    }
    #[inline]
    fn to_raw_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_raw_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flip_roundtrips_f32() {
        let x = 3.25f32;
        for bit in 0..32 {
            let y = x.flip_bit(bit);
            assert_ne!(x.to_bits(), y.to_bits());
            assert_eq!(y.flip_bit(bit).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn bit_flip_roundtrips_f64() {
        let x = -1234.5678f64;
        for bit in 0..64 {
            let y = x.flip_bit(bit);
            assert_eq!(y.flip_bit(bit).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn sign_bit_flip_negates() {
        let x = 7.5f32;
        assert_eq!(x.flip_bit(31), -7.5f32);
        let y = 7.5f64;
        assert_eq!(y.flip_bit(63), -7.5f64);
    }

    #[test]
    fn tf32_truncates_mantissa() {
        let x = 1.0f32 + f32::EPSILON; // differs from 1.0 only below TF32 precision
        assert_eq!(x.to_tf32(), 1.0f32);
        // Values representable in 10 mantissa bits survive exactly.
        let y = 1.5f32;
        assert_eq!(y.to_tf32(), 1.5f32);
        let z = 1024.0f32 + 1.0; // needs 11 bits -> rounds
        let t = z.to_tf32();
        assert!((t - z).abs() <= 1.0);
    }

    #[test]
    fn tf32_identity_for_f64() {
        let x = 1.0f64 + f64::EPSILON;
        assert_eq!(x.to_tf32(), x);
    }

    #[test]
    fn from_usize_exact_for_small_indices() {
        for i in 0..4096usize {
            assert_eq!(<f32 as Scalar>::from_usize(i) as usize, i);
            assert_eq!(<f64 as Scalar>::from_usize(i) as usize, i);
        }
    }

    #[test]
    fn constants_match_precision() {
        assert_eq!(<f32 as Scalar>::PRECISION, Precision::Fp32);
        assert_eq!(<f64 as Scalar>::PRECISION, Precision::Fp64);
        assert_eq!(<f32 as Scalar>::BITS, 32);
        assert_eq!(<f64 as Scalar>::BITS, 64);
    }
}
