//! Analytic GPU performance model.
//!
//! The functional simulator (the rest of this crate) establishes *what* a
//! kernel computes; this module estimates *how fast* the same kernel runs on
//! a real A100 or T4, reproducing the performance shapes of the paper's
//! evaluation: tile-utilization collapse for fixed parameters, occupancy
//! effects, pipeline-bubble absorption of ABFT work, and the penalties of
//! register-reuse ABFT once `cp.async` exists.
//!
//! The model is deliberately white-box — every term is a named, documented
//! quantity (see [`calibration`]) so the ablation benches can switch terms
//! off individually.

pub mod calibration;
pub mod model;
pub mod occupancy;
pub mod roofline;

pub use calibration::Calibration;
pub use model::{
    estimate, estimate_with, FtMode, GemmShape, KernelClass, KernelTiming, TileConfig, TimingInput,
};
pub use occupancy::{occupancy, OccupancyResult};
pub use roofline::counter_roofline;
