//! Calibration constants for the analytic timing model.
//!
//! Every constant is an interpretable quantity; values were fitted against
//! the paper's published anchors and asserted by the calibration tests in
//! [`crate::timing::model`]:
//!
//! * Fig. 7 (A100, FP32, M=131072, N=128, K=128): naive ≈ 0.48 TF,
//!   V1 ≈ 4.7 TF, V2 ≈ 5.9 TF, V3 ≈ 6.9 TF, tuned tensor ≈ 17.7 TF,
//!   cuML ≈ 9.7 TF.
//! * Fig. 15/16: ABFT overhead ≈ 0–2% FP32 (hidden in the execution bubble
//!   between the tensor pipe and the issue/memory legs), ≈ 13% average FP64
//!   (the FP64 tensor pipe is the binding leg, so the 3/(m_w·n_w) checksum
//!   MMAs are exposed).
//! * Fig. 17/18/21: error-injection overhead small for FT K-means; Wu's
//!   scheme ≈ +30% on A100 (re-reads + no `cp.async`), ≈ 60% worse than FT
//!   K-means on T4 (threadblock-level synchronization).
//!
//! ## Two compute legs
//!
//! The model distinguishes the **issue leg** (`s_issue_gflops`) — a
//! composite ceiling covering instruction issue, shared-memory traffic and
//! pipeline latencies, which is what actually limits the TF32 kernel at
//! ~18–20 TFLOP/s despite a 156 TFLOP/s tensor peak — from the **tensor
//! pipe leg** (`s_tensor_gflops`), the raw MMA throughput that payload and
//! checksum MMAs *share*. FP32: tensor pipe ≫ issue leg, so ABFT MMAs hide.
//! FP64: tensor pipe ≈ issue leg, so ABFT MMAs surface (paper §IV-B).

use crate::device::{DeviceProfile, Precision};
use serde::{Deserialize, Serialize};

/// Tunable constants of the timing model for one (device, precision) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Composite issue/pipeline ceiling for the fused tensor-core distance
    /// kernel, GFLOP/s (payload FLOPs only).
    pub s_issue_gflops: f64,
    /// Raw tensor-pipe ceiling, GFLOP/s. Payload and ABFT checksum MMAs
    /// contend here.
    pub s_tensor_gflops: f64,
    /// Half-saturation point of the warp-occupancy efficiency curve
    /// `f_occ = aw / (aw + h)`.
    pub occ_half_sat_warps: f64,
    /// Pipeline fill weight in `g_k = iters / (iters + fill·(stages−1))`.
    pub kloop_fill_frac: f64,
    /// Fixed per-k-iteration cost (barrier, pointer arithmetic, `cp.async`
    /// issue) expressed as the extra issue-work fraction at
    /// `Threadblock.K = 16`; scales inversely with the tile depth. This is
    /// what makes very shallow K tiles unattractive despite their lower
    /// padding — the paper's winning tiles all use `Threadblock.K = 16`.
    pub kiter_overhead_frac: f64,
    /// ILP offset in the tile-shape efficiency `h = r / (r + o)` with
    /// `r = wm·wn / (wm+wn)` (compute per shared-memory element).
    pub tile_ilp_offset: f64,
    /// Sustained fraction of DRAM bandwidth for streaming tile loads.
    pub mem_efficiency: f64,
    /// Sustained SIMT GEMM rate of the V1 variant (separate reduction
    /// kernel), GFLOP/s.
    pub s_simt_v1_gflops: f64,
    /// V2 (thread/threadblock-fused reduction) sustained rate, GFLOP/s.
    pub s_simt_v2_gflops: f64,
    /// V3 (fully fused, broadcast) sustained rate, GFLOP/s.
    pub s_simt_v3_gflops: f64,
    /// Naive kernel's achieved fraction of CUDA-core peak (uncoalesced
    /// loads, no tiling).
    pub naive_frac_of_cuda: f64,
    /// Per-element epilogue cost (row-min + index bookkeeping), CUDA-core
    /// flop-equivalents.
    pub epilogue_flops_per_elem: f64,
    /// Cost of one global argmin merge (lock + compare), nanoseconds.
    pub atomic_merge_ns: f64,
    /// Per-wave fill/drain overhead, microseconds.
    pub wave_overhead_us: f64,
    /// Serialized fraction of min(compute, memory) without `cp.async`
    /// (Turing, and Wu's pre-Ampere kernel on any device).
    pub no_async_serial_frac: f64,
    /// Extra fraction of A-operand DRAM traffic Wu's scheme re-reads when
    /// the register-staged path is unavailable (Ampere only).
    pub wu_reread_frac: f64,
    /// Per-k-iteration threadblock-level checksum reduction + sync cost of
    /// Wu's scheme, microseconds (per wave).
    pub wu_block_sync_us: f64,
    /// Multiplier on the issue ceiling for Wu's pre-`cp.async` kernel
    /// generation (older tiling, explicit staging).
    pub wu_issue_penalty: f64,
    /// CUDA-core flop-equivalents per accumulator element for one online
    /// detection sweep (Fig. 6 lines 25–30).
    pub detect_flops_per_elem: f64,
    /// Detection interval in K-dimension steps (Fig. 6 line 25).
    pub detect_interval_k: usize,
    /// Time to locate + correct one error with FT K-means' location
    /// encoding, microseconds (warp-local, no recomputation).
    pub err_fix_us_ftk: f64,
    /// Fraction of a detection interval recomputed per error by
    /// recompute-based correction (Kosaian).
    pub recompute_interval_frac: f64,
}

impl Calibration {
    /// Constants for a device/precision pair.
    pub fn for_device(device: &DeviceProfile, precision: Precision) -> Self {
        let ampere = device.has_async_copy;
        let base = Calibration {
            s_issue_gflops: 30_000.0,
            s_tensor_gflops: 90_000.0,
            occ_half_sat_warps: 2.0,
            kloop_fill_frac: 0.75,
            kiter_overhead_frac: 0.10,
            tile_ilp_offset: 2.0,
            mem_efficiency: 0.85,
            s_simt_v1_gflops: 5_300.0,
            s_simt_v2_gflops: 6_400.0,
            s_simt_v3_gflops: 7_300.0,
            naive_frac_of_cuda: 0.025,
            epilogue_flops_per_elem: 3.0,
            atomic_merge_ns: 18.0,
            wave_overhead_us: 2.0,
            no_async_serial_frac: 0.55,
            wu_reread_frac: 0.5,
            wu_block_sync_us: 0.15,
            wu_issue_penalty: 0.9,
            detect_flops_per_elem: 2.0,
            detect_interval_k: 256,
            err_fix_us_ftk: 0.5,
            recompute_interval_frac: 1.0,
        };
        match (ampere, precision) {
            // A100 FP32 (TF32 tensor path): issue-bound, tensor pipe idle.
            (true, Precision::Fp32) => base,
            // A100 FP64: tensor pipe is the binding leg.
            (true, Precision::Fp64) => Calibration {
                s_issue_gflops: 30_000.0,
                s_tensor_gflops: 17_000.0,
                s_simt_v1_gflops: 3_000.0,
                s_simt_v2_gflops: 3_600.0,
                s_simt_v3_gflops: 4_100.0,
                ..base
            },
            // T4 FP32 (FP16 tensor cores, no cp.async).
            (false, Precision::Fp32) => Calibration {
                s_issue_gflops: 10_000.0,
                s_tensor_gflops: 15_000.0,
                mem_efficiency: 0.80,
                s_simt_v1_gflops: 2_200.0,
                s_simt_v2_gflops: 2_600.0,
                s_simt_v3_gflops: 3_000.0,
                atomic_merge_ns: 30.0,
                wave_overhead_us: 2.5,
                no_async_serial_frac: 0.30,
                wu_reread_frac: 0.0, // register staging still exists on Turing
                wu_block_sync_us: 0.8,
                wu_issue_penalty: 0.75,
                ..base
            },
            // T4 FP64: no FP64 tensor cores; everything runs on the 253
            // GFLOP/s SIMT path.
            (false, Precision::Fp64) => Calibration {
                s_issue_gflops: 240.0,
                s_tensor_gflops: 240.0,
                mem_efficiency: 0.80,
                s_simt_v1_gflops: 170.0,
                s_simt_v2_gflops: 200.0,
                s_simt_v3_gflops: 220.0,
                atomic_merge_ns: 30.0,
                wave_overhead_us: 2.5,
                no_async_serial_frac: 0.30,
                wu_reread_frac: 0.0,
                wu_block_sync_us: 0.8,
                wu_issue_penalty: 0.75,
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_tensor_pipe_has_headroom_fp64_does_not() {
        let a100 = DeviceProfile::a100();
        let c32 = Calibration::for_device(&a100, Precision::Fp32);
        let c64 = Calibration::for_device(&a100, Precision::Fp64);
        // FP32: tensor pipe far above the issue ceiling -> ABFT hides.
        assert!(c32.s_tensor_gflops > 2.0 * c32.s_issue_gflops);
        // FP64: tensor pipe below the issue ceiling -> ABFT surfaces.
        assert!(c64.s_tensor_gflops < c64.s_issue_gflops);
    }

    #[test]
    fn wu_penalties_differ_by_architecture() {
        let a100 = DeviceProfile::a100();
        let t4 = DeviceProfile::t4();
        let ca = Calibration::for_device(&a100, Precision::Fp32);
        let ct = Calibration::for_device(&t4, Precision::Fp32);
        assert!(ca.wu_reread_frac > 0.0, "Ampere forces re-reads");
        assert_eq!(ct.wu_reread_frac, 0.0, "Turing keeps register staging");
        assert!(ct.wu_block_sync_us > ca.wu_block_sync_us);
    }

    #[test]
    fn constants_are_sane() {
        for dev in [DeviceProfile::a100(), DeviceProfile::t4()] {
            for p in Precision::all() {
                let c = Calibration::for_device(&dev, p);
                assert!(c.s_issue_gflops > 0.0);
                assert!(c.s_tensor_gflops > 0.0);
                assert!(c.mem_efficiency > 0.0 && c.mem_efficiency <= 1.0);
                assert!(c.s_simt_v1_gflops < c.s_simt_v2_gflops);
                assert!(c.s_simt_v2_gflops < c.s_simt_v3_gflops);
                assert!(c.detect_interval_k >= 1);
            }
        }
    }
}
