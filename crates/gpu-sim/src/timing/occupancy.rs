//! CUDA occupancy arithmetic: how many threadblocks fit on one SM.
//!
//! This is the standard occupancy calculation (shared memory, registers,
//! threads, hardware block cap) that both the timing model and the
//! code-generation feasibility probe use. The paper's parameter analysis
//! (§V-A6) attributes cuML's losses at small N to exactly this quantity.

use crate::device::{DeviceProfile, Precision};

/// Result of the occupancy calculation for one kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyResult {
    /// Resident threadblocks per SM (0 = configuration cannot launch).
    pub blocks_per_sm: usize,
    /// Resident warps per SM.
    pub active_warps: usize,
    /// `active_warps / max_warps_per_sm`, in `[0, 1]`.
    pub ratio: f64,
    /// Which resource bound the result (for diagnostics).
    pub limiter: Limiter,
}

/// The resource that limited occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    SharedMemory,
    Registers,
    Threads,
    BlockCap,
}

/// Compute occupancy for a block of `threads_per_block` threads using
/// `smem_bytes` shared memory and `regs_per_thread` registers.
pub fn occupancy(
    device: &DeviceProfile,
    threads_per_block: usize,
    smem_bytes: usize,
    regs_per_thread: usize,
) -> OccupancyResult {
    let by_smem = device
        .smem_per_sm
        .checked_div(smem_bytes)
        .unwrap_or(usize::MAX);
    let by_threads = device
        .max_threads_per_sm
        .checked_div(threads_per_block)
        .unwrap_or(0);
    let regs_per_block = regs_per_thread * threads_per_block;
    let by_regs = device
        .regs_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(usize::MAX);
    let by_cap = device.max_blocks_per_sm;

    let (blocks, limiter) = [
        (by_smem, Limiter::SharedMemory),
        (by_regs, Limiter::Registers),
        (by_threads, Limiter::Threads),
        (by_cap, Limiter::BlockCap),
    ]
    .into_iter()
    .min_by_key(|&(b, _)| b)
    .expect("non-empty candidate list");

    let active_warps = blocks * threads_per_block / 32;
    OccupancyResult {
        blocks_per_sm: blocks,
        active_warps,
        ratio: active_warps as f64 / device.max_warps_per_sm() as f64,
        limiter,
    }
}

/// Estimate 32-bit registers per thread for the tensor-core distance kernel
/// with a `wm x wn` warp tile: accumulator fragment + A/B fragments spread
/// over 32 lanes, plus fixed addressing/pipeline overhead.
pub fn tensor_regs_per_thread(wm: usize, wn: usize, mma_k: usize, precision: Precision) -> usize {
    let words = match precision {
        Precision::Fp32 => 1,
        Precision::Fp64 => 2,
    };
    let acc = wm * wn / 32 * words;
    let frags = (wm + wn) * mma_k / 32 * words * 2; // double-buffered fragments
    let overhead = 40;
    (acc + frags + overhead).min(255)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_limited_case() {
        let dev = DeviceProfile::a100();
        // tiny smem, few regs: 2048/256 = 8 blocks, but reg/smem allow more.
        let r = occupancy(&dev, 256, 1024, 16);
        assert_eq!(r.blocks_per_sm, 8);
        assert_eq!(r.limiter, Limiter::Threads);
        assert_eq!(r.active_warps, 64);
        assert!((r.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smem_limited_case() {
        let dev = DeviceProfile::a100();
        // 60 KiB/block -> 2 blocks per 164 KiB SM.
        let r = occupancy(&dev, 128, 60 * 1024, 32);
        assert_eq!(r.blocks_per_sm, 2);
        assert_eq!(r.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn register_limited_case() {
        let dev = DeviceProfile::a100();
        // 255 regs x 512 threads = 130k regs/block > 65536 -> 0 blocks.
        let r = occupancy(&dev, 512, 0, 255);
        assert_eq!(r.blocks_per_sm, 0);
        assert_eq!(r.limiter, Limiter::Registers);
    }

    #[test]
    fn block_cap_case() {
        let dev = DeviceProfile::a100();
        let r = occupancy(&dev, 32, 0, 16);
        assert_eq!(r.blocks_per_sm, 32);
        assert_eq!(r.limiter, Limiter::BlockCap);
    }

    #[test]
    fn reg_estimate_scales_with_tile() {
        let small = tensor_regs_per_thread(32, 32, 8, Precision::Fp32);
        let large = tensor_regs_per_thread(64, 64, 8, Precision::Fp32);
        assert!(large > small);
        let fp64 = tensor_regs_per_thread(32, 32, 4, Precision::Fp64);
        let fp32 = tensor_regs_per_thread(32, 32, 4, Precision::Fp32);
        assert!(fp64 > fp32);
        assert!(tensor_regs_per_thread(128, 128, 8, Precision::Fp64) <= 255);
    }
}
