//! The analytic kernel-time estimator.
//!
//! Shapes follow the GEMM mapping used throughout the paper: for M samples
//! of dimension N clustered into K centroids, the distance computation is a
//! GEMM with `Gm = M` (samples), `Gn = K` (clusters), `Gk = N` (features).
//! [`GemmShape`] stores `(m, n, k)` in *that* order: `m` = samples,
//! `n` = clusters, `k` = features.
//!
//! The estimate composes explicit legs:
//!
//! * **issue leg** — padded payload FLOPs over a composite issue ceiling,
//!   scaled by occupancy (`f_occ`), k-loop fill (`g_k`) and tile ILP (`h`),
//! * **tensor-pipe leg** — payload + ABFT checksum MMAs over the raw MMA
//!   throughput (this is where FP64 ABFT overhead surfaces),
//! * **memory leg** — DRAM traffic with L2 reuse of operands that fit,
//! * **epilogue** — fused row-min + global argmin merges,
//! * **overheads** — wave quantization, kernel launches, fault-injection
//!   recovery costs per scheme.
//!
//! Tile-quantization waste (`util`) is implicit in the padded FLOP counts:
//! a fixed `Threadblock.N = 256` at `Gn = 8` pays 32× the useful work,
//! which is the paper's core explanation for cuML's losses (§V-A6).

use crate::device::{DeviceProfile, Precision};
use crate::dim::{ceil_div, round_up};
use crate::mma::shapes;
use crate::shared::staged_smem_bytes;
use crate::timing::calibration::Calibration;
use crate::timing::occupancy::{occupancy, tensor_regs_per_thread};
use serde::{Deserialize, Serialize};

/// GEMM problem shape in the paper's mapping: `m` samples, `n` clusters,
/// `k` features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Number of samples (GEMM M).
    pub m: usize,
    /// Number of clusters (GEMM N).
    pub n: usize,
    /// Feature dimension (GEMM K).
    pub k: usize,
}

impl GemmShape {
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { m, n, k }
    }

    /// Useful distance-computation FLOPs, `2·M·N·K` as the paper reports.
    pub fn useful_flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }
}

/// Tiling of the tensor-core kernel: threadblock tile, warp tile and
/// pipeline depth. `wk == tb_k` per the paper's enumeration rule 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileConfig {
    pub tb_m: usize,
    pub tb_n: usize,
    pub tb_k: usize,
    pub wm: usize,
    pub wn: usize,
    /// Pipeline stages (3 with `cp.async`, 2 with register double-buffering).
    pub k_stages: usize,
}

impl TileConfig {
    /// Warps per threadblock.
    pub fn warps(&self) -> usize {
        (self.tb_m / self.wm) * (self.tb_n / self.wn)
    }

    /// Threads per threadblock.
    pub fn threads(&self) -> usize {
        self.warps() * 32
    }

    /// Shared-memory bytes for the staged pipeline.
    pub fn smem_bytes(&self, precision: Precision) -> usize {
        staged_smem_bytes(
            self.tb_m,
            self.tb_n,
            self.tb_k,
            self.k_stages,
            precision.bytes(),
        )
    }

    /// Number of MMA tiles per warp `(m_w, n_w)` for a precision — the
    /// denominators of the paper's ABFT overhead ratio `3/(m_w·n_w)`.
    pub fn mma_tiles(&self, precision: Precision) -> (usize, usize) {
        let (tm, tn, _) = match precision {
            Precision::Fp32 => shapes::FP32_MMA,
            Precision::Fp64 => shapes::FP64_MMA,
        };
        (ceil_div(self.wm, tm), ceil_div(self.wn, tn))
    }
}

/// Fault-tolerance scheme applied to the distance kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FtMode {
    /// No protection.
    None,
    /// FT K-means: warp-level two-sided checksums, online detection and
    /// location-encoded correction (the paper's scheme).
    FtKMeans,
    /// Kosaian & Rashmi: warp-level detection only; correction recomputes.
    Kosaian,
    /// Wu et al. (ICS'23): threadblock-level checksums relying on
    /// register-staged copies; on Ampere it must re-read operands.
    Wu,
}

/// Which kernel implementation computes the distance/assignment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelClass {
    /// Thread-per-sample baseline (§III-A1).
    Naive,
    /// SIMT GEMM + separate row-min kernel (§III-A2).
    GemmV1,
    /// SIMT GEMM with thread/threadblock fused reduction (§III-A3).
    FusedV2,
    /// Fully fused with threadblock broadcast (§III-A4).
    BroadcastV3,
    /// Tensor-core pipeline kernel with the given tiling (§III-A5).
    Tensor(TileConfig),
}

/// Everything the estimator needs.
#[derive(Debug, Clone)]
pub struct TimingInput<'a> {
    pub device: &'a DeviceProfile,
    pub precision: Precision,
    pub class: KernelClass,
    pub shape: GemmShape,
    pub ft: FtMode,
    /// Expected transient-error arrivals per second of kernel time.
    pub inj_rate_hz: f64,
}

impl<'a> TimingInput<'a> {
    /// Convenience constructor with no fault tolerance and no injection.
    pub fn plain(
        device: &'a DeviceProfile,
        precision: Precision,
        class: KernelClass,
        shape: GemmShape,
    ) -> Self {
        TimingInput {
            device,
            precision,
            class,
            shape,
            ft: FtMode::None,
            inj_rate_hz: 0.0,
        }
    }
}

/// The estimator's output: total time plus the breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// End-to-end kernel time, seconds (`f64::INFINITY` if the
    /// configuration cannot launch).
    pub time_s: f64,
    /// Useful throughput, GFLOP/s (`2·M·N·K / time`).
    pub gflops: f64,
    /// Issue-leg time, seconds.
    pub t_issue: f64,
    /// Tensor-pipe leg time (payload + checksum MMAs), seconds.
    pub t_tensor: f64,
    /// DRAM leg time, seconds.
    pub t_memory: f64,
    /// Epilogue (row-min + atomic merges), seconds.
    pub t_epilogue: f64,
    /// Wave/launch overheads, seconds.
    pub t_overhead: f64,
    /// Fault-injection recovery time, seconds.
    pub t_recovery: f64,
    /// Achieved occupancy ratio (tensor kernels; 0 for SIMT classes).
    pub occupancy: f64,
    /// Threadblocks launched.
    pub blocks: usize,
    /// True when the configuration fits the device.
    pub feasible: bool,
}

impl std::fmt::Display for KernelTiming {
    /// Roofline-style breakdown, e.g.
    /// `243.1 us (17.7 TFLOP/s) | issue 210.2 us | tensor 66.1 us | mem 48.2 us | epi 26.4 us | ovh 18.0 us`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.feasible {
            return write!(f, "infeasible configuration");
        }
        let us = |t: f64| t * 1e6;
        write!(
            f,
            "{:.1} us ({:.1} TFLOP/s) | issue {:.1} us | tensor {:.1} us | mem {:.1} us | epi {:.1} us | ovh {:.1} us",
            us(self.time_s),
            self.gflops / 1000.0,
            us(self.t_issue),
            us(self.t_tensor),
            us(self.t_memory),
            us(self.t_epilogue),
            us(self.t_overhead + self.t_recovery),
        )
    }
}

impl KernelTiming {
    /// The leg that bounds this kernel ("issue", "tensor", "memory",
    /// "epilogue" or "overhead") — the roofline diagnosis.
    pub fn binding_leg(&self) -> &'static str {
        let legs = [
            (self.t_issue, "issue"),
            (self.t_tensor, "tensor"),
            (self.t_memory, "memory"),
            (self.t_epilogue, "epilogue"),
            (self.t_overhead + self.t_recovery, "overhead"),
        ];
        legs.into_iter()
            .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite legs"))
            .map(|(_, n)| n)
            .expect("non-empty")
    }

    fn infeasible() -> Self {
        KernelTiming {
            time_s: f64::INFINITY,
            gflops: 0.0,
            t_issue: f64::INFINITY,
            t_tensor: 0.0,
            t_memory: 0.0,
            t_epilogue: 0.0,
            t_overhead: 0.0,
            t_recovery: 0.0,
            occupancy: 0.0,
            blocks: 0,
            feasible: false,
        }
    }
}

/// DRAM traffic for the operand tiles of a blocked GEMM, with L2 reuse: an
/// operand whose footprint fits in L2 is fetched from DRAM once regardless
/// of how many threadblocks read it.
fn operand_dram_bytes(
    device: &DeviceProfile,
    shape: GemmShape,
    tb_m: usize,
    tb_n: usize,
    gk_pad: usize,
    es: usize,
) -> f64 {
    let bm = ceil_div(shape.m, tb_m);
    let bn = ceil_div(shape.n, tb_n);
    let a_footprint = shape.m * shape.k * es;
    let b_footprint = shape.n * shape.k * es;
    // A (samples): each block-column of the grid streams all of A.
    let a_bytes = if a_footprint <= device.l2_bytes {
        a_footprint as f64
    } else {
        (bn * shape.m * gk_pad * es) as f64
    };
    // B (centroids): usually tiny; fits L2 → one DRAM pass.
    let b_bytes = if b_footprint <= device.l2_bytes {
        b_footprint as f64
    } else {
        (bm * shape.n * gk_pad * es) as f64
    };
    a_bytes + b_bytes
}

/// Estimate kernel time for `input` with the default calibration.
pub fn estimate(input: &TimingInput) -> KernelTiming {
    let cal = Calibration::for_device(input.device, input.precision);
    estimate_with(input, &cal)
}

/// Estimate kernel time with an explicit calibration — the entry point for
/// ablation studies that switch individual model terms off.
pub fn estimate_with(input: &TimingInput, cal: &Calibration) -> KernelTiming {
    match input.class {
        KernelClass::Tensor(tile) => estimate_tensor(input, tile, cal),
        KernelClass::Naive => estimate_naive(input, cal),
        KernelClass::GemmV1 | KernelClass::FusedV2 | KernelClass::BroadcastV3 => {
            estimate_simt(input, cal)
        }
    }
}

fn estimate_tensor(input: &TimingInput, tile: TileConfig, cal: &Calibration) -> KernelTiming {
    let dev = input.device;
    let p = input.precision;
    let es = p.bytes();
    let shape = input.shape;

    if tile.wm == 0
        || tile.wn == 0
        || !tile.tb_m.is_multiple_of(tile.wm)
        || !tile.tb_n.is_multiple_of(tile.wn)
        || tile.tb_k == 0
    {
        return KernelTiming::infeasible();
    }

    let bm = ceil_div(shape.m, tile.tb_m);
    let bn = ceil_div(shape.n, tile.tb_n);
    let blocks = bm * bn;
    let mma_k = match p {
        Precision::Fp32 => shapes::FP32_MMA.2,
        Precision::Fp64 => shapes::FP64_MMA.2,
    };
    // K-dimension padding happens at MMA granularity: CUTLASS's k-residue
    // handling stops the main loop at the last partially-filled MMA slab,
    // so a shallow feature dimension does not pay for the whole
    // Threadblock.K tile.
    let gk_pad = round_up(shape.k.max(1), mma_k);

    let threads = tile.threads();
    let smem = tile.smem_bytes(p);
    let regs = tensor_regs_per_thread(tile.wm, tile.wn, mma_k, p);
    if threads > dev.max_threads_per_block || smem > dev.smem_per_block {
        return KernelTiming::infeasible();
    }
    let occ = occupancy(dev, threads, smem, regs);
    if occ.blocks_per_sm == 0 {
        return KernelTiming::infeasible();
    }

    // --- efficiency factors -------------------------------------------------
    let aw = occ.active_warps as f64;
    let f_occ = aw / (aw + cal.occ_half_sat_warps);
    let iters = (gk_pad as f64 / tile.tb_k as f64).max(1.0).ceil();
    let g_k = iters / (iters + cal.kloop_fill_frac * (tile.k_stages as f64 - 1.0));
    let r = (tile.wm * tile.wn) as f64 / (tile.wm + tile.wn) as f64;
    let h_tile = r / (r + cal.tile_ilp_offset);
    // Vectorization/alignment factor (paper §V-A6): "the memory alignment
    // requirement for FP64 is more strict than FP32 and is fixed to 1 in
    // CUTLASS's implementation. So the degree of vectorization for FP64 is
    // lower. So a balanced data fetching pattern is crucial" — narrow
    // Threadblock.N tiles lose their padding advantage at FP64, which is
    // why the paper's FP64 speedups over cuML are marginal (Fig. 12).
    let vec_n = match p {
        Precision::Fp32 => (tile.tb_n as f64 / 32.0).min(1.0),
        Precision::Fp64 => (tile.tb_n as f64 / 64.0).min(1.0),
    };
    let eff = f_occ * g_k * h_tile * vec_n;

    // --- compute legs -------------------------------------------------------
    let padded_flops = 2.0 * (bm * tile.tb_m) as f64 * (bn * tile.tb_n) as f64 * gk_pad as f64;
    let issue_ceiling = match input.ft {
        FtMode::Wu => cal.s_issue_gflops * cal.wu_issue_penalty,
        _ => cal.s_issue_gflops,
    };
    // Fixed per-k-iteration cost: shallow K tiles iterate more often per
    // FLOP, paying barriers/pointer math/copy issue each time.
    let kiter_work = 1.0 + cal.kiter_overhead_frac * 16.0 / tile.tb_k as f64;
    let t_issue = padded_flops * kiter_work / (issue_ceiling * 1e9 * eff);

    let (m_w, n_w) = tile.mma_tiles(p);
    let ft_mma_frac = match input.ft {
        FtMode::None => 0.0,
        // Three checksum MMAs (e1ᵀXYe1, e1ᵀXYe2, e2ᵀXYe1) per m_w·n_w
        // payload MMAs (paper §IV-A).
        FtMode::FtKMeans => 3.0 / (m_w * n_w) as f64,
        // Detection-only needs a single checksum product.
        FtMode::Kosaian => 1.0 / (m_w * n_w) as f64,
        // Threadblock-level double checksum: two products amortized over the
        // whole block tile — negligible MMA cost, the damage is elsewhere.
        FtMode::Wu => 2.0 / ((m_w * n_w) as f64 * tile.warps() as f64),
    };
    let t_tensor =
        padded_flops * (1.0 + ft_mma_frac) / (cal.s_tensor_gflops * 1e9 * f_occ * g_k * vec_n);

    // --- memory leg ----------------------------------------------------------
    let mut dram_bytes = operand_dram_bytes(dev, shape, tile.tb_m, tile.tb_n, gk_pad, es);
    if input.ft == FtMode::Wu && dev.has_async_copy {
        // Register-reuse checksums impossible: Wu re-reads operand tiles.
        dram_bytes *= 1.0 + cal.wu_reread_frac;
    }
    // Assignment output: one (index, distance) pair per sample.
    dram_bytes += (shape.m * (4 + es)) as f64;
    let t_memory = dram_bytes / (dev.mem_bw_gbs * 1e9 * cal.mem_efficiency);

    // --- overlap -------------------------------------------------------------
    let legs = [t_issue, t_tensor, t_memory];
    let t_max = legs.iter().cloned().fold(0.0, f64::max);
    let overlapped = dev.has_async_copy && input.ft != FtMode::Wu;
    let t_main = if overlapped {
        t_max
    } else {
        // Without cp.async, a fraction of the shorter legs serializes.
        let rest: f64 = legs.iter().sum::<f64>() - t_max;
        t_max + cal.no_async_serial_frac * rest
    };

    // --- epilogue ------------------------------------------------------------
    let epi_flops = (blocks * tile.tb_m * tile.tb_n) as f64 * cal.epilogue_flops_per_elem;
    let t_epi_compute = epi_flops / (dev.cuda_gflops(p) * 1e9 * f_occ);
    let merges = (blocks * tile.tb_m) as f64;
    let t_atomic = merges * cal.atomic_merge_ns * 1e-9 / dev.sm_count as f64;
    let t_epilogue = t_epi_compute + t_atomic;

    // --- fixed overheads -----------------------------------------------------
    let waves = ceil_div(blocks, dev.sm_count * occ.blocks_per_sm);
    let mut t_overhead = waves as f64 * cal.wave_overhead_us * 1e-6 + dev.launch_overhead_us * 1e-6;
    // Online detection sweeps (every `detect_interval_k` steps + final).
    if input.ft != FtMode::None {
        let sweeps = (gk_pad as f64 / cal.detect_interval_k as f64)
            .ceil()
            .max(1.0);
        let detect_flops =
            (blocks * tile.tb_m * tile.tb_n) as f64 * cal.detect_flops_per_elem * sweeps;
        t_overhead += detect_flops / (dev.cuda_gflops(p) * 1e9 * f_occ);
        if input.ft == FtMode::Wu {
            t_overhead += waves as f64 * iters * cal.wu_block_sync_us * 1e-6;
        }
    }

    // --- fault recovery ------------------------------------------------------
    let nominal = t_main + t_epilogue + t_overhead;
    let expected_errors = input.inj_rate_hz * nominal;
    let t_recovery = if expected_errors > 0.0 && input.ft != FtMode::None {
        let per_error = match input.ft {
            FtMode::FtKMeans => cal.err_fix_us_ftk * 1e-6,
            FtMode::Kosaian | FtMode::Wu => {
                // Recompute one detection interval (Kosaian) or the whole
                // block tile (Wu) on one SM while the rest of the wave waits.
                let interval_frac = match input.ft {
                    FtMode::Kosaian => {
                        (cal.detect_interval_k as f64 / gk_pad as f64).min(1.0)
                            * cal.recompute_interval_frac
                    }
                    _ => 1.0,
                };
                let block_flops = 2.0 * (tile.tb_m * tile.tb_n) as f64 * gk_pad as f64;
                block_flops * interval_frac
                    / (cal.s_tensor_gflops * 1e9 / dev.sm_count as f64 / occ.blocks_per_sm as f64)
                        .max(1.0)
            }
            FtMode::None => 0.0,
        };
        expected_errors * per_error
    } else {
        0.0
    };

    let time_s = nominal + t_recovery;
    KernelTiming {
        time_s,
        gflops: shape.useful_flops() / time_s / 1e9,
        t_issue,
        t_tensor,
        t_memory,
        t_epilogue,
        t_overhead,
        t_recovery,
        occupancy: occ.ratio,
        blocks,
        feasible: true,
    }
}

fn estimate_naive(input: &TimingInput, cal: &Calibration) -> KernelTiming {
    let dev = input.device;
    let p = input.precision;
    let es = p.bytes();
    let shape = input.shape;

    // Thread-per-sample: centroids cached, samples streamed, but scalar
    // loads and no tiling keep the achieved rate at a few percent of peak.
    let t_compute = shape.useful_flops() / (dev.cuda_gflops(p) * 1e9 * cal.naive_frac_of_cuda);
    let bytes = (shape.m * shape.k * es + shape.n * shape.k * es + shape.m * 4) as f64;
    let t_memory = bytes / (dev.mem_bw_gbs * 1e9 * cal.mem_efficiency);
    let t_main = t_compute.max(t_memory);
    let t_overhead = dev.launch_overhead_us * 1e-6;
    let time_s = t_main + t_overhead;
    KernelTiming {
        time_s,
        gflops: shape.useful_flops() / time_s / 1e9,
        t_issue: t_compute,
        t_tensor: 0.0,
        t_memory,
        t_epilogue: 0.0,
        t_overhead,
        t_recovery: 0.0,
        occupancy: 0.0,
        blocks: ceil_div(shape.m, 256),
        feasible: true,
    }
}

fn estimate_simt(input: &TimingInput, cal: &Calibration) -> KernelTiming {
    let dev = input.device;
    let p = input.precision;
    let es = p.bytes();
    let shape = input.shape;

    // Fixed SIMT tiling used by the hand-written V1–V3 kernels.
    let (tb_m, tb_n) = (128usize, 64usize);
    let bm = ceil_div(shape.m, tb_m);
    let bn = ceil_div(shape.n, tb_n);
    let blocks = bm * bn;
    let gk_pad = round_up(shape.k.max(1), 8);
    let padded_flops = 2.0 * (bm * tb_m) as f64 * (bn * tb_n) as f64 * gk_pad as f64;

    let rate = match input.class {
        KernelClass::GemmV1 => cal.s_simt_v1_gflops,
        KernelClass::FusedV2 => cal.s_simt_v2_gflops,
        KernelClass::BroadcastV3 => cal.s_simt_v3_gflops,
        _ => unreachable!("estimate_simt called with non-SIMT class"),
    };
    let t_compute = padded_flops / (rate * 1e9);

    let mut dram = operand_dram_bytes(dev, shape, tb_m, tb_n, gk_pad, es);
    let mut t_extra = 0.0;
    let bw = dev.mem_bw_gbs * 1e9 * cal.mem_efficiency;
    match input.class {
        KernelClass::GemmV1 => {
            // Write the full distance matrix, then a second kernel re-reads
            // it for the row-min reduction.
            let c_bytes = (shape.m * shape.n * es) as f64;
            dram += c_bytes; // write
            t_extra += c_bytes / bw // reduction read
                + (shape.m * 4) as f64 / bw // assignment write
                + dev.launch_overhead_us * 1e-6; // extra kernel
        }
        KernelClass::FusedV2 => {
            // Per-block partial minima written, then a small second kernel.
            let partial_bytes = (shape.m * bn * (es + 4)) as f64;
            dram += partial_bytes;
            t_extra += partial_bytes / bw + dev.launch_overhead_us * 1e-6;
        }
        KernelClass::BroadcastV3 => {
            // Fully fused: per-row atomic merges instead of a second kernel.
            let merges = (blocks * tb_m) as f64;
            t_extra += merges * cal.atomic_merge_ns * 1e-9 / dev.sm_count as f64;
        }
        _ => unreachable!(),
    }
    dram += (shape.m * (4 + es)) as f64;
    let t_memory = dram / bw;

    let t_main = if dev.has_async_copy {
        t_compute.max(t_memory)
    } else {
        t_compute.max(t_memory) + cal.no_async_serial_frac * t_compute.min(t_memory)
    };
    let t_overhead = dev.launch_overhead_us * 1e-6;
    let time_s = t_main + t_extra + t_overhead;
    KernelTiming {
        time_s,
        gflops: shape.useful_flops() / time_s / 1e9,
        t_issue: t_compute,
        t_tensor: 0.0,
        t_memory,
        t_epilogue: t_extra,
        t_overhead,
        t_recovery: 0.0,
        occupancy: 0.0,
        blocks,
        feasible: true,
    }
}

/// Time for the memory-bound centroid-update phase (atomicAdd accumulation
/// plus averaging), optionally with DMR duplication of the arithmetic.
/// DMR duplicates only compute, which hides behind the memory latency; the
/// paper measures less than 1% overhead (§I, §IV).
pub fn estimate_update(
    device: &DeviceProfile,
    precision: Precision,
    shape: GemmShape,
    dmr: bool,
) -> KernelTiming {
    let cal = Calibration::for_device(device, precision);
    let es = precision.bytes();
    let bytes = (shape.m * shape.k * es) as f64 // read samples
        + (shape.m * 4) as f64 // read assignments
        + (shape.n * shape.k * es) as f64; // write centroids
    let t_memory = bytes / (device.mem_bw_gbs * 1e9 * cal.mem_efficiency);
    // Atomic adds: one per sample-feature, but they coalesce per cluster;
    // charge a throughput term.
    let atomics = (shape.m * shape.k) as f64;
    let t_atomic = atomics * 0.25e-9 / device.sm_count as f64;
    let flops = (shape.m * shape.k) as f64 * if dmr { 2.0 } else { 1.0 };
    // DMR additionally re-executes the comparison per element.
    let t_compute = flops / (device.cuda_gflops(precision) * 1e9 * 0.2);
    let t_main = t_memory.max(t_compute) + t_atomic;
    let time_s = t_main + device.launch_overhead_us * 1e-6;
    KernelTiming {
        time_s,
        gflops: flops / time_s / 1e9,
        t_issue: t_compute,
        t_tensor: 0.0,
        t_memory,
        t_epilogue: t_atomic,
        t_overhead: device.launch_overhead_us * 1e-6,
        t_recovery: 0.0,
        occupancy: 0.0,
        blocks: ceil_div(shape.m, 256),
        feasible: true,
    }
}

/// Time for the §III-A1 *basic* update: one kernel per centroid, each
/// streaming all M samples' labels (and the matching samples' features).
/// This is the baseline behind the paper's "25x compared to the basic
/// implementation" claim once combined with the naive assignment.
pub fn estimate_update_naive(
    device: &DeviceProfile,
    precision: Precision,
    shape: GemmShape,
) -> KernelTiming {
    let cal = Calibration::for_device(device, precision);
    let es = precision.bytes();
    // Every one of the K launches scans all labels, and — because feature
    // rows share cache lines with neighbouring samples — the predicated
    // feature loads still pull most of the sample matrix through DRAM on
    // every launch.
    let bytes = (shape.n * shape.m) as f64 * (4.0 + (shape.k * es) as f64 * 0.75);
    let t_memory = bytes / (device.mem_bw_gbs * 1e9 * cal.mem_efficiency);
    let t_overhead = shape.n as f64 * device.launch_overhead_us * 1e-6;
    let time_s = t_memory + t_overhead;
    KernelTiming {
        time_s,
        gflops: (shape.m * shape.k) as f64 / time_s / 1e9,
        t_issue: 0.0,
        t_tensor: 0.0,
        t_memory,
        t_epilogue: 0.0,
        t_overhead,
        t_recovery: 0.0,
        occupancy: 0.0,
        blocks: ceil_div(shape.m, 256) * shape.n,
        feasible: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// cuML's fixed FP32 tiling (Table I).
    fn cuml_fp32() -> TileConfig {
        TileConfig {
            tb_m: 32,
            tb_n: 256,
            tb_k: 16,
            wm: 32,
            wn: 64,
            k_stages: 3,
        }
    }

    /// A strong tuned FP32 tiling (paper parameter 83).
    fn tuned_fp32() -> TileConfig {
        TileConfig {
            tb_m: 64,
            tb_n: 128,
            tb_k: 16,
            wm: 64,
            wn: 32,
            k_stages: 3,
        }
    }

    /// cuML's fixed FP64 tiling (Table I, same as paper parameter 19).
    fn cuml_fp64() -> TileConfig {
        TileConfig {
            tb_m: 64,
            tb_n: 64,
            tb_k: 16,
            wm: 32,
            wn: 32,
            k_stages: 3,
        }
    }

    fn fig7_shape() -> GemmShape {
        GemmShape::new(131072, 128, 128)
    }

    fn assert_within(actual: f64, target: f64, rel: f64, what: &str) {
        let lo = target * (1.0 - rel);
        let hi = target * (1.0 + rel);
        assert!(
            actual >= lo && actual <= hi,
            "{what}: {actual:.1} not within {rel:.0e} of {target:.1}",
            rel = rel * 100.0
        );
    }

    // ---- Fig. 7 anchors (A100, FP32, M=131072, N=128) ----------------------

    #[test]
    fn fig7_naive_anchor() {
        let dev = DeviceProfile::a100();
        let t = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::Naive,
            fig7_shape(),
        ));
        assert_within(t.gflops, 482.0, 0.30, "naive GFLOPS");
    }

    #[test]
    fn fig7_simt_ladder() {
        let dev = DeviceProfile::a100();
        let s = fig7_shape();
        let v1 = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::GemmV1,
            s,
        ));
        let v2 = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::FusedV2,
            s,
        ));
        let v3 = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::BroadcastV3,
            s,
        ));
        assert_within(v1.gflops, 4662.0, 0.25, "V1");
        assert_within(v2.gflops, 5902.0, 0.25, "V2");
        assert_within(v3.gflops, 6916.0, 0.25, "V3");
        assert!(v1.gflops < v2.gflops && v2.gflops < v3.gflops);
    }

    #[test]
    fn fig7_tensor_and_cuml_anchors() {
        let dev = DeviceProfile::a100();
        let s = fig7_shape();
        let tuned = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::Tensor(tuned_fp32()),
            s,
        ));
        let cuml = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::Tensor(cuml_fp32()),
            s,
        ));
        assert_within(tuned.gflops, 17686.0, 0.30, "tuned tensor");
        assert_within(cuml.gflops, 9676.0, 0.30, "cuML");
        let ratio = tuned.gflops / cuml.gflops;
        assert!(ratio > 1.4 && ratio < 2.6, "tuned/cuML ratio {ratio:.2}");
    }

    // ---- tile quantization: the headline mechanism -------------------------

    #[test]
    fn cuml_collapses_at_small_cluster_count() {
        let dev = DeviceProfile::a100();
        // 8 clusters: cuML's Threadblock.N = 256 wastes 31/32 of the work.
        let s = GemmShape::new(131072, 8, 128);
        let cuml = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::Tensor(cuml_fp32()),
            s,
        ));
        let narrow = TileConfig {
            tb_m: 256,
            tb_n: 32,
            tb_k: 16,
            wm: 64,
            wn: 32,
            k_stages: 3,
        };
        let tuned = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::Tensor(narrow),
            s,
        ));
        assert!(
            tuned.gflops / cuml.gflops > 2.0,
            "narrow tile should beat cuML by >2x at N=8 (got {:.2})",
            tuned.gflops / cuml.gflops
        );
    }

    // ---- ABFT overhead shapes ----------------------------------------------

    #[test]
    fn abft_overhead_hidden_for_fp32() {
        let dev = DeviceProfile::a100();
        let s = fig7_shape();
        let base = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::Tensor(tuned_fp32()),
            s,
        ));
        let ft = estimate(&TimingInput {
            ft: FtMode::FtKMeans,
            ..TimingInput::plain(&dev, Precision::Fp32, KernelClass::Tensor(tuned_fp32()), s)
        });
        let overhead = ft.time_s / base.time_s - 1.0;
        assert!(
            overhead < 0.05,
            "FP32 ABFT overhead should be <5%, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn abft_overhead_exposed_for_fp64_compute_bound() {
        let dev = DeviceProfile::a100();
        let s = fig7_shape();
        let base = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp64,
            KernelClass::Tensor(cuml_fp64()),
            s,
        ));
        let ft = estimate(&TimingInput {
            ft: FtMode::FtKMeans,
            ..TimingInput::plain(&dev, Precision::Fp64, KernelClass::Tensor(cuml_fp64()), s)
        });
        let overhead = ft.time_s / base.time_s - 1.0;
        // Paper: ~20% at K=128 (compute bound), 13% average.
        assert!(
            overhead > 0.08 && overhead < 0.30,
            "FP64 ABFT overhead should be 8-30%, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn wu_scheme_pays_on_ampere() {
        let dev = DeviceProfile::a100();
        let s = fig7_shape();
        let mk = |ft| {
            estimate(&TimingInput {
                ft,
                ..TimingInput::plain(&dev, Precision::Fp32, KernelClass::Tensor(tuned_fp32()), s)
            })
        };
        let ftk = mk(FtMode::FtKMeans);
        let wu = mk(FtMode::Wu);
        let rel = wu.time_s / ftk.time_s - 1.0;
        assert!(
            rel > 0.15,
            "Wu should be >15% slower than FT K-means on A100, got {:.1}%",
            rel * 100.0
        );
    }

    #[test]
    fn wu_scheme_pays_sync_on_t4() {
        let dev = DeviceProfile::t4();
        let s = fig7_shape();
        let tile = TileConfig {
            tb_m: 64,
            tb_n: 128,
            tb_k: 16,
            wm: 64,
            wn: 32,
            k_stages: 2,
        };
        let mk = |ft| {
            estimate(&TimingInput {
                ft,
                inj_rate_hz: 10.0,
                ..TimingInput::plain(&dev, Precision::Fp32, KernelClass::Tensor(tile), s)
            })
        };
        let ftk = mk(FtMode::FtKMeans);
        let wu = mk(FtMode::Wu);
        let rel = wu.time_s / ftk.time_s - 1.0;
        assert!(
            rel > 0.3,
            "Wu should be much slower than FT K-means on T4, got {:.1}%",
            rel * 100.0
        );
    }

    #[test]
    fn injection_adds_little_for_ftkmeans() {
        let dev = DeviceProfile::a100();
        let s = fig7_shape();
        let base = estimate(&TimingInput {
            ft: FtMode::FtKMeans,
            ..TimingInput::plain(&dev, Precision::Fp32, KernelClass::Tensor(tuned_fp32()), s)
        });
        let inj = estimate(&TimingInput {
            ft: FtMode::FtKMeans,
            inj_rate_hz: 50.0,
            ..TimingInput::plain(&dev, Precision::Fp32, KernelClass::Tensor(tuned_fp32()), s)
        });
        let rel = inj.time_s / base.time_s - 1.0;
        assert!(
            rel < 0.10,
            "injection overhead should be <10%, got {:.1}%",
            rel * 100.0
        );
    }

    // ---- structural properties ---------------------------------------------

    #[test]
    fn infeasible_configs_are_flagged() {
        let dev = DeviceProfile::a100();
        // absurd shared-memory demand
        let huge = TileConfig {
            tb_m: 512,
            tb_n: 512,
            tb_k: 32,
            wm: 64,
            wn: 64,
            k_stages: 4,
        };
        let t = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp64,
            KernelClass::Tensor(huge),
            fig7_shape(),
        ));
        assert!(!t.feasible);
        assert!(t.time_s.is_infinite());
        // warp tile not dividing threadblock tile
        let bad = TileConfig {
            tb_m: 48,
            tb_n: 64,
            tb_k: 16,
            wm: 32,
            wn: 32,
            k_stages: 3,
        };
        assert!(
            !estimate(&TimingInput::plain(
                &dev,
                Precision::Fp32,
                KernelClass::Tensor(bad),
                fig7_shape()
            ))
            .feasible
        );
    }

    #[test]
    fn more_bandwidth_never_slower() {
        let mut dev = DeviceProfile::a100();
        let s = GemmShape::new(131072, 8, 8); // memory-bound corner
        let t1 = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp64,
            KernelClass::Tensor(cuml_fp64()),
            s,
        ));
        dev.mem_bw_gbs *= 2.0;
        let t2 = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp64,
            KernelClass::Tensor(cuml_fp64()),
            s,
        ));
        assert!(t2.time_s <= t1.time_s + 1e-12);
    }

    #[test]
    fn update_phase_dmr_is_cheap() {
        let dev = DeviceProfile::a100();
        let s = fig7_shape();
        let plain = estimate_update(&dev, Precision::Fp32, s, false);
        let dmr = estimate_update(&dev, Precision::Fp32, s, true);
        let rel = dmr.time_s / plain.time_s - 1.0;
        assert!(
            rel < 0.01,
            "DMR overhead must stay <1%, got {:.2}%",
            rel * 100.0
        );
    }

    #[test]
    fn useful_flops_formula() {
        assert_eq!(GemmShape::new(10, 20, 30).useful_flops(), 12000.0);
    }

    #[test]
    fn display_and_binding_leg() {
        let dev = DeviceProfile::a100();
        let t = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::Tensor(tuned_fp32()),
            fig7_shape(),
        ));
        let s = t.to_string();
        assert!(s.contains("TFLOP/s"));
        assert!(s.contains("issue"));
        assert!(["issue", "tensor", "memory", "epilogue", "overhead"].contains(&t.binding_leg()));
        // FP64 at a big compute-bound shape must be tensor-bound.
        let t64 = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp64,
            KernelClass::Tensor(cuml_fp64()),
            fig7_shape(),
        ));
        assert_eq!(t64.binding_leg(), "tensor");
        // infeasible prints as such
        let huge = TileConfig {
            tb_m: 512,
            tb_n: 512,
            tb_k: 32,
            wm: 64,
            wn: 64,
            k_stages: 4,
        };
        let bad = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp64,
            KernelClass::Tensor(huge),
            fig7_shape(),
        ));
        assert_eq!(bad.to_string(), "infeasible configuration");
    }

    #[test]
    fn basic_iteration_is_roughly_25x_slower_than_v1() {
        // §III-A2: "Our optimization boosts the performance to 25x compared
        // to the basic implementation" — naive assign + per-centroid update
        // vs GEMM assign + fused update, whole-iteration time.
        let dev = DeviceProfile::a100();
        let s = fig7_shape();
        let basic = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::Naive,
            s,
        ))
        .time_s
            + estimate_update_naive(&dev, Precision::Fp32, s).time_s;
        let v1 = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::GemmV1,
            s,
        ))
        .time_s
            + estimate_update(&dev, Precision::Fp32, s, false).time_s;
        let ratio = basic / v1;
        assert!(
            (8.0..60.0).contains(&ratio),
            "basic/V1 iteration ratio {ratio:.1} should be ~25x"
        );
    }

    #[test]
    fn t4_is_slower_than_a100() {
        let a100 = DeviceProfile::a100();
        let t4 = DeviceProfile::t4();
        let s = fig7_shape();
        let tile = TileConfig {
            tb_m: 64,
            tb_n: 128,
            tb_k: 16,
            wm: 64,
            wn: 32,
            k_stages: 2,
        };
        let ta = estimate(&TimingInput::plain(
            &a100,
            Precision::Fp32,
            KernelClass::Tensor(tile),
            s,
        ));
        let tt = estimate(&TimingInput::plain(
            &t4,
            Precision::Fp32,
            KernelClass::Tensor(tile),
            s,
        ));
        assert!(ta.gflops > 1.5 * tt.gflops);
    }
}
