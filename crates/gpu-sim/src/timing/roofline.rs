//! Counter-delta roofline: modeled time for an *arbitrary* launch.
//!
//! The full model ([`crate::timing::model::estimate`]) prices a kernel from
//! its structural description (tile shape, GEMM dims, FT mode) — which the
//! execution engine does not have when it finishes a launch. What it does
//! have is the launch's [`CounterSnapshot`] delta: bytes moved, FMA/MMA
//! issue counts, atomics. [`counter_roofline`] turns that delta into a
//! modeled duration by taking the binding leg of a simple roofline over the
//! device's calibrated ceilings. This is what per-launch trace spans carry.
//!
//! Approximations, by design:
//!
//! * FP32 ceilings are used throughout — the counter delta does not record
//!   precision, and every production kernel in this workspace runs fp32.
//! * Atomics and launch overhead are charged as additive serialized terms.
//! * Occupancy/tile-efficiency effects are ignored; for the kernels here
//!   (memory- or issue-bound at large M) the binding-leg estimate tracks
//!   the full model's ordering, which is all the phase profiler needs.

use crate::counters::CounterSnapshot;
use crate::device::{DeviceProfile, Precision};
use crate::timing::Calibration;

/// FLOPs per warp-level `mma` instruction (16×8×8 shape, 2 flops per MAC).
const FLOPS_PER_MMA: f64 = 2.0 * 16.0 * 8.0 * 8.0;

/// Modeled duration in seconds of a launch that produced `delta`.
///
/// Roofline over the calibrated fp32 ceilings: the binding leg of
/// {memory traffic, CUDA-core FMA issue, tensor-pipe MMA issue}, plus
/// serialized atomic-merge and launch-overhead terms.
pub fn counter_roofline(device: &DeviceProfile, delta: &CounterSnapshot) -> f64 {
    let cal = Calibration::for_device(device, Precision::Fp32);
    let t_mem = delta.total_bytes() as f64 / (device.mem_bw_gbs * 1e9 * cal.mem_efficiency);
    let cuda_flops = (delta.fma_ops + delta.ft_cuda_ops) as f64 * 2.0;
    let t_cuda = cuda_flops / (device.cuda_fp32_gflops * 1e9);
    let tensor_flops = (delta.mma_ops + delta.ft_mma_ops) as f64 * FLOPS_PER_MMA;
    let t_tensor = tensor_flops / (device.tensor_fp32_gflops * 1e9);
    let t_atomic = delta.atomic_ops as f64 * cal.atomic_merge_ns * 1e-9;
    let t_launch = delta.kernel_launches as f64 * device.launch_overhead_us * 1e-6;
    t_mem.max(t_cuda).max(t_tensor) + t_atomic + t_launch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_delta_prices_by_bandwidth() {
        let dev = DeviceProfile::a100();
        let delta = CounterSnapshot {
            bytes_loaded: 1_000_000_000,
            kernel_launches: 1,
            ..Default::default()
        };
        let t = counter_roofline(&dev, &delta);
        let cal = Calibration::for_device(&dev, Precision::Fp32);
        let t_mem = 1e9 / (dev.mem_bw_gbs * 1e9 * cal.mem_efficiency);
        assert!((t - (t_mem + dev.launch_overhead_us * 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn compute_bound_delta_prices_by_the_binding_leg() {
        let dev = DeviceProfile::a100();
        let fma_heavy = CounterSnapshot {
            bytes_loaded: 1024,
            fma_ops: 1_000_000_000,
            ..Default::default()
        };
        let mma_heavy = CounterSnapshot {
            bytes_loaded: 1024,
            mma_ops: 1_000_000_000,
            ..Default::default()
        };
        let t_fma = counter_roofline(&dev, &fma_heavy);
        let t_mma = counter_roofline(&dev, &mma_heavy);
        // Same op count: tensor-core MMAs carry 1024x the flops but the
        // tensor pipe is nowhere near 1024x faster than the CUDA cores.
        assert!(t_mma > t_fma);
        assert!(t_fma > 0.0);
    }

    #[test]
    fn empty_delta_costs_nothing() {
        let dev = DeviceProfile::t4();
        assert_eq!(counter_roofline(&dev, &CounterSnapshot::default()), 0.0);
    }

    #[test]
    fn more_work_never_gets_cheaper() {
        let dev = DeviceProfile::a100();
        let small = CounterSnapshot {
            bytes_loaded: 1 << 20,
            fma_ops: 1 << 20,
            atomic_ops: 100,
            kernel_launches: 1,
            ..Default::default()
        };
        let mut big = small;
        big.bytes_loaded *= 4;
        big.fma_ops *= 4;
        assert!(counter_roofline(&dev, &big) > counter_roofline(&dev, &small));
    }
}
