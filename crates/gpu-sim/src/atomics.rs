//! Cross-threadblock coordination primitives.
//!
//! The paper's V3/V4 kernels fuse the nearest-centroid reduction into the
//! GEMM kernel by having each threadblock merge its partial row minima into
//! a global result protected by per-row locks ("broadcast vector and atomic
//! operation", §III-A4). [`ArgminStore`] models that structure: one slot per
//! sample row holding the best (distance, centroid) pair seen so far.

use crate::counters::EventSink;
use crate::scalar::Scalar;
use parking_lot::Mutex;

/// Per-row (distance, index) argmin accumulator shared by all threadblocks.
#[derive(Debug)]
pub struct ArgminStore<T> {
    slots: Vec<Mutex<(T, u32)>>,
}

impl<T: Scalar> ArgminStore<T> {
    /// One slot per row, initialized to (+inf, u32::MAX).
    pub fn new(rows: usize) -> Self {
        let mut slots = Vec::with_capacity(rows);
        slots.resize_with(rows, || Mutex::new((T::INFINITY, u32::MAX)));
        ArgminStore { slots }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Merge a candidate (distance, index) for `row`. Equal distances keep
    /// the smaller index so results are deterministic regardless of block
    /// execution order.
    pub fn merge<C: EventSink + ?Sized>(&self, row: usize, dist: T, idx: u32, counters: &C) {
        counters.add_atomic(1);
        let mut slot = self.slots[row].lock();
        if dist < slot.0 || (dist == slot.0 && idx < slot.1) {
            *slot = (dist, idx);
        }
    }

    /// Read one row's current winner.
    pub fn get(&self, row: usize) -> (T, u32) {
        *self.slots[row].lock()
    }

    /// Download all (distance, index) pairs.
    pub fn snapshot(&self) -> (Vec<T>, Vec<u32>) {
        let mut d = Vec::with_capacity(self.slots.len());
        let mut i = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            let (dist, idx) = *s.lock();
            d.push(dist);
            i.push(idx);
        }
        (d, i)
    }

    /// Reset every slot (between K-means iterations).
    pub fn reset(&self) {
        for s in &self.slots {
            *s.lock() = (T::INFINITY, u32::MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;

    #[test]
    fn merge_keeps_minimum() {
        let c = Counters::new();
        let store = ArgminStore::<f32>::new(2);
        store.merge(0, 5.0, 3, &c);
        store.merge(0, 2.0, 7, &c);
        store.merge(0, 9.0, 1, &c);
        assert_eq!(store.get(0), (2.0, 7));
        assert_eq!(store.get(1), (f32::INFINITY, u32::MAX));
    }

    #[test]
    fn ties_break_to_smaller_index() {
        let c = Counters::new();
        let store = ArgminStore::<f64>::new(1);
        store.merge(0, 1.5, 9, &c);
        store.merge(0, 1.5, 2, &c);
        store.merge(0, 1.5, 5, &c);
        assert_eq!(store.get(0), (1.5, 2));
    }

    #[test]
    fn concurrent_merges_find_global_min() {
        let c = Counters::new();
        let store = ArgminStore::<f32>::new(4);
        crossbeam::thread::scope(|s| {
            for t in 0..8u32 {
                let store = &store;
                let c = &c;
                s.spawn(move |_| {
                    for row in 0..4 {
                        // thread t proposes distance (t xor row) so each row has
                        // a unique minimum across threads
                        store.merge(row, ((t ^ row as u32) + 1) as f32, t, c);
                    }
                });
            }
        })
        .unwrap();
        for row in 0..4 {
            let (d, idx) = store.get(row);
            assert_eq!(d, 1.0, "row {row}");
            assert_eq!(idx, row as u32); // t == row gives (t^row)+1 == 1
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let c = Counters::new();
        let store = ArgminStore::<f32>::new(2);
        store.merge(1, 0.5, 4, &c);
        store.reset();
        assert_eq!(store.get(1), (f32::INFINITY, u32::MAX));
    }
}
