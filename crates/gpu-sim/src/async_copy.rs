//! The Ampere asynchronous global→shared copy pipeline (`cp.async`).
//!
//! The paper's key architectural observation (§I, Fig. 1) is that from SM80
//! on, global→shared transfers can *bypass the register file*. Pre-Ampere
//! kernels staged every element through registers, which let ABFT schemes
//! (Wu's ICS'23 scheme) compute input checksums "for free" during the copy.
//! With `cp.async` that register-reuse trick is impossible, so checksums
//! must either re-read global memory (expensive) or be computed from the
//! register *fragments* that the MMA main loop loads anyway — which is
//! exactly what FT K-means does (Fig. 6 lines 15–18).
//!
//! [`AsyncPipeline`] models a `k_stage`-deep ring of (A, B) shared tiles with
//! `commit_group`/`wait_group` semantics, and enforces the staging
//! discipline: reading a stage that has not been waited on is a bug (a data
//! race on real hardware) and panics in the simulator.

use crate::counters::EventSink;
use crate::error::SimError;
use crate::scalar::Scalar;
use crate::shared::SharedTile;
use std::collections::VecDeque;

/// Which global→shared data path the device uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyPath {
    /// Pre-Ampere: elements pass through the register file; an observer can
    /// piggyback checksum accumulation on the copy (register reuse).
    RegisterStaged,
    /// Ampere+ `cp.async`: the register file is bypassed; no per-element
    /// observation is possible during the copy.
    AsyncBypass,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageState {
    /// Written and committed but not yet waited on.
    InFlight,
    /// Safe to read.
    Ready,
}

/// A multi-stage software pipeline of A and B operand tiles.
#[derive(Debug)]
pub struct AsyncPipeline<T> {
    a: Vec<SharedTile<T>>,
    b: Vec<SharedTile<T>>,
    state: Vec<StageState>,
    /// FIFO of committed groups; each entry lists the stages in that group.
    pending: VecDeque<Vec<usize>>,
    /// Stages copied since the last `commit_group`.
    current_group: Vec<usize>,
    path: CopyPath,
}

impl<T: Scalar> AsyncPipeline<T> {
    /// Create a pipeline of `k_stages` stages with A tiles of
    /// `tb_m x tb_k` and B tiles of `tb_n x tb_k`.
    pub fn new(k_stages: usize, tb_m: usize, tb_n: usize, tb_k: usize, path: CopyPath) -> Self {
        assert!(k_stages >= 2, "a pipeline needs at least 2 stages");
        AsyncPipeline {
            a: (0..k_stages).map(|_| SharedTile::new(tb_m, tb_k)).collect(),
            b: (0..k_stages).map(|_| SharedTile::new(tb_n, tb_k)).collect(),
            state: vec![StageState::Ready; k_stages],
            pending: VecDeque::new(),
            current_group: Vec::new(),
            path,
        }
    }

    /// Number of stages.
    pub fn k_stages(&self) -> usize {
        self.a.len()
    }

    /// The copy path of the underlying device.
    pub fn path(&self) -> CopyPath {
        self.path
    }

    /// Total shared-memory bytes held by the pipeline.
    pub fn smem_bytes(&self) -> usize {
        self.a.iter().map(SharedTile::bytes).sum::<usize>()
            + self.b.iter().map(SharedTile::bytes).sum::<usize>()
    }

    /// Issue an asynchronous copy filling stage `stage`'s A and B tiles.
    ///
    /// `fill_a(tile)` / `fill_b(tile)` write the tile contents (the kernel
    /// decides addressing and zero-padding). The copy is counted as one
    /// `cp.async` burst per tile; global traffic is charged by the fill
    /// closures through the counter sink.
    pub fn cp_async<C: EventSink + ?Sized>(
        &mut self,
        stage: usize,
        counters: &C,
        fill_a: impl FnOnce(&mut SharedTile<T>),
        fill_b: impl FnOnce(&mut SharedTile<T>),
    ) {
        assert!(stage < self.k_stages(), "stage {stage} out of range");
        fill_a(&mut self.a[stage]);
        fill_b(&mut self.b[stage]);
        counters.add_cp_async(2);
        self.state[stage] = StageState::InFlight;
        self.current_group.push(stage);
    }

    /// Like [`AsyncPipeline::cp_async`] but additionally invokes `observe`
    /// for every element copied — only possible on the register-staged path.
    ///
    /// Returns [`SimError::InvalidConfig`] on `AsyncBypass` devices: this is
    /// the precise failure mode that breaks Wu's register-reuse ABFT on
    /// Ampere (paper §I).
    pub fn cp_staged_observed<C: EventSink + ?Sized>(
        &mut self,
        stage: usize,
        counters: &C,
        fill_a: impl FnOnce(&mut SharedTile<T>),
        fill_b: impl FnOnce(&mut SharedTile<T>),
        observe: impl FnMut(Operand, usize, usize, T),
    ) -> Result<(), SimError> {
        if self.path == CopyPath::AsyncBypass {
            return Err(SimError::InvalidConfig(
                "register-staged copy observation is unavailable when cp.async bypasses the \
                 register file (Ampere)"
                    .to_string(),
            ));
        }
        let mut observe = observe;
        self.cp_async(stage, counters, fill_a, fill_b);
        // On the register-staged path every element is visible in flight.
        for (r, c, v) in iter_tile(&self.a[stage]) {
            observe(Operand::A, r, c, v);
        }
        for (r, c, v) in iter_tile(&self.b[stage]) {
            observe(Operand::B, r, c, v);
        }
        Ok(())
    }

    /// Commit all copies issued since the previous commit as one group
    /// (`cp.async.commit_group`).
    pub fn commit_group(&mut self) {
        let group = std::mem::take(&mut self.current_group);
        self.pending.push_back(group);
    }

    /// Wait until at most `max_pending` committed groups remain in flight
    /// (`cp.async.wait_group N`), marking completed stages ready.
    pub fn wait_group(&mut self, max_pending: usize) {
        while self.pending.len() > max_pending {
            let group = self.pending.pop_front().expect("len checked");
            for stage in group {
                self.state[stage] = StageState::Ready;
            }
        }
    }

    /// Read access to stage `stage`'s A tile. Panics if the stage is still
    /// in flight — the simulator's equivalent of a shared-memory data race.
    pub fn a(&self, stage: usize) -> &SharedTile<T> {
        assert_eq!(
            self.state[stage],
            StageState::Ready,
            "read of in-flight pipeline stage {stage}: missing cp.async.wait_group"
        );
        &self.a[stage]
    }

    /// Read access to stage `stage`'s B tile (same discipline as `a`).
    pub fn b(&self, stage: usize) -> &SharedTile<T> {
        assert_eq!(
            self.state[stage],
            StageState::Ready,
            "read of in-flight pipeline stage {stage}: missing cp.async.wait_group"
        );
        &self.b[stage]
    }

    /// Number of committed groups not yet waited on.
    pub fn pending_groups(&self) -> usize {
        self.pending.len()
    }
}

/// Which GEMM operand a copied element belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Samples tile (X).
    A,
    /// Centroids tile (Y).
    B,
}

fn iter_tile<T: Scalar>(tile: &SharedTile<T>) -> impl Iterator<Item = (usize, usize, T)> + '_ {
    let cols = tile.cols();
    tile.as_slice()
        .iter()
        .enumerate()
        .map(move |(i, &v)| (i / cols, i % cols, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;

    fn fill_seq(tile: &mut SharedTile<f32>) {
        for r in 0..tile.rows() {
            for c in 0..tile.cols() {
                tile.set(r, c, (r * tile.cols() + c) as f32);
            }
        }
    }

    #[test]
    fn commit_wait_discipline() {
        let c = Counters::new();
        let mut p = AsyncPipeline::<f32>::new(3, 4, 4, 2, CopyPath::AsyncBypass);
        p.cp_async(0, &c, fill_seq, fill_seq);
        p.commit_group();
        p.cp_async(1, &c, fill_seq, fill_seq);
        p.commit_group();
        assert_eq!(p.pending_groups(), 2);
        // wait until at most 1 group pending -> stage 0 ready, stage 1 not
        p.wait_group(1);
        assert_eq!(p.pending_groups(), 1);
        assert_eq!(p.a(0).get(0, 1), 1.0);
        // stage 1 readable only after full drain
        p.wait_group(0);
        assert_eq!(p.b(1).get(1, 0), 2.0);
        assert_eq!(c.snapshot().cp_async_ops, 4);
    }

    #[test]
    #[should_panic(expected = "in-flight")]
    fn reading_inflight_stage_panics() {
        let c = Counters::new();
        let mut p = AsyncPipeline::<f32>::new(2, 2, 2, 2, CopyPath::AsyncBypass);
        p.cp_async(0, &c, |_| {}, |_| {});
        p.commit_group();
        let _ = p.a(0); // no wait_group -> race
    }

    #[test]
    fn observed_copy_works_on_turing() {
        let c = Counters::new();
        let mut p = AsyncPipeline::<f32>::new(2, 2, 3, 2, CopyPath::RegisterStaged);
        let mut sum_a = 0.0f32;
        let mut count_b = 0usize;
        p.cp_staged_observed(0, &c, fill_seq, fill_seq, |op, _r, _c, v| match op {
            Operand::A => sum_a += v,
            Operand::B => count_b += 1,
        })
        .unwrap();
        assert_eq!(sum_a, (0..4).sum::<i32>() as f32);
        assert_eq!(count_b, 6);
    }

    #[test]
    fn observed_copy_fails_on_ampere() {
        let c = Counters::new();
        let mut p = AsyncPipeline::<f64>::new(2, 2, 2, 2, CopyPath::AsyncBypass);
        let err = p
            .cp_staged_observed(0, &c, |_| {}, |_| {}, |_, _, _, _| {})
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn smem_accounting() {
        let p = AsyncPipeline::<f64>::new(3, 64, 64, 16, CopyPath::AsyncBypass);
        assert_eq!(p.smem_bytes(), 3 * (64 + 64) * 16 * 8);
    }

    #[test]
    #[should_panic(expected = "at least 2 stages")]
    fn single_stage_rejected() {
        let _ = AsyncPipeline::<f32>::new(1, 2, 2, 2, CopyPath::AsyncBypass);
    }
}
