//! Kernel launch: validate resources, then execute one closure per
//! threadblock on the execution engine ([`crate::exec`]).
//!
//! Threadblocks on a GPU execute independently (no inter-block ordering);
//! the simulator reproduces that by distributing blocks over a persistent
//! worker pool with chunked work stealing (see [`crate::exec::Executor`]).
//! Kernels that need cross-block coordination must use the atomic
//! primitives ([`crate::memory::GlobalBuffer::atomic_add`],
//! [`crate::atomics::ArgminStore`]) — plain stores to overlapping locations
//! are a bug, as on hardware.

use crate::counters::{CounterSink, Counters};
use crate::device::DeviceProfile;
use crate::dim::Dim3;
use crate::error::SimError;
use crate::exec;

/// Launch geometry and declared resource usage of a kernel.
#[derive(Debug, Clone, Copy)]
pub struct LaunchConfig {
    /// Grid of threadblocks.
    pub grid: Dim3,
    /// Threads per threadblock (informational: the functional simulator
    /// executes warps as units, but the count is validated and used by the
    /// timing model).
    pub threads_per_block: usize,
    /// Declared dynamic shared memory per block, bytes.
    pub smem_bytes: usize,
}

/// Per-block execution context handed to kernel closures.
pub struct BlockCtx<'a> {
    /// Block x coordinate (output-column / N direction by our convention).
    pub bx: usize,
    /// Block y coordinate (output-row / M direction).
    pub by: usize,
    /// Block z coordinate.
    pub bz: usize,
    /// Worker-local event-counter shard; merged into the launch's shared
    /// [`Counters`] once per block by the execution engine.
    pub counters: &'a CounterSink<'a>,
    /// Profile of the device the kernel runs on.
    pub device: &'a DeviceProfile,
}

impl BlockCtx<'_> {
    /// `__syncthreads()` — a no-op functionally (warps in a block execute
    /// sequentially in the simulator) but counted for the timing model.
    pub fn barrier(&self) {
        self.counters.add_barrier();
    }
}

pub(crate) fn validate(device: &DeviceProfile, cfg: &LaunchConfig) -> Result<(), SimError> {
    if cfg.threads_per_block > device.max_threads_per_block {
        return Err(SimError::ThreadLimitExceeded {
            requested: cfg.threads_per_block,
            limit: device.max_threads_per_block,
        });
    }
    if cfg.smem_bytes > device.smem_per_block {
        return Err(SimError::SharedMemoryOverflow {
            requested: cfg.smem_bytes,
            limit: device.smem_per_block,
        });
    }
    if cfg.threads_per_block == 0 || !cfg.threads_per_block.is_multiple_of(32) {
        return Err(SimError::InvalidConfig(format!(
            "threads per block must be a positive multiple of the warp size, got {}",
            cfg.threads_per_block
        )));
    }
    Ok(())
}

/// Launch `kernel` over the grid on the current executor (the thread-local
/// override installed by [`exec::with_executor`], else the global pool —
/// which honors the `FTK_EXEC=serial` / `FTK_WORKERS=N` environment knobs).
///
/// The closure is invoked once per block with a fresh [`BlockCtx`]; any
/// per-block state (pipelines, fragments) should be created inside it.
/// Trace spans (when a sink is active) carry the generic label `"kernel"`;
/// production kernels use [`launch_grid_labeled`] so the timeline and the
/// phase profiler can name them.
pub fn launch_grid<F>(
    device: &DeviceProfile,
    cfg: LaunchConfig,
    counters: &Counters,
    kernel: F,
) -> Result<(), SimError>
where
    F: Fn(&BlockCtx) + Sync,
{
    exec::with_current(|e| e.launch(device, cfg, counters, &kernel))
}

/// [`launch_grid`] with a kernel label for trace spans (counter delta +
/// modeled roofline duration; see [`exec::Executor::launch_labeled`]).
pub fn launch_grid_labeled<F>(
    device: &DeviceProfile,
    cfg: LaunchConfig,
    counters: &Counters,
    label: &'static str,
    kernel: F,
) -> Result<(), SimError>
where
    F: Fn(&BlockCtx) + Sync,
{
    exec::with_current(|e| e.launch_labeled(device, cfg, counters, label, &kernel))
}

/// Serial variant of [`launch_grid`] with a deterministic block order —
/// useful for debugging kernels and for tests that want reproducible
/// interleavings. Always runs on the calling thread regardless of the
/// executor policy, and accepts `FnMut` kernels.
pub fn launch_grid_serial<F>(
    device: &DeviceProfile,
    cfg: LaunchConfig,
    counters: &Counters,
    kernel: F,
) -> Result<(), SimError>
where
    F: FnMut(&BlockCtx),
{
    exec::with_current(|e| e.launch_serial(device, cfg, counters, kernel))
}

/// [`launch_grid_serial`] with a kernel label for trace spans.
pub fn launch_grid_serial_labeled<F>(
    device: &DeviceProfile,
    cfg: LaunchConfig,
    counters: &Counters,
    label: &'static str,
    kernel: F,
) -> Result<(), SimError>
where
    F: FnMut(&BlockCtx),
{
    exec::with_current(|e| e.launch_serial_labeled(device, cfg, counters, label, kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::GlobalBuffer;

    #[test]
    fn all_blocks_execute_exactly_once() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let grid = Dim3::xy(7, 5);
        let hits = GlobalBuffer::<f64>::zeros(grid.volume());
        launch_grid(
            &dev,
            LaunchConfig {
                grid,
                threads_per_block: 128,
                smem_bytes: 0,
            },
            &c,
            |ctx| {
                let idx = grid.linear(ctx.bx, ctx.by, ctx.bz);
                hits.atomic_add(idx, 1.0, ctx.counters);
            },
        )
        .unwrap();
        assert!(hits.to_vec().iter().all(|&v| v == 1.0));
        assert_eq!(c.snapshot().kernel_launches, 1);
    }

    #[test]
    fn serial_launch_is_deterministic_order() {
        let dev = DeviceProfile::t4();
        let c = Counters::new();
        let mut order = Vec::new();
        launch_grid_serial(
            &dev,
            LaunchConfig {
                grid: Dim3::xy(2, 2),
                threads_per_block: 32,
                smem_bytes: 0,
            },
            &c,
            |ctx| order.push((ctx.bx, ctx.by)),
        )
        .unwrap();
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn resource_validation() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let bad_threads = LaunchConfig {
            grid: Dim3::x(1),
            threads_per_block: 2048,
            smem_bytes: 0,
        };
        assert!(matches!(
            launch_grid(&dev, bad_threads, &c, |_| {}),
            Err(SimError::ThreadLimitExceeded { .. })
        ));
        let bad_smem = LaunchConfig {
            grid: Dim3::x(1),
            threads_per_block: 128,
            smem_bytes: 1 << 20,
        };
        assert!(matches!(
            launch_grid(&dev, bad_smem, &c, |_| {}),
            Err(SimError::SharedMemoryOverflow { .. })
        ));
        let bad_warp = LaunchConfig {
            grid: Dim3::x(1),
            threads_per_block: 48,
            smem_bytes: 0,
        };
        assert!(matches!(
            launch_grid(&dev, bad_warp, &c, |_| {}),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_grid_is_ok() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let cfg = LaunchConfig {
            grid: Dim3::x(0),
            threads_per_block: 32,
            smem_bytes: 0,
        };
        launch_grid(&dev, cfg, &c, |_| panic!("no blocks should run")).unwrap();
    }
}
