//! The execution engine: a lazily-initialized, persistent worker pool with
//! chunked block scheduling.
//!
//! Every kernel launch used to spawn and join a fresh set of host threads
//! (`crossbeam::thread::scope` per launch) and steal work one block at a
//! time off a shared atomic. A K-means fit performs thousands of launches,
//! so the spawn/join cost and the one-`fetch_add`-per-block ping-pong sat
//! directly on the per-iteration hot path the paper engineers to zero.
//!
//! [`Executor`] replaces that machinery:
//!
//! * **Persistent workers.** A pool is created once (lazily, on first
//!   launch) and reused by every subsequent launch; submitting a job is an
//!   enqueue + wake, not N thread spawns.
//! * **Chunked scheduling.** A worker grabs a *batch* of consecutive block
//!   indices per steal, amortizing the shared work-index traffic over the
//!   batch.
//! * **Counter sharding.** Each worker charges a local [`CounterSink`] and
//!   merges into the launch's shared [`Counters`] once per block, so
//!   [`Counters::snapshot`] totals are bit-identical between serial and
//!   parallel execution.
//! * **Caller participation.** The submitting thread executes chunks too,
//!   so a launch always makes progress even when every pool worker is busy
//!   with another caller's job (and nested launches cannot deadlock).
//! * **Deterministic serial policy.** [`ExecPolicy::Serial`] runs blocks in
//!   linear grid order on the calling thread — selectable per executor, via
//!   the `FTK_EXEC=serial` environment override for the global pool, or
//!   scoped over a region of code with [`with_executor`].
//!
//! Environment knobs (read once, when the global executor is first used):
//!
//! * `FTK_EXEC=serial` — run every launch serially (deterministic block
//!   order, no worker threads at all).
//! * `FTK_WORKERS=N` — pool size; defaults to
//!   [`std::thread::available_parallelism`].

use crate::counters::{CounterSink, Counters};
use crate::device::DeviceProfile;
use crate::error::SimError;
use crate::launch::{validate, BlockCtx, LaunchConfig};
use crate::sanitizer;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// How an executor runs the blocks of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Run every block on the calling thread, in linear grid order. Fully
    /// deterministic — the debugging/reproducibility mode.
    Serial,
    /// Distribute blocks over a persistent pool of `workers` threads (the
    /// caller participates as an extra worker).
    Parallel {
        /// Pool size (≥ 1).
        workers: usize,
    },
}

/// A chunk-level task: `run(start, end)` executes items `start..end`.
/// Lifetime-erased so persistent workers (which are `'static`) can call into
/// a stack-borrowed closure; soundness is provided by [`Job::remaining`] —
/// the submitting call blocks until every item completed, so the closure
/// outlives every invocation.
struct Task {
    data: *const (),
    call: unsafe fn(*const (), usize, usize),
}

// SAFETY: the pointed-to closure is `Sync` (checked by the generic bound in
// `run_chunked`) and outlives the job (the submitter blocks on completion).
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

/// One submitted launch, shared between the submitter and the pool workers.
struct Job {
    /// Next unclaimed item index.
    next: AtomicUsize,
    /// Total number of items.
    total: usize,
    /// Items per steal.
    chunk: usize,
    /// Items not yet executed; the job is complete when this hits zero.
    remaining: AtomicUsize,
    task: Task,
    /// First panic payload raised by any chunk (re-raised on the submitter).
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Completion signal (guards nothing; pairs with `remaining`).
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl Job {
    /// Claim the next chunk; `None` when the job is exhausted.
    fn claim(&self) -> Option<(usize, usize)> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some((start, (start + self.chunk).min(self.total)))
    }

    /// Run one claimed chunk, capturing a panic instead of unwinding into
    /// the pool, then retire its items.
    fn run_chunk(&self, start: usize, end: usize) {
        let r = catch_unwind(AssertUnwindSafe(|| unsafe {
            (self.task.call)(self.task.data, start, end)
        }));
        if let Err(payload) = r {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if self.remaining.fetch_sub(end - start, Ordering::AcqRel) == end - start {
            // Last chunk: wake the submitter. Taking the lock orders the
            // notify after the submitter's `remaining` check.
            let _g = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.done_cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// State shared by the pool's worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ftk-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    /// Enqueue a job and wake the workers.
    fn submit(&self, job: &Arc<Job>) {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(Arc::clone(job));
        drop(q);
        self.shared.available.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // The store must happen under the queue mutex: a worker checks the
        // flag and enters `wait` while holding it, so storing outside the
        // lock could slip into that window and the notify would be lost,
        // hanging the join below.
        {
            let _q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // Drop exhausted jobs off the front, then adopt the first
                // one that still has unclaimed work.
                while let Some(front) = q.front() {
                    if front.next.load(Ordering::Relaxed) >= front.total {
                        q.pop_front();
                    } else {
                        break;
                    }
                }
                if let Some(j) = q.front() {
                    break Arc::clone(j);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        while let Some((start, end)) = job.claim() {
            job.run_chunk(start, end);
        }
    }
}

/// The execution engine. Obtain the process-wide instance with
/// [`Executor::global`], or build private ones ([`Executor::serial`],
/// [`Executor::with_workers`]) and scope them over code with
/// [`with_executor`].
pub struct Executor {
    policy: ExecPolicy,
    pool: Option<Pool>,
    sanitizer: Option<Arc<sanitizer::Checker>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("policy", &self.policy)
            .finish()
    }
}

impl Executor {
    /// Build an executor with an explicit policy. `Parallel { workers: 0 }`
    /// is clamped to one worker.
    pub fn new(policy: ExecPolicy) -> Self {
        match policy {
            ExecPolicy::Serial => Executor {
                policy,
                pool: None,
                sanitizer: None,
            },
            ExecPolicy::Parallel { workers } => {
                let workers = workers.max(1);
                Executor {
                    policy: ExecPolicy::Parallel { workers },
                    pool: Some(Pool::new(workers)),
                    sanitizer: None,
                }
            }
        }
    }

    /// Attach a sanitizer checker to this executor: every launch it runs is
    /// checked against `checker` (unless a [`sanitizer::with_checker`]
    /// scope on the launching thread overrides it). Buffer *allocations*
    /// are scoped by [`sanitizer::with_checker`] / the global checker, not
    /// by the executor — an executor only sees launches.
    pub fn with_sanitizer(mut self, checker: Arc<sanitizer::Checker>) -> Self {
        self.sanitizer = Some(checker);
        self
    }

    /// A serial executor (deterministic block order, no threads).
    pub fn serial() -> Self {
        Executor::new(ExecPolicy::Serial)
    }

    /// A parallel executor with exactly `workers` pool threads.
    pub fn with_workers(workers: usize) -> Self {
        Executor::new(ExecPolicy::Parallel { workers })
    }

    /// The process-wide executor, created on first use from the
    /// environment: `FTK_EXEC=serial` selects [`ExecPolicy::Serial`];
    /// otherwise a pool of `FTK_WORKERS` (default
    /// [`std::thread::available_parallelism`]) threads.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(policy_from_env()))
    }

    /// The policy this executor resolves launches with.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// Worker count the pool schedules onto (1 under `Serial`).
    pub fn workers(&self) -> usize {
        match self.policy {
            ExecPolicy::Serial => 1,
            ExecPolicy::Parallel { workers } => workers,
        }
    }

    /// Items per steal for a job of `total` items: large enough to amortize
    /// the shared work-index `fetch_add`, small enough to keep every worker
    /// busy through the tail (≈ 4 steals per worker).
    fn chunk_for(&self, total: usize) -> usize {
        (total / (self.workers() * 4)).clamp(1, 256)
    }

    /// Execute `task(start, end)` over disjoint chunks covering `0..total`.
    /// Parallel under `Parallel` policy (pool workers + the calling
    /// thread), in-order on the calling thread under `Serial`. A panic in
    /// any chunk is re-raised on the caller after all items retire.
    pub fn run_chunked<F>(&self, total: usize, task: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if total == 0 {
            return;
        }
        let pool = match (&self.policy, &self.pool) {
            (ExecPolicy::Parallel { .. }, Some(pool)) if total > 1 => pool,
            _ => {
                task(0, total);
                return;
            }
        };
        unsafe fn call<F: Fn(usize, usize)>(data: *const (), start: usize, end: usize) {
            // SAFETY: `data` was erased from an `&F` that the submitting
            // frame keeps alive until `remaining == 0`.
            unsafe { (*(data as *const F))(start, end) }
        }
        let job = Arc::new(Job {
            next: AtomicUsize::new(0),
            total,
            chunk: self.chunk_for(total),
            remaining: AtomicUsize::new(total),
            task: Task {
                data: &task as *const F as *const (),
                call: call::<F>,
            },
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        pool.submit(&job);
        // Participate: the submitter is an extra worker for its own job.
        while let Some((start, end)) = job.claim() {
            job.run_chunk(start, end);
        }
        // Wait for chunks still in flight on pool workers.
        let mut g = job.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        while !job.is_done() {
            g = job.done_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        drop(g);
        let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }

    /// Launch `kernel` over the grid described by `cfg`, charging `counters`
    /// through per-worker [`CounterSink`]s (merged once per block). Emits a
    /// trace span under the generic label `"kernel"` when tracing is active;
    /// use [`Executor::launch_labeled`] to name the kernel.
    pub fn launch<F>(
        &self,
        device: &DeviceProfile,
        cfg: LaunchConfig,
        counters: &Counters,
        kernel: F,
    ) -> Result<(), SimError>
    where
        F: Fn(&BlockCtx) + Sync,
    {
        self.launch_labeled(device, cfg, counters, "kernel", kernel)
    }

    /// [`Executor::launch`] with a kernel label for trace spans. When a
    /// trace sink is active on the calling thread, the launch's counter
    /// delta and its modeled duration (counter-roofline over the device's
    /// calibrated ceilings) are emitted as a [`trace::TraceEvent::Launch`];
    /// otherwise the only extra cost over [`Executor::launch`] is one flag
    /// check.
    pub fn launch_labeled<F>(
        &self,
        device: &DeviceProfile,
        cfg: LaunchConfig,
        counters: &Counters,
        label: &'static str,
        kernel: F,
    ) -> Result<(), SimError>
    where
        F: Fn(&BlockCtx) + Sync,
    {
        if !trace::active() {
            return self.launch_inner(device, cfg, counters, label, kernel);
        }
        let before = counters.snapshot();
        self.launch_inner(device, cfg, counters, label, kernel)?;
        emit_launch_span(device, &cfg, counters, label, &before);
        Ok(())
    }

    fn launch_inner<F>(
        &self,
        device: &DeviceProfile,
        cfg: LaunchConfig,
        counters: &Counters,
        label: &'static str,
        kernel: F,
    ) -> Result<(), SimError>
    where
        F: Fn(&BlockCtx) + Sync,
    {
        validate(device, &cfg)?;
        counters.add_launch();
        let total = cfg.grid.volume();
        if total == 0 {
            return Ok(());
        }
        let san = sanitizer::launch_begin(self.sanitizer.as_ref(), label);
        self.run_chunked(total, |start, end| {
            let sink = CounterSink::new(counters);
            for idx in start..end {
                let (bx, by, bz) = cfg.grid.unlinear(idx);
                let ctx = BlockCtx {
                    bx,
                    by,
                    bz,
                    counters: &sink,
                    device,
                };
                match &san {
                    Some(sh) => sanitizer::with_block(sh, idx as u32, || kernel(&ctx)),
                    None => kernel(&ctx),
                }
                sink.flush();
            }
        });
        if let Some(sh) = &san {
            sanitizer::launch_end(sh);
        }
        Ok(())
    }

    /// Serial launch with a deterministic block order and `FnMut` kernels
    /// (always runs on the calling thread, whatever the policy).
    pub fn launch_serial<F>(
        &self,
        device: &DeviceProfile,
        cfg: LaunchConfig,
        counters: &Counters,
        kernel: F,
    ) -> Result<(), SimError>
    where
        F: FnMut(&BlockCtx),
    {
        self.launch_serial_labeled(device, cfg, counters, "kernel", kernel)
    }

    /// [`Executor::launch_serial`] with a kernel label for trace spans
    /// (see [`Executor::launch_labeled`]).
    pub fn launch_serial_labeled<F>(
        &self,
        device: &DeviceProfile,
        cfg: LaunchConfig,
        counters: &Counters,
        label: &'static str,
        mut kernel: F,
    ) -> Result<(), SimError>
    where
        F: FnMut(&BlockCtx),
    {
        let traced = trace::active();
        let before = if traced {
            Some(counters.snapshot())
        } else {
            None
        };
        validate(device, &cfg)?;
        counters.add_launch();
        let san = sanitizer::launch_begin(self.sanitizer.as_ref(), label);
        let sink = CounterSink::new(counters);
        for idx in 0..cfg.grid.volume() {
            let (bx, by, bz) = cfg.grid.unlinear(idx);
            let ctx = BlockCtx {
                bx,
                by,
                bz,
                counters: &sink,
                device,
            };
            match &san {
                Some(sh) => sanitizer::with_block(sh, idx as u32, || kernel(&ctx)),
                None => kernel(&ctx),
            }
            sink.flush();
        }
        if let Some(sh) = &san {
            sanitizer::launch_end(sh);
        }
        if let Some(before) = before {
            emit_launch_span(device, &cfg, counters, label, &before);
        }
        Ok(())
    }

    /// Process `data` in place as disjoint `chunk`-sized pieces,
    /// `f(offset, piece)`, distributed over the pool. The host-side
    /// data-parallel companion to [`Executor::launch`] (used e.g. by the
    /// parallel CPU reference path).
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        // Send the raw pointer to workers without laundering it through an
        // integer, so pointer provenance survives (miri strict-provenance
        // clean). The accessor method makes closures capture the wrapper,
        // not the bare `*mut T` field (edition-2021 captures are
        // field-precise).
        struct SendPtr<T>(*mut T);
        unsafe impl<T: Send> Send for SendPtr<T> {}
        unsafe impl<T: Send> Sync for SendPtr<T> {}
        impl<T> SendPtr<T> {
            fn get(&self) -> *mut T {
                self.0
            }
        }

        let chunk = chunk.max(1);
        let len = data.len();
        let n_chunks = len.div_ceil(chunk);
        let base = SendPtr(data.as_mut_ptr());
        self.run_chunked(n_chunks, |cs, ce| {
            for ci in cs..ce {
                let start = ci * chunk;
                let end = (start + chunk).min(len);
                // SAFETY: chunk indices are claimed exactly once, so the
                // reconstructed subslices are disjoint; `run_chunked` joins
                // all workers before returning, so they never outlive the
                // `&mut [T]` borrow.
                let piece =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                f(start, piece);
            }
        });
    }
}

/// Emit a [`trace::TraceEvent::Launch`] span for a completed launch: the
/// counter delta since `before`, the grid dims, and the modeled duration
/// from the counter roofline. Called only when tracing is active.
fn emit_launch_span(
    device: &DeviceProfile,
    cfg: &LaunchConfig,
    counters: &Counters,
    label: &'static str,
    before: &crate::counters::CounterSnapshot,
) {
    let delta = counters.snapshot().since(before);
    let modeled_s = crate::timing::counter_roofline(device, &delta);
    trace::emit(trace::TraceEvent::Launch {
        label,
        grid: (cfg.grid.x, cfg.grid.y, cfg.grid.z),
        modeled_s,
        fields: delta.nonzero_fields(),
    });
}

fn policy_from_env() -> ExecPolicy {
    match std::env::var("FTK_EXEC").as_deref() {
        Ok(v) if v.eq_ignore_ascii_case("serial") => ExecPolicy::Serial,
        _ => {
            let workers = std::env::var("FTK_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
            ExecPolicy::Parallel { workers }
        }
    }
}

thread_local! {
    /// Scoped executor override installed by [`with_executor`].
    static OVERRIDE: Cell<Option<*const Executor>> = const { Cell::new(None) };
}

/// Run `f` with `exec` as the launch executor for the current thread:
/// every [`crate::launch_grid`] (and parallel reference helper) invoked
/// inside `f` on this thread resolves to `exec` instead of the global pool.
/// Restores the previous override on exit, including across panics.
pub fn with_executor<R>(exec: &Executor, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<*const Executor>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(exec as *const Executor))));
    f()
}

/// Resolve the current executor (thread-local override, else global) and
/// hand it to `f`.
pub fn with_current<R>(f: impl FnOnce(&Executor) -> R) -> R {
    match OVERRIDE.with(|c| c.get()) {
        // SAFETY: the pointer was installed by `with_executor`, whose
        // `&Executor` borrow is alive for the whole override scope, and it
        // is only ever read on the installing thread.
        Some(ptr) => f(unsafe { &*ptr }),
        None => f(Executor::global()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim3;
    use std::sync::atomic::AtomicU64;

    fn cfg(grid: Dim3) -> LaunchConfig {
        LaunchConfig {
            grid,
            threads_per_block: 128,
            smem_bytes: 0,
        }
    }

    #[test]
    fn every_block_runs_exactly_once_under_chunked_scheduling() {
        // Deliberately more blocks than chunk capacity and a pool bigger
        // than the machine, to exercise multi-steal paths.
        let exec = Executor::with_workers(4);
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let grid = Dim3::xy(37, 11);
        let hits: Vec<AtomicU64> = (0..grid.volume()).map(|_| AtomicU64::new(0)).collect();
        exec.launch(&dev, cfg(grid), &c, |ctx| {
            hits[grid.linear(ctx.bx, ctx.by, ctx.bz)].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(c.snapshot().kernel_launches, 1);
    }

    #[test]
    fn pool_is_reusable_across_launches() {
        let exec = Executor::with_workers(2);
        let dev = DeviceProfile::t4();
        let c = Counters::new();
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            exec.launch(&dev, cfg(Dim3::x(16)), &c, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 16);
        assert_eq!(c.snapshot().kernel_launches, 50);
    }

    #[test]
    fn serial_policy_runs_in_linear_order() {
        let exec = Executor::serial();
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let order = Mutex::new(Vec::new());
        exec.launch(&dev, cfg(Dim3::xy(3, 2)), &c, |ctx| {
            order.lock().unwrap().push((ctx.bx, ctx.by));
        })
        .unwrap();
        assert_eq!(
            order.into_inner().unwrap(),
            vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]
        );
    }

    #[test]
    fn serial_and_parallel_counter_snapshots_are_identical() {
        let dev = DeviceProfile::a100();
        let kernel = |ctx: &BlockCtx| {
            ctx.counters.add_loaded(ctx.bx as u64 * 8 + 4);
            ctx.counters.add_fma(3);
            ctx.barrier();
        };
        let c_ser = Counters::new();
        Executor::serial()
            .launch(&dev, cfg(Dim3::x(100)), &c_ser, kernel)
            .unwrap();
        let c_par = Counters::new();
        Executor::with_workers(4)
            .launch(&dev, cfg(Dim3::x(100)), &c_par, kernel)
            .unwrap();
        assert_eq!(c_ser.snapshot(), c_par.snapshot());
    }

    #[test]
    fn panicking_block_propagates_to_the_caller() {
        let exec = Executor::with_workers(3);
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.launch(&dev, cfg(Dim3::x(64)), &c, |ctx| {
                if ctx.bx == 13 {
                    panic!("block 13 died");
                }
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "block 13 died");
    }

    #[test]
    fn panic_in_serial_policy_propagates_too() {
        let exec = Executor::serial();
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.launch(&dev, cfg(Dim3::x(4)), &c, |ctx| {
                assert!(ctx.bx < 2, "serial block panic");
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn with_executor_overrides_and_restores() {
        let serial = Executor::serial();
        with_executor(&serial, || {
            with_current(|e| assert_eq!(e.policy(), ExecPolicy::Serial));
            // nested override wins, then unwinds
            let pool = Executor::with_workers(2);
            with_executor(&pool, || {
                with_current(|e| assert_eq!(e.policy(), ExecPolicy::Parallel { workers: 2 }));
            });
            with_current(|e| assert_eq!(e.policy(), ExecPolicy::Serial));
        });
    }

    #[test]
    fn par_chunks_mut_covers_every_element_disjointly() {
        let exec = Executor::with_workers(4);
        let mut data = vec![0u32; 10_001];
        exec.par_chunks_mut(&mut data, 97, |offset, piece| {
            for (i, v) in piece.iter_mut().enumerate() {
                *v += (offset + i) as u32 + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let exec = Executor::with_workers(2);
        let dev = DeviceProfile::a100();
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let c = Counters::new();
                    exec.launch(&dev, cfg(Dim3::x(200)), &c, |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    })
                    .unwrap();
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 200);
    }

    #[test]
    fn chunk_size_balances_steals() {
        let exec = Executor::with_workers(4);
        assert_eq!(exec.chunk_for(8), 1);
        assert_eq!(exec.chunk_for(1600), 100);
        assert_eq!(exec.chunk_for(1 << 20), 256); // capped
    }
}
