//! Simulated global (device) memory.
//!
//! [`GlobalBuffer`] stores every element as atomic 64-bit raw bits so that
//! parallel threadblocks can load, store and `atomicAdd` safely — exactly the
//! access modes CUDA kernels have. Loads and stores are relaxed atomics;
//! `atomicAdd` is a compare-and-swap loop, which is literally how CUDA
//! implements floating-point atomics on older hardware.
//!
//! Traffic accounting is explicit: kernels charge a [`crate::counters::EventSink`]
//! (the launch's shared counters, or a worker-local sink inside kernels)
//! when they touch global memory, mirroring the transactions a profiler
//! would report.
//!
//! Two charging granularities exist:
//!
//! * **Per element** — [`GlobalBuffer::load_counted`] /
//!   [`GlobalBuffer::store_counted`], one sink charge per scalar. This is
//!   the uncoalesced access pattern (strided or data-dependent addressing).
//! * **Per run** — [`GlobalBuffer::load_run`] / [`GlobalBuffer::store_run`],
//!   which move a contiguous run of elements with one sink charge for the
//!   whole run, modeling the coalesced transactions a warp issues when
//!   consecutive threads touch consecutive addresses. The charged *byte*
//!   totals are identical to charging every element individually (u64 byte
//!   addition is exact), so counter-based structural tests and the
//!   serial-vs-parallel counter-identity invariant are agnostic to which
//!   path a kernel uses.

use crate::counters::EventSink;
use crate::matrix::Matrix;
use crate::sanitizer;
use crate::scalar::Scalar;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A device-global buffer of `T` with atomic element access.
///
/// Storage is shared: [`Clone`] is a device-pointer copy (both handles
/// alias the same memory), not a deep copy — exactly how passing a device
/// pointer to a second kernel behaves. `Arc<[AtomicU64]>` is a fat pointer
/// straight to the element array, so element access costs the same as
/// through an owning `Vec`.
///
/// When a [`crate::sanitizer`] checker is in scope at allocation time the
/// buffer carries shadow state and every access is checked; otherwise
/// `shadow` is `None` and the hooks cost one branch.
pub struct GlobalBuffer<T: Scalar> {
    bits: Arc<[AtomicU64]>,
    len: usize,
    shadow: Option<Arc<sanitizer::BufShadow>>,
    _marker: PhantomData<T>,
}

impl<T: Scalar> Clone for GlobalBuffer<T> {
    /// Alias the same device memory (a device-pointer copy): writes through
    /// either handle are visible through both.
    fn clone(&self) -> Self {
        GlobalBuffer {
            bits: Arc::clone(&self.bits),
            len: self.len,
            shadow: self.shadow.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: Scalar> GlobalBuffer<T> {
    fn alloc(len: usize, raw: u64, pre_init: bool) -> Self {
        GlobalBuffer {
            bits: (0..len).map(|_| AtomicU64::new(raw)).collect(),
            len,
            shadow: sanitizer::alloc_shadow(len, pre_init),
            _marker: PhantomData,
        }
    }

    /// Zero-initialized buffer of `len` elements (the `cudaMemset` path —
    /// every cell is defined, so initcheck treats it as initialized).
    pub fn zeros(len: usize) -> Self {
        Self::alloc(len, T::ZERO.to_raw_u64(), true)
    }

    /// Buffer filled with `v`.
    pub fn filled(len: usize, v: T) -> Self {
        Self::alloc(len, v.to_raw_u64(), true)
    }

    /// Uninitialized allocation (the bare `cudaMalloc` path): the storage
    /// observably reads as zero, but under `FTK_SANITIZE=init` any device
    /// load of a cell that was never stored is reported. Use this for
    /// scratch buffers a kernel is supposed to fully overwrite before
    /// reading back.
    pub fn uninit(len: usize) -> Self {
        Self::alloc(len, T::ZERO.to_raw_u64(), false)
    }

    /// Upload a host slice.
    pub fn from_slice(data: &[T]) -> Self {
        let bits = data
            .iter()
            .map(|v| AtomicU64::new(v.to_raw_u64()))
            .collect();
        GlobalBuffer {
            bits,
            len: data.len(),
            shadow: sanitizer::alloc_shadow(data.len(), true),
            _marker: PhantomData,
        }
    }

    /// Name this buffer in sanitizer reports. No-op when the buffer was
    /// allocated with no checker in scope.
    pub fn set_sanitizer_label(&self, label: &str) {
        if let Some(sh) = &self.shadow {
            sanitizer::set_label(sh, label);
        }
    }

    /// Upload a host matrix (row-major).
    pub fn from_matrix(m: &Matrix<T>) -> Self {
        Self::from_slice(m.as_slice())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Plain load (no traffic charged — use [`GlobalBuffer::load_counted`]
    /// inside kernels).
    #[inline]
    pub fn load(&self, idx: usize) -> T {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_load(sh, idx, 1) {
                return T::ZERO; // OOB reported and suppressed
            }
        }
        T::from_raw_u64(self.bits[idx].load(Ordering::Relaxed))
    }

    /// Load charging `counters` for the transaction.
    #[inline]
    pub fn load_counted<C: EventSink + ?Sized>(&self, idx: usize, counters: &C) -> T {
        counters.add_loaded(std::mem::size_of::<T>() as u64);
        self.load(idx)
    }

    /// Plain store.
    #[inline]
    pub fn store(&self, idx: usize, v: T) {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_store(sh, idx, 1) {
                return; // OOB reported and dropped
            }
        }
        self.bits[idx].store(v.to_raw_u64(), Ordering::Relaxed);
    }

    /// Store charging `counters`.
    #[inline]
    pub fn store_counted<C: EventSink + ?Sized>(&self, idx: usize, v: T, counters: &C) {
        counters.add_stored(std::mem::size_of::<T>() as u64);
        self.store(idx, v);
    }

    /// Atomic floating-point add via a CAS loop (CUDA `atomicAdd` semantics).
    /// Returns the previous value.
    pub fn atomic_add<C: EventSink + ?Sized>(&self, idx: usize, v: T, counters: &C) -> T {
        counters.add_atomic(1);
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_atomic(sh, idx) {
                return T::ZERO; // OOB reported and dropped
            }
        }
        let cell = &self.bits[idx];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let old = T::from_raw_u64(cur);
            let new = (old + v).to_raw_u64();
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return old,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bulk load of a contiguous run into `out`, charging `counters` once
    /// for the whole run (one coalesced transaction per run, not one per
    /// element). Byte totals equal `out.len()` individual
    /// [`GlobalBuffer::load_counted`] calls.
    #[inline]
    pub fn load_run<C: EventSink + ?Sized>(&self, start: usize, out: &mut [T], counters: &C) {
        counters.add_loaded(std::mem::size_of_val::<[T]>(out) as u64);
        self.read_range(start, out);
    }

    /// Bulk store of a contiguous run from `vals`, charging `counters` once
    /// for the whole run. Byte totals equal `vals.len()` individual
    /// [`GlobalBuffer::store_counted`] calls.
    #[inline]
    pub fn store_run<C: EventSink + ?Sized>(&self, start: usize, vals: &[T], counters: &C) {
        counters.add_stored(std::mem::size_of_val::<[T]>(vals) as u64);
        self.write_range(start, vals);
    }

    /// Download a contiguous range into a vector.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len).map(|i| self.load(i)).collect()
    }

    /// Download as a row-major matrix of the given shape.
    pub fn to_matrix(&self, rows: usize, cols: usize) -> Matrix<T> {
        assert_eq!(rows * cols, self.len, "matrix shape must cover the buffer");
        Matrix::from_vec(rows, cols, self.to_vec()).expect("shape checked above")
    }

    /// Copy a contiguous range into `out` without counting (host access, or
    /// kernel reads that are deliberately uncounted — see the charging rules
    /// at each call site). The relaxed per-element atomic loads compile to
    /// plain loads on mainstream ISAs, so this is the cheap bulk path.
    pub fn read_range(&self, start: usize, out: &mut [T]) {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_load(sh, start, out.len()) {
                out.fill(T::ZERO); // OOB reported and suppressed
                return;
            }
        }
        let cells = &self.bits[start..start + out.len()];
        for (slot, cell) in out.iter_mut().zip(cells) {
            *slot = T::from_raw_u64(cell.load(Ordering::Relaxed));
        }
    }

    /// Overwrite a contiguous range from `vals` without counting.
    pub fn write_range(&self, start: usize, vals: &[T]) {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_store(sh, start, vals.len()) {
                return; // OOB reported and dropped
            }
        }
        let cells = &self.bits[start..start + vals.len()];
        for (&v, cell) in vals.iter().zip(cells) {
            cell.store(v.to_raw_u64(), Ordering::Relaxed);
        }
    }

    /// Overwrite every element with `v` (host-side reset between iterations).
    pub fn fill(&self, v: T) {
        if let Some(sh) = &self.shadow {
            sanitizer::check_store(sh, 0, self.len);
        }
        let raw = v.to_raw_u64();
        for cell in self.bits.iter() {
            cell.store(raw, Ordering::Relaxed);
        }
    }
}

impl<T: Scalar> std::fmt::Debug for GlobalBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GlobalBuffer<{}>[len={}]",
            std::any::type_name::<T>(),
            self.len
        )
    }
}

/// An integer lane type storable packed inside the 64-bit device words of a
/// [`GlobalPackedBuffer`]. Implemented for `u16` (fp16 bit patterns) and
/// `u8` (int8 quantization codes).
pub trait PackedLane: Copy + Eq + std::fmt::Debug + Default + Send + Sync + 'static {
    /// Lanes per 64-bit device word (`64 / bits`).
    const LANES: usize;
    /// Bytes per lane — what counted traffic charges per element.
    const BYTES: usize;
    /// Widen the lane's bits into a `u64` (value in the low bits).
    fn to_lane_u64(self) -> u64;
    /// Narrow the low bits of a `u64` back into a lane.
    fn from_lane_u64(bits: u64) -> Self;
}

impl PackedLane for u16 {
    const LANES: usize = 4;
    const BYTES: usize = 2;
    #[inline]
    fn to_lane_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_lane_u64(bits: u64) -> Self {
        bits as u16
    }
}

impl PackedLane for u8 {
    const LANES: usize = 8;
    const BYTES: usize = 1;
    #[inline]
    fn to_lane_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_lane_u64(bits: u64) -> Self {
        bits as u8
    }
}

/// A device-global buffer of sub-word integer lanes (`u16` / `u8`) packed
/// into the same atomic 64-bit words [`GlobalBuffer`] uses — the storage
/// for quantized resident state (fp16 bit patterns, int8 codes).
///
/// Counted traffic charges the *packed* byte width (`len ×
/// [`PackedLane::BYTES`]`), which is exactly where a quantized table's
/// 2–4x memory-traffic advantage over an fp32 buffer shows up in the
/// counters. Like [`GlobalBuffer`], [`Clone`] is a device-pointer copy and
/// lane stores are atomic read-modify-writes on the containing word, so
/// concurrent stores to adjacent lanes never clobber each other.
pub struct GlobalPackedBuffer<U: PackedLane> {
    words: Arc<[AtomicU64]>,
    len: usize,
    shadow: Option<Arc<sanitizer::BufShadow>>,
    _marker: PhantomData<U>,
}

impl<U: PackedLane> Clone for GlobalPackedBuffer<U> {
    /// Alias the same device memory (a device-pointer copy).
    fn clone(&self) -> Self {
        GlobalPackedBuffer {
            words: Arc::clone(&self.words),
            len: self.len,
            shadow: self.shadow.clone(),
            _marker: PhantomData,
        }
    }
}

impl<U: PackedLane> GlobalPackedBuffer<U> {
    const LANE_BITS: u32 = (64 / U::LANES) as u32;
    const LANE_MASK: u64 = u64::MAX >> (64 - Self::LANE_BITS);

    /// Zero-initialized buffer of `len` lanes.
    pub fn zeros(len: usize) -> Self {
        GlobalPackedBuffer {
            words: (0..len.div_ceil(U::LANES))
                .map(|_| AtomicU64::new(0))
                .collect(),
            len,
            shadow: sanitizer::alloc_shadow(len, true),
            _marker: PhantomData,
        }
    }

    /// Name this buffer in sanitizer reports. No-op when the buffer was
    /// allocated with no checker in scope.
    pub fn set_sanitizer_label(&self, label: &str) {
        if let Some(sh) = &self.shadow {
            sanitizer::set_label(sh, label);
        }
    }

    /// Upload a host slice of lanes.
    pub fn from_slice(data: &[U]) -> Self {
        let buf = Self::zeros(data.len());
        buf.write_range(0, data);
        buf
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn split(idx: usize) -> (usize, u32) {
        (idx / U::LANES, (idx % U::LANES) as u32 * Self::LANE_BITS)
    }

    /// Lane load without sanitizer interception (internal: the fault
    /// injector and the checked paths share it).
    #[inline]
    fn load_raw(&self, idx: usize) -> U {
        assert!(
            idx < self.len,
            "lane index {idx} out of bounds {}",
            self.len
        );
        let (w, shift) = Self::split(idx);
        U::from_lane_u64((self.words[w].load(Ordering::Relaxed) >> shift) & Self::LANE_MASK)
    }

    /// Plain lane load (no traffic charged).
    #[inline]
    pub fn load(&self, idx: usize) -> U {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_load(sh, idx, 1) {
                return U::default(); // OOB reported and suppressed
            }
        }
        self.load_raw(idx)
    }

    /// Plain lane store: an atomic read-modify-write of the containing
    /// word, so neighbors in the same word survive concurrent stores.
    #[inline]
    pub fn store(&self, idx: usize, v: U) {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_store(sh, idx, 1) {
                return; // OOB reported and dropped
            }
        }
        self.store_raw(idx, v);
    }

    #[inline]
    fn store_raw(&self, idx: usize, v: U) {
        assert!(
            idx < self.len,
            "lane index {idx} out of bounds {}",
            self.len
        );
        let (w, shift) = Self::split(idx);
        let mask = Self::LANE_MASK << shift;
        let bits = (v.to_lane_u64() << shift) & mask;
        let cell = &self.words[w];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (cur & !mask) | bits;
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bulk load of a contiguous lane run into `out`, charging `counters`
    /// once for the whole run at the packed byte width (`out.len() ×
    /// [`PackedLane::BYTES`]` bytes — the quantized table's traffic
    /// advantage over an fp32 buffer).
    #[inline]
    pub fn load_run<C: EventSink + ?Sized>(&self, start: usize, out: &mut [U], counters: &C) {
        counters.add_loaded((out.len() * U::BYTES) as u64);
        self.read_range(start, out);
    }

    /// Bulk store of a contiguous lane run from `vals`, charging `counters`
    /// once for the whole run at the packed byte width.
    #[inline]
    pub fn store_run<C: EventSink + ?Sized>(&self, start: usize, vals: &[U], counters: &C) {
        counters.add_stored((vals.len() * U::BYTES) as u64);
        self.write_range(start, vals);
    }

    /// Copy a contiguous lane range into `out` without counting.
    pub fn read_range(&self, start: usize, out: &mut [U]) {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_load(sh, start, out.len()) {
                out.fill(U::default()); // OOB reported and suppressed
                return;
            }
        }
        assert!(start + out.len() <= self.len, "lane range out of bounds");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.load_raw(start + i);
        }
    }

    /// Overwrite a contiguous lane range from `vals` without counting.
    pub fn write_range(&self, start: usize, vals: &[U]) {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_store(sh, start, vals.len()) {
                return; // OOB reported and dropped
            }
        }
        assert!(start + vals.len() <= self.len, "lane range out of bounds");
        for (i, &v) in vals.iter().enumerate() {
            self.store_raw(start + i, v);
        }
    }

    /// Download every lane into a vector.
    pub fn to_vec(&self) -> Vec<U> {
        (0..self.len).map(|i| self.load(i)).collect()
    }

    /// Flip one bit of one lane in place — the fault-injection surface for
    /// campaigns targeting quantized resident state. Deliberately bypasses
    /// the sanitizer: a bit flip does not *initialize* a cell (that is the
    /// whole point of initcheck) and is not a kernel access.
    pub fn corrupt_bit(&self, idx: usize, bit: u32) {
        assert!((bit as usize) < U::BYTES * 8, "bit outside the lane");
        let cur = self.load_raw(idx).to_lane_u64();
        self.store_raw(idx, U::from_lane_u64(cur ^ (1u64 << bit)));
    }

    /// The raw packed words (for checksumming resident state).
    pub fn raw_words(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }
}

impl<U: PackedLane> std::fmt::Debug for GlobalPackedBuffer<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GlobalPackedBuffer<{}>[len={}]",
            std::any::type_name::<U>(),
            self.len
        )
    }
}

/// A global buffer of `u32` indices (assignment lists, counts) with atomic
/// increment support.
#[derive(Debug)]
pub struct GlobalIndexBuffer {
    data: Vec<std::sync::atomic::AtomicU32>,
    shadow: Option<Arc<sanitizer::BufShadow>>,
}

impl GlobalIndexBuffer {
    /// Zero-initialized index buffer.
    pub fn zeros(len: usize) -> Self {
        let mut data = Vec::with_capacity(len);
        data.resize_with(len, || std::sync::atomic::AtomicU32::new(0));
        GlobalIndexBuffer {
            data,
            shadow: sanitizer::alloc_shadow(len, true),
        }
    }

    /// Uninitialized index allocation (reads as zero; under
    /// `FTK_SANITIZE=init` loads of never-stored cells are reported). See
    /// [`GlobalBuffer::uninit`].
    pub fn uninit(len: usize) -> Self {
        let mut data = Vec::with_capacity(len);
        data.resize_with(len, || std::sync::atomic::AtomicU32::new(0));
        GlobalIndexBuffer {
            data,
            shadow: sanitizer::alloc_shadow(len, false),
        }
    }

    /// Name this buffer in sanitizer reports. No-op when the buffer was
    /// allocated with no checker in scope.
    pub fn set_sanitizer_label(&self, label: &str) {
        if let Some(sh) = &self.shadow {
            sanitizer::set_label(sh, label);
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn load(&self, idx: usize) -> u32 {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_load(sh, idx, 1) {
                return 0; // OOB reported and suppressed
            }
        }
        self.data[idx].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn store(&self, idx: usize, v: u32) {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_store(sh, idx, 1) {
                return; // OOB reported and dropped
            }
        }
        self.data[idx].store(v, Ordering::Relaxed);
    }

    /// Atomic `+1`, returning the previous value.
    pub fn atomic_inc<C: EventSink + ?Sized>(&self, idx: usize, counters: &C) -> u32 {
        counters.add_atomic(1);
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_atomic(sh, idx) {
                return 0; // OOB reported and dropped
            }
        }
        self.data[idx].fetch_add(1, Ordering::AcqRel)
    }

    /// Copy a contiguous range into `out` (bulk companion of
    /// [`GlobalIndexBuffer::load`]; index traffic is not byte-counted,
    /// matching the per-element accessors).
    pub fn read_range(&self, start: usize, out: &mut [u32]) {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_load(sh, start, out.len()) {
                out.fill(0); // OOB reported and suppressed
                return;
            }
        }
        let cells = &self.data[start..start + out.len()];
        for (slot, cell) in out.iter_mut().zip(cells) {
            *slot = cell.load(Ordering::Relaxed);
        }
    }

    /// Overwrite a contiguous range from `vals` (bulk companion of
    /// [`GlobalIndexBuffer::store`]).
    pub fn write_range(&self, start: usize, vals: &[u32]) {
        if let Some(sh) = &self.shadow {
            if !sanitizer::check_store(sh, start, vals.len()) {
                return; // OOB reported and dropped
            }
        }
        let cells = &self.data[start..start + vals.len()];
        for (&v, cell) in vals.iter().zip(cells) {
            cell.store(v, Ordering::Relaxed);
        }
    }

    pub fn to_vec(&self) -> Vec<u32> {
        if let Some(sh) = &self.shadow {
            sanitizer::check_load(sh, 0, self.data.len());
        }
        self.data
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    pub fn fill(&self, v: u32) {
        if let Some(sh) = &self.shadow {
            sanitizer::check_store(sh, 0, self.data.len());
        }
        for cell in &self.data {
            cell.store(v, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;

    #[test]
    fn roundtrip_f32_and_f64() {
        let b32 = GlobalBuffer::<f32>::from_slice(&[1.5, -2.25, 3.0]);
        assert_eq!(b32.to_vec(), vec![1.5, -2.25, 3.0]);
        let b64 = GlobalBuffer::<f64>::from_slice(&[1e-300, 2e300]);
        assert_eq!(b64.to_vec(), vec![1e-300, 2e300]);
    }

    #[test]
    fn counted_access_charges_traffic() {
        let c = Counters::new();
        let b = GlobalBuffer::<f64>::zeros(4);
        b.store_counted(0, 5.0, &c);
        let v = b.load_counted(0, &c);
        assert_eq!(v, 5.0);
        let s = c.snapshot();
        assert_eq!(s.bytes_stored, 8);
        assert_eq!(s.bytes_loaded, 8);
    }

    #[test]
    fn atomic_add_is_exact_under_contention() {
        let c = Counters::new();
        let b = GlobalBuffer::<f64>::zeros(1);
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        b.atomic_add(0, 1.0, &c);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.load(0), 8000.0);
        assert_eq!(c.snapshot().atomic_ops, 8000);
    }

    #[test]
    fn atomic_add_f32_under_contention() {
        let c = Counters::new();
        let b = GlobalBuffer::<f32>::zeros(2);
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..500 {
                        b.atomic_add(t % 2, 1.0f32, c);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.load(0) + b.load(1), 2000.0);
    }

    #[test]
    fn run_ops_charge_identically_to_element_ops() {
        // The bulk-transaction invariant: load_run/store_run must charge the
        // exact byte totals of the equivalent per-element counted accesses.
        let per_elem = Counters::new();
        let bulk = Counters::new();
        let src: Vec<f32> = (0..37).map(|i| i as f32 * 0.5 - 3.0).collect();
        let a = GlobalBuffer::<f32>::from_slice(&src);
        let b = GlobalBuffer::<f32>::from_slice(&src);

        let mut elems = vec![0.0f32; 21];
        for (i, slot) in elems.iter_mut().enumerate() {
            *slot = a.load_counted(5 + i, &per_elem);
        }
        for (i, &v) in elems.iter().enumerate() {
            a.store_counted(i, v * 2.0, &per_elem);
        }

        let mut run = vec![0.0f32; 21];
        b.load_run(5, &mut run, &bulk);
        assert_eq!(run, elems, "bulk load reads the same values");
        let doubled: Vec<f32> = run.iter().map(|v| v * 2.0).collect();
        b.store_run(0, &doubled, &bulk);

        assert_eq!(
            per_elem.snapshot(),
            bulk.snapshot(),
            "bulk path totals must equal the per-element path"
        );
        assert_eq!(a.to_vec(), b.to_vec(), "stored contents identical");
    }

    #[test]
    fn write_range_and_read_range_roundtrip() {
        let b = GlobalBuffer::<f64>::zeros(8);
        b.write_range(2, &[1.0, 2.0, 3.0]);
        let mut out = [0.0f64; 3];
        b.read_range(2, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert_eq!(b.load(1), 0.0);
        assert_eq!(b.load(5), 0.0);
    }

    #[test]
    fn index_buffer_range_roundtrip() {
        let idx = GlobalIndexBuffer::zeros(6);
        idx.write_range(1, &[7, 8, 9]);
        let mut out = [0u32; 4];
        idx.read_range(0, &mut out);
        assert_eq!(out, [0, 7, 8, 9]);
    }

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::<f32>::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let b = GlobalBuffer::from_matrix(&m);
        assert_eq!(b.to_matrix(3, 4), m);
    }

    #[test]
    fn clone_aliases_the_same_device_memory() {
        let b = GlobalBuffer::<f64>::from_slice(&[1.0, 2.0, 3.0]);
        let alias = b.clone();
        b.store(1, 42.0);
        assert_eq!(alias.load(1), 42.0, "writes visible through both handles");
        alias.store(2, -1.0);
        assert_eq!(b.load(2), -1.0);
        assert_eq!(alias.len(), 3);
    }

    #[test]
    fn packed_buffer_roundtrips_across_word_boundaries() {
        // 11 u16 lanes span three 64-bit words; 13 u8 lanes span two.
        let v16: Vec<u16> = (0..11).map(|i| (i * 4093 + 17) as u16).collect();
        let b16 = GlobalPackedBuffer::<u16>::from_slice(&v16);
        assert_eq!(b16.to_vec(), v16);
        let v8: Vec<u8> = (0..13).map(|i| (i * 37 + 5) as u8).collect();
        let b8 = GlobalPackedBuffer::<u8>::from_slice(&v8);
        assert_eq!(b8.to_vec(), v8);
        // mid-buffer range read crossing a word boundary
        let mut out = [0u16; 6];
        b16.read_range(3, &mut out);
        assert_eq!(out, v16[3..9]);
    }

    #[test]
    fn packed_runs_charge_packed_byte_widths() {
        // The whole point of the packed views: counted traffic is 2 bytes
        // per u16 lane and 1 byte per u8 lane, not the 4/8 of a fp buffer.
        let c = Counters::new();
        let b16 = GlobalPackedBuffer::<u16>::zeros(10);
        let mut out16 = [0u16; 7];
        b16.load_run(1, &mut out16, &c);
        assert_eq!(c.snapshot().bytes_loaded, 7 * 2);
        b16.store_run(0, &[1, 2, 3], &c);
        assert_eq!(c.snapshot().bytes_stored, 3 * 2);

        let c8 = Counters::new();
        let b8 = GlobalPackedBuffer::<u8>::zeros(20);
        let mut out8 = [0u8; 9];
        b8.load_run(2, &mut out8, &c8);
        b8.store_run(11, &[7; 5], &c8);
        let s = c8.snapshot();
        assert_eq!((s.bytes_loaded, s.bytes_stored), (9, 5));
    }

    #[test]
    fn packed_stores_to_adjacent_lanes_do_not_clobber() {
        // Lanes share a word: concurrent stores must RMW, not overwrite.
        let b = GlobalPackedBuffer::<u8>::zeros(8);
        crossbeam::thread::scope(|s| {
            for t in 0..8usize {
                let b = &b;
                s.spawn(move |_| {
                    for _ in 0..500 {
                        b.store(t, (t + 1) as u8);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn packed_corrupt_bit_flips_exactly_one_lane_bit() {
        let b = GlobalPackedBuffer::<u16>::from_slice(&[0x0f0f, 0xffff, 0x0000]);
        b.corrupt_bit(1, 15);
        assert_eq!(b.to_vec(), vec![0x0f0f, 0x7fff, 0x0000]);
        b.corrupt_bit(1, 15);
        assert_eq!(b.load(1), 0xffff, "second flip restores");
        // clone aliases the same device words
        let alias = b.clone();
        alias.corrupt_bit(0, 0);
        assert_eq!(b.load(0), 0x0f0e);
        assert_eq!(b.raw_words().len(), 1);
    }

    #[test]
    fn index_buffer_atomics() {
        let c = Counters::new();
        let idx = GlobalIndexBuffer::zeros(3);
        assert_eq!(idx.atomic_inc(1, &c), 0);
        assert_eq!(idx.atomic_inc(1, &c), 1);
        assert_eq!(idx.load(1), 2);
        idx.fill(9);
        assert_eq!(idx.to_vec(), vec![9, 9, 9]);
    }
}
