//! Simulated global (device) memory.
//!
//! [`GlobalBuffer`] stores every element as atomic 64-bit raw bits so that
//! parallel threadblocks can load, store and `atomicAdd` safely — exactly the
//! access modes CUDA kernels have. Loads and stores are relaxed atomics;
//! `atomicAdd` is a compare-and-swap loop, which is literally how CUDA
//! implements floating-point atomics on older hardware.
//!
//! Traffic accounting is explicit: kernels charge a [`crate::counters::EventSink`]
//! (the launch's shared counters, or a worker-local sink inside kernels)
//! when they touch global memory, mirroring the transactions a profiler
//! would report.

use crate::counters::EventSink;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// A device-global buffer of `T` with atomic element access.
pub struct GlobalBuffer<T: Scalar> {
    bits: Vec<AtomicU64>,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Scalar> GlobalBuffer<T> {
    /// Zero-initialized buffer of `len` elements.
    pub fn zeros(len: usize) -> Self {
        let mut bits = Vec::with_capacity(len);
        let zero = T::ZERO.to_raw_u64();
        bits.resize_with(len, || AtomicU64::new(zero));
        GlobalBuffer {
            bits,
            len,
            _marker: PhantomData,
        }
    }

    /// Buffer filled with `v`.
    pub fn filled(len: usize, v: T) -> Self {
        let raw = v.to_raw_u64();
        let mut bits = Vec::with_capacity(len);
        bits.resize_with(len, || AtomicU64::new(raw));
        GlobalBuffer {
            bits,
            len,
            _marker: PhantomData,
        }
    }

    /// Upload a host slice.
    pub fn from_slice(data: &[T]) -> Self {
        let bits = data
            .iter()
            .map(|v| AtomicU64::new(v.to_raw_u64()))
            .collect();
        GlobalBuffer {
            bits,
            len: data.len(),
            _marker: PhantomData,
        }
    }

    /// Upload a host matrix (row-major).
    pub fn from_matrix(m: &Matrix<T>) -> Self {
        Self::from_slice(m.as_slice())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Plain load (no traffic charged — use [`GlobalBuffer::load_counted`]
    /// inside kernels).
    #[inline]
    pub fn load(&self, idx: usize) -> T {
        T::from_raw_u64(self.bits[idx].load(Ordering::Relaxed))
    }

    /// Load charging `counters` for the transaction.
    #[inline]
    pub fn load_counted<C: EventSink + ?Sized>(&self, idx: usize, counters: &C) -> T {
        counters.add_loaded(std::mem::size_of::<T>() as u64);
        self.load(idx)
    }

    /// Plain store.
    #[inline]
    pub fn store(&self, idx: usize, v: T) {
        self.bits[idx].store(v.to_raw_u64(), Ordering::Relaxed);
    }

    /// Store charging `counters`.
    #[inline]
    pub fn store_counted<C: EventSink + ?Sized>(&self, idx: usize, v: T, counters: &C) {
        counters.add_stored(std::mem::size_of::<T>() as u64);
        self.store(idx, v);
    }

    /// Atomic floating-point add via a CAS loop (CUDA `atomicAdd` semantics).
    /// Returns the previous value.
    pub fn atomic_add<C: EventSink + ?Sized>(&self, idx: usize, v: T, counters: &C) -> T {
        counters.add_atomic(1);
        let cell = &self.bits[idx];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let old = T::from_raw_u64(cur);
            let new = (old + v).to_raw_u64();
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return old,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Download a contiguous range into a vector.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len).map(|i| self.load(i)).collect()
    }

    /// Download as a row-major matrix of the given shape.
    pub fn to_matrix(&self, rows: usize, cols: usize) -> Matrix<T> {
        assert_eq!(rows * cols, self.len, "matrix shape must cover the buffer");
        Matrix::from_vec(rows, cols, self.to_vec()).expect("shape checked above")
    }

    /// Copy a contiguous range into `out` without counting (host access).
    pub fn read_range(&self, start: usize, out: &mut [T]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.load(start + i);
        }
    }

    /// Overwrite every element with `v` (host-side reset between iterations).
    pub fn fill(&self, v: T) {
        let raw = v.to_raw_u64();
        for cell in &self.bits {
            cell.store(raw, Ordering::Relaxed);
        }
    }
}

impl<T: Scalar> std::fmt::Debug for GlobalBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GlobalBuffer<{}>[len={}]",
            std::any::type_name::<T>(),
            self.len
        )
    }
}

/// A global buffer of `u32` indices (assignment lists, counts) with atomic
/// increment support.
#[derive(Debug)]
pub struct GlobalIndexBuffer {
    data: Vec<std::sync::atomic::AtomicU32>,
}

impl GlobalIndexBuffer {
    /// Zero-initialized index buffer.
    pub fn zeros(len: usize) -> Self {
        let mut data = Vec::with_capacity(len);
        data.resize_with(len, || std::sync::atomic::AtomicU32::new(0));
        GlobalIndexBuffer { data }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn load(&self, idx: usize) -> u32 {
        self.data[idx].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn store(&self, idx: usize, v: u32) {
        self.data[idx].store(v, Ordering::Relaxed);
    }

    /// Atomic `+1`, returning the previous value.
    pub fn atomic_inc<C: EventSink + ?Sized>(&self, idx: usize, counters: &C) -> u32 {
        counters.add_atomic(1);
        self.data[idx].fetch_add(1, Ordering::AcqRel)
    }

    pub fn to_vec(&self) -> Vec<u32> {
        self.data
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    pub fn fill(&self, v: u32) {
        for cell in &self.data {
            cell.store(v, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;

    #[test]
    fn roundtrip_f32_and_f64() {
        let b32 = GlobalBuffer::<f32>::from_slice(&[1.5, -2.25, 3.0]);
        assert_eq!(b32.to_vec(), vec![1.5, -2.25, 3.0]);
        let b64 = GlobalBuffer::<f64>::from_slice(&[1e-300, 2e300]);
        assert_eq!(b64.to_vec(), vec![1e-300, 2e300]);
    }

    #[test]
    fn counted_access_charges_traffic() {
        let c = Counters::new();
        let b = GlobalBuffer::<f64>::zeros(4);
        b.store_counted(0, 5.0, &c);
        let v = b.load_counted(0, &c);
        assert_eq!(v, 5.0);
        let s = c.snapshot();
        assert_eq!(s.bytes_stored, 8);
        assert_eq!(s.bytes_loaded, 8);
    }

    #[test]
    fn atomic_add_is_exact_under_contention() {
        let c = Counters::new();
        let b = GlobalBuffer::<f64>::zeros(1);
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        b.atomic_add(0, 1.0, &c);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.load(0), 8000.0);
        assert_eq!(c.snapshot().atomic_ops, 8000);
    }

    #[test]
    fn atomic_add_f32_under_contention() {
        let c = Counters::new();
        let b = GlobalBuffer::<f32>::zeros(2);
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..500 {
                        b.atomic_add(t % 2, 1.0f32, c);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.load(0) + b.load(1), 2000.0);
    }

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::<f32>::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let b = GlobalBuffer::from_matrix(&m);
        assert_eq!(b.to_matrix(3, 4), m);
    }

    #[test]
    fn index_buffer_atomics() {
        let c = Counters::new();
        let idx = GlobalIndexBuffer::zeros(3);
        assert_eq!(idx.atomic_inc(1, &c), 0);
        assert_eq!(idx.atomic_inc(1, &c), 1);
        assert_eq!(idx.load(1), 2);
        idx.fill(9);
        assert_eq!(idx.to_vec(), vec![9, 9, 9]);
    }
}
