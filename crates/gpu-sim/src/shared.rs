//! Shared-memory tiles.
//!
//! Each simulated threadblock executes on one host thread, so a shared tile
//! is simply an owned buffer; what matters for fidelity is *capacity
//! accounting* (the feasibility rules of the paper's code generator reject
//! parameter sets whose staged tiles exceed the SM's shared memory) and the
//! staging discipline enforced by [`crate::async_copy::AsyncPipeline`].

use crate::scalar::Scalar;

/// A row-major shared-memory tile of `rows x cols` elements.
#[derive(Debug, Clone)]
pub struct SharedTile<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> SharedTile<T> {
    /// Zeroed tile.
    pub fn new(rows: usize, cols: usize) -> Self {
        SharedTile {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Size in bytes, as charged against the shared-memory budget.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row.
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row — the target of bulk row copies from global
    /// memory ([`crate::memory::GlobalBuffer::load_run`]-style staging).
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Whole tile as a flat slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Whole tile as a mutable flat slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Reset to zero (used when a pipeline stage is recycled with a partial
    /// edge tile, so stale data never leaks into padded regions).
    pub fn zero(&mut self) {
        self.data.fill(T::ZERO);
    }
}

/// Bytes of shared memory needed by a `k_stage`-deep pipeline of A
/// (`tb_m x tb_k`) and B (`tb_n x tb_k`) tiles — the quantity the paper's
/// feasibility probe checks against the SM budget.
pub fn staged_smem_bytes(
    tb_m: usize,
    tb_n: usize,
    tb_k: usize,
    k_stages: usize,
    elem_bytes: usize,
) -> usize {
    k_stages * (tb_m + tb_n) * tb_k * elem_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_accessors() {
        let mut t = SharedTile::<f32>::new(4, 8);
        t.set(3, 7, 2.5);
        assert_eq!(t.get(3, 7), 2.5);
        assert_eq!(t.row(3)[7], 2.5);
        assert_eq!(t.bytes(), 4 * 8 * 4);
        t.row_mut(2).copy_from_slice(&[9.0; 8]);
        assert_eq!(t.get(2, 5), 9.0);
        t.zero();
        assert_eq!(t.get(3, 7), 0.0);
        assert_eq!(t.get(2, 5), 0.0);
    }

    #[test]
    fn smem_formula_matches_paper_examples() {
        // cuML FP32 tile <32,256,16>, 3 stages: 3*(32+256)*16*4 bytes
        assert_eq!(staged_smem_bytes(32, 256, 16, 3, 4), 3 * 288 * 16 * 4);
        // FP64 <64,64,16>, 2 stages
        assert_eq!(staged_smem_bytes(64, 64, 16, 2, 8), 2 * 128 * 16 * 8);
    }
}
