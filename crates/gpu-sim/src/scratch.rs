//! Reusable kernel-local scratch storage.
//!
//! Simulated threadblocks are closures invoked once per block; a naive
//! translation of "registers / local arrays" into `vec![...]` puts a heap
//! allocation on the per-block hot path (thousands of blocks per launch,
//! thousands of launches per fit). [`ScratchBuf`] models a register file /
//! local-memory array instead: a fixed-capacity stack buffer with a heap
//! spill only for over-sized dynamic shapes, so the common case costs no
//! allocation at all.

/// A `len`-element buffer that lives on the stack when `len <= N` and
/// spills to the heap otherwise.
///
/// `N` is the compile-time capacity in elements; pick it to cover the
/// shapes a kernel is tuned for (the spill path keeps odd shapes correct,
/// just not allocation-free).
#[derive(Debug)]
pub struct ScratchBuf<E, const N: usize> {
    stack: [E; N],
    heap: Vec<E>,
    len: usize,
}

impl<E: Copy, const N: usize> ScratchBuf<E, N> {
    /// A buffer of `len` elements, every element initialized to `fill`.
    pub fn filled(len: usize, fill: E) -> Self {
        if len <= N {
            ScratchBuf {
                stack: [fill; N],
                heap: Vec::new(),
                len,
            }
        } else {
            ScratchBuf {
                stack: [fill; N],
                heap: vec![fill; len],
                len,
            }
        }
    }

    /// Number of usable elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the buffer spilled to the heap (diagnostics/tests).
    pub fn spilled(&self) -> bool {
        self.len > N
    }

    /// The active elements.
    #[inline]
    pub fn as_slice(&self) -> &[E] {
        if self.len <= N {
            &self.stack[..self.len]
        } else {
            &self.heap[..self.len]
        }
    }

    /// The active elements, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        if self.len <= N {
            &mut self.stack[..self.len]
        } else {
            &mut self.heap[..self.len]
        }
    }
}

impl<E: Copy, const N: usize> std::ops::Deref for ScratchBuf<E, N> {
    type Target = [E];
    fn deref(&self) -> &[E] {
        self.as_slice()
    }
}

impl<E: Copy, const N: usize> std::ops::DerefMut for ScratchBuf<E, N> {
    fn deref_mut(&mut self) -> &mut [E] {
        self.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_path_for_small_lengths() {
        let mut b = ScratchBuf::<f32, 8>::filled(5, 1.5);
        assert!(!b.spilled());
        assert_eq!(b.len(), 5);
        assert_eq!(b.as_slice(), &[1.5; 5]);
        b.as_mut_slice()[4] = -2.0;
        assert_eq!(b[4], -2.0);
    }

    #[test]
    fn heap_spill_for_large_lengths() {
        let mut b = ScratchBuf::<u32, 4>::filled(9, 7);
        assert!(b.spilled());
        assert_eq!(b.len(), 9);
        assert_eq!(b.as_slice(), &[7; 9]);
        b[8] = 0;
        assert_eq!(b.as_slice()[8], 0);
    }

    #[test]
    fn boundary_length_stays_on_stack() {
        let b = ScratchBuf::<f64, 4>::filled(4, 0.0);
        assert!(!b.spilled());
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn zero_length_is_empty() {
        let b = ScratchBuf::<f64, 4>::filled(0, 3.0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice(), &[] as &[f64]);
    }
}
