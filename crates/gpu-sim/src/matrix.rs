//! Row-major host matrices used as kernel operands.

use crate::error::SimError;
use crate::scalar::Scalar;

/// A dense row-major matrix of `T`.
///
/// This is the host-side container; kernels read/write it through
/// [`crate::memory::GlobalBuffer`] views. Row-major matches the paper's
/// layout (samples matrix is M×N row-major, centroids K×N row-major, the
/// GEMM consumes `Centroids^T` implicitly).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn filled(rows: usize, cols: usize, v: T) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, SimError> {
        if data.len() != rows * cols {
            return Err(SimError::ShapeMismatch(format!(
                "buffer of {} elements cannot back a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the backing row-major slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the backing row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// One full row as a slice.
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Out-of-place transpose.
    pub fn transposed(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Squared L2 norm of every row (the `Samples²` / `Centroids²` vectors of
    /// Fig. 2 step 1).
    pub fn row_sq_norms(&self) -> Vec<T> {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|&x| x * x).sum())
            .collect()
    }

    /// Frobenius-norm distance to another matrix (test helper).
    pub fn frob_distance(&self, other: &Matrix<T>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a.to_f64() - b.to_f64();
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute elementwise difference (test helper).
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

/// Reference dense GEMM: `C = A * B^T` where A is m×k and B is n×k, giving
/// C m×n. This is exactly the distance-kernel product shape
/// (`Samples × Centroids^T`), used as ground truth in tests.
pub fn gemm_abt_reference<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.cols(), "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = T::ZERO;
            for p in 0..a.cols() {
                acc += a.get(i, p) * b.get(j, p);
            }
            c.set(i, j, acc);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::<f32>::zeros(3, 4);
        m.set(2, 3, 7.0);
        assert_eq!(m.get(2, 3), 7.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.row(2)[3], 7.0);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::<f64>::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::<f64>::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::<f32>::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn row_sq_norms_match_manual() {
        let m = Matrix::<f64>::from_fn(2, 3, |r, c| (r + c) as f64);
        let n = m.row_sq_norms();
        assert_eq!(n[0], 0.0 + 1.0 + 4.0);
        assert_eq!(n[1], 1.0 + 4.0 + 9.0);
    }

    #[test]
    fn gemm_reference_small() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] (rows are the "centroids")
        // C = A * B^T = [[17,23],[39,53]]
        let a = Matrix::from_vec(2, 2, vec![1.0f64, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0f64, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm_abt_reference(&a, &b);
        assert_eq!(c.get(0, 0), 17.0);
        assert_eq!(c.get(0, 1), 23.0);
        assert_eq!(c.get(1, 0), 39.0);
        assert_eq!(c.get(1, 1), 53.0);
    }

    #[test]
    fn diff_helpers() {
        let a = Matrix::<f32>::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(1, 1, 3.0);
        assert_eq!(a.max_abs_diff(&b), 2.0);
        assert!((a.frob_distance(&b) - 2.0).abs() < 1e-12);
    }
}
