//! Cross-variant agreement: all six assignment kernels must produce
//! identical labels on a shared fixture (fault hooks disabled).
//!
//! The fixture is integer-valued in f64, where both distance formulas —
//! the reference's `Σ(x−y)²` and the kernels' `‖x‖²+‖y‖²−2·x·y` — are
//! exact (every intermediate is an integer far below 2⁵³), so agreement is
//! required bit-for-bit, not approximately: any divergence is a real
//! indexing/reduction bug, not roundoff.
//!
//! The bound-pruned (Hamerly) variant additionally has to agree across
//! whole *fits*, where its resident bounds skip most of the distance work:
//! its slack policy promises the pruned labels are still bit-for-bit the
//! naive kernel's FP argmin, every iteration.

use abft::SchemeKind;
use fault::CampaignStats;
use gpu_sim::exec::{with_executor, Executor};
use gpu_sim::mma::NoFault;
use gpu_sim::timing::TileConfig;
use gpu_sim::{Counters, DeviceProfile, Matrix};
use kmeans::assign::run_assignment;
use kmeans::config::Variant;
use kmeans::device_data::DeviceData;
use kmeans::quant::{QuantKind, QuantizedCentroids};
use kmeans::reference::assign_reference;
use kmeans::variants::predict_fused::predict_fused_assign;
use kmeans::{KMeansConfig, PredictPolicy, Session};
use parking_lot::Mutex;

/// Integer-valued fixture with odd (non-tile-multiple) shapes.
fn fixture() -> (Matrix<f64>, Matrix<f64>) {
    let samples = Matrix::<f64>::from_fn(193, 17, |r, c| ((r * 31 + c * 7) % 17) as f64 - 8.0);
    let cents = Matrix::<f64>::from_fn(37, 17, |r, c| ((r * 13 + c * 5) % 15) as f64 - 7.0);
    (samples, cents)
}

#[test]
fn all_six_variants_produce_identical_labels() {
    let (samples, cents) = fixture();
    let (want_labels, want_dists) = assign_reference(&samples, &cents);

    let tile = TileConfig {
        tb_m: 16,
        tb_n: 16,
        tb_k: 8,
        wm: 8,
        wn: 8,
        k_stages: 2,
    };
    let variants: [(&str, Variant); 6] = [
        ("naive", Variant::Naive),
        ("gemm_v1", Variant::GemmV1),
        ("fused_v2", Variant::FusedV2),
        ("broadcast_v3", Variant::BroadcastV3),
        ("tensor_v4", Variant::Tensor(Some(tile))),
        ("hamerly", Variant::Hamerly),
    ];
    let dev = DeviceProfile::a100();
    for (name, variant) in variants {
        let c = Counters::new();
        let stats = Mutex::new(CampaignStats::default());
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let out =
            run_assignment(&dev, &data, variant, SchemeKind::None, &NoFault, &c, &stats).unwrap();
        assert_eq!(out.labels, want_labels, "{name}: labels diverge");
        // Integer-exact fixture: distances must also match exactly.
        for (i, (got, want)) in out.distances.iter().zip(want_dists.iter()).enumerate() {
            assert_eq!(got, want, "{name}: distance {i}");
        }
    }
}

#[test]
fn quantized_predict_agrees_with_every_variant_on_the_fixture() {
    // The serving path's exactness promise, against the same fixture the
    // six fit kernels agree on: fused quantized predict (fp16 and int8)
    // returns the reference labels AND the reference distances bit-for-bit
    // — the margin policy may route samples to the exact fallback row, but
    // nothing it emits is allowed to differ from the reference scan.
    let (samples, cents) = fixture();
    let (want_labels, want_dists) = assign_reference(&samples, &cents);
    let dev = DeviceProfile::a100();
    let c = Counters::new();
    let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
    for kind in [QuantKind::Fp16, QuantKind::Int8] {
        let table = QuantizedCentroids::build(&data.centroids, data.k, data.dim, kind);
        let out = predict_fused_assign(
            &dev,
            kmeans::variants::predict_fused::QueryView {
                samples: &data.samples,
                centroids: &data.centroids,
                m: data.m,
                k: data.k,
                dim: data.dim,
            },
            &table,
            &c,
        )
        .unwrap();
        assert_eq!(out.labels, want_labels, "{kind:?}: labels diverge");
        for (i, (got, want)) in out.distances.iter().zip(want_dists.iter()).enumerate() {
            assert_eq!(got, want, "{kind:?}: distance {i}");
        }
    }
}

#[test]
fn quantized_model_predict_agrees_across_fit_variants() {
    // End-to-end sweep: fit under every kernel variant, then serve the
    // same queries under all three predict policies — the labels must be
    // identical per model regardless of policy.
    let data = blobs(256, 9, 4);
    let queries = blobs(97, 9, 4);
    let session = Session::a100();
    for variant in [
        Variant::Naive,
        Variant::GemmV1,
        Variant::FusedV2,
        Variant::BroadcastV3,
        Variant::Tensor(None),
        Variant::Hamerly,
    ] {
        let mut model = session
            .kmeans(fit_cfg(4, variant, 5))
            .fit_model(&data)
            .unwrap();
        let want = model.predict(&queries).unwrap();
        for policy in [PredictPolicy::Fp16, PredictPolicy::Int8] {
            model.set_predict_policy(policy);
            let fresh = blobs(97, 9, 4);
            assert_eq!(
                model.predict(&fresh).unwrap(),
                want,
                "{variant:?} under {policy:?}"
            );
        }
    }
}

/// Well-separated deterministic blobs (fit-level fixture: no RNG, every
/// run identical).
fn blobs(m: usize, dim: usize, k: usize) -> Matrix<f64> {
    Matrix::<f64>::from_fn(m, dim, |r, c| {
        let center = ((r % k) * 10) as f64;
        let h = (r.wrapping_mul(2654435761) ^ c.wrapping_mul(40503)) % 1000;
        center + h as f64 / 1000.0 - 0.5 + c as f64 * 0.01
    })
}

fn fit_cfg(k: usize, variant: Variant, max_iter: usize) -> KMeansConfig {
    KMeansConfig {
        k,
        max_iter,
        tol: 0.0, // run every iteration: the comparison covers all of them
        seed: 7,
        variant,
        ..Default::default()
    }
}

#[test]
fn hamerly_fit_matches_naive_bitwise_at_every_iteration_count() {
    // The update phase consumes labels only, so if the labels agree
    // bit-for-bit at every iteration the centroid trajectories are
    // bitwise identical too. Fitting both variants at every horizon
    // checks exactly that, pruning included.
    //
    // The update's cross-block `atomicAdd` accumulation order is
    // scheduling-dependent under the pool executor (same reason campaign
    // cells pin serial), so the fits run under serial block order to make
    // the centroid bits comparable.
    let (m, dim, k) = (512, 17, 8);
    let data = blobs(m, dim, k);
    let serial = Executor::serial();
    with_executor(&serial, || hamerly_vs_naive_all_horizons(&data, k));
}

fn hamerly_vs_naive_all_horizons(data: &Matrix<f64>, k: usize) {
    let session = Session::a100();
    for iters in [1usize, 2, 3, 5, 8] {
        let naive = session
            .kmeans(fit_cfg(k, Variant::Naive, iters))
            .fit(data)
            .unwrap();
        let ham = session
            .kmeans(fit_cfg(k, Variant::Hamerly, iters))
            .fit(data)
            .unwrap();
        assert_eq!(ham.labels, naive.labels, "labels diverge at {iters} iters");
        for (i, (a, b)) in ham
            .centroids
            .as_slice()
            .iter()
            .zip(naive.centroids.as_slice())
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "centroid element {i} diverges at {iters} iters"
            );
        }
    }
}

#[test]
fn hamerly_prunes_most_distance_work_after_warmup() {
    // On separated blobs the centroids settle within three iterations;
    // after that the triangle-inequality test must skip more than half of
    // all candidate distances. Two fits sharing seed and data differ only
    // in their horizon, so the counter delta is exactly the work of
    // iterations 4..=8.
    let (m, dim, k) = (2048, 8, 8);
    let data = blobs(m, dim, k);
    let session = Session::a100();
    let short = session
        .kmeans(fit_cfg(k, Variant::Hamerly, 3))
        .fit(&data)
        .unwrap();
    let long = session
        .kmeans(fit_cfg(k, Variant::Hamerly, 8))
        .fit(&data)
        .unwrap();
    assert_eq!(long.iterations, 8, "tol = 0 must run the full horizon");
    let pruned = long.counters.pruned_candidates - short.counters.pruned_candidates;
    let candidates = (m * k * (8 - 3)) as u64;
    assert!(
        pruned * 2 > candidates,
        "after warmup the kernel must prune >50% of candidate distances: \
         pruned {pruned} of {candidates}"
    );
}
