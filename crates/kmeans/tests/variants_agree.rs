//! Cross-variant agreement: all five assignment kernels must produce
//! identical labels on a shared fixture (fault hooks disabled).
//!
//! The fixture is integer-valued in f64, where both distance formulas —
//! the reference's `Σ(x−y)²` and the kernels' `‖x‖²+‖y‖²−2·x·y` — are
//! exact (every intermediate is an integer far below 2⁵³), so agreement is
//! required bit-for-bit, not approximately: any divergence is a real
//! indexing/reduction bug, not roundoff.

use abft::SchemeKind;
use fault::CampaignStats;
use gpu_sim::mma::NoFault;
use gpu_sim::timing::TileConfig;
use gpu_sim::{Counters, DeviceProfile, Matrix};
use kmeans::assign::run_assignment;
use kmeans::config::Variant;
use kmeans::device_data::DeviceData;
use kmeans::reference::assign_reference;
use parking_lot::Mutex;

/// Integer-valued fixture with odd (non-tile-multiple) shapes.
fn fixture() -> (Matrix<f64>, Matrix<f64>) {
    let samples = Matrix::<f64>::from_fn(193, 17, |r, c| ((r * 31 + c * 7) % 17) as f64 - 8.0);
    let cents = Matrix::<f64>::from_fn(37, 17, |r, c| ((r * 13 + c * 5) % 15) as f64 - 7.0);
    (samples, cents)
}

#[test]
fn all_five_variants_produce_identical_labels() {
    let (samples, cents) = fixture();
    let (want_labels, want_dists) = assign_reference(&samples, &cents);

    let tile = TileConfig {
        tb_m: 16,
        tb_n: 16,
        tb_k: 8,
        wm: 8,
        wn: 8,
        k_stages: 2,
    };
    let variants: [(&str, Variant); 5] = [
        ("naive", Variant::Naive),
        ("gemm_v1", Variant::GemmV1),
        ("fused_v2", Variant::FusedV2),
        ("broadcast_v3", Variant::BroadcastV3),
        ("tensor_v4", Variant::Tensor(Some(tile))),
    ];
    let dev = DeviceProfile::a100();
    for (name, variant) in variants {
        let c = Counters::new();
        let stats = Mutex::new(CampaignStats::default());
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let out =
            run_assignment(&dev, &data, variant, SchemeKind::None, &NoFault, &c, &stats).unwrap();
        assert_eq!(out.labels, want_labels, "{name}: labels diverge");
        // Integer-exact fixture: distances must also match exactly.
        for (i, (got, want)) in out.distances.iter().zip(want_dists.iter()).enumerate() {
            assert_eq!(got, want, "{name}: distance {i}");
        }
    }
}
