//! Execution-engine determinism: a kernel variant must produce the same
//! labels AND the same hardware-event totals whether its threadblocks run
//! serially or across the worker pool. This is the contract that makes
//! `FTK_EXEC=serial` a faithful debugging mode and lets counter-based
//! structural tests ignore the execution policy.

use gpu_sim::exec::{with_executor, Executor};
use gpu_sim::mma::NoFault;
use gpu_sim::{CounterSnapshot, Counters, DeviceProfile, Matrix};
use kmeans::device_data::DeviceData;
use kmeans::update::update_centroids;
use kmeans::variants::fused::fused_assign;

fn problem() -> (Matrix<f64>, Matrix<f64>) {
    let samples =
        Matrix::<f64>::from_fn(513, 11, |r, c| ((r * 7 + c * 13) % 29) as f64 * 0.5 - 7.0);
    let cents = Matrix::<f64>::from_fn(70, 11, |r, c| ((r * 17 + c * 5) % 23) as f64 * 0.5 - 5.0);
    (samples, cents)
}

fn run_fused(exec: &Executor) -> (Vec<u32>, CounterSnapshot) {
    let (samples, cents) = problem();
    with_executor(exec, || {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let out = fused_assign(&dev, &data, &NoFault, &c).unwrap();
        (out.labels, c.snapshot())
    })
}

#[test]
fn fused_variant_serial_and_parallel_agree_exactly() {
    let (labels_serial, counters_serial) = run_fused(&Executor::serial());
    let (labels_parallel, counters_parallel) = run_fused(&Executor::with_workers(4));
    assert_eq!(
        labels_serial, labels_parallel,
        "labels must not depend on scheduling"
    );
    assert_eq!(
        counters_serial, counters_parallel,
        "CounterSnapshot must be bit-identical between serial and parallel launches"
    );
}

#[test]
fn update_phase_serial_and_parallel_agree_exactly() {
    let (samples, cents) = problem();
    let labels: Vec<u32> = (0..samples.rows())
        .map(|i| (i % cents.rows()) as u32)
        .collect();
    let mut runs = Vec::new();
    for exec in [Executor::serial(), Executor::with_workers(3)] {
        let (centroids, counts, snap) = with_executor(&exec, || {
            let dev = DeviceProfile::a100();
            let c = Counters::new();
            let buf = gpu_sim::GlobalBuffer::from_matrix(&samples);
            let out = update_centroids(
                &dev,
                &buf,
                samples.rows(),
                samples.cols(),
                &labels,
                &cents,
                false,
                &NoFault,
                &c,
            )
            .unwrap();
            (out.centroids, out.counts, c.snapshot())
        });
        runs.push((centroids, counts, snap));
    }
    let (c0, n0, s0) = &runs[0];
    let (c1, n1, s1) = &runs[1];
    assert_eq!(n0, n1);
    assert_eq!(s0, s1, "update-phase counters identical across policies");
    // atomicAdd accumulation order differs across schedules; the float
    // results agree to accumulation roundoff, not bitwise.
    assert!(c0.max_abs_diff(c1) < 1e-9);
}
