//! Acceptance gate for the streaming driver: `partial_fit` must produce
//! **byte-identical** centroids whether its launches run under the
//! deterministic serial policy (`FTK_EXEC=serial`) or the parallel worker
//! pool. The assignment kernel is order-invariant by construction and the
//! per-batch update launch is pinned to serial block order, so the only
//! acceptable diff between the two runs is none at all.

use gpu_sim::exec::Executor;
use gpu_sim::{CounterSnapshot, DeviceProfile, Matrix, Scalar};
use kmeans::{FittedModel, KMeansConfig, Session, Variant};

fn blobs(m: usize, dim: usize, k: usize, salt: u64) -> Matrix<f64> {
    Matrix::from_fn(m, dim, |r, c| {
        ((r % k) * 11) as f64
            + (((r * 13 + c * 5 + salt as usize) % 100) as f64 / 100.0 - 0.5) * 0.8
            + c as f64 * 0.03
    })
}

fn centroid_bits<T: Scalar>(model: &FittedModel<T>) -> Vec<T::Bits> {
    model
        .centroids
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

fn run_stream(exec: Executor, variant: Variant) -> (Vec<u64>, Vec<u32>, CounterSnapshot) {
    let session = Session::new(DeviceProfile::a100()).with_executor(exec);
    let km = session.kmeans(KMeansConfig::new(4).with_seed(5).with_variant(variant));
    let mut model = None;
    for i in 0..6u64 {
        let batch = blobs(160, 5, 4, i);
        model = Some(km.partial_fit(model, &batch).expect("batch"));
    }
    let model = model.unwrap();
    (centroid_bits(&model), model.labels.clone(), model.counters)
}

#[test]
fn partial_fit_centroids_are_byte_identical_serial_vs_pool() {
    for variant in [Variant::Tensor(None), Variant::FusedV2, Variant::Naive] {
        let (serial_bits, serial_labels, serial_counters) = run_stream(Executor::serial(), variant);
        let (pool_bits, pool_labels, pool_counters) =
            run_stream(Executor::with_workers(4), variant);
        assert_eq!(
            serial_bits, pool_bits,
            "{variant:?}: centroid bit patterns must not depend on scheduling"
        );
        assert_eq!(serial_labels, pool_labels, "{variant:?}: labels too");
        assert_eq!(
            serial_counters, pool_counters,
            "{variant:?}: counter totals are policy-invariant"
        );
    }
}

#[test]
fn batch_order_changes_results_but_not_policy_invariance() {
    // Feed the same batches in a different order: the stream is
    // order-sensitive (learning-rate updates are), but each order is still
    // policy-deterministic. Guards against accidentally "fixing" the
    // determinism test by making partial_fit ignore its input.
    let stream = |order: &[u64], exec: Executor| {
        let session = Session::new(DeviceProfile::a100()).with_executor(exec);
        let km = session.kmeans(KMeansConfig::new(4).with_seed(5));
        let mut model = None;
        for &i in order {
            model = Some(km.partial_fit(model, &blobs(160, 5, 4, i)).unwrap());
        }
        centroid_bits(&model.unwrap())
    };
    let fwd_serial = stream(&[0, 1, 2, 3], Executor::serial());
    let fwd_pool = stream(&[0, 1, 2, 3], Executor::with_workers(3));
    let rev_serial = stream(&[3, 2, 1, 0], Executor::serial());
    let rev_pool = stream(&[3, 2, 1, 0], Executor::with_workers(3));
    assert_eq!(fwd_serial, fwd_pool);
    assert_eq!(rev_serial, rev_pool);
    assert_ne!(
        fwd_serial, rev_serial,
        "batch order must matter (learning-rate stream)"
    );
}
