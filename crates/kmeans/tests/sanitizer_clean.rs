//! Fault-free fits are sanitizer-clean: every assignment variant, fitted
//! end to end under a thread-locally scoped `gpu_sim::sanitizer` checker
//! running race + init + oob, must produce an *empty* report.
//!
//! This is the per-variant counterpart of the full-stack `sanitize_sweep`
//! bin: thread-local scoping (rather than the process-global install the
//! sweep uses) keeps the six tests independent, so the harness can run
//! them concurrently without cross-contaminating reports.

use gpu_sim::sanitizer::{self, Checker, SanitizeConfig};
use gpu_sim::Matrix;
use kmeans::{FtConfig, KMeansConfig, Session, Variant};
use std::sync::Arc;

const DIM: usize = 16;
const K: usize = 8;

fn blobs(m: usize) -> Matrix<f64> {
    Matrix::from_fn(m, DIM, |r, c| {
        (r % K) as f64 * 8.0 + ((r * 31 + c * 7) % 13) as f64 * 0.05
    })
}

fn clean_fit(variant: Variant) {
    let cfg = SanitizeConfig {
        race: true,
        init: true,
        oob: true,
        leak: false,
    };
    let checker = Arc::new(Checker::new(cfg));
    sanitizer::with_checker(&checker, || {
        let km = Session::a100().kmeans(KMeansConfig {
            k: K,
            // Cross the revalidation cadence so the Hamerly repair path
            // runs under the checker too.
            max_iter: 5,
            tol: 0.0,
            seed: 7,
            variant,
            ft: FtConfig {
                revalidate_every: 4,
                ..Default::default()
            },
            ..Default::default()
        });
        km.fit_model(&blobs(512)).expect("fit under sanitizer");
    });
    let report = checker.report();
    assert!(
        report.is_empty(),
        "fault-free {variant:?} fit must be sanitizer-clean, got:\n{}",
        report.to_text()
    );
    assert_eq!(
        report.to_text(),
        "sanitizer report (checks: race,init,oob)\nfindings: 0\n"
    );
}

#[test]
fn naive_fit_is_sanitizer_clean() {
    clean_fit(Variant::Naive);
}

#[test]
fn gemm_v1_fit_is_sanitizer_clean() {
    clean_fit(Variant::GemmV1);
}

#[test]
fn fused_v2_fit_is_sanitizer_clean() {
    clean_fit(Variant::FusedV2);
}

#[test]
fn broadcast_v3_fit_is_sanitizer_clean() {
    clean_fit(Variant::BroadcastV3);
}

#[test]
fn tensor_v4_fit_is_sanitizer_clean() {
    clean_fit(Variant::Tensor(None));
}

#[test]
fn hamerly_fit_is_sanitizer_clean() {
    clean_fit(Variant::Hamerly);
}
