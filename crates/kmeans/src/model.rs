//! The fitted half of the estimator lifecycle.
//!
//! A [`FittedModel`] is what [`crate::KMeans::fit_model`] and
//! [`crate::KMeans::partial_fit`] return: the [`FitResult`] plus everything
//! needed to keep using the model without re-deriving state — the session
//! handle, the configuration, and the device-resident final centroids
//! (the fit's sample buffers are released at construction; nothing reads
//! them again). Repeated [`FittedModel::predict`] /
//! [`FittedModel::score`] calls *share* the resident centroid and
//! centroid-norm buffers (device-pointer copies; no re-upload, no norm
//! kernel re-run — only the query samples are uploaded per call), and
//! [`crate::KMeans::fit_from`] uses the model's centroids as a warm
//! start.

use crate::assign::run_assignment;
use crate::config::KMeansConfig;
use crate::device_data::DeviceData;
use crate::driver::FitResult;
use crate::error::KMeansError;
use crate::session::Session;
use fault::CampaignStats;
use gpu_sim::mma::NoFault;
use gpu_sim::{Counters, Matrix, Scalar};
use parking_lot::Mutex;

/// A fitted K-means model owning its device-resident state.
///
/// Dereferences to the underlying [`FitResult`], so result fields read
/// naturally: `model.labels`, `model.inertia`, `model.ft_stats`, ...
///
/// ```
/// use gpu_sim::{DeviceProfile, Matrix};
/// use kmeans::{KMeansConfig, Session};
///
/// let session = Session::new(DeviceProfile::a100());
/// let data = Matrix::<f64>::from_fn(24, 3, |r, c| (r % 3) as f64 * 9.0 + c as f64 * 0.1);
/// let model = session
///     .kmeans(KMeansConfig::new(3).with_seed(4))
///     .fit_model(&data)
///     .unwrap();
/// // result fields via deref, prediction via the model itself
/// assert!(model.converged);
/// assert_eq!(model.predict(&data).unwrap(), model.labels);
/// // new samples only need matching dimensionality
/// let fresh = Matrix::<f64>::from_fn(5, 3, |_, c| c as f64 * 0.1);
/// assert_eq!(model.predict(&fresh).unwrap().len(), 5);
/// ```
pub struct FittedModel<T: Scalar> {
    pub(crate) session: Session,
    pub(crate) config: KMeansConfig,
    /// The *final* centroids and their norms, device-resident
    /// ([`DeviceData::centroids_only`] — the sample buffers of the fit are
    /// dropped at construction; nothing reads them again). The
    /// predict/score path shares these centroid buffers (device-pointer
    /// copies) instead of re-uploading.
    pub(crate) data: DeviceData<T>,
    pub(crate) result: FitResult<T>,
    /// Per-center accumulated sample counts: the mini-batch learning-rate
    /// state (for a full-batch fit, the final cluster sizes).
    pub(crate) weights: Vec<u64>,
    /// Mini-batch batches consumed (0 for a full-batch fit).
    pub(crate) batches: usize,
}

impl<T: Scalar> std::ops::Deref for FittedModel<T> {
    type Target = FitResult<T>;

    fn deref(&self) -> &FitResult<T> {
        &self.result
    }
}

impl<T: Scalar> std::fmt::Debug for FittedModel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedModel")
            .field("k", &self.config.k)
            .field("dim", &self.data.dim)
            .field("batches", &self.batches)
            .field("result", &self.result)
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> FittedModel<T> {
    /// Assemble a model from a finished fit (`data` must hold the final
    /// centroids). Only the centroid buffers are kept resident; the fit's
    /// sample buffers are released here.
    pub(crate) fn from_parts(
        session: Session,
        config: KMeansConfig,
        data: &DeviceData<T>,
        result: FitResult<T>,
        weights: Vec<u64>,
        batches: usize,
    ) -> Self {
        FittedModel {
            session,
            config,
            data: data.centroids_only(),
            result,
            weights,
            batches,
        }
    }

    /// The configuration the model was fitted under.
    pub fn config(&self) -> &KMeansConfig {
        &self.config
    }

    /// The session the model is bound to.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The full fit outcome.
    pub fn result(&self) -> &FitResult<T> {
        &self.result
    }

    /// Consume the model, keeping only the fit outcome (drops the
    /// device-resident buffers).
    pub fn into_result(self) -> FitResult<T> {
        self.result
    }

    /// Mini-batch batches consumed so far (0 for a full-batch fit).
    pub fn batches_seen(&self) -> usize {
        self.batches
    }

    /// Per-center accumulated sample counts — the mini-batch learning-rate
    /// denominators. For a full-batch fit these are the final cluster sizes.
    pub fn center_weights(&self) -> &[u64] {
        &self.weights
    }

    /// Feature dimensionality the model was trained on.
    pub fn dim(&self) -> usize {
        self.data.dim
    }

    /// Assign each of `samples` to its nearest centroid.
    ///
    /// Only the query samples are uploaded; the resident centroid and
    /// centroid-norm buffers are shared (no re-upload, no centroid norm
    /// kernel re-run).
    pub fn predict(&self, samples: &Matrix<T>) -> Result<Vec<u32>, KMeansError> {
        Ok(self.assign(samples)?.0)
    }

    /// Total within-cluster sum of squared distances of `samples` against
    /// the fitted centroids (the K-means objective; lower is better). For
    /// the training inertia use the `inertia` result field.
    pub fn score(&self, samples: &Matrix<T>) -> Result<f64, KMeansError> {
        Ok(self.assign(samples)?.1)
    }

    fn assign(&self, samples: &Matrix<T>) -> Result<(Vec<u32>, f64), KMeansError> {
        if samples.cols() != self.data.dim {
            return Err(KMeansError::ShapeMismatch {
                what: "samples",
                expected: (samples.rows(), self.data.dim),
                got: (samples.rows(), samples.cols()),
            });
        }
        self.session.run(|| {
            let device = self.session.device();
            let counters = Counters::new();
            let stats = Mutex::new(CampaignStats::default());
            // Upload only the query samples; the resident centroid and
            // centroid-norm buffers are shared, not re-uploaded.
            let data = self
                .data
                .upload_samples_sharing_centroids(device, samples, &counters)?;
            let out = run_assignment(
                device,
                &data,
                self.config.variant,
                self.config.ft.scheme,
                &NoFault,
                &counters,
                &stats,
            )?;
            let inertia = out.distances.iter().map(|d| d.to_f64().max(0.0)).sum();
            Ok((out.labels, inertia))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::reference::assign_reference;
    use crate::session::Session;

    fn blobs(m: usize, dim: usize, k: usize) -> Matrix<f64> {
        Matrix::from_fn(m, dim, |r, c| {
            ((r % k) * 12) as f64 + ((r * 7 + c * 3) % 5) as f64 * 0.05 + c as f64 * 0.01
        })
    }

    fn fitted(k: usize) -> (Matrix<f64>, FittedModel<f64>) {
        let data = blobs(90, 4, k);
        let model = Session::a100()
            .kmeans(KMeansConfig::new(k).with_seed(3))
            .fit_model(&data)
            .expect("fit");
        (data, model)
    }

    #[test]
    fn predict_matches_reference_assignment() {
        let (_, model) = fitted(3);
        let queries = blobs(30, 4, 3);
        let labels = model.predict(&queries).unwrap();
        let (want, _) = assign_reference(&queries, &model.centroids);
        assert_eq!(labels, want);
    }

    #[test]
    fn repeated_predicts_are_stable() {
        let (data, model) = fitted(3);
        let a = model.predict(&data).unwrap();
        let b = model.predict(&data).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a, model.labels,
            "converged fit is an assignment fixed point"
        );
    }

    #[test]
    fn score_is_the_inertia_of_the_assignment() {
        let (data, model) = fitted(3);
        let score = model.score(&data).unwrap();
        assert!((score - model.inertia).abs() <= 1e-9 * model.inertia.max(1.0));
    }

    #[test]
    fn predict_rejects_wrong_dimensionality() {
        let (_, model) = fitted(3);
        let bad = Matrix::<f64>::zeros(5, 7);
        match model.predict(&bad) {
            Err(KMeansError::ShapeMismatch {
                what,
                expected,
                got,
            }) => {
                assert_eq!(what, "samples");
                assert_eq!(expected.1, 4);
                assert_eq!(got.1, 7);
            }
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn predict_works_for_every_variant() {
        let data = blobs(80, 3, 2);
        for variant in [
            Variant::Naive,
            Variant::GemmV1,
            Variant::FusedV2,
            Variant::BroadcastV3,
            Variant::Tensor(None),
        ] {
            let model = Session::a100()
                .kmeans(KMeansConfig::new(2).with_seed(1).with_variant(variant))
                .fit_model(&data)
                .expect("fit");
            let labels = model.predict(&data).unwrap();
            assert_eq!(labels.len(), 80);
        }
    }

    #[test]
    fn full_fit_weights_are_cluster_sizes() {
        let (_, model) = fitted(3);
        let mut counts = vec![0u64; 3];
        for &l in &model.labels {
            counts[l as usize] += 1;
        }
        assert_eq!(model.center_weights(), counts.as_slice());
        assert_eq!(model.batches_seen(), 0);
    }
}
