//! The fitted half of the estimator lifecycle.
//!
//! A [`FittedModel`] is what [`crate::KMeans::fit_model`] and
//! [`crate::KMeans::partial_fit`] return: the [`FitResult`] plus everything
//! needed to keep using the model without re-deriving state — the session
//! handle, the configuration, and the device-resident final centroids
//! (the fit's sample buffers are released at construction; nothing reads
//! them again). Repeated [`FittedModel::predict`] /
//! [`FittedModel::score`] calls *share* the resident centroid and
//! centroid-norm buffers (device-pointer copies; no re-upload, no norm
//! kernel re-run — only the query samples are uploaded per call), and
//! [`crate::KMeans::fit_from`] uses the model's centroids as a warm
//! start.

use crate::assign::run_assignment;
use crate::config::{KMeansConfig, PredictPolicy};
use crate::device_data::DeviceData;
use crate::driver::FitResult;
use crate::error::KMeansError;
use crate::phase;
use crate::quant::{fnv1a64, QuantKind, QuantizedCentroids};
use crate::session::Session;
use crate::variants::predict_fused::predict_fused_assign;
use fault::CampaignStats;
use gpu_sim::mma::NoFault;
use gpu_sim::{CounterSnapshot, Counters, GlobalBuffer, Matrix, Scalar};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fitted K-means model owning its device-resident state.
///
/// Dereferences to the underlying [`FitResult`], so result fields read
/// naturally: `model.labels`, `model.inertia`, `model.ft_stats`, ...
///
/// ```
/// use gpu_sim::{DeviceProfile, Matrix};
/// use kmeans::{KMeansConfig, Session};
///
/// let session = Session::new(DeviceProfile::a100());
/// let data = Matrix::<f64>::from_fn(24, 3, |r, c| (r % 3) as f64 * 9.0 + c as f64 * 0.1);
/// let model = session
///     .kmeans(KMeansConfig::new(3).with_seed(4))
///     .fit_model(&data)
///     .unwrap();
/// // result fields via deref, prediction via the model itself
/// assert!(model.converged);
/// assert_eq!(model.predict(&data).unwrap(), model.labels);
/// // new samples only need matching dimensionality
/// let fresh = Matrix::<f64>::from_fn(5, 3, |_, c| c as f64 * 0.1);
/// assert_eq!(model.predict(&fresh).unwrap().len(), 5);
/// ```
pub struct FittedModel<T: Scalar> {
    pub(crate) session: Session,
    pub(crate) config: KMeansConfig,
    /// The *final* centroids and their norms, device-resident
    /// ([`DeviceData::centroids_only`] — the sample buffers of the fit are
    /// dropped at construction; nothing reads them again). The
    /// predict/score path shares these centroid buffers (device-pointer
    /// copies) instead of re-uploading.
    pub(crate) data: DeviceData<T>,
    pub(crate) result: FitResult<T>,
    /// Per-center accumulated sample counts: the mini-batch learning-rate
    /// state (for a full-batch fit, the final cluster sizes).
    pub(crate) weights: Vec<u64>,
    /// Mini-batch batches consumed (0 for a full-batch fit).
    pub(crate) batches: usize,
    /// Serving precision policy (see [`PredictPolicy`]); labels and
    /// distances are identical under every setting.
    policy: PredictPolicy,
    /// Reusable serving-path state — built once per model, not per call.
    scratch: PredictScratch<T>,
}

/// Hot-path predict state hoisted out of the per-call path: one counter
/// sink and one campaign-stats sink for the model's lifetime, the last
/// assignment memo (so `score` directly after `predict` on the same
/// matrix re-derives nothing — no upload, no norms kernel, no scan), and
/// the resident query buffer the quantized path re-fills instead of
/// re-allocating per batch.
struct PredictScratch<T: Scalar> {
    counters: Counters,
    stats: Mutex<CampaignStats>,
    memo: Mutex<Option<AssignMemo>>,
    query_buf: Mutex<Option<GlobalBuffer<T>>>,
    /// Monotone predict sequence number — the trace-span index of each
    /// served (non-memoized) predict, so timelines stay deterministic
    /// without wall-clock identifiers.
    predict_seq: AtomicU64,
}

impl<T: Scalar> Default for PredictScratch<T> {
    fn default() -> Self {
        PredictScratch {
            counters: Counters::new(),
            stats: Mutex::new(CampaignStats::default()),
            memo: Mutex::new(None),
            query_buf: Mutex::new(None),
            predict_seq: AtomicU64::new(0),
        }
    }
}

/// The memoized result of the most recent assignment, keyed by sample-
/// buffer identity (data pointer + shape + content fingerprint — the
/// pointer alone could be reused by a fresh allocation). Because every
/// [`PredictPolicy`] returns bit-identical labels and distances, the memo
/// is valid across policy switches.
struct AssignMemo {
    key: (usize, usize, usize, u64),
    labels: Vec<u32>,
    inertia: f64,
}

/// Elements fingerprinted by [`memo_key`]. Hashing every element of a
/// serving-sized batch costs more than the kernel it guards, so beyond
/// this count the fingerprint strides the buffer (first/last elements
/// always included). The pointer + shape carry the identity; the strided
/// content hash guards against the pointer being reused by a fresh
/// allocation with different data.
const MEMO_FINGERPRINT_ELEMS: usize = 4096;

fn memo_key<T: Scalar>(samples: &Matrix<T>) -> (usize, usize, usize, u64) {
    let s = samples.as_slice();
    let n = s.len();
    let hash = if n <= MEMO_FINGERPRINT_ELEMS {
        fnv1a64(s.iter().map(|v| v.to_raw_u64()))
    } else {
        let step = n.div_ceil(MEMO_FINGERPRINT_ELEMS);
        fnv1a64(
            s.iter()
                .step_by(step)
                .chain(std::iter::once(&s[n - 1]))
                .map(|v| v.to_raw_u64()),
        )
    };
    (s.as_ptr() as usize, samples.rows(), samples.cols(), hash)
}

/// Cloning a model is cheap: the device-resident centroid and
/// centroid-norm buffers (and the cached quantized tables) are shared via
/// device-pointer copies — no re-upload, no norm kernel re-run, no table
/// rebuild. The fit outcome and learning-rate weights are host-side copies
/// so the clone can continue a stream independently
/// ([`crate::KMeans::partial_fit`] consumes its model), and the clone gets
/// a *fresh* `PredictScratch` — counters, serving stats, and the memo
/// start at zero, so per-clone metering never cross-talks.
impl<T: Scalar> Clone for FittedModel<T> {
    fn clone(&self) -> Self {
        FittedModel {
            session: self.session.clone(),
            config: self.config.clone(),
            data: self.data.centroids_only(),
            result: self.result.clone(),
            weights: self.weights.clone(),
            batches: self.batches,
            policy: self.policy,
            scratch: PredictScratch::default(),
        }
    }
}

impl<T: Scalar> std::ops::Deref for FittedModel<T> {
    type Target = FitResult<T>;

    fn deref(&self) -> &FitResult<T> {
        &self.result
    }
}

impl<T: Scalar> std::fmt::Debug for FittedModel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedModel")
            .field("k", &self.config.k)
            .field("dim", &self.data.dim)
            .field("batches", &self.batches)
            .field("result", &self.result)
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> FittedModel<T> {
    /// Assemble a model from a finished fit (`data` must hold the final
    /// centroids). Only the centroid buffers are kept resident; the fit's
    /// sample buffers are released here.
    pub(crate) fn from_parts(
        session: Session,
        config: KMeansConfig,
        data: &DeviceData<T>,
        result: FitResult<T>,
        weights: Vec<u64>,
        batches: usize,
    ) -> Self {
        FittedModel {
            session,
            config,
            data: data.centroids_only(),
            result,
            weights,
            batches,
            policy: PredictPolicy::default(),
            scratch: PredictScratch::default(),
        }
    }

    /// The configuration the model was fitted under.
    pub fn config(&self) -> &KMeansConfig {
        &self.config
    }

    /// The session the model is bound to.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The full fit outcome.
    pub fn result(&self) -> &FitResult<T> {
        &self.result
    }

    /// Consume the model, keeping only the fit outcome (drops the
    /// device-resident buffers).
    pub fn into_result(self) -> FitResult<T> {
        self.result
    }

    /// Mini-batch batches consumed so far (0 for a full-batch fit).
    pub fn batches_seen(&self) -> usize {
        self.batches
    }

    /// Per-center accumulated sample counts — the mini-batch learning-rate
    /// denominators. For a full-batch fit these are the final cluster sizes.
    pub fn center_weights(&self) -> &[u64] {
        &self.weights
    }

    /// Feature dimensionality the model was trained on.
    pub fn dim(&self) -> usize {
        self.data.dim
    }

    /// The current serving precision policy.
    pub fn predict_policy(&self) -> PredictPolicy {
        self.policy
    }

    /// Set the serving precision policy. Labels and distances are identical
    /// under every policy (the quantized paths fall back to exact rows when
    /// the argmin margin is inside the quantization error), so switching
    /// never invalidates memoized results.
    pub fn set_predict_policy(&mut self, policy: PredictPolicy) {
        self.policy = policy;
    }

    /// Builder-style [`FittedModel::set_predict_policy`].
    pub fn with_predict_policy(mut self, policy: PredictPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Snapshot of the model's cumulative serving-path counters (traffic,
    /// kernel launches, [`quant_fallbacks`](CounterSnapshot::quant_fallbacks),
    /// ...). Take deltas around calls to meter a single predict.
    pub fn predict_counters(&self) -> CounterSnapshot {
        self.scratch.counters.snapshot()
    }

    /// Cumulative serving-path fault-tolerance stats — `detected` counts
    /// quantized-table integrity failures caught (and repaired) by the
    /// digest guard at predict entry.
    pub fn predict_stats(&self) -> CampaignStats {
        *self.scratch.stats.lock()
    }

    /// The quantized resident table for `kind`, building it on first use.
    /// Fault campaigns reach through this to corrupt resident serving state
    /// ([`QuantizedCentroids::corrupt_code_bit`]).
    pub fn quantized_table(&self, kind: QuantKind) -> Arc<QuantizedCentroids<T>> {
        self.data.quant.get_or_build(
            kind,
            &self.data.centroids,
            self.data.k,
            self.data.dim,
            &self.scratch.counters,
        )
    }

    /// Assign each of `samples` to its nearest centroid.
    ///
    /// Only the query samples are uploaded; the resident centroid and
    /// centroid-norm buffers are shared (no re-upload, no centroid norm
    /// kernel re-run).
    ///
    /// **Thread safety.** `predict`/`score` take `&self` and are safe to
    /// call from any number of threads concurrently: every
    /// `PredictScratch` field is either atomic (counters) or
    /// mutex-guarded, and the resident query buffer is handed to exactly
    /// one in-flight call at a time via a take/park lease — an overlapping
    /// caller allocates its own buffer rather than sharing device memory.
    /// Steady-state single-caller serving still re-allocates nothing.
    pub fn predict(&self, samples: &Matrix<T>) -> Result<Vec<u32>, KMeansError> {
        Ok(self.assign(samples)?.0)
    }

    /// Total within-cluster sum of squared distances of `samples` against
    /// the fitted centroids (the K-means objective; lower is better). For
    /// the training inertia use the `inertia` result field.
    pub fn score(&self, samples: &Matrix<T>) -> Result<f64, KMeansError> {
        Ok(self.assign(samples)?.1)
    }

    fn assign(&self, samples: &Matrix<T>) -> Result<(Vec<u32>, f64), KMeansError> {
        // Shape-only validation runs even for empty input.
        if samples.cols() != self.data.dim {
            return Err(KMeansError::ShapeMismatch {
                what: "samples",
                expected: (samples.rows(), self.data.dim),
                got: (samples.rows(), samples.cols()),
            });
        }
        if samples.rows() == 0 {
            return Ok((Vec::new(), 0.0));
        }
        // `score` after `predict` on the same matrix (and repeated
        // predicts) replay the memo — no upload, no kernels.
        let key = memo_key(samples);
        if let Some(memo) = self.scratch.memo.lock().as_ref() {
            if memo.key == key {
                return Ok((memo.labels.clone(), memo.inertia));
            }
        }
        let counters = &self.scratch.counters;
        let (labels, inertia) = self.session.run(|| {
            let device = self.session.device();
            let seq = self.scratch.predict_seq.fetch_add(1, Ordering::Relaxed);
            phase::traced(trace::phases::PREDICT, seq, counters, || {
                let fallbacks_before = trace::active().then(|| counters.snapshot().quant_fallbacks);
                let out = match self.policy.quant_kind() {
                    Some(kind) => {
                        // Integrity guard: the digest must match before the
                        // quantized table serves a query; a corrupted table is
                        // detected here and rebuilt from the fp centroids.
                        let mut table = self.quantized_table(kind);
                        if !table.verify() {
                            self.scratch.stats.lock().detected += 1;
                            trace::fault(trace::faults::QUANT_DIGEST_MISMATCH, 1);
                            table = self.data.quant.rebuild(
                                kind,
                                &self.data.centroids,
                                self.data.k,
                                self.data.dim,
                                counters,
                            );
                        }
                        // Only the raw query buffer is uploaded — the fused
                        // kernel folds ‖x‖² into its distance pass, so this
                        // path launches no sample-norms kernel at all. The
                        // buffer itself is model-owned scratch, re-filled in
                        // place when the batch size repeats (steady-state
                        // serving re-allocates nothing). The buffer is *leased*
                        // out of the mutex for the duration of the launch:
                        // a `GlobalBuffer` clone is a device-pointer copy, so
                        // two overlapping predicts holding clones of one cached
                        // buffer would overwrite each other's queries between
                        // their uploads and launches. Taking the `Option` means
                        // an overlapping caller simply allocates a fresh buffer;
                        // whoever finishes last parks theirs for the next call.
                        let leased = self.scratch.query_buf.lock().take();
                        let queries = match leased {
                            Some(buf) if buf.len() == samples.as_slice().len() => {
                                buf.write_range(0, samples.as_slice());
                                buf
                            }
                            _ => GlobalBuffer::from_matrix(samples),
                        };
                        queries.set_sanitizer_label("serve.queries");
                        let out = predict_fused_assign(
                            device,
                            crate::variants::predict_fused::QueryView {
                                samples: &queries,
                                centroids: &self.data.centroids,
                                m: samples.rows(),
                                k: self.data.k,
                                dim: self.data.dim,
                            },
                            &table,
                            counters,
                        )?;
                        *self.scratch.query_buf.lock() = Some(queries);
                        out
                    }
                    None => {
                        // Upload only the query samples; the resident centroid
                        // and centroid-norm buffers are shared, not re-uploaded.
                        let data = self
                            .data
                            .upload_samples_sharing_centroids(device, samples, counters)?;
                        run_assignment(
                            device,
                            &data,
                            self.config.variant,
                            self.config.ft.scheme,
                            &NoFault,
                            counters,
                            &self.scratch.stats,
                        )?
                    }
                };
                if let Some(before) = fallbacks_before {
                    trace::fault(
                        trace::faults::QUANT_FALLBACK,
                        counters.snapshot().quant_fallbacks.saturating_sub(before),
                    );
                }
                let inertia = out.distances.iter().map(|d| d.to_f64().max(0.0)).sum();
                Ok::<_, KMeansError>((out.labels, inertia))
            })
        })?;
        *self.scratch.memo.lock() = Some(AssignMemo {
            key,
            labels: labels.clone(),
            inertia,
        });
        Ok((labels, inertia))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::reference::assign_reference;
    use crate::session::Session;

    fn blobs(m: usize, dim: usize, k: usize) -> Matrix<f64> {
        Matrix::from_fn(m, dim, |r, c| {
            ((r % k) * 12) as f64 + ((r * 7 + c * 3) % 5) as f64 * 0.05 + c as f64 * 0.01
        })
    }

    fn fitted(k: usize) -> (Matrix<f64>, FittedModel<f64>) {
        let data = blobs(90, 4, k);
        let model = Session::a100()
            .kmeans(KMeansConfig::new(k).with_seed(3))
            .fit_model(&data)
            .expect("fit");
        (data, model)
    }

    #[test]
    fn predict_matches_reference_assignment() {
        let (_, model) = fitted(3);
        let queries = blobs(30, 4, 3);
        let labels = model.predict(&queries).unwrap();
        let (want, _) = assign_reference(&queries, &model.centroids);
        assert_eq!(labels, want);
    }

    #[test]
    fn repeated_predicts_are_stable() {
        let (data, model) = fitted(3);
        let a = model.predict(&data).unwrap();
        let b = model.predict(&data).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a, model.labels,
            "converged fit is an assignment fixed point"
        );
    }

    #[test]
    fn score_is_the_inertia_of_the_assignment() {
        let (data, model) = fitted(3);
        let score = model.score(&data).unwrap();
        assert!((score - model.inertia).abs() <= 1e-9 * model.inertia.max(1.0));
    }

    #[test]
    fn predict_rejects_wrong_dimensionality() {
        let (_, model) = fitted(3);
        let bad = Matrix::<f64>::zeros(5, 7);
        match model.predict(&bad) {
            Err(KMeansError::ShapeMismatch {
                what,
                expected,
                got,
            }) => {
                assert_eq!(what, "samples");
                assert_eq!(expected.1, 4);
                assert_eq!(got.1, 7);
            }
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn predict_works_for_every_variant() {
        let data = blobs(80, 3, 2);
        for variant in [
            Variant::Naive,
            Variant::GemmV1,
            Variant::FusedV2,
            Variant::BroadcastV3,
            Variant::Tensor(None),
        ] {
            let model = Session::a100()
                .kmeans(KMeansConfig::new(2).with_seed(1).with_variant(variant))
                .fit_model(&data)
                .expect("fit");
            let labels = model.predict(&data).unwrap();
            assert_eq!(labels.len(), 80);
        }
    }

    #[test]
    fn empty_predict_returns_no_labels_without_launching() {
        let (_, model) = fitted(3);
        let empty = Matrix::<f64>::zeros(0, 4);
        let before = model.predict_counters();
        assert_eq!(model.predict(&empty).unwrap(), Vec::<u32>::new());
        assert_eq!(model.score(&empty).unwrap(), 0.0);
        let delta = model.predict_counters().since(&before);
        assert_eq!(delta.kernel_launches, 0, "empty input launches nothing");
        // shape validation still applies to empty input
        assert!(model.predict(&Matrix::<f64>::zeros(0, 9)).is_err());
    }

    #[test]
    fn score_after_predict_replays_the_memo() {
        let (data, model) = fitted(3);
        let labels = model.predict(&data).unwrap();
        let before = model.predict_counters();
        let score = model.score(&data).unwrap();
        let delta = model.predict_counters().since(&before);
        assert_eq!(delta.kernel_launches, 0, "memo hit re-runs nothing");
        assert_eq!(delta.bytes_loaded, 0);
        assert_eq!(model.predict(&data).unwrap(), labels, "repeat predict too");
        assert!(score > 0.0);
        // a different matrix misses the memo and really runs
        let fresh = blobs(30, 4, 3);
        let before = model.predict_counters();
        model.predict(&fresh).unwrap();
        assert!(model.predict_counters().since(&before).kernel_launches > 0);
    }

    #[test]
    fn quantized_policies_match_exact_labels_and_score() {
        let (_, mut model) = fitted(4);
        let queries = blobs(57, 4, 4);
        let want_labels = model.predict(&queries).unwrap();
        let want_score = model.score(&queries).unwrap();
        for policy in [PredictPolicy::Fp16, PredictPolicy::Int8] {
            model.set_predict_policy(policy);
            // distinct allocation so the memo can't answer for the kernel
            let fresh = blobs(57, 4, 4);
            assert_eq!(model.predict(&fresh).unwrap(), want_labels, "{policy:?}");
            // the exact policy here runs the fitted tensor kernel, whose
            // norm-identity rounding differs in the last bits from the
            // reference scan the fused path reproduces — scores agree to
            // rounding noise
            let score = model.score(&fresh).unwrap();
            assert!(
                (score - want_score).abs() <= 1e-9 * want_score.max(1.0),
                "{policy:?}: {score} vs {want_score}"
            );
        }
    }

    #[test]
    fn quantized_score_is_bit_identical_to_the_naive_scan() {
        // Against a naive-variant model the fused path's distances are
        // reference arithmetic — the scores match exactly, not just closely.
        let data = blobs(90, 4, 3);
        let mut model = Session::a100()
            .kmeans(
                KMeansConfig::new(3)
                    .with_seed(3)
                    .with_variant(Variant::Naive),
            )
            .fit_model(&data)
            .expect("fit");
        let queries = blobs(41, 4, 3);
        let want = model.score(&queries).unwrap();
        for policy in [PredictPolicy::Fp16, PredictPolicy::Int8] {
            model.set_predict_policy(policy);
            let fresh = blobs(41, 4, 3);
            assert_eq!(model.score(&fresh).unwrap(), want, "{policy:?}");
        }
    }

    #[test]
    fn quantized_predict_skips_the_norms_kernel() {
        let (_, model) = fitted(3);
        let model = model.with_predict_policy(PredictPolicy::Int8);
        model.quantized_table(crate::quant::QuantKind::Int8); // prebuild
        let queries = blobs(40, 4, 3);
        let before = model.predict_counters();
        model.predict(&queries).unwrap();
        let delta = model.predict_counters().since(&before);
        assert_eq!(
            delta.kernel_launches, 1,
            "one fused launch — no separate sample-norms kernel"
        );
    }

    #[test]
    fn corrupted_quantized_table_is_detected_and_repaired() {
        let (data, mut model) = fitted(3);
        let want = model.predict(&data).unwrap();
        model.set_predict_policy(PredictPolicy::Fp16);
        let table = model.quantized_table(crate::quant::QuantKind::Fp16);
        table.corrupt_code_bit(5, 13);
        assert!(!table.verify());
        let queries = blobs(90, 4, 3);
        let labels = model.predict(&queries).unwrap();
        assert_eq!(labels, want, "guard repaired the table before serving");
        assert_eq!(model.predict_stats().detected, 1, "the flip was counted");
        // the rebuilt resident table verifies again
        assert!(model
            .quantized_table(crate::quant::QuantKind::Fp16)
            .verify());
    }

    #[test]
    fn concurrent_predicts_share_scratch_without_corruption() {
        // Regression test for the query-buffer lease: before it, two
        // overlapping predicts of the same batch size cloned one cached
        // device buffer and overwrote each other's queries between upload
        // and launch. Eight threads hammer the same model with *different*
        // same-sized matrices; every one must get its own reference labels.
        let data = blobs(512, 6, 4);
        let model = Session::a100()
            .kmeans(KMeansConfig::new(4).with_seed(9))
            .fit_model(&data)
            .expect("fit")
            .with_predict_policy(PredictPolicy::Int8);
        model.quantized_table(crate::quant::QuantKind::Int8); // prebuild
        std::thread::scope(|s| {
            for t in 0..8usize {
                let model = &model;
                s.spawn(move || {
                    let queries = Matrix::<f64>::from_fn(256, 6, |r, c| {
                        ((r + t * 131) % 4 * 12) as f64 + ((r * 7 + c * 3 + t) % 5) as f64 * 0.05
                    });
                    let (want, _) = assign_reference(&queries, &model.centroids);
                    for _ in 0..6 {
                        assert_eq!(
                            model.predict(&queries).unwrap(),
                            want,
                            "thread {t} read another caller's queries"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn clone_shares_device_state_with_fresh_scratch() {
        let (data, model) = fitted(3);
        let model = model.with_predict_policy(PredictPolicy::Fp16);
        // warm the original's table cache and counters
        let table = model.quantized_table(crate::quant::QuantKind::Fp16);
        model.predict(&data).unwrap();
        assert!(model.predict_counters().kernel_launches > 0);
        let twin = model.clone();
        // the quantized table cache is shared — no rebuild in the clone
        assert!(Arc::ptr_eq(
            &table,
            &twin.quantized_table(crate::quant::QuantKind::Fp16)
        ));
        // but serving scratch is fresh: per-clone metering starts at zero
        assert_eq!(twin.predict_counters(), CounterSnapshot::default());
        assert_eq!(twin.predict_policy(), PredictPolicy::Fp16);
        assert_eq!(twin.center_weights(), model.center_weights());
        let fresh = blobs(30, 4, 3);
        assert_eq!(
            twin.predict(&fresh).unwrap(),
            model.predict(&fresh).unwrap()
        );
        // a clone can continue a stream while the original keeps serving
        let cont = twin
            .session()
            .kmeans(twin.config().clone())
            .partial_fit(Some(twin), &fresh)
            .expect("continue stream from clone");
        assert_eq!(cont.batches_seen(), 1);
        assert_eq!(model.batches_seen(), 0, "original untouched");
    }

    #[test]
    fn full_fit_weights_are_cluster_sizes() {
        let (_, model) = fitted(3);
        let mut counts = vec![0u64; 3];
        for &l in &model.labels {
            counts[l as usize] += 1;
        }
        assert_eq!(model.center_weights(), counts.as_slice());
        assert_eq!(model.batches_seen(), 0);
    }
}
