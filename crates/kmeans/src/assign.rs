//! Assignment-stage results and variant dispatch.

use crate::config::Variant;
use crate::device_data::DeviceData;
use crate::variants;
use abft::SchemeKind;
use fault::CampaignStats;
use gpu_sim::mma::FaultHook;
use gpu_sim::timing::TileConfig;
use gpu_sim::{Counters, DeviceProfile, Precision, Scalar, SimError};
use parking_lot::Mutex;

/// Output of one distance/assignment pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentResult<T> {
    /// Nearest-centroid index per sample.
    pub labels: Vec<u32>,
    /// Squared distance to that centroid per sample.
    pub distances: Vec<T>,
}

impl<T: Scalar> AssignmentResult<T> {
    /// Sum of the squared distances (the inertia of this assignment).
    pub fn inertia(&self) -> f64 {
        self.distances.iter().map(|d| d.to_f64()).sum()
    }
}

/// Default tensor tile per precision — the strongest general-purpose
/// parameters from the paper's Table I (id 83 for FP32, id 19 for FP64).
pub fn default_tile(precision: Precision) -> TileConfig {
    match precision {
        Precision::Fp32 => TileConfig {
            tb_m: 64,
            tb_n: 128,
            tb_k: 16,
            wm: 64,
            wn: 32,
            k_stages: 3,
        },
        Precision::Fp64 => TileConfig {
            tb_m: 64,
            tb_n: 64,
            tb_k: 16,
            wm: 32,
            wn: 32,
            k_stages: 3,
        },
    }
}

/// Run the assignment stage with the chosen kernel variant.
#[allow(clippy::too_many_arguments)]
pub fn run_assignment<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    variant: Variant,
    scheme: SchemeKind,
    hook: &dyn FaultHook<T>,
    counters: &Counters,
    stats: &Mutex<CampaignStats>,
) -> Result<AssignmentResult<T>, SimError> {
    match variant {
        Variant::Naive => variants::naive::naive_assign(device, data, hook, counters),
        Variant::GemmV1 => variants::gemm::gemm_assign(device, data, hook, counters),
        Variant::FusedV2 => variants::fused::fused_assign(device, data, hook, counters),
        Variant::BroadcastV3 => variants::broadcast::broadcast_assign(device, data, hook, counters),
        Variant::Tensor(tile) => {
            let tile = tile.unwrap_or_else(|| default_tile(T::PRECISION));
            variants::tensor::tensor_assign(device, tile, data, scheme, hook, counters, stats)
        }
        // Prunes against the resident bound state when the driver allocated
        // it; stateless callers (predict, mini-batch) fall back to the full
        // naive-identical scan inside the kernel.
        Variant::Hamerly => variants::hamerly::hamerly_assign(device, data, false, hook, counters),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tiles_match_table1() {
        let t32 = default_tile(Precision::Fp32);
        assert_eq!((t32.tb_m, t32.tb_n, t32.tb_k), (64, 128, 16));
        assert_eq!((t32.wm, t32.wn), (64, 32));
        let t64 = default_tile(Precision::Fp64);
        assert_eq!((t64.tb_m, t64.tb_n, t64.tb_k), (64, 64, 16));
        assert_eq!((t64.wm, t64.wn), (32, 32));
    }

    #[test]
    fn inertia_sums_distances() {
        let r = AssignmentResult {
            labels: vec![0, 1],
            distances: vec![1.5f64, 2.5],
        };
        assert_eq!(r.inertia(), 4.0);
    }
}
