//! Estimator configuration.

use abft::SchemeKind;
use fault::InjectionSchedule;
use gpu_sim::timing::TileConfig;
use serde::{Deserialize, Serialize};

/// Which distance/assignment kernel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    /// Thread-per-sample baseline (§III-A1).
    Naive,
    /// SIMT GEMM + separate reduction kernel (§III-A2).
    GemmV1,
    /// GEMM with thread/threadblock-fused reduction (§III-A3).
    FusedV2,
    /// Fully fused with threadblock broadcast (§III-A4).
    BroadcastV3,
    /// Tensor-core pipeline kernel with the given tiling (§III-A5). `None`
    /// selects a per-precision default tile.
    Tensor(Option<TileConfig>),
}

impl Variant {
    /// The production variant with default tiling.
    pub fn tensor_default() -> Self {
        Variant::Tensor(None)
    }

    /// Display label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Naive => "K-Means Naive",
            Variant::GemmV1 => "K-Means V1",
            Variant::FusedV2 => "K-Means V2",
            Variant::BroadcastV3 => "K-Means V3",
            Variant::Tensor(_) => "FT K-Means",
        }
    }
}

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitMethod {
    /// K distinct samples chosen uniformly.
    RandomSamples,
    /// K-means++ (D² weighting) — better seeds, more setup work.
    KMeansPlusPlus,
}

/// Fault-tolerance configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtConfig {
    /// ABFT scheme protecting the distance kernel.
    pub scheme: SchemeKind,
    /// Whether the centroid update runs under DMR.
    pub dmr_update: bool,
    /// Error-injection schedule (for evaluation campaigns).
    pub injection: InjectionSchedule,
    /// Injection RNG seed.
    pub injection_seed: u64,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            scheme: SchemeKind::None,
            dmr_update: false,
            injection: InjectionSchedule::Off,
            injection_seed: 0,
        }
    }
}

impl FtConfig {
    /// The paper's production configuration: warp-level ABFT + DMR update.
    pub fn protected() -> Self {
        FtConfig {
            scheme: SchemeKind::FtKMeans,
            dmr_update: true,
            ..Default::default()
        }
    }
}

/// Full estimator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters K.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Relative inertia-improvement tolerance for convergence.
    pub tol: f64,
    /// Seed for initialization.
    pub seed: u64,
    /// Initialization method.
    pub init: InitMethod,
    /// Kernel variant for the assignment stage.
    pub variant: Variant,
    /// Fault-tolerance setup.
    pub ft: FtConfig,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iter: 50,
            tol: 1e-4,
            seed: 0,
            init: InitMethod::RandomSamples,
            variant: Variant::tensor_default(),
            ft: FtConfig::default(),
        }
    }
}

impl KMeansConfig {
    /// Convenience constructor.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            ..Default::default()
        }
    }

    /// Builder-style variant selection.
    pub fn with_variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Builder-style FT selection.
    pub fn with_ft(mut self, ft: FtConfig) -> Self {
        self.ft = ft;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = KMeansConfig::default();
        assert_eq!(c.k, 8);
        assert!(c.max_iter > 0);
        assert_eq!(c.ft.scheme, SchemeKind::None);
        assert!(matches!(c.variant, Variant::Tensor(None)));
    }

    #[test]
    fn builders_compose() {
        let c = KMeansConfig::new(16)
            .with_variant(Variant::Naive)
            .with_ft(FtConfig::protected())
            .with_seed(7);
        assert_eq!(c.k, 16);
        assert_eq!(c.variant, Variant::Naive);
        assert_eq!(c.ft.scheme, SchemeKind::FtKMeans);
        assert!(c.ft.dmr_update);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Variant::Naive.label(), "K-Means Naive");
        assert_eq!(Variant::Tensor(None).label(), "FT K-Means");
    }
}
