//! Estimator configuration.

use crate::error::KMeansError;
use abft::SchemeKind;
use fault::{FaultTarget, InjectionSchedule};
use gpu_sim::timing::TileConfig;
use serde::{Deserialize, Serialize};

/// Which distance/assignment kernel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Thread-per-sample baseline (§III-A1).
    Naive,
    /// SIMT GEMM + separate reduction kernel (§III-A2).
    GemmV1,
    /// GEMM with thread/threadblock-fused reduction (§III-A3).
    FusedV2,
    /// Fully fused with threadblock broadcast (§III-A4).
    BroadcastV3,
    /// Tensor-core pipeline kernel with the given tiling (§III-A5). `None`
    /// selects a per-precision default tile.
    Tensor(Option<TileConfig>),
    /// Bound-pruned scalar assignment (Hamerly's algorithm): a per-sample
    /// upper bound and a single global lower bound skip most distance
    /// computations once centroids settle. Protected by periodic exact
    /// bound revalidation (see [`FtConfig::revalidate_every`]).
    Hamerly,
}

impl Variant {
    /// The production variant with default tiling.
    pub fn tensor_default() -> Self {
        Variant::Tensor(None)
    }

    /// Display label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Naive => "K-Means Naive",
            Variant::GemmV1 => "K-Means V1",
            Variant::FusedV2 => "K-Means V2",
            Variant::BroadcastV3 => "K-Means V3",
            Variant::Tensor(_) => "FT K-Means",
            Variant::Hamerly => "K-Means Hamerly",
        }
    }
}

/// Precision policy for the serving path ([`crate::FittedModel::predict`] /
/// [`crate::FittedModel::score`]).
///
/// The quantized policies score queries against a reduced-precision
/// resident centroid table through the fused distance+argmin kernel
/// ([`crate::variants::predict_fused`]); an error-bound check
/// ([`abft::QuantMargin`]) routes any sample whose argmin margin is inside
/// the quantization noise to the exact fp row, so every policy returns the
/// same labels and distances as [`PredictPolicy::Exact`] — the quantized
/// policies are a throughput knob, not an accuracy knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictPolicy {
    /// Full-precision assignment through the model's fitted kernel variant.
    #[default]
    Exact,
    /// fp16 resident table (2 bytes/element, ~2⁻¹¹ relative error).
    Fp16,
    /// Symmetric per-centroid int8 resident table (1 byte/element).
    Int8,
}

impl PredictPolicy {
    /// The quantization format this policy serves from (`None` for exact).
    pub fn quant_kind(self) -> Option<crate::quant::QuantKind> {
        match self {
            PredictPolicy::Exact => None,
            PredictPolicy::Fp16 => Some(crate::quant::QuantKind::Fp16),
            PredictPolicy::Int8 => Some(crate::quant::QuantKind::Int8),
        }
    }

    /// Display label for benches and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PredictPolicy::Exact => "exact",
            PredictPolicy::Fp16 => "fp16",
            PredictPolicy::Int8 => "int8",
        }
    }
}

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitMethod {
    /// K distinct samples chosen uniformly.
    RandomSamples,
    /// K-means++ (D² weighting) — better seeds, more setup work.
    KMeansPlusPlus,
}

/// Fault-tolerance configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtConfig {
    /// ABFT scheme protecting the distance kernel.
    pub scheme: SchemeKind,
    /// Whether the centroid update runs under DMR.
    pub dmr_update: bool,
    /// Error-injection schedule (for evaluation campaigns).
    pub injection: InjectionSchedule,
    /// Injection RNG seed.
    pub injection_seed: u64,
    /// Which execution sites the injector may corrupt. [`FaultTarget::Any`]
    /// (the default) storms the whole pipeline — MMA accumulators, ABFT
    /// checksums, and the scalar FMA stream of the update phase.
    /// Campaigns reproducing the paper's §V-C protocol restrict to
    /// [`FaultTarget::PayloadMma`], the distance-kernel MMA stream.
    pub fault_target: FaultTarget,
    /// Modeled distance-kernel residency of one fit, in seconds, used to
    /// convert a [`InjectionSchedule::Rate`] into per-launch probabilities.
    ///
    /// `0.0` (the default) derives a per-launch kernel time from the
    /// calibrated timing model — physically faithful, but at simulator
    /// scale a kernel lasts microseconds, so a paper-rate schedule ("tens
    /// of errors per second") almost never fires within a single fit.
    /// Setting this positive instead spreads `residency × rate` expected
    /// errors uniformly over the fit's `max_iter` assignment-kernel
    /// launches, modeling a distance kernel that occupies the GPU for that
    /// many wall seconds — the way the paper's §V-C campaigns sustain
    /// their arrival rates over seconds of execution. Campaign sweeps set
    /// `1.0` so a 50 err/s cell sees ≈50 MMA-stream injections per fit
    /// (under [`FaultTarget::PayloadMma`]; broader targets add arrivals in
    /// the other streams on top).
    pub modeled_residency_s: f64,
    /// Bound-revalidation cadence for [`Variant::Hamerly`]: every this many
    /// iterations an exact-distance sweep over a rotating sample stratum
    /// checks the triangle-inequality bounds; a violation counts as
    /// detected and forces a full un-pruned re-assignment. The final
    /// iteration always revalidates the whole population so no corrupted
    /// bound survives the fit. `0` disables the periodic passes (the
    /// final-iteration sweep still runs). Ignored by the other variants.
    pub revalidate_every: usize,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            scheme: SchemeKind::None,
            dmr_update: false,
            injection: InjectionSchedule::Off,
            injection_seed: 0,
            fault_target: FaultTarget::Any,
            modeled_residency_s: 0.0,
            revalidate_every: 4,
        }
    }
}

impl FtConfig {
    /// The paper's production configuration: warp-level ABFT + DMR update.
    pub fn protected() -> Self {
        FtConfig {
            scheme: SchemeKind::FtKMeans,
            dmr_update: true,
            ..Default::default()
        }
    }

    /// This configuration with injection disabled — the fault-free twin of
    /// a campaign cell (same scheme and DMR setting, so the numerics are
    /// identical; only the fault stream is removed).
    pub fn without_injection(self) -> Self {
        FtConfig {
            injection: InjectionSchedule::Off,
            ..self
        }
    }
}

/// Full estimator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters K.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Relative inertia-improvement tolerance for convergence.
    pub tol: f64,
    /// Seed for initialization.
    pub seed: u64,
    /// Initialization method.
    pub init: InitMethod,
    /// Kernel variant for the assignment stage.
    pub variant: Variant,
    /// Fault-tolerance setup.
    pub ft: FtConfig,
    /// Mini-batch empty-cluster repair threshold (sklearn's
    /// `reassignment_ratio` analog), used only by
    /// [`crate::KMeans::partial_fit`]. After each batch's learning-rate
    /// fold, any center whose accumulated weight falls below
    /// `reassignment_ratio × max(weights)` is deterministically re-seeded
    /// onto the batch sample farthest from its current center (largest
    /// assigned distance; ties and ordering resolved by index, so repair is
    /// byte-identical under serial and parallel executors), and its weight
    /// restarts at the smallest weight among the surviving centers. `0.0`
    /// (the default) disables repair — dead or starved clusters then drift
    /// forever, which is the robustness gap this closes for long-running
    /// service refits. Full-batch fits ignore the field.
    pub reassignment_ratio: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iter: 50,
            tol: 1e-4,
            seed: 0,
            init: InitMethod::RandomSamples,
            variant: Variant::tensor_default(),
            ft: FtConfig::default(),
            reassignment_ratio: 0.0,
        }
    }
}

impl KMeansConfig {
    /// Convenience constructor.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            ..Default::default()
        }
    }

    /// Builder-style variant selection.
    pub fn with_variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Builder-style FT selection.
    pub fn with_ft(mut self, ft: FtConfig) -> Self {
        self.ft = ft;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style initialization method (callers previously had to poke
    /// the public `init` field).
    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }

    /// Builder-style mini-batch empty-cluster repair threshold (see the
    /// [`reassignment_ratio`](KMeansConfig::reassignment_ratio) field;
    /// sklearn defaults to `0.01`).
    pub fn with_reassignment_ratio(mut self, ratio: f64) -> Self {
        self.reassignment_ratio = ratio;
        self
    }

    /// Check this configuration against a problem of `samples` rows and
    /// `dim` features. Every estimator entry point calls this before
    /// touching the device; errors name the offending field.
    pub fn validate(&self, samples: usize, dim: usize) -> Result<(), KMeansError> {
        if self.k == 0 {
            return Err(KMeansError::InvalidConfig {
                field: "k",
                reason: "must be at least 1".into(),
            });
        }
        if self.k > samples {
            return Err(KMeansError::InvalidConfig {
                field: "k",
                reason: format!("k = {} exceeds the {samples} available samples", self.k),
            });
        }
        if dim == 0 {
            return Err(KMeansError::InvalidConfig {
                field: "samples",
                reason: "feature dimension must be positive".into(),
            });
        }
        if self.max_iter == 0 {
            return Err(KMeansError::InvalidConfig {
                field: "max_iter",
                reason: "must be at least 1".into(),
            });
        }
        if !self.tol.is_finite() || self.tol < 0.0 {
            return Err(KMeansError::InvalidConfig {
                field: "tol",
                reason: format!("must be finite and non-negative, got {}", self.tol),
            });
        }
        if !self.reassignment_ratio.is_finite() || !(0.0..=1.0).contains(&self.reassignment_ratio) {
            return Err(KMeansError::InvalidConfig {
                field: "reassignment_ratio",
                reason: format!(
                    "must be a finite fraction in [0, 1], got {}",
                    self.reassignment_ratio
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = KMeansConfig::default();
        assert_eq!(c.k, 8);
        assert!(c.max_iter > 0);
        assert_eq!(c.ft.scheme, SchemeKind::None);
        assert!(matches!(c.variant, Variant::Tensor(None)));
        assert_eq!(c.reassignment_ratio, 0.0, "repair is opt-in");
    }

    #[test]
    fn builders_compose() {
        let c = KMeansConfig::new(16)
            .with_variant(Variant::Naive)
            .with_ft(FtConfig::protected())
            .with_seed(7);
        assert_eq!(c.k, 16);
        assert_eq!(c.variant, Variant::Naive);
        assert_eq!(c.ft.scheme, SchemeKind::FtKMeans);
        assert!(c.ft.dmr_update);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn with_init_selects_the_method() {
        let c = KMeansConfig::new(4).with_init(InitMethod::KMeansPlusPlus);
        assert_eq!(c.init, InitMethod::KMeansPlusPlus);
    }

    #[test]
    fn validate_names_the_offending_field() {
        let field = |cfg: KMeansConfig, m: usize, d: usize| match cfg.validate(m, d) {
            Err(KMeansError::InvalidConfig { field, .. }) => Some(field),
            Ok(()) => None,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(field(KMeansConfig::new(0), 10, 2), Some("k"));
        assert_eq!(field(KMeansConfig::new(11), 10, 2), Some("k"));
        assert_eq!(field(KMeansConfig::new(2), 10, 0), Some("samples"));
        let mut c = KMeansConfig::new(2);
        c.max_iter = 0;
        assert_eq!(field(c, 10, 2), Some("max_iter"));
        let mut c = KMeansConfig::new(2);
        c.tol = f64::NAN;
        assert_eq!(field(c, 10, 2), Some("tol"));
        for bad in [-0.1, 1.5, f64::NAN] {
            let c = KMeansConfig::new(2).with_reassignment_ratio(bad);
            assert_eq!(field(c, 10, 2), Some("reassignment_ratio"));
        }
        let c = KMeansConfig::new(2).with_reassignment_ratio(0.05);
        assert_eq!(field(c, 10, 2), None);
        assert_eq!(field(KMeansConfig::new(2), 10, 2), None);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Variant::Naive.label(), "K-Means Naive");
        assert_eq!(Variant::Tensor(None).label(), "FT K-Means");
    }
}
