//! Clustering quality metrics used by tests and examples.

use gpu_sim::{Matrix, Scalar};

/// Within-cluster sum of squared distances (the K-means objective).
pub fn inertia<T: Scalar>(samples: &Matrix<T>, centroids: &Matrix<T>, labels: &[u32]) -> f64 {
    assert_eq!(samples.rows(), labels.len());
    let mut total = 0.0;
    for (i, &label) in labels.iter().enumerate() {
        let c = label as usize;
        let x = samples.row(i);
        let y = centroids.row(c);
        total += x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| {
                let d = a.to_f64() - b.to_f64();
                d * d
            })
            .sum::<f64>();
    }
    total
}

/// Adjusted Rand index between two labelings (1.0 = identical partitions,
/// ~0.0 = random agreement). Label values need not match, only the induced
/// partitions.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let ka = (*a.iter().max().unwrap() + 1) as usize;
    let kb = (*b.iter().max().unwrap() + 1) as usize;
    let mut table = vec![0u64; ka * kb];
    let mut ra = vec![0u64; ka];
    let mut rb = vec![0u64; kb];
    for i in 0..n {
        let (x, y) = (a[i] as usize, b[i] as usize);
        table[x * kb + y] += 1;
        ra[x] += 1;
        rb[y] += 1;
    }
    let comb2 = |x: u64| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_ij: f64 = table.iter().map(|&x| comb2(x)).sum();
    let sum_a: f64 = ra.iter().map(|&x| comb2(x)).sum();
    let sum_b: f64 = rb.iter().map(|&x| comb2(x)).sum();
    let total = comb2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < f64::EPSILON {
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Fraction of positions where two labelings agree exactly (for comparing
/// runs that share initialization).
pub fn agreement(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 1.0;
    }
    a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inertia_zero_at_centroids() {
        let samples = Matrix::from_vec(2, 2, vec![1.0f64, 2.0, 3.0, 4.0]).unwrap();
        let cents = samples.clone();
        assert_eq!(inertia(&samples, &cents, &[0, 1]), 0.0);
    }

    #[test]
    fn inertia_accumulates_squares() {
        let samples = Matrix::from_vec(1, 2, vec![1.0f64, 1.0]).unwrap();
        let cents = Matrix::from_vec(1, 2, vec![0.0f64, 0.0]).unwrap();
        assert!((inertia(&samples, &cents, &[0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ari_identical_partitions() {
        assert_eq!(adjusted_rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
    }

    #[test]
    fn ari_disagreement_is_low() {
        let a = [0, 0, 0, 0, 1, 1, 1, 1];
        let b = [0, 1, 0, 1, 0, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &b) < 0.1);
    }

    #[test]
    fn agreement_fraction() {
        assert_eq!(agreement(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(agreement(&[], &[]), 1.0);
    }
}
