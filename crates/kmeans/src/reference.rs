//! Plain CPU Lloyd iteration — the ground truth every kernel variant is
//! validated against.
//!
//! The assignment scan is embarrassingly parallel over samples, so it rides
//! the same persistent worker pool as the simulated kernels
//! ([`gpu_sim::exec`]); results are bitwise identical to the serial scan
//! because every row is computed independently in the same order of
//! operations. This keeps cuML-style baseline comparisons apples-to-apples
//! with the parallel device variants.

use gpu_sim::{exec, Matrix, Scalar};

/// Below this many scalar multiply-accumulates (`m · k · dim`) the
/// parallel fan-out costs more than the scan itself; stay on the calling
/// thread.
const PAR_THRESHOLD: usize = 1 << 14;

/// Rows per work chunk in the parallel scan.
const ROWS_PER_CHUNK: usize = 256;

fn assign_rows<T: Scalar>(
    samples: &Matrix<T>,
    centroids: &Matrix<T>,
    row0: usize,
    out: &mut [(u32, T)],
) {
    for (offset, slot) in out.iter_mut().enumerate() {
        let x = samples.row(row0 + offset);
        let mut best = T::INFINITY;
        let mut best_j = u32::MAX;
        for j in 0..centroids.rows() {
            let y = centroids.row(j);
            let mut d = T::ZERO;
            for (a, b) in x.iter().zip(y.iter()) {
                let diff = *a - *b;
                d += diff * diff;
            }
            if d < best {
                best = d;
                best_j = j as u32;
            }
        }
        *slot = (best_j, best);
    }
}

/// Assign each sample to its nearest centroid (squared Euclidean), ties to
/// the lower index. Returns (assignments, squared distances).
pub fn assign_reference<T: Scalar>(
    samples: &Matrix<T>,
    centroids: &Matrix<T>,
) -> (Vec<u32>, Vec<T>) {
    assert_eq!(samples.cols(), centroids.cols(), "dimension mismatch");
    let m = samples.rows();
    let mut out = vec![(u32::MAX, T::INFINITY); m];
    let work = m * centroids.rows() * samples.cols().max(1);
    if work < PAR_THRESHOLD {
        assign_rows(samples, centroids, 0, &mut out);
    } else {
        exec::with_current(|e| {
            e.par_chunks_mut(&mut out, ROWS_PER_CHUNK, |row0, chunk| {
                assign_rows(samples, centroids, row0, chunk);
            });
        });
    }
    out.into_iter().unzip()
}

/// Recompute centroids as the mean of their members. Empty clusters keep
/// their previous position. Returns (centroids, member counts).
pub fn update_reference<T: Scalar>(
    samples: &Matrix<T>,
    labels: &[u32],
    old_centroids: &Matrix<T>,
) -> (Matrix<T>, Vec<u32>) {
    let k = old_centroids.rows();
    let dim = samples.cols();
    let mut sums = Matrix::<T>::zeros(k, dim);
    let mut counts = vec![0u32; k];
    for (i, &label) in labels.iter().enumerate().take(samples.rows()) {
        let c = label as usize;
        counts[c] += 1;
        for d in 0..dim {
            sums.set(c, d, sums.get(c, d) + samples.get(i, d));
        }
    }
    let mut out = Matrix::<T>::zeros(k, dim);
    for (c, &count) in counts.iter().enumerate() {
        for d in 0..dim {
            let v = if count == 0 {
                old_centroids.get(c, d)
            } else {
                sums.get(c, d) / T::from_usize(count as usize)
            };
            out.set(c, d, v);
        }
    }
    (out, counts)
}

/// Full reference K-means: Lloyd iterations until the assignment is stable
/// or `max_iter` is reached. Returns (centroids, labels, iterations).
pub fn lloyd_reference<T: Scalar>(
    samples: &Matrix<T>,
    init: &Matrix<T>,
    max_iter: usize,
) -> (Matrix<T>, Vec<u32>, usize) {
    let mut centroids = init.clone();
    let mut labels = vec![u32::MAX; samples.rows()];
    for it in 0..max_iter {
        let (new_labels, _) = assign_reference(samples, &centroids);
        let stable = new_labels == labels;
        labels = new_labels;
        let (new_centroids, _) = update_reference(samples, &labels, &centroids);
        centroids = new_centroids;
        if stable {
            return (centroids, labels, it + 1);
        }
    }
    (centroids, labels, max_iter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_data() -> (Matrix<f64>, Matrix<f64>) {
        // Four points in two obvious pairs.
        let samples = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.1, 0.0, 5.0, 5.0, 5.1, 5.0]).unwrap();
        let init = Matrix::from_vec(2, 2, vec![0.0, 0.1, 5.0, 4.9]).unwrap();
        (samples, init)
    }

    #[test]
    fn assignment_picks_nearest() {
        let (samples, init) = two_cluster_data();
        let (labels, dists) = assign_reference(&samples, &init);
        assert_eq!(labels, vec![0, 0, 1, 1]);
        assert!(dists.iter().all(|&d| d < 0.1));
    }

    #[test]
    fn ties_break_low_index() {
        let samples = Matrix::from_vec(1, 1, vec![0.0f32]).unwrap();
        let cents = Matrix::from_vec(2, 1, vec![1.0f32, -1.0]).unwrap();
        let (labels, _) = assign_reference(&samples, &cents);
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn update_computes_means() {
        let (samples, init) = two_cluster_data();
        let labels = vec![0, 0, 1, 1];
        let (c, counts) = update_reference(&samples, &labels, &init);
        assert_eq!(counts, vec![2, 2]);
        assert!((c.get(0, 0) - 0.05).abs() < 1e-12);
        assert!((c.get(1, 0) - 5.05).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_keeps_old_position() {
        let samples = Matrix::from_vec(2, 1, vec![1.0f64, 2.0]).unwrap();
        let old = Matrix::from_vec(2, 1, vec![0.0f64, 99.0]).unwrap();
        let (c, counts) = update_reference(&samples, &[0, 0], &old);
        assert_eq!(counts, vec![2, 0]);
        assert_eq!(c.get(1, 0), 99.0);
        assert!((c.get(0, 0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_assignment_is_bitwise_identical_to_serial() {
        // Big enough to cross PAR_THRESHOLD and fan out over the pool.
        let samples = Matrix::<f64>::from_fn(3000, 8, |r, c| ((r * 31 + c * 7) % 97) as f64 * 0.1);
        let cents = Matrix::<f64>::from_fn(25, 8, |r, c| ((r * 13 + c * 3) % 89) as f64 * 0.1);
        // Pin both policies explicitly so the comparison is meaningful even
        // under the FTK_EXEC=serial CI leg (where the global pool is serial).
        let parallel = gpu_sim::exec::with_executor(&gpu_sim::Executor::with_workers(4), || {
            assign_reference(&samples, &cents)
        });
        let serial = gpu_sim::exec::with_executor(&gpu_sim::Executor::serial(), || {
            assign_reference(&samples, &cents)
        });
        assert_eq!(parallel, serial);
    }

    #[test]
    fn lloyd_converges_on_separable_data() {
        let (samples, init) = two_cluster_data();
        let (c, labels, iters) = lloyd_reference(&samples, &init, 20);
        assert!(iters < 20);
        assert_eq!(labels, vec![0, 0, 1, 1]);
        assert!((c.get(0, 0) - 0.05).abs() < 1e-9);
    }
}
