//! Plain CPU Lloyd iteration — the ground truth every kernel variant is
//! validated against.

use gpu_sim::{Matrix, Scalar};

/// Assign each sample to its nearest centroid (squared Euclidean), ties to
/// the lower index. Returns (assignments, squared distances).
pub fn assign_reference<T: Scalar>(
    samples: &Matrix<T>,
    centroids: &Matrix<T>,
) -> (Vec<u32>, Vec<T>) {
    assert_eq!(samples.cols(), centroids.cols(), "dimension mismatch");
    let mut labels = Vec::with_capacity(samples.rows());
    let mut dists = Vec::with_capacity(samples.rows());
    for i in 0..samples.rows() {
        let x = samples.row(i);
        let mut best = T::INFINITY;
        let mut best_j = u32::MAX;
        for j in 0..centroids.rows() {
            let y = centroids.row(j);
            let mut d = T::ZERO;
            for (a, b) in x.iter().zip(y.iter()) {
                let diff = *a - *b;
                d += diff * diff;
            }
            if d < best {
                best = d;
                best_j = j as u32;
            }
        }
        labels.push(best_j);
        dists.push(best);
    }
    (labels, dists)
}

/// Recompute centroids as the mean of their members. Empty clusters keep
/// their previous position. Returns (centroids, member counts).
pub fn update_reference<T: Scalar>(
    samples: &Matrix<T>,
    labels: &[u32],
    old_centroids: &Matrix<T>,
) -> (Matrix<T>, Vec<u32>) {
    let k = old_centroids.rows();
    let dim = samples.cols();
    let mut sums = Matrix::<T>::zeros(k, dim);
    let mut counts = vec![0u32; k];
    for (i, &label) in labels.iter().enumerate().take(samples.rows()) {
        let c = label as usize;
        counts[c] += 1;
        for d in 0..dim {
            sums.set(c, d, sums.get(c, d) + samples.get(i, d));
        }
    }
    let mut out = Matrix::<T>::zeros(k, dim);
    for (c, &count) in counts.iter().enumerate() {
        for d in 0..dim {
            let v = if count == 0 {
                old_centroids.get(c, d)
            } else {
                sums.get(c, d) / T::from_usize(count as usize)
            };
            out.set(c, d, v);
        }
    }
    (out, counts)
}

/// Full reference K-means: Lloyd iterations until the assignment is stable
/// or `max_iter` is reached. Returns (centroids, labels, iterations).
pub fn lloyd_reference<T: Scalar>(
    samples: &Matrix<T>,
    init: &Matrix<T>,
    max_iter: usize,
) -> (Matrix<T>, Vec<u32>, usize) {
    let mut centroids = init.clone();
    let mut labels = vec![u32::MAX; samples.rows()];
    for it in 0..max_iter {
        let (new_labels, _) = assign_reference(samples, &centroids);
        let stable = new_labels == labels;
        labels = new_labels;
        let (new_centroids, _) = update_reference(samples, &labels, &centroids);
        centroids = new_centroids;
        if stable {
            return (centroids, labels, it + 1);
        }
    }
    (centroids, labels, max_iter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_data() -> (Matrix<f64>, Matrix<f64>) {
        // Four points in two obvious pairs.
        let samples = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.1, 0.0, 5.0, 5.0, 5.1, 5.0]).unwrap();
        let init = Matrix::from_vec(2, 2, vec![0.0, 0.1, 5.0, 4.9]).unwrap();
        (samples, init)
    }

    #[test]
    fn assignment_picks_nearest() {
        let (samples, init) = two_cluster_data();
        let (labels, dists) = assign_reference(&samples, &init);
        assert_eq!(labels, vec![0, 0, 1, 1]);
        assert!(dists.iter().all(|&d| d < 0.1));
    }

    #[test]
    fn ties_break_low_index() {
        let samples = Matrix::from_vec(1, 1, vec![0.0f32]).unwrap();
        let cents = Matrix::from_vec(2, 1, vec![1.0f32, -1.0]).unwrap();
        let (labels, _) = assign_reference(&samples, &cents);
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn update_computes_means() {
        let (samples, init) = two_cluster_data();
        let labels = vec![0, 0, 1, 1];
        let (c, counts) = update_reference(&samples, &labels, &init);
        assert_eq!(counts, vec![2, 2]);
        assert!((c.get(0, 0) - 0.05).abs() < 1e-12);
        assert!((c.get(1, 0) - 5.05).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_keeps_old_position() {
        let samples = Matrix::from_vec(2, 1, vec![1.0f64, 2.0]).unwrap();
        let old = Matrix::from_vec(2, 1, vec![0.0f64, 99.0]).unwrap();
        let (c, counts) = update_reference(&samples, &[0, 0], &old);
        assert_eq!(counts, vec![2, 0]);
        assert_eq!(c.get(1, 0), 99.0);
        assert!((c.get(0, 0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn lloyd_converges_on_separable_data() {
        let (samples, init) = two_cluster_data();
        let (c, labels, iters) = lloyd_reference(&samples, &init, 20);
        assert!(iters < 20);
        assert_eq!(labels, vec![0, 0, 1, 1]);
        assert!((c.get(0, 0) - 0.05).abs() < 1e-9);
    }
}
