//! V2 — kernel fusion at thread and threadblock level (§III-A3).
//!
//! The row-minimum over each block's tile is computed *inside* the GEMM
//! kernel; only one partial (distance, index) pair per (row, block-column)
//! reaches global memory — `TB_N/K` of V1's reduction traffic. A small
//! second kernel folds the per-block partials.

use crate::assign::AssignmentResult;
use crate::device_data::DeviceData;
use crate::variants::gemm::{simt_gemm_driver, TB_M, TB_N};
use crate::variants::staged_block_row_min;
use gpu_sim::memory::GlobalIndexBuffer;
use gpu_sim::mma::FaultHook;
use gpu_sim::{
    launch_grid_labeled, Counters, DeviceProfile, Dim3, GlobalBuffer, LaunchConfig, Scalar,
    ScratchBuf, SimError,
};

/// Rows per block in the partial-fold kernel.
const FOLD_ROWS_PER_BLOCK: usize = 256;

/// Run the V2 assignment: fused GEMM+row-min, then fold partials.
pub fn fused_assign<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    hook: &dyn FaultHook<T>,
    counters: &Counters,
) -> Result<AssignmentResult<T>, SimError> {
    let (m, k) = (data.m, data.k);
    let bn = k.div_ceil(TB_N).max(1);

    // Per-(row, block-column) partial results.
    let part_dist = GlobalBuffer::<T>::filled(m * bn, T::INFINITY);
    part_dist.set_sanitizer_label("fused.part_dist");
    let part_idx = GlobalIndexBuffer::zeros(m * bn);
    part_idx.set_sanitizer_label("fused.part_idx");
    part_idx.fill(u32::MAX);

    simt_gemm_driver(
        device,
        data,
        hook,
        counters,
        |ctx, acc, row0, rows, col0, cols| {
            let mut mins = [(T::INFINITY, u32::MAX); TB_M];
            staged_block_row_min(
                acc,
                &data.sample_norms,
                &data.centroid_norms,
                row0,
                rows,
                col0,
                cols,
                &mut mins[..rows],
                ctx.counters,
            );
            // thread 0 writes the block's partial answers (Fig. 2 step 2)
            for (i, &(d, j)) in mins[..rows].iter().enumerate() {
                let slot = (row0 + i) * bn + ctx.bx;
                part_dist.store_counted(slot, d, ctx.counters);
                // Index traffic is not byte-counted by design (see
                // GlobalIndexBuffer). ftk-lint: allow(raw-access)
                part_idx.store(slot, j);
            }
        },
    )?;

    // Fold the bn partials per row.
    let labels = GlobalIndexBuffer::zeros(m);
    labels.set_sanitizer_label("fused.labels");
    let dists = GlobalBuffer::<T>::filled(m, T::INFINITY);
    dists.set_sanitizer_label("fused.dists");
    let grid = Dim3::x(m.div_ceil(FOLD_ROWS_PER_BLOCK).max(1));
    let cfg = LaunchConfig {
        grid,
        threads_per_block: 256,
        smem_bytes: 0,
    };
    launch_grid_labeled(device, cfg, counters, "fused_assign", |ctx| {
        let row0 = ctx.bx * FOLD_ROWS_PER_BLOCK;
        let rows = FOLD_ROWS_PER_BLOCK.min(m.saturating_sub(row0));
        if rows == 0 {
            return;
        }
        // Each row's bn partials are contiguous: stream them as runs.
        let mut pd = ScratchBuf::<T, 64>::filled(bn, T::ZERO);
        let mut pj = ScratchBuf::<u32, 64>::filled(bn, 0);
        let mut best_d = [T::INFINITY; FOLD_ROWS_PER_BLOCK];
        let mut best_j = [u32::MAX; FOLD_ROWS_PER_BLOCK];
        for i in 0..rows {
            part_dist.load_run((row0 + i) * bn, &mut pd, ctx.counters);
            part_idx.read_range((row0 + i) * bn, &mut pj);
            let mut best = T::INFINITY;
            let mut best_idx = u32::MAX;
            for (&d, &j) in pd.iter().zip(pj.iter()) {
                if d < best || (d == best && j < best_idx) {
                    best = d;
                    best_idx = j;
                }
            }
            best_d[i] = best;
            best_j[i] = best_idx;
        }
        labels.write_range(row0, &best_j[..rows]);
        dists.store_run(row0, &best_d[..rows], ctx.counters);
    })?;

    Ok(AssignmentResult {
        labels: labels.to_vec(),
        distances: dists.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assign_reference;
    use crate::variants::gemm::gemm_assign;
    use gpu_sim::mma::NoFault;
    use gpu_sim::Matrix;

    #[test]
    fn matches_reference_and_v1() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::from_fn(150, 9, |r, c| ((r * 5 + c * 3) % 17) as f64 - 8.0);
        let cents = Matrix::<f64>::from_fn(130, 9, |r, c| ((r * 3 + c * 7) % 13) as f64 - 6.0);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let v2 = fused_assign(&dev, &data, &NoFault, &c).unwrap();
        let v1 = gemm_assign(&dev, &data, &NoFault, &c).unwrap();
        let (want, _) = assign_reference(&samples, &cents);
        assert_eq!(v2.labels, want);
        assert_eq!(v2.labels, v1.labels);
    }

    #[test]
    fn writes_less_than_v1() {
        let dev = DeviceProfile::a100();
        let c1 = Counters::new();
        let c2 = Counters::new();
        let samples = Matrix::<f32>::from_fn(256, 16, |r, c| ((r + c) % 7) as f32);
        let cents = Matrix::<f32>::from_fn(256, 16, |r, c| ((r * c) % 5) as f32);
        let d1 = DeviceData::upload(&dev, &samples, &cents, &c1).unwrap();
        let d2 = DeviceData::upload(&dev, &samples, &cents, &c2).unwrap();
        let b1 = c1.snapshot();
        let b2 = c2.snapshot();
        let _ = gemm_assign(&dev, &d1, &NoFault, &c1).unwrap();
        let _ = fused_assign(&dev, &d2, &NoFault, &c2).unwrap();
        let v1 = c1.snapshot().since(&b1);
        let v2 = c2.snapshot().since(&b2);
        assert!(
            v2.bytes_stored < v1.bytes_stored / 4,
            "fusion must slash store traffic: v1={} v2={}",
            v1.bytes_stored,
            v2.bytes_stored
        );
    }
}
