//! V4 — the tensor-core pipeline kernel (§III-A5, Fig. 4) with optional
//! online fault tolerance (§IV, Fig. 6).
//!
//! Per threadblock the kernel runs the paper's structure faithfully:
//!
//! 1. a `k_stage`-deep asynchronous copy pipeline stages A/B tiles into
//!    shared memory (`cp.async` + commit/wait groups, lines 03–09, 13–14,
//!    18–19),
//! 2. each warp loads register fragments and issues tensor-core MMA slabs
//!    over its `wm x wn` accumulator (line 17),
//! 3. with FT enabled, input checksums are folded from the *register
//!    fragments* (lines 15–18 — no extra memory traffic, which is why the
//!    scheme survives `cp.async`) and three checksum MMAs accumulate the
//!    protected sums (lines 22–24),
//! 4. every `DETECT_INTERVAL_K` steps and at the loop end the accumulator
//!    is verified and, for FT K-means, corrected in place via location
//!    encoding (lines 25–31),
//! 5. the fused epilogue performs the row-minimum with the norm identity
//!    and merges into the global argmin store (threadblock broadcast).
//!
//! Wu's threadblock-level scheme instead absorbs whole staged tiles; on
//! `cp.async` devices those values are *re-read from global memory*
//! (charged to `ft_extra_loads`) because the register-staged observation
//! path no longer exists.

use crate::assign::AssignmentResult;
use crate::device_data::DeviceData;
use abft::online::{CheckOutcome, WarpOnlineState};
use abft::schemes::ftkmeans::FtKMeansScheme;
use abft::schemes::kosaian::KosaianScheme;
use abft::schemes::wu::WuBlockState;
use abft::SchemeKind;
use fault::CampaignStats;
use gpu_sim::atomics::ArgminStore;
use gpu_sim::mma::{shapes, FaultHook, FragmentMma, MmaSite};
use gpu_sim::timing::TileConfig;
use gpu_sim::warp::{load_a_fragment, load_b_fragment};
use gpu_sim::{
    launch_grid_labeled, AsyncPipeline, CopyPath, Counters, DeviceProfile, Dim3, LaunchConfig,
    Precision, Scalar, ScratchBuf, SimError,
};
use parking_lot::Mutex;

/// Online detection interval along the K dimension (Fig. 6 line 25:
/// `if k % 256 == 0`).
pub const DETECT_INTERVAL_K: usize = 256;

fn validate<T: Scalar>(device: &DeviceProfile, tile: &TileConfig) -> Result<(), SimError> {
    if tile.wm == 0
        || tile.wn == 0
        || !tile.tb_m.is_multiple_of(tile.wm)
        || !tile.tb_n.is_multiple_of(tile.wn)
    {
        return Err(SimError::InvalidConfig(format!(
            "warp tile {}x{} must divide threadblock tile {}x{}",
            tile.wm, tile.wn, tile.tb_m, tile.tb_n
        )));
    }
    let mma_k = match T::PRECISION {
        Precision::Fp32 => shapes::FP32_MMA.2,
        Precision::Fp64 => shapes::FP64_MMA.2,
    };
    if tile.tb_k == 0 || !tile.tb_k.is_multiple_of(mma_k) {
        return Err(SimError::InvalidConfig(format!(
            "Threadblock.K = {} must be a positive multiple of the MMA K = {mma_k}",
            tile.tb_k
        )));
    }
    if tile.k_stages < 2 {
        return Err(SimError::InvalidConfig(
            "pipeline needs at least 2 stages".into(),
        ));
    }
    let smem = tile.smem_bytes(T::PRECISION);
    if smem > device.smem_per_block {
        return Err(SimError::SharedMemoryOverflow {
            requested: smem,
            limit: device.smem_per_block,
        });
    }
    if tile.threads() > device.max_threads_per_block {
        return Err(SimError::ThreadLimitExceeded {
            requested: tile.threads(),
            limit: device.max_threads_per_block,
        });
    }
    Ok(())
}

/// Run the tensor-core assignment kernel.
#[allow(clippy::too_many_arguments)]
pub fn tensor_assign<T: Scalar>(
    device: &DeviceProfile,
    tile: TileConfig,
    data: &DeviceData<T>,
    scheme: SchemeKind,
    hook: &dyn FaultHook<T>,
    counters: &Counters,
    stats: &Mutex<CampaignStats>,
) -> Result<AssignmentResult<T>, SimError> {
    validate::<T>(device, &tile)?;
    let (m, kc, dim) = (data.m, data.k, data.dim);
    let mma_k = match T::PRECISION {
        Precision::Fp32 => shapes::FP32_MMA.2,
        Precision::Fp64 => shapes::FP64_MMA.2,
    };
    let bm = m.div_ceil(tile.tb_m);
    let bn = kc.div_ceil(tile.tb_n);
    let n_ktiles = dim.div_ceil(tile.tb_k).max(1);
    let warps_n = tile.tb_n / tile.wn;
    let warps_m = tile.tb_m / tile.wm;
    let n_warps = warps_m * warps_n;
    let path = if device.has_async_copy {
        CopyPath::AsyncBypass
    } else {
        CopyPath::RegisterStaged
    };
    let store = ArgminStore::<T>::new(m);
    let exec = FragmentMma::new::<T>(tile.wm, tile.wn);
    let elem = std::mem::size_of::<T>();

    let cfg = LaunchConfig {
        grid: Dim3::xy(bn.max(1), bm.max(1)),
        threads_per_block: tile.threads(),
        smem_bytes: tile.smem_bytes(T::PRECISION),
    };

    launch_grid_labeled(device, cfg, counters, "tensor_assign", |ctx| {
        let row0 = ctx.by * tile.tb_m;
        let col0 = ctx.bx * tile.tb_n;
        let rows_valid = tile.tb_m.min(m.saturating_sub(row0));
        let cols_valid = tile.tb_n.min(kc.saturating_sub(col0));
        if rows_valid == 0 || cols_valid == 0 {
            return;
        }
        let block = (ctx.by, ctx.bx);

        let mut pipeline =
            AsyncPipeline::<T>::new(tile.k_stages, tile.tb_m, tile.tb_n, tile.tb_k, path);
        // All warp accumulators in one flat buffer (one allocation per
        // block, reused across every k-step); warp `w` owns
        // `accs[w*wsize..(w+1)*wsize]`.
        let wsize = tile.wm * tile.wn;
        let mut accs: Vec<T> = vec![T::ZERO; n_warps * wsize];
        let mut warp_states: Option<Vec<WarpOnlineState<T>>> = match scheme {
            SchemeKind::FtKMeans => {
                let s = FtKMeansScheme::new(T::PRECISION);
                Some(
                    (0..n_warps)
                        .map(|_| s.warp_state(tile.wm, tile.wn))
                        .collect(),
                )
            }
            SchemeKind::Kosaian => {
                let s = KosaianScheme::new(T::PRECISION);
                Some(
                    (0..n_warps)
                        .map(|_| s.warp_state(tile.wm, tile.wn))
                        .collect(),
                )
            }
            _ => None,
        };
        let mut wu_state: Option<WuBlockState<T>> = (scheme == SchemeKind::Wu)
            .then(|| WuBlockState::new(tile.tb_m, tile.tb_n, T::PRECISION));

        let fill_a = |dst: &mut gpu_sim::SharedTile<T>, k0: usize, c: &gpu_sim::CounterSink| {
            crate::variants::fill_tile_from_global(dst, &data.samples, row0, k0, m, dim, c);
        };
        let fill_b = |dst: &mut gpu_sim::SharedTile<T>, k0: usize, c: &gpu_sim::CounterSink| {
            crate::variants::fill_tile_from_global(dst, &data.centroids, col0, k0, kc, dim, c);
        };

        // Prologue: stage the first k_stages-1 tiles (Fig. 4 lines 03-07).
        let prologue = (tile.k_stages - 1).min(n_ktiles);
        for s in 0..prologue {
            let k0 = s * tile.tb_k;
            pipeline.cp_async(
                s,
                ctx.counters,
                |t| fill_a(t, k0, ctx.counters),
                |t| fill_b(t, k0, ctx.counters),
            );
            pipeline.commit_group();
        }
        let mut committed = prologue;

        let mut a_frag = ScratchBuf::<T, 1024>::filled(tile.wm * mma_k, T::ZERO);
        let mut b_frag = ScratchBuf::<T, 1024>::filled(tile.wn * mma_k, T::ZERO);

        for kt in 0..n_ktiles {
            // Prefetch the tile k_stages-1 ahead (Fig. 4 lines 13-14).
            let pf = kt + tile.k_stages - 1;
            if pf < n_ktiles {
                let stage = pf % tile.k_stages;
                let k0 = pf * tile.tb_k;
                pipeline.cp_async(
                    stage,
                    ctx.counters,
                    |t| fill_a(t, k0, ctx.counters),
                    |t| fill_b(t, k0, ctx.counters),
                );
                pipeline.commit_group();
                committed += 1;
            }
            // Wait until this iteration's tile is resident (line 08/19).
            pipeline.wait_group(committed - kt - 1);
            ctx.barrier();

            let stage = kt % tile.k_stages;

            // Wu's threadblock-level checksums: absorb the staged tiles. On
            // cp.async devices the values must be re-read from global.
            if let Some(wu) = wu_state.as_mut() {
                if path == CopyPath::AsyncBypass {
                    ctx.counters
                        .add_ft_extra_loads(((tile.tb_m + tile.tb_n) * tile.tb_k * elem) as u64);
                }
                wu.absorb_tiles(
                    pipeline.a(stage),
                    pipeline.b(stage),
                    tile.tb_k,
                    ctx.counters,
                );
            }

            // Warp MMA main loop (Fig. 4 lines 15-17).
            for wi in 0..warps_m {
                for kk0 in (0..tile.tb_k).step_by(mma_k) {
                    // The A fragment depends only on (wi, kk0): load it once
                    // and share it across this warp row's column warps.
                    load_a_fragment(
                        pipeline.a(stage),
                        wi * tile.wm,
                        kk0,
                        tile.wm,
                        mma_k,
                        &mut a_frag,
                    );
                    for wj in 0..warps_n {
                        let warp_id = wi * warps_n + wj;
                        let acc = &mut accs[warp_id * wsize..(warp_id + 1) * wsize];
                        load_b_fragment(
                            pipeline.b(stage),
                            wj * tile.wn,
                            kk0,
                            tile.wn,
                            mma_k,
                            &mut b_frag,
                        );
                        let site = MmaSite {
                            block,
                            warp: warp_id,
                            k_step: kt * tile.tb_k + kk0,
                            is_checksum: false,
                        };
                        exec.mma(acc, &a_frag, &b_frag, mma_k, site, hook, ctx.counters);
                        if let Some(states) = warp_states.as_mut() {
                            states[warp_id].accumulate(
                                &a_frag,
                                &b_frag,
                                mma_k,
                                site,
                                hook,
                                ctx.counters,
                            );
                        }
                    }
                }
            }

            // Online verification (Fig. 6 lines 25-31).
            let k_end = (kt + 1) * tile.tb_k;
            let at_interval = k_end.is_multiple_of(DETECT_INTERVAL_K);
            let at_end = kt == n_ktiles - 1;
            if at_interval || at_end {
                if let Some(states) = warp_states.as_mut() {
                    for wi in 0..warps_m {
                        for wj in 0..warps_n {
                            let warp_id = wi * warps_n + wj;
                            let acc = &mut accs[warp_id * wsize..(warp_id + 1) * wsize];
                            let outcome = states[warp_id].check(acc, k_end, ctx.counters);
                            record_outcome(stats, outcome);
                            if let CheckOutcome::RecomputeRequired { .. } = outcome {
                                // Detection-only scheme: time-redundant
                                // recomputation of the warp tile from global
                                // memory, then re-baseline.
                                recompute_warp(
                                    data,
                                    row0 + wi * tile.wm,
                                    col0 + wj * tile.wn,
                                    &tile,
                                    mma_k,
                                    k_end,
                                    &exec,
                                    block,
                                    warp_id,
                                    ctx.counters,
                                    acc,
                                );
                                states[warp_id].rebaseline(acc, ctx.counters);
                            }
                        }
                    }
                }
                if let Some(wu) = wu_state.as_mut() {
                    let (wm, wn) = (tile.wm, tile.wn);
                    let warp_elem = |r: usize, c: usize| {
                        ((r / wm) * warps_n + (c / wn)) * wsize + (r % wm) * wn + (c % wn)
                    };
                    // Assemble a block-level view of the distributed warp
                    // accumulators, verify it, and write corrections back.
                    let mut tile_copy = vec![T::ZERO; tile.tb_m * tile.tb_n];
                    for r in 0..tile.tb_m {
                        for c in 0..tile.tb_n {
                            tile_copy[r * tile.tb_n + c] = accs[warp_elem(r, c)];
                        }
                    }
                    let outcome = wu.check_and_correct(
                        |r, c| tile_copy[r * tile.tb_n + c],
                        |r, c, v| {
                            accs[warp_elem(r, c)] = v;
                        },
                        ctx.counters,
                    );
                    record_outcome(stats, outcome);
                    if let CheckOutcome::RecomputeRequired { .. } = outcome {
                        // Block-level recomputation: redo every warp tile.
                        for wi in 0..warps_m {
                            for wj in 0..warps_n {
                                let warp_id = wi * warps_n + wj;
                                recompute_warp(
                                    data,
                                    row0 + wi * wm,
                                    col0 + wj * wn,
                                    &tile,
                                    mma_k,
                                    k_end,
                                    &exec,
                                    block,
                                    warp_id,
                                    ctx.counters,
                                    &mut accs[warp_id * wsize..(warp_id + 1) * wsize],
                                );
                            }
                        }
                        let accs_ref = &accs;
                        wu.rebaseline_from(|r, c| accs_ref[warp_elem(r, c)], ctx.counters);
                    }
                }
            }
        }

        // Fused epilogue: row-minimum with the norm identity, then the
        // threadblock broadcast merge. Norm vectors are staged once per
        // block as contiguous runs (uncounted, matching the element path).
        let two = T::ONE + T::ONE;
        let mut xn = ScratchBuf::<T, 256>::filled(rows_valid, T::ZERO);
        data.sample_norms.read_range(row0, &mut xn);
        let mut yn = ScratchBuf::<T, 256>::filled(cols_valid, T::ZERO);
        data.centroid_norms.read_range(col0, &mut yn);
        let mut best = ScratchBuf::<(T, u32), 256>::filled(rows_valid, (T::INFINITY, u32::MAX));
        for wi in 0..warps_m {
            let r_base = wi * tile.wm;
            if r_base >= rows_valid {
                continue;
            }
            for wj in 0..warps_n {
                let c_base = wj * tile.wn;
                if c_base >= cols_valid {
                    continue;
                }
                let acc = &accs[(wi * warps_n + wj) * wsize..(wi * warps_n + wj + 1) * wsize];
                for i in 0..tile.wm.min(rows_valid - r_base) {
                    let row = r_base + i;
                    let x = xn[row];
                    let slot = &mut best[row];
                    let cols_here = tile.wn.min(cols_valid - c_base);
                    let arow = &acc[i * tile.wn..i * tile.wn + cols_here];
                    for (j, &xy) in arow.iter().enumerate() {
                        let col_g = (col0 + c_base + j) as u32;
                        let d = x + yn[c_base + j] - two * xy;
                        if d < slot.0 || (d == slot.0 && col_g < slot.1) {
                            *slot = (d, col_g);
                        }
                    }
                }
            }
        }
        ctx.counters.add_fma((rows_valid * cols_valid * 2) as u64);
        ctx.barrier();
        for (i, &(d, j)) in best.iter().enumerate() {
            store.merge(row0 + i, d, j, ctx.counters);
        }
    })?;

    let (distances, labels) = store.snapshot();
    Ok(AssignmentResult { labels, distances })
}

fn record_outcome(stats: &Mutex<CampaignStats>, outcome: CheckOutcome) {
    let mut s = stats.lock();
    match outcome {
        CheckOutcome::Clean => s.clean_sweeps += 1,
        CheckOutcome::Corrected { .. } => {
            s.detected += 1;
            s.corrected += 1;
        }
        CheckOutcome::Rebaselined => {
            s.detected += 1;
            s.rebaselined += 1;
        }
        CheckOutcome::RecomputeRequired { .. } => {
            s.detected += 1;
            s.recomputed += 1;
        }
    }
}

/// Time-redundant recomputation of one warp tile's accumulator from global
/// memory over `[0, k_end)` — the correction path of detection-only
/// schemes. Charges the extra global loads it performs.
#[allow(clippy::too_many_arguments)]
fn recompute_warp<T: Scalar, C: gpu_sim::EventSink + ?Sized>(
    data: &DeviceData<T>,
    grow0: usize,
    gcol0: usize,
    tile: &TileConfig,
    mma_k: usize,
    k_end: usize,
    exec: &FragmentMma,
    block: (usize, usize),
    warp_id: usize,
    counters: &C,
    acc: &mut [T],
) {
    acc.fill(T::ZERO);
    let mut a_frag = ScratchBuf::<T, 1024>::filled(tile.wm * mma_k, T::ZERO);
    let mut b_frag = ScratchBuf::<T, 1024>::filled(tile.wn * mma_k, T::ZERO);
    let elem = std::mem::size_of::<T>() as u64;
    // Stage each fragment row as a contiguous run (zero-padded at the
    // problem edge), charging in-bounds elements in bulk.
    for k0 in (0..k_end.min(data.dim.next_multiple_of(mma_k))).step_by(mma_k) {
        let mut loaded = 0u64;
        let run = mma_k.min(data.dim.saturating_sub(k0));
        for (i, dst) in a_frag.chunks_exact_mut(mma_k).enumerate() {
            let r = grow0 + i;
            if r < data.m && run > 0 {
                data.samples.read_range(r * data.dim + k0, &mut dst[..run]);
                dst[run..].fill(T::ZERO);
                loaded += run as u64;
            } else {
                dst.fill(T::ZERO);
            }
        }
        for (j, dst) in b_frag.chunks_exact_mut(mma_k).enumerate() {
            let r = gcol0 + j;
            if r < data.k && run > 0 {
                data.centroids
                    .read_range(r * data.dim + k0, &mut dst[..run]);
                dst[run..].fill(T::ZERO);
                loaded += run as u64;
            } else {
                dst.fill(T::ZERO);
            }
        }
        counters.add_loaded(loaded * elem);
        counters.add_ft_extra_loads(loaded * elem);
        let site = MmaSite {
            block,
            warp: warp_id,
            k_step: k0,
            is_checksum: false,
        };
        // Recomputation bypasses the fault hook: under SEU at most one
        // error strikes per interval and it already fired.
        exec.mma(
            acc,
            &a_frag,
            &b_frag,
            mma_k,
            site,
            &gpu_sim::NoFault,
            counters,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::default_tile;
    use crate::reference::assign_reference;
    use fault::{Injector, PlannedInjection};
    use gpu_sim::mma::NoFault;
    use gpu_sim::Matrix;

    fn small_tile() -> TileConfig {
        TileConfig {
            tb_m: 16,
            tb_n: 16,
            tb_k: 8,
            wm: 8,
            wn: 8,
            k_stages: 2,
        }
    }

    fn mk_data_f64(
        m: usize,
        k: usize,
        dim: usize,
    ) -> (DeviceProfile, Counters, Matrix<f64>, Matrix<f64>) {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples =
            Matrix::<f64>::from_fn(m, dim, |r, cc| ((r * 7 + cc * 13) % 23) as f64 * 0.25 - 2.5);
        let cents =
            Matrix::<f64>::from_fn(k, dim, |r, cc| ((r * 11 + cc * 3) % 19) as f64 * 0.25 - 2.0);
        (dev, c, samples, cents)
    }

    #[test]
    fn matches_reference_f64_odd_shapes() {
        let (dev, c, samples, cents) = mk_data_f64(77, 21, 13);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let stats = Mutex::new(CampaignStats::default());
        let out = tensor_assign(
            &dev,
            small_tile(),
            &data,
            SchemeKind::None,
            &NoFault,
            &c,
            &stats,
        )
        .unwrap();
        let (want, want_d) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want);
        for (a, b) in out.distances.iter().zip(want_d.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_reference_f32_with_default_tile() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f32>::from_fn(300, 24, |r, cc| ((r + cc * 7) % 11) as f32 - 5.0);
        let cents = Matrix::<f32>::from_fn(40, 24, |r, cc| ((r * 3 + cc) % 13) as f32 - 6.0);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let stats = Mutex::new(CampaignStats::default());
        let out = tensor_assign(
            &dev,
            default_tile(Precision::Fp32),
            &data,
            SchemeKind::None,
            &NoFault,
            &c,
            &stats,
        )
        .unwrap();
        let (want, _) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want);
    }

    #[test]
    fn ft_scheme_clean_run_matches_and_counts_sweeps() {
        let (dev, c, samples, cents) = mk_data_f64(64, 20, 16);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let stats = Mutex::new(CampaignStats::default());
        let out = tensor_assign(
            &dev,
            small_tile(),
            &data,
            SchemeKind::FtKMeans,
            &NoFault,
            &c,
            &stats,
        )
        .unwrap();
        let (want, _) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want);
        let s = stats.lock();
        assert!(s.clean_sweeps > 0);
        assert_eq!(s.detected, 0);
        assert!(c.snapshot().ft_mma_ops > 0, "checksum MMAs issued");
    }

    #[test]
    fn injected_payload_error_is_corrected() {
        let (dev, c, samples, cents) = mk_data_f64(48, 12, 16);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        // Fault-free baseline.
        let stats0 = Mutex::new(CampaignStats::default());
        let clean = tensor_assign(
            &dev,
            small_tile(),
            &data,
            SchemeKind::FtKMeans,
            &NoFault,
            &c,
            &stats0,
        )
        .unwrap();
        // Inject a moderate, locatable flip (top mantissa bit) into block
        // (1,0), warp 0, k-step 8.
        let inj = Injector::planned(vec![PlannedInjection {
            block: (1, 0),
            warp: 0,
            k_step: 8,
            elem_idx: 5,
            bit: 51,
            target_checksum: false,
        }]);
        let stats = Mutex::new(CampaignStats::default());
        let out = tensor_assign(
            &dev,
            small_tile(),
            &data,
            SchemeKind::FtKMeans,
            &inj,
            &c,
            &stats,
        )
        .unwrap();
        assert_eq!(inj.injected_count(), 1, "fault fired");
        let s = stats.lock();
        assert_eq!(s.corrected, 1, "location encoding repaired it");
        drop(s);
        assert_eq!(out.labels, clean.labels, "final assignment unaffected");
        for (a, b) in out.distances.iter().zip(clean.distances.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn injected_checksum_error_rebaselines() {
        let (dev, c, samples, cents) = mk_data_f64(32, 12, 16);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let inj = Injector::planned(vec![PlannedInjection {
            block: (0, 0),
            warp: 0,
            k_step: 0,
            elem_idx: 0,
            bit: 62,
            target_checksum: true,
        }]);
        let stats = Mutex::new(CampaignStats::default());
        let out = tensor_assign(
            &dev,
            small_tile(),
            &data,
            SchemeKind::FtKMeans,
            &inj,
            &c,
            &stats,
        )
        .unwrap();
        assert_eq!(inj.injected_count(), 1);
        assert_eq!(
            stats.lock().rebaselined,
            1,
            "checksum hit resolved by re-baseline"
        );
        let (want, _) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want, "payload was never wrong");
    }

    #[test]
    fn kosaian_recomputes_and_recovers() {
        let (dev, c, samples, cents) = mk_data_f64(48, 12, 16);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let inj = Injector::planned(vec![PlannedInjection {
            block: (0, 0),
            warp: 1,
            k_step: 8,
            elem_idx: 3,
            bit: 61,
            target_checksum: false,
        }]);
        let stats = Mutex::new(CampaignStats::default());
        let before = c.snapshot();
        let out = tensor_assign(
            &dev,
            small_tile(),
            &data,
            SchemeKind::Kosaian,
            &inj,
            &c,
            &stats,
        )
        .unwrap();
        assert_eq!(stats.lock().recomputed, 1);
        let (want, _) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want, "recompute restored correctness");
        let delta = c.snapshot().since(&before);
        assert!(delta.ft_extra_loads > 0, "recompute re-reads operands");
    }

    #[test]
    fn wu_corrects_at_block_level_and_pays_rereads_on_ampere() {
        let (dev, c, samples, cents) = mk_data_f64(32, 16, 16);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let inj = Injector::planned(vec![PlannedInjection {
            block: (0, 0),
            warp: 2,
            k_step: 0,
            elem_idx: 7,
            bit: 51,
            target_checksum: false,
        }]);
        let stats = Mutex::new(CampaignStats::default());
        let before = c.snapshot();
        let out =
            tensor_assign(&dev, small_tile(), &data, SchemeKind::Wu, &inj, &c, &stats).unwrap();
        assert_eq!(stats.lock().corrected, 1, "block-level correction");
        let (want, _) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want);
        let delta = c.snapshot().since(&before);
        assert!(delta.ft_extra_loads > 0, "cp.async forces Wu to re-read");
    }

    #[test]
    fn wu_needs_no_rereads_on_turing() {
        let dev = DeviceProfile::t4();
        let c = Counters::new();
        let samples = Matrix::<f64>::from_fn(32, 8, |r, cc| (r + cc) as f64 * 0.1);
        let cents = Matrix::<f64>::from_fn(16, 8, |r, cc| (r * cc) as f64 * 0.1);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let stats = Mutex::new(CampaignStats::default());
        let before = c.snapshot();
        let _ = tensor_assign(
            &dev,
            small_tile(),
            &data,
            SchemeKind::Wu,
            &NoFault,
            &c,
            &stats,
        )
        .unwrap();
        let delta = c.snapshot().since(&before);
        assert_eq!(
            delta.ft_extra_loads, 0,
            "register staging keeps Wu free on Turing"
        );
    }

    #[test]
    fn invalid_tiles_rejected() {
        let (dev, c, samples, cents) = mk_data_f64(16, 8, 8);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let stats = Mutex::new(CampaignStats::default());
        // warp tile does not divide threadblock tile
        let bad = TileConfig {
            tb_m: 24,
            tb_n: 16,
            tb_k: 8,
            wm: 16,
            wn: 8,
            k_stages: 2,
        };
        assert!(tensor_assign(&dev, bad, &data, SchemeKind::None, &NoFault, &c, &stats).is_err());
        // tb_k not a multiple of mma k (f64 -> 4)
        let bad_k = TileConfig {
            tb_m: 16,
            tb_n: 16,
            tb_k: 6,
            wm: 8,
            wn: 8,
            k_stages: 2,
        };
        assert!(tensor_assign(&dev, bad_k, &data, SchemeKind::None, &NoFault, &c, &stats).is_err());
    }

    #[test]
    fn catastrophic_exponent_flip_triggers_recompute() {
        // A top-exponent-bit flip turns the accumulator element into a
        // subnormal/astronomical value; location encoding overflows or the
        // correction cannot restore precision — the scheme must fall back
        // to recomputation and still deliver the clean result.
        let (dev, c, samples, cents) = mk_data_f64(48, 12, 16);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let inj = Injector::planned(vec![PlannedInjection {
            block: (0, 0),
            warp: 0,
            k_step: 0,
            elem_idx: 2,
            bit: 62,
            target_checksum: false,
        }]);
        let stats = Mutex::new(CampaignStats::default());
        let out = tensor_assign(
            &dev,
            small_tile(),
            &data,
            SchemeKind::FtKMeans,
            &inj,
            &c,
            &stats,
        )
        .unwrap();
        assert_eq!(inj.injected_count(), 1);
        let s = *stats.lock();
        assert!(
            s.corrected + s.recomputed >= 1,
            "catastrophic flip must be handled, stats: {s:?}"
        );
        let (want, _) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want, "result still clean");
    }

    #[test]
    fn dim_smaller_than_tbk_works() {
        // Gk = 3 with tb_k = 8: single zero-padded k-tile.
        let (dev, c, samples, cents) = mk_data_f64(40, 10, 3);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let stats = Mutex::new(CampaignStats::default());
        let out = tensor_assign(
            &dev,
            small_tile(),
            &data,
            SchemeKind::FtKMeans,
            &NoFault,
            &c,
            &stats,
        )
        .unwrap();
        let (want, _) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want);
    }
}
