//! V3 — threadblock-level broadcast (§III-A4).
//!
//! The per-block partial minima are merged directly into a global result
//! through per-row locks ("each threadblock needs to acquire the lock of a
//! row before changing the assignment answer"), removing V2's second kernel
//! entirely.

use crate::assign::AssignmentResult;
use crate::device_data::DeviceData;
use crate::variants::gemm::{simt_gemm_driver, TB_M};
use crate::variants::staged_block_row_min;
use gpu_sim::atomics::ArgminStore;
use gpu_sim::mma::FaultHook;
use gpu_sim::{Counters, DeviceProfile, Scalar, SimError};

/// Run the V3 assignment: fully fused GEMM + row-min + atomic broadcast.
pub fn broadcast_assign<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    hook: &dyn FaultHook<T>,
    counters: &Counters,
) -> Result<AssignmentResult<T>, SimError> {
    let store = ArgminStore::<T>::new(data.m);
    simt_gemm_driver(
        device,
        data,
        hook,
        counters,
        |ctx, acc, row0, rows, col0, cols| {
            let mut mins = [(T::INFINITY, u32::MAX); TB_M];
            staged_block_row_min(
                acc,
                &data.sample_norms,
                &data.centroid_norms,
                row0,
                rows,
                col0,
                cols,
                &mut mins[..rows],
                ctx.counters,
            );
            for (i, &(d, j)) in mins[..rows].iter().enumerate() {
                store.merge(row0 + i, d, j, ctx.counters);
            }
        },
    )?;
    let (distances, labels) = store.snapshot();
    Ok(AssignmentResult { labels, distances })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assign_reference;
    use gpu_sim::mma::NoFault;
    use gpu_sim::Matrix;

    /// The kernel computes distances via `‖x‖²+‖y‖²−2x·y`, the reference via
    /// `Σ(x−y)²`; under exact ties the two can round to different winners,
    /// so equivalence is judged on the achieved distance, not the index.
    fn assert_assignment_equivalent(
        samples: &Matrix<f64>,
        cents: &Matrix<f64>,
        got: &[u32],
        tol: f64,
    ) {
        let (_, want_d) = assign_reference(samples, cents);
        for i in 0..samples.rows() {
            let j = got[i] as usize;
            let d: f64 = samples
                .row(i)
                .iter()
                .zip(cents.row(j).iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            assert!(
                (d - want_d[i]).abs() <= tol * (1.0 + want_d[i].abs()),
                "sample {i}: chose centroid {j} at {d}, best is {}",
                want_d[i]
            );
        }
    }

    #[test]
    fn matches_reference() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::from_fn(200, 6, |r, c| ((r * 13 + c) % 29) as f64 * 0.3);
        let cents = Matrix::<f64>::from_fn(150, 6, |r, c| ((r + c * 17) % 31) as f64 * 0.3);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let out = broadcast_assign(&dev, &data, &NoFault, &c).unwrap();
        assert_assignment_equivalent(&samples, &cents, &out.labels, 1e-9);
    }

    #[test]
    fn single_kernel_launch_with_atomics() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f32>::zeros(128, 8);
        let cents = Matrix::<f32>::zeros(128, 8);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let before = c.snapshot();
        let _ = broadcast_assign(&dev, &data, &NoFault, &c).unwrap();
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.kernel_launches, 1, "no separate reduction kernel");
        assert!(delta.atomic_ops > 0, "broadcast merges are atomic");
    }

    #[test]
    fn f32_matches_reference_small() {
        let dev = DeviceProfile::t4();
        let c = Counters::new();
        let samples = Matrix::<f32>::from_fn(66, 3, |r, c| (r as f32 * 0.1) - (c as f32));
        let cents = Matrix::<f32>::from_fn(5, 3, |r, c| (r as f32) - (c as f32 * 0.2));
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let out = broadcast_assign(&dev, &data, &NoFault, &c).unwrap();
        let (_, want_d) = assign_reference(&samples, &cents);
        // f32 rounding differs between the two distance formulas; judge on
        // achieved distance.
        for (i, &lbl) in out.labels.iter().enumerate() {
            let j = lbl as usize;
            let d: f32 = samples
                .row(i)
                .iter()
                .zip(cents.row(j).iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            assert!((d - want_d[i]).abs() <= 1e-3 * (1.0 + want_d[i].abs()));
        }
    }
}
