//! V0 — the naive baseline (§III-A1).
//!
//! "Each thread in this kernel handles a line in the sample matrix … loads
//! all centroids in the centroid matrix, calculates the Euclidean distance
//! between this sample and every centroid, and chooses the one with the
//! smallest distance." Every thread re-reads every centroid from global
//! memory — the cost this variant exists to demonstrate.

use crate::assign::AssignmentResult;
use crate::device_data::DeviceData;
use gpu_sim::memory::GlobalIndexBuffer;
use gpu_sim::mma::{FaultHook, MmaSite};
use gpu_sim::{
    launch_grid_labeled, Counters, DeviceProfile, Dim3, GlobalBuffer, LaunchConfig, Scalar,
    ScratchBuf, SimError,
};

/// Samples per threadblock.
const SAMPLES_PER_BLOCK: usize = 256;

/// Run the naive assignment kernel.
pub fn naive_assign<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    hook: &dyn FaultHook<T>,
    counters: &Counters,
) -> Result<AssignmentResult<T>, SimError> {
    let (m, k, dim) = (data.m, data.k, data.dim);
    let labels = GlobalIndexBuffer::zeros(m);
    labels.set_sanitizer_label("naive.labels");
    let dists = GlobalBuffer::<T>::filled(m, T::INFINITY);
    dists.set_sanitizer_label("naive.dists");
    let grid = Dim3::x(m.div_ceil(SAMPLES_PER_BLOCK).max(1));
    let cfg = LaunchConfig {
        grid,
        threads_per_block: SAMPLES_PER_BLOCK,
        smem_bytes: 0,
    };

    launch_grid_labeled(device, cfg, counters, "naive_assign", |ctx| {
        let row0 = ctx.bx * SAMPLES_PER_BLOCK;
        let rows = SAMPLES_PER_BLOCK.min(m.saturating_sub(row0));
        if rows == 0 {
            return;
        }
        // Row scratch lives on the stack for typical dimensions — no
        // per-block heap allocation on the hot path.
        let mut x = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        let mut y = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        let mut best_d = [T::INFINITY; SAMPLES_PER_BLOCK];
        let mut best_j = [u32::MAX; SAMPLES_PER_BLOCK];
        for i in 0..rows {
            data.samples
                .load_run((row0 + i) * dim, &mut x, ctx.counters);
            let mut best = T::INFINITY;
            let mut best_idx = u32::MAX;
            for j in 0..k {
                // every thread re-reads the centroid row from global — the
                // per-sample re-read is the variant's defining cost; it now
                // moves as one contiguous run per centroid row
                data.centroids.load_run(j * dim, &mut y, ctx.counters);
                let mut acc = T::ZERO;
                for (&xv, &yv) in x.iter().zip(y.iter()) {
                    let diff = xv - yv;
                    acc += diff * diff;
                }
                ctx.counters.add_fma((2 * dim) as u64);
                let site = MmaSite {
                    block: (ctx.bx, 0),
                    warp: 0,
                    k_step: j,
                    is_checksum: false,
                };
                let acc = hook.post_fma(&site, acc);
                if acc < best || (acc == best && (j as u32) < best_idx) {
                    best = acc;
                    best_idx = j as u32;
                }
            }
            best_d[i] = best;
            best_j[i] = best_idx;
        }
        labels.write_range(row0, &best_j[..rows]);
        dists.store_run(row0, &best_d[..rows], ctx.counters);
    })?;

    Ok(AssignmentResult {
        labels: labels.to_vec(),
        distances: dists.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assign_reference;
    use gpu_sim::mma::NoFault;
    use gpu_sim::Matrix;

    #[test]
    fn matches_reference_assignment() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::from_fn(97, 5, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
        let cents = Matrix::<f64>::from_fn(6, 5, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let out = naive_assign(&dev, &data, &NoFault, &c).unwrap();
        let (want_labels, want_dists) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want_labels);
        for (a, b) in out.distances.iter().zip(want_dists.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn centroids_reread_per_sample() {
        // The defining inefficiency: centroid traffic scales with M.
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f32>::zeros(64, 4);
        let cents = Matrix::<f32>::zeros(8, 4);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let before = c.snapshot();
        let _ = naive_assign(&dev, &data, &NoFault, &c).unwrap();
        let delta = c.snapshot().since(&before);
        // 64 samples x (4 own + 8 centroids x 4) loads x 4 bytes
        assert_eq!(delta.bytes_loaded, 64 * (4 + 32) * 4);
    }
}
