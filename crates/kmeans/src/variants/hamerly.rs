//! Bound-pruned assignment — Hamerly's algorithm as the sixth kernel
//! family.
//!
//! Every other variant recomputes all `m × k` distances per iteration.
//! This kernel keeps, per sample, an upper bound `u(i)` on the distance to
//! its assigned centroid and a single lower bound `l(i)` on the distance to
//! the second-closest one (Euclidean, not squared), plus per-centroid
//! half-separations `s_half(j)`. Whenever `u(i) ≤ max(l(i), s_half(a))`
//! the triangle inequality proves the assignment cannot change and the
//! whole k-way scan is skipped — after the first few Lloyd iterations the
//! drifts shrink and the vast majority of samples prune.
//!
//! Floating-point soundness: bounds are inflated/deflated by the
//! [`BoundPolicy`] slack, so a prune implies a true relative gap the
//! reference scan's rounding noise cannot bridge — the pruned labels are
//! bit-for-bit the labels the naive kernel would produce. The un-pruned
//! path mirrors the naive kernel's arithmetic exactly (same accumulation
//! order, same tie-break, same fault-hook sites).
//!
//! Fault tolerance: the bounds are device-resident state a bit flip can
//! silently corrupt into a wrong assignment (an upper bound flipped low
//! prunes a sample that should have rescanned). The protection is
//! [`revalidate`] — an exact-distance sweep over a deterministic sample
//! stratum whose slack-tolerant checks only trip on real corruption; the
//! driver runs it periodically, counting violations as detected and
//! forcing an un-pruned re-assignment (`force_full`) to rebuild the
//! state. Under a protective [`abft::SchemeKind`] (and always on the
//! final iteration) the due sweep is instead [`revalidate_and_repair`]:
//! full-width, rewriting bounds and labels from the exact quantities and
//! handing the driver the verified assignment outright.

use crate::assign::AssignmentResult;
use crate::device_data::{BoundState, DeviceData};
use abft::BoundPolicy;
use gpu_sim::memory::GlobalIndexBuffer;
use gpu_sim::mma::{FaultHook, MmaSite};
use gpu_sim::{
    launch_grid_labeled, Counters, DeviceProfile, Dim3, GlobalBuffer, LaunchConfig, Scalar,
    ScratchBuf, SimError,
};

/// Samples per threadblock (matches the naive kernel's blocking).
const SAMPLES_PER_BLOCK: usize = 256;

/// Stratum width of the periodic revalidation pass: one pass checks the
/// samples whose index is congruent to the rotating phase modulo this.
pub const REVALIDATE_STRIDE: usize = 8;

/// The bound policy this variant runs under for a feature dimension.
pub fn bound_policy<T: Scalar>(dim: usize) -> BoundPolicy {
    BoundPolicy::for_precision(T::PRECISION, dim)
}

/// Run the bound-pruned assignment kernel.
///
/// With [`DeviceData::bounds`] present the kernel prunes against the
/// resident bound state and rewrites it; without it (the stateless
/// predict/mini-batch path) every sample takes the full naive-identical
/// scan and no state is touched. `force_full` disables pruning for one
/// pass while still rebuilding the bounds — the recovery action after a
/// revalidation alarm.
pub fn hamerly_assign<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    force_full: bool,
    hook: &dyn FaultHook<T>,
    counters: &Counters,
) -> Result<AssignmentResult<T>, SimError> {
    let (m, k, dim) = (data.m, data.k, data.dim);
    let policy = bound_policy::<T>(dim);
    let out_labels = GlobalIndexBuffer::zeros(m);
    out_labels.set_sanitizer_label("hamerly.labels");
    let dists = GlobalBuffer::<T>::filled(m, T::INFINITY);
    dists.set_sanitizer_label("hamerly.dists");
    let bounds: Option<&BoundState<T>> = data.bounds.as_ref();
    let grid = Dim3::x(m.div_ceil(SAMPLES_PER_BLOCK).max(1));
    let cfg = LaunchConfig {
        grid,
        threads_per_block: SAMPLES_PER_BLOCK,
        smem_bytes: 0,
    };

    launch_grid_labeled(device, cfg, counters, "hamerly_assign", |ctx| {
        let row0 = ctx.bx * SAMPLES_PER_BLOCK;
        let rows = SAMPLES_PER_BLOCK.min(m.saturating_sub(row0));
        if rows == 0 {
            return;
        }
        let mut x = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        let mut y = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        let mut best_d = [T::INFINITY; SAMPLES_PER_BLOCK];
        let mut best_j = [u32::MAX; SAMPLES_PER_BLOCK];

        // Stage the block's bound state: u/l move as counted bulk runs
        // (the PR-3 transaction path), labels and the k-length broadcast
        // vectors uncounted like every variant's index/broadcast traffic.
        let mut u_buf = [T::ZERO; SAMPLES_PER_BLOCK];
        let mut l_buf = [T::ZERO; SAMPLES_PER_BLOCK];
        let mut lab_buf = [0u32; SAMPLES_PER_BLOCK];
        let mut s_half = vec![T::ZERO; k];
        if let Some(b) = bounds {
            if !force_full {
                b.upper.load_run(row0, &mut u_buf[..rows], ctx.counters);
                b.lower.load_run(row0, &mut l_buf[..rows], ctx.counters);
                b.labels.read_range(row0, &mut lab_buf[..rows]);
                b.s_half.read_range(0, &mut s_half);
            }
        }

        for i in 0..rows {
            let mut x_loaded = false;
            if bounds.is_some() && !force_full {
                let a = lab_buf[i] as usize;
                let z = l_buf[i].max_s(s_half[a]);
                if u_buf[i] <= z {
                    // Bound prune: the assignment provably cannot change;
                    // all k candidate distances are skipped and no sample
                    // or centroid row is read.
                    ctx.counters.add_pruned(k as u64);
                    best_d[i] = u_buf[i] * u_buf[i];
                    best_j[i] = lab_buf[i];
                    continue;
                }
                // Tighten: one exact distance to the assigned centroid,
                // computed with the reference arithmetic, may re-prove the
                // prune with a fresh (drift-free) upper bound.
                data.samples
                    .load_run((row0 + i) * dim, &mut x, ctx.counters);
                x_loaded = true;
                data.centroids.load_run(a * dim, &mut y, ctx.counters);
                let mut acc = T::ZERO;
                for (&xv, &yv) in x.iter().zip(y.iter()) {
                    let diff = xv - yv;
                    acc += diff * diff;
                }
                ctx.counters.add_fma((2 * dim) as u64);
                let site = MmaSite {
                    block: (ctx.bx, 0),
                    warp: 0,
                    k_step: a,
                    is_checksum: false,
                };
                let acc = hook.post_fma(&site, acc);
                let tightened = policy.inflate(acc.max_s(T::ZERO).sqrt());
                if tightened <= z {
                    ctx.counters.add_pruned((k - 1) as u64);
                    u_buf[i] = tightened;
                    best_d[i] = acc;
                    best_j[i] = lab_buf[i];
                    continue;
                }
            }

            // Full scan — bitwise the naive kernel's loop (same loads,
            // accumulation order, FMA charge, hook sites and tie-break).
            if !x_loaded {
                data.samples
                    .load_run((row0 + i) * dim, &mut x, ctx.counters);
            }
            let mut best = T::INFINITY;
            let mut best_idx = u32::MAX;
            let mut second = T::INFINITY;
            for j in 0..k {
                data.centroids.load_run(j * dim, &mut y, ctx.counters);
                let mut acc = T::ZERO;
                for (&xv, &yv) in x.iter().zip(y.iter()) {
                    let diff = xv - yv;
                    acc += diff * diff;
                }
                ctx.counters.add_fma((2 * dim) as u64);
                let site = MmaSite {
                    block: (ctx.bx, 0),
                    warp: 0,
                    k_step: j,
                    is_checksum: false,
                };
                let acc = hook.post_fma(&site, acc);
                if acc < best || (acc == best && (j as u32) < best_idx) {
                    second = best;
                    best = acc;
                    best_idx = j as u32;
                } else if acc < second {
                    second = acc;
                }
            }
            best_d[i] = best;
            best_j[i] = best_idx;
            if bounds.is_some() {
                u_buf[i] = policy.inflate(best.max_s(T::ZERO).sqrt());
                l_buf[i] = policy.deflate(second.max_s(T::ZERO).sqrt());
                lab_buf[i] = best_idx;
            }
        }

        if let Some(b) = bounds {
            b.upper.store_run(row0, &u_buf[..rows], ctx.counters);
            b.lower.store_run(row0, &l_buf[..rows], ctx.counters);
            b.labels.write_range(row0, &lab_buf[..rows]);
        }
        out_labels.write_range(row0, &best_j[..rows]);
        dists.store_run(row0, &best_d[..rows], ctx.counters);
    })?;

    Ok(AssignmentResult {
        labels: out_labels.to_vec(),
        distances: dists.to_vec(),
    })
}

/// Recompute the per-centroid half-separations `s_half(j) = ½·min_{i≠j}
/// ‖c_j − c_i‖`, deflated by the policy slack, into the resident bound
/// state. One block per centroid; must run whenever the centroids change.
pub fn compute_s_half<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    counters: &Counters,
) -> Result<(), SimError> {
    let (k, dim) = (data.k, data.dim);
    let policy = bound_policy::<T>(dim);
    let b = data
        .bounds
        .as_ref()
        .expect("compute_s_half requires bounds");
    let cfg = LaunchConfig {
        grid: Dim3::x(k.max(1)),
        threads_per_block: 32,
        smem_bytes: 0,
    };
    launch_grid_labeled(device, cfg, counters, "hamerly_s_half", |ctx| {
        let j = ctx.bx;
        if j >= k {
            return;
        }
        let mut y = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        let mut z = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        data.centroids.load_run(j * dim, &mut y, ctx.counters);
        let mut best = T::INFINITY;
        for i in 0..k {
            if i == j {
                continue;
            }
            data.centroids.load_run(i * dim, &mut z, ctx.counters);
            let mut acc = T::ZERO;
            for (&yv, &zv) in y.iter().zip(z.iter()) {
                let diff = yv - zv;
                acc += diff * diff;
            }
            ctx.counters.add_fma((2 * dim) as u64);
            if acc < best {
                best = acc;
            }
        }
        // k = 1 leaves `best = +∞`: every sample prunes forever, correctly.
        let half = T::from_f64(0.5) * best.max_s(T::ZERO).sqrt();
        b.s_half
            .store_counted(j, policy.deflate(half), ctx.counters);
    })
}

/// Loosen the resident bounds for the centroid motion of one update:
/// `u(i) += inflate(drift(a(i)))`, `l(i) −= inflate(max_drift)`. Applied
/// eagerly right after the centroids move, so the bounds are always
/// current against [`DeviceData::centroids`] and [`revalidate`] can run at
/// any point.
pub fn apply_drift<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    max_drift: T,
    counters: &Counters,
) -> Result<(), SimError> {
    let (m, k, dim) = (data.m, data.k, data.dim);
    let policy = bound_policy::<T>(dim);
    let b = data.bounds.as_ref().expect("apply_drift requires bounds");
    let loosen = policy.inflate(max_drift);
    let cfg = LaunchConfig {
        grid: Dim3::x(m.div_ceil(SAMPLES_PER_BLOCK).max(1)),
        threads_per_block: SAMPLES_PER_BLOCK,
        smem_bytes: 0,
    };
    launch_grid_labeled(device, cfg, counters, "hamerly_apply_drift", |ctx| {
        let row0 = ctx.bx * SAMPLES_PER_BLOCK;
        let rows = SAMPLES_PER_BLOCK.min(m.saturating_sub(row0));
        if rows == 0 {
            return;
        }
        let mut u_buf = [T::ZERO; SAMPLES_PER_BLOCK];
        let mut l_buf = [T::ZERO; SAMPLES_PER_BLOCK];
        let mut lab_buf = [0u32; SAMPLES_PER_BLOCK];
        let mut drift = vec![T::ZERO; k];
        b.upper.load_run(row0, &mut u_buf[..rows], ctx.counters);
        b.lower.load_run(row0, &mut l_buf[..rows], ctx.counters);
        b.labels.read_range(row0, &mut lab_buf[..rows]);
        b.drift.read_range(0, &mut drift);
        for i in 0..rows {
            u_buf[i] += policy.inflate(drift[lab_buf[i] as usize]);
            l_buf[i] -= loosen;
        }
        b.upper.store_run(row0, &u_buf[..rows], ctx.counters);
        b.lower.store_run(row0, &l_buf[..rows], ctx.counters);
    })
}

/// The checksum-style protection pass: recompute exact distances for the
/// deterministic sample stratum `index ≡ phase (mod stride)` with the
/// reference arithmetic and check the resident state against them. A
/// sample violates when its stored label is not the exact argmin, its
/// upper bound sits below the true assigned distance by more than the
/// policy slack, or its lower bound sits above the true second-closest
/// distance by more than the slack — none of which fault-free maintenance
/// can produce. Returns the violation count (`stride = 1` sweeps the whole
/// population).
pub fn revalidate<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    stride: usize,
    phase: usize,
    counters: &Counters,
) -> Result<u64, SimError> {
    let (m, k, dim) = (data.m, data.k, data.dim);
    let policy = bound_policy::<T>(dim);
    let b = data.bounds.as_ref().expect("revalidate requires bounds");
    let stride = stride.max(1);
    let violations = GlobalIndexBuffer::zeros(1);
    violations.set_sanitizer_label("hamerly.violations");
    let cfg = LaunchConfig {
        grid: Dim3::x(m.div_ceil(SAMPLES_PER_BLOCK).max(1)),
        threads_per_block: SAMPLES_PER_BLOCK,
        smem_bytes: 0,
    };
    launch_grid_labeled(device, cfg, counters, "hamerly_revalidate", |ctx| {
        let row0 = ctx.bx * SAMPLES_PER_BLOCK;
        let rows = SAMPLES_PER_BLOCK.min(m.saturating_sub(row0));
        let mut x = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        let mut y = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        for i in 0..rows {
            let idx = row0 + i;
            if idx % stride != phase % stride {
                continue;
            }
            data.samples.load_run(idx * dim, &mut x, ctx.counters);
            let mut best = T::INFINITY;
            let mut best_idx = u32::MAX;
            let mut second = T::INFINITY;
            for j in 0..k {
                data.centroids.load_run(j * dim, &mut y, ctx.counters);
                let mut acc = T::ZERO;
                for (&xv, &yv) in x.iter().zip(y.iter()) {
                    let diff = xv - yv;
                    acc += diff * diff;
                }
                ctx.counters.add_fma((2 * dim) as u64);
                if acc < best || (acc == best && (j as u32) < best_idx) {
                    second = best;
                    best = acc;
                    best_idx = j as u32;
                } else if acc < second {
                    second = acc;
                }
            }
            // strided verification reads: per-element counted traffic
            let u = b.upper.load_counted(idx, ctx.counters);
            let l = b.lower.load_counted(idx, ctx.counters);
            // Index traffic is not byte-counted by design (see
            // GlobalIndexBuffer). ftk-lint: allow(raw-access)
            let label = b.labels.load(idx);
            let exact = best.max_s(T::ZERO).sqrt();
            let exact_second = second.max_s(T::ZERO).sqrt();
            if label != best_idx
                || policy.upper_violates(u, exact)
                || policy.lower_violates(l, exact_second)
            {
                violations.atomic_inc(0, ctx.counters);
            }
        }
    })?;
    // Host-side single-cell readback after the launch, not kernel traffic.
    Ok(violations.load(0) as u64) // ftk-lint: allow(raw-access)
}

/// Full-width verify-and-repair sweep — the protective-scheme form of
/// [`revalidate`]. Recomputes the exact assignment (reference arithmetic,
/// naive tie-break) for **every** sample, counts stored labels/bounds the
/// slack-tolerant checks reject (same predicate as [`revalidate`]),
/// rewrites the resident bound state from the exact quantities, and
/// returns the exact assignment for the driver to adopt.
///
/// This is the Kosaian-style recompute story applied to the bound-pruned
/// variant: the sweep is hook-free, so whatever a fault did to the
/// pruned pass — a flipped label, a silently inflated distance, a
/// corrupted bound — the state the update phase consumes is the verified
/// one. With `revalidate_every = 1` a protected fit is therefore
/// bit-identical to its fault-free twin whatever the barrage, which is
/// exactly what the campaign's zero-SDC gate measures.
pub fn revalidate_and_repair<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    counters: &Counters,
) -> Result<(u64, AssignmentResult<T>), SimError> {
    let (m, k, dim) = (data.m, data.k, data.dim);
    let policy = bound_policy::<T>(dim);
    let b = data
        .bounds
        .as_ref()
        .expect("revalidate_and_repair requires bounds");
    let violations = GlobalIndexBuffer::zeros(1);
    violations.set_sanitizer_label("hamerly.repair.violations");
    let out_labels = GlobalIndexBuffer::zeros(m);
    out_labels.set_sanitizer_label("hamerly.repair.labels");
    let dists = GlobalBuffer::<T>::filled(m, T::INFINITY);
    dists.set_sanitizer_label("hamerly.repair.dists");
    let cfg = LaunchConfig {
        grid: Dim3::x(m.div_ceil(SAMPLES_PER_BLOCK).max(1)),
        threads_per_block: SAMPLES_PER_BLOCK,
        smem_bytes: 0,
    };
    launch_grid_labeled(device, cfg, counters, "hamerly_reval_repair", |ctx| {
        let row0 = ctx.bx * SAMPLES_PER_BLOCK;
        let rows = SAMPLES_PER_BLOCK.min(m.saturating_sub(row0));
        if rows == 0 {
            return;
        }
        let mut x = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        let mut y = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        // Stored state streams through as contiguous runs: the full sweep
        // touches every sample, so the verification reads coalesce.
        let mut u_buf = [T::ZERO; SAMPLES_PER_BLOCK];
        let mut l_buf = [T::ZERO; SAMPLES_PER_BLOCK];
        let mut lab_buf = [0u32; SAMPLES_PER_BLOCK];
        let mut best_d = [T::INFINITY; SAMPLES_PER_BLOCK];
        b.upper.load_run(row0, &mut u_buf[..rows], ctx.counters);
        b.lower.load_run(row0, &mut l_buf[..rows], ctx.counters);
        b.labels.read_range(row0, &mut lab_buf[..rows]);
        for i in 0..rows {
            data.samples
                .load_run((row0 + i) * dim, &mut x, ctx.counters);
            let mut best = T::INFINITY;
            let mut best_idx = u32::MAX;
            let mut second = T::INFINITY;
            for j in 0..k {
                data.centroids.load_run(j * dim, &mut y, ctx.counters);
                let mut acc = T::ZERO;
                for (&xv, &yv) in x.iter().zip(y.iter()) {
                    let diff = xv - yv;
                    acc += diff * diff;
                }
                ctx.counters.add_fma((2 * dim) as u64);
                if acc < best || (acc == best && (j as u32) < best_idx) {
                    second = best;
                    best = acc;
                    best_idx = j as u32;
                } else if acc < second {
                    second = acc;
                }
            }
            let exact = best.max_s(T::ZERO).sqrt();
            let exact_second = second.max_s(T::ZERO).sqrt();
            if lab_buf[i] != best_idx
                || policy.upper_violates(u_buf[i], exact)
                || policy.lower_violates(l_buf[i], exact_second)
            {
                violations.atomic_inc(0, ctx.counters);
            }
            // Repair unconditionally: the exact quantities are in hand, and
            // rewriting them is what makes the sweep's output trustworthy
            // even when the corruption stayed under the slack.
            u_buf[i] = policy.inflate(exact);
            l_buf[i] = policy.deflate(exact_second);
            lab_buf[i] = best_idx;
            best_d[i] = best;
        }
        b.upper.store_run(row0, &u_buf[..rows], ctx.counters);
        b.lower.store_run(row0, &l_buf[..rows], ctx.counters);
        b.labels.write_range(row0, &lab_buf[..rows]);
        out_labels.write_range(row0, &lab_buf[..rows]);
        dists.store_run(row0, &best_d[..rows], ctx.counters);
    })?;
    Ok((
        // Host-side readback after the launch. ftk-lint: allow(raw-access)
        violations.load(0) as u64,
        AssignmentResult {
            labels: out_labels.to_vec(),
            distances: dists.to_vec(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assign_reference;
    use crate::variants::naive::naive_assign;
    use gpu_sim::mma::NoFault;
    use gpu_sim::Matrix;

    fn fixture() -> (Matrix<f64>, Matrix<f64>) {
        let samples = Matrix::<f64>::from_fn(193, 17, |r, c| ((r * 31 + c * 7) % 17) as f64 - 8.0);
        // 13 rows keep the mod-15 pattern collision-free: the rows are
        // pairwise distinct, so no centroid has a zero-distance twin (a
        // duplicate would pin s_half at 0 and second == best for every
        // sample, making pruning structurally impossible).
        let cents = Matrix::<f64>::from_fn(13, 17, |r, c| ((r * 13 + c * 5) % 15) as f64 - 7.0);
        (samples, cents)
    }

    #[test]
    fn stateless_path_matches_naive_bitwise() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, cents) = fixture();
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let a = hamerly_assign(&dev, &data, false, &NoFault, &c).unwrap();
        let b = naive_assign(&dev, &data, &NoFault, &c).unwrap();
        assert_eq!(a.labels, b.labels);
        for (x, y) in a.distances.iter().zip(b.distances.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn first_pass_with_bounds_is_a_full_scan_and_seeds_them() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, cents) = fixture();
        let mut data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        data.ensure_bounds();
        compute_s_half(&dev, &data, &c).unwrap();
        let before = c.snapshot();
        let out = hamerly_assign(&dev, &data, false, &NoFault, &c).unwrap();
        assert_eq!(
            c.snapshot().since(&before).pruned_candidates,
            0,
            "vacuous bounds cannot prune"
        );
        let (want, _) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want);
        let b = data.bounds.as_ref().unwrap();
        assert_eq!(b.labels.to_vec(), want);
        // seeded bounds bracket the exact distances
        let (_, dists) = assign_reference(&samples, &cents);
        for (i, d) in dists.iter().enumerate() {
            assert!(b.upper.load(i) >= d.sqrt());
        }
        // and immediately revalidate clean
        assert_eq!(revalidate(&dev, &data, 1, 0, &c).unwrap(), 0);
    }

    #[test]
    fn second_pass_prunes_and_stays_exact_when_centroids_hold_still() {
        // No centroid motion between passes: every sample must prune (u
        // equals its own distance, l the second distance, gap ≥ slack on
        // this integer fixture), and labels must stay the reference ones.
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, cents) = fixture();
        let mut data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        data.ensure_bounds();
        compute_s_half(&dev, &data, &c).unwrap();
        let first = hamerly_assign(&dev, &data, false, &NoFault, &c).unwrap();
        let before = c.snapshot();
        let second = hamerly_assign(&dev, &data, false, &NoFault, &c).unwrap();
        let pruned = c.snapshot().since(&before).pruned_candidates;
        assert_eq!(second.labels, first.labels);
        // exact distance ties (possible on an integer fixture) legitimately
        // refuse to prune, so demand "most", not "all"
        assert!(
            pruned as usize > samples.rows() * cents.rows() / 2,
            "stationary centroids must prune most candidates, pruned {pruned}"
        );
        assert_eq!(revalidate(&dev, &data, 1, 0, &c).unwrap(), 0);
    }

    #[test]
    fn s_half_is_infinite_for_a_single_centroid() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::from_fn(9, 3, |r, c| (r + c) as f64);
        let cents = Matrix::<f64>::from_fn(1, 3, |_, c| c as f64);
        let mut data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        data.ensure_bounds();
        compute_s_half(&dev, &data, &c).unwrap();
        let b = data.bounds.as_ref().unwrap();
        assert_eq!(b.s_half.load(0), f64::INFINITY);
        // with k = 1 everything prunes from the second pass on
        let _ = hamerly_assign(&dev, &data, false, &NoFault, &c).unwrap();
        let before = c.snapshot();
        let out = hamerly_assign(&dev, &data, false, &NoFault, &c).unwrap();
        assert_eq!(c.snapshot().since(&before).pruned_candidates, 9);
        assert!(out.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn corrupted_upper_bound_trips_revalidation() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, cents) = fixture();
        let mut data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        data.ensure_bounds();
        compute_s_half(&dev, &data, &c).unwrap();
        let _ = hamerly_assign(&dev, &data, false, &NoFault, &c).unwrap();
        assert_eq!(revalidate(&dev, &data, 1, 0, &c).unwrap(), 0);
        // flip an upper bound far below its true distance
        let b = data.bounds.as_ref().unwrap();
        b.upper.store(5, b.upper.load(5) * 1e-3);
        assert_eq!(revalidate(&dev, &data, 1, 0, &c).unwrap(), 1);
        // the stratum not containing sample 5 stays clean
        assert_eq!(
            revalidate(
                &dev,
                &data,
                REVALIDATE_STRIDE,
                (5 + 1) % REVALIDATE_STRIDE,
                &c
            )
            .unwrap(),
            0
        );
        // a forced full pass rebuilds the state
        let _ = hamerly_assign(&dev, &data, true, &NoFault, &c).unwrap();
        assert_eq!(revalidate(&dev, &data, 1, 0, &c).unwrap(), 0);
    }
}
