//! V1 — GEMM-based K-means (§III-A2).
//!
//! The distance is decomposed as `‖x‖² + ‖y‖² − 2·x·y`; the cross term is a
//! GEMM whose result matrix is written back to global memory, then a second
//! kernel reduces each row to find the nearest centroid. The write-back +
//! re-read of the full `M x K` product matrix is the cost V2/V3 remove.

use crate::assign::AssignmentResult;
use crate::device_data::DeviceData;
use crate::variants::{fill_tile_from_global, simt_block_gemm};
use gpu_sim::memory::GlobalIndexBuffer;
use gpu_sim::mma::{FaultHook, MmaSite};
use gpu_sim::shared::SharedTile;
use gpu_sim::{
    launch_grid_labeled, Counters, DeviceProfile, Dim3, GlobalBuffer, LaunchConfig, Scalar,
    ScratchBuf, SimError,
};

/// SIMT threadblock tile (fixed for the hand-written V1–V3 kernels).
pub(crate) const TB_M: usize = 64;
pub(crate) const TB_N: usize = 64;
pub(crate) const TB_K: usize = 16;

/// Rows per block in the reduction kernel.
const REDUCE_ROWS_PER_BLOCK: usize = 256;

/// The shared SIMT GEMM used by V1/V2/V3: computes the `x·y` product tile
/// per block and hands it to `epilogue(ctx, tile_acc, row0, rows, col0,
/// cols)`.
pub(crate) fn simt_gemm_driver<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    hook: &dyn FaultHook<T>,
    counters: &Counters,
    epilogue: impl Fn(&gpu_sim::BlockCtx, &[T], usize, usize, usize, usize) + Sync,
) -> Result<(), SimError> {
    let (m, k, dim) = (data.m, data.k, data.dim);
    let bm = m.div_ceil(TB_M);
    let bn = k.div_ceil(TB_N);
    let grid = Dim3::xy(bn.max(1), bm.max(1));
    let smem = 2 * (TB_M + TB_N) * TB_K * std::mem::size_of::<T>();
    let cfg = LaunchConfig {
        grid,
        threads_per_block: 256,
        smem_bytes: smem,
    };

    launch_grid_labeled(device, cfg, counters, "simt_gemm", |ctx| {
        let row0 = ctx.by * TB_M;
        let col0 = ctx.bx * TB_N;
        let rows = TB_M.min(m.saturating_sub(row0));
        let cols = TB_N.min(k.saturating_sub(col0));
        if rows == 0 || cols == 0 {
            return;
        }
        let mut a_tile = SharedTile::<T>::new(TB_M, TB_K);
        let mut b_tile = SharedTile::<T>::new(TB_N, TB_K);
        // Register/local accumulator: fixed-size (no per-block heap
        // allocation), zeroed once and reused across every k-step.
        let mut acc = [T::ZERO; TB_M * TB_N];
        let mut k0 = 0;
        while k0 < dim {
            let kk = TB_K.min(dim - k0);
            fill_tile_from_global(&mut a_tile, &data.samples, row0, k0, m, dim, ctx.counters);
            fill_tile_from_global(&mut b_tile, &data.centroids, col0, k0, k, dim, ctx.counters);
            ctx.barrier();
            let site = MmaSite {
                block: (ctx.by, ctx.bx),
                warp: 0,
                k_step: k0,
                is_checksum: false,
            };
            // Only the rows x cols sub-tile is valid output (the zero-padded
            // remainder would accumulate exact zeros); restricting the
            // micro-kernel to it skips the padding waste that made edge-heavy
            // shapes (k << TB_N) pay the full-tile cost.
            simt_block_gemm(
                &mut acc,
                &a_tile,
                &b_tile,
                rows,
                cols,
                TB_N,
                kk,
                site,
                hook,
                ctx.counters,
            );
            ctx.barrier();
            k0 += TB_K;
        }
        epilogue(ctx, &acc, row0, rows, col0, cols);
    })
}

/// Run the V1 assignment: GEMM → full product write-back → reduction kernel.
pub fn gemm_assign<T: Scalar>(
    device: &DeviceProfile,
    data: &DeviceData<T>,
    hook: &dyn FaultHook<T>,
    counters: &Counters,
) -> Result<AssignmentResult<T>, SimError> {
    let (m, k) = (data.m, data.k);
    // Kernel 1: GEMM, product matrix stored to global (the V1 tax). Each
    // accumulator row writes back as one contiguous run. The allocation is
    // deliberately uninitialized (plain `cudaMalloc` semantics): the GEMM
    // must cover every cell before the reduction reads it, and
    // `FTK_SANITIZE=init` proves that it does.
    let product = GlobalBuffer::<T>::uninit(m * k);
    product.set_sanitizer_label("gemm.product");
    simt_gemm_driver(
        device,
        data,
        hook,
        counters,
        |ctx, acc, row0, rows, col0, cols| {
            for i in 0..rows {
                product.store_run(
                    (row0 + i) * k + col0,
                    &acc[i * TB_N..i * TB_N + cols],
                    ctx.counters,
                );
            }
        },
    )?;

    // Kernel 2: row-wise reduction over the product matrix, streaming one
    // product row per step through block-local scratch.
    let labels = GlobalIndexBuffer::zeros(m);
    labels.set_sanitizer_label("gemm.labels");
    let dists = GlobalBuffer::<T>::filled(m, T::INFINITY);
    dists.set_sanitizer_label("gemm.dists");
    let grid = Dim3::x(m.div_ceil(REDUCE_ROWS_PER_BLOCK).max(1));
    let cfg = LaunchConfig {
        grid,
        threads_per_block: 256,
        smem_bytes: 0,
    };
    let two = T::ONE + T::ONE;
    launch_grid_labeled(device, cfg, counters, "gemm_reduce", |ctx| {
        let row0 = ctx.bx * REDUCE_ROWS_PER_BLOCK;
        let rows = REDUCE_ROWS_PER_BLOCK.min(m.saturating_sub(row0));
        if rows == 0 {
            return;
        }
        // Centroid norms are broadcast to every block (uncounted, as on the
        // per-element path); the product row streams through scratch.
        let mut yn = ScratchBuf::<T, 256>::filled(k, T::ZERO);
        data.centroid_norms.read_range(0, &mut yn);
        let mut prod = ScratchBuf::<T, 256>::filled(k, T::ZERO);
        let mut best_d = [T::INFINITY; REDUCE_ROWS_PER_BLOCK];
        let mut best_j = [u32::MAX; REDUCE_ROWS_PER_BLOCK];
        let mut xn = [T::ZERO; REDUCE_ROWS_PER_BLOCK];
        data.sample_norms
            .load_run(row0, &mut xn[..rows], ctx.counters);
        for i in 0..rows {
            product.load_run((row0 + i) * k, &mut prod, ctx.counters);
            let mut best = T::INFINITY;
            let mut best_idx = u32::MAX;
            for (j, (&xy, &y)) in prod.iter().zip(yn.iter()).enumerate() {
                let d = xn[i] + y - two * xy;
                if d < best || (d == best && (j as u32) < best_idx) {
                    best = d;
                    best_idx = j as u32;
                }
            }
            ctx.counters.add_fma((2 * k) as u64);
            best_d[i] = best;
            best_j[i] = best_idx;
        }
        labels.write_range(row0, &best_j[..rows]);
        dists.store_run(row0, &best_d[..rows], ctx.counters);
    })?;

    Ok(AssignmentResult {
        labels: labels.to_vec(),
        distances: dists.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assign_reference;
    use gpu_sim::mma::NoFault;
    use gpu_sim::Matrix;

    #[test]
    fn matches_reference_on_odd_shapes() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        // sizes deliberately not multiples of the tile
        let samples =
            Matrix::<f64>::from_fn(130, 19, |r, c| ((r * 7 + c * 13) % 23) as f64 * 0.5 - 5.0);
        let cents =
            Matrix::<f64>::from_fn(70, 19, |r, c| ((r * 11 + c * 5) % 19) as f64 * 0.5 - 4.0);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let out = gemm_assign(&dev, &data, &NoFault, &c).unwrap();
        let (want, want_d) = assign_reference(&samples, &cents);
        assert_eq!(out.labels, want);
        for (a, b) in out.distances.iter().zip(want_d.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn writes_product_matrix_to_global() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f32>::zeros(64, 8);
        let cents = Matrix::<f32>::zeros(64, 8);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let before = c.snapshot();
        let _ = gemm_assign(&dev, &data, &NoFault, &c).unwrap();
        let delta = c.snapshot().since(&before);
        // the defining V1 traffic: 64*64 product elements written AND re-read
        let product_bytes = (64 * 64 * 4) as u64;
        assert!(delta.bytes_stored >= product_bytes);
        assert!(delta.bytes_loaded >= product_bytes);
        assert_eq!(delta.kernel_launches, 2, "GEMM + reduction");
    }
}
