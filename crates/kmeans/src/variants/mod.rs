//! The step-wise kernel variants of §III, lowest to highest performance.

pub mod broadcast;
pub mod fused;
pub mod gemm;
pub mod naive;
pub mod tensor;

use gpu_sim::mma::{FaultHook, MmaSite};
use gpu_sim::shared::SharedTile;
use gpu_sim::{EventSink, GlobalBuffer, Scalar};

/// Fill a shared operand tile from global memory with zero-padding at the
/// problem edge, charging only in-bounds loads (cp.async zero-fill
/// semantics).
///
/// `row0` is the first global row; `k0` the first global column of the
/// K-slab; the backing matrix is `rows x cols` row-major in `global`.
pub(crate) fn fill_tile_from_global<T: Scalar, C: EventSink + ?Sized>(
    tile: &mut SharedTile<T>,
    global: &GlobalBuffer<T>,
    row0: usize,
    k0: usize,
    rows: usize,
    cols: usize,
    counters: &C,
) {
    let mut loaded = 0u64;
    for r in 0..tile.rows() {
        let gr = row0 + r;
        for c in 0..tile.cols() {
            let gc = k0 + c;
            let v = if gr < rows && gc < cols {
                loaded += 1;
                global.load(gr * cols + gc)
            } else {
                T::ZERO
            };
            tile.set(r, c, v);
        }
    }
    counters.add_loaded(loaded * std::mem::size_of::<T>() as u64);
}

/// SIMT threadblock GEMM slab: `acc[i][j] += Σ_k a[i][k]·b[j][k]` over the
/// shared tiles' first `kk` columns. Fault hook applied at slab granularity;
/// FMA count charged in bulk.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simt_block_gemm<T: Scalar, C: EventSink + ?Sized>(
    acc: &mut [T],
    a: &SharedTile<T>,
    b: &SharedTile<T>,
    tm: usize,
    tn: usize,
    kk: usize,
    site: MmaSite,
    hook: &dyn FaultHook<T>,
    counters: &C,
) {
    debug_assert_eq!(acc.len(), tm * tn);
    for i in 0..tm {
        for j in 0..tn {
            let mut sum = T::ZERO;
            for k in 0..kk {
                sum += a.get(i, k) * b.get(j, k);
            }
            acc[i * tn + j] += sum;
        }
    }
    counters.add_fma((tm * tn * kk) as u64);
    hook.post_mma(&site, acc, tn);
}

/// Row-minimum epilogue over a block's accumulator tile: for every valid
/// row, find the nearest centroid among the block's valid columns using
/// `dist = ‖x‖² + ‖y‖² − 2·(x·y)` and return `(distance, global column)`
/// pairs. Charges epilogue FMA work.
#[allow(clippy::too_many_arguments)]
pub(crate) fn block_row_min<T: Scalar, C: EventSink + ?Sized>(
    acc: &[T],
    tn: usize,
    row0: usize,
    rows_valid: usize,
    col0: usize,
    cols_valid: usize,
    sample_norms: &GlobalBuffer<T>,
    centroid_norms: &GlobalBuffer<T>,
    counters: &C,
) -> Vec<(T, u32)> {
    let two = T::ONE + T::ONE;
    let mut out = Vec::with_capacity(rows_valid);
    for i in 0..rows_valid {
        let xn = sample_norms.load_counted(row0 + i, counters);
        let mut best = T::INFINITY;
        let mut best_j = u32::MAX;
        for j in 0..cols_valid {
            let yn = centroid_norms.load(col0 + j);
            let d = xn + yn - two * acc[i * tn + j];
            if d < best || (d == best && ((col0 + j) as u32) < best_j) {
                best = d;
                best_j = (col0 + j) as u32;
            }
        }
        out.push((best, best_j));
    }
    counters.add_fma((rows_valid * cols_valid * 2) as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::mma::NoFault;
    use gpu_sim::Counters;

    #[test]
    fn tile_fill_pads_with_zero_and_charges_inbounds_only() {
        let c = Counters::new();
        let global = GlobalBuffer::<f32>::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // 3x2
        let mut tile = SharedTile::<f32>::new(2, 3);
        fill_tile_from_global(&mut tile, &global, 2, 0, 3, 2, &c);
        // global row 2 = [5,6]; row 3 doesn't exist; col 2 doesn't exist
        assert_eq!(tile.get(0, 0), 5.0);
        assert_eq!(tile.get(0, 1), 6.0);
        assert_eq!(tile.get(0, 2), 0.0);
        assert_eq!(tile.get(1, 0), 0.0);
        assert_eq!(c.snapshot().bytes_loaded, 2 * 4);
    }

    #[test]
    fn simt_gemm_matches_reference() {
        let c = Counters::new();
        let mut a = SharedTile::<f64>::new(2, 3);
        let mut b = SharedTile::<f64>::new(2, 3);
        for k in 0..3 {
            a.set(0, k, (k + 1) as f64);
            a.set(1, k, 1.0);
            b.set(0, k, 2.0);
            b.set(1, k, (k as f64) - 1.0);
        }
        let mut acc = vec![0.0f64; 4];
        let site = MmaSite {
            block: (0, 0),
            warp: 0,
            k_step: 0,
            is_checksum: false,
        };
        simt_block_gemm(&mut acc, &a, &b, 2, 2, 3, site, &NoFault, &c);
        // row0: [1,2,3]·[2,2,2]=12 ; [1,2,3]·[-1,0,1]=2
        // row1: [1,1,1]·[2,2,2]=6  ; [1,1,1]·[-1,0,1]=0
        assert_eq!(acc, vec![12.0, 2.0, 6.0, 0.0]);
        assert_eq!(c.snapshot().fma_ops, 12);
    }

    #[test]
    fn row_min_uses_norm_identity() {
        let c = Counters::new();
        // x = (1,0); centroids y0 = (1,0), y1 = (0,2)
        // products: x·y0 = 1, x·y1 = 0
        let acc = vec![1.0f64, 0.0];
        let xn = GlobalBuffer::from_slice(&[1.0f64]);
        let yn = GlobalBuffer::from_slice(&[1.0f64, 4.0]);
        let out = block_row_min(&acc, 2, 0, 1, 0, 2, &xn, &yn, &c);
        // d0 = 1+1-2 = 0 ; d1 = 1+4-0 = 5
        assert_eq!(out, vec![(0.0, 0)]);
    }

    #[test]
    fn row_min_ties_break_low_index() {
        let c = Counters::new();
        let acc = vec![0.0f32, 0.0];
        let xn = GlobalBuffer::from_slice(&[0.0f32]);
        let yn = GlobalBuffer::from_slice(&[1.0f32, 1.0]);
        let out = block_row_min(&acc, 2, 0, 1, 0, 2, &xn, &yn, &c);
        assert_eq!(out[0].1, 0);
    }
}
