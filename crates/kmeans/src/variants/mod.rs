//! The step-wise kernel variants of §III, lowest to highest performance.

pub mod broadcast;
pub mod fused;
pub mod gemm;
pub mod hamerly;
pub mod naive;
pub mod predict_fused;
pub mod tensor;

use gpu_sim::mma::{FaultHook, MmaSite};
use gpu_sim::shared::SharedTile;
use gpu_sim::{EventSink, GlobalBuffer, Scalar};

/// Fill a shared operand tile from global memory with zero-padding at the
/// problem edge, charging only in-bounds loads (cp.async zero-fill
/// semantics).
///
/// `row0` is the first global row; `k0` the first global column of the
/// K-slab; the backing matrix is `rows x cols` row-major in `global`.
///
/// Every in-bounds row moves as one contiguous run (`copy_from_slice` under
/// the hood) and the whole tile is charged as bulk transactions — byte
/// totals are identical to per-element charging.
pub(crate) fn fill_tile_from_global<T: Scalar, C: EventSink + ?Sized>(
    tile: &mut SharedTile<T>,
    global: &GlobalBuffer<T>,
    row0: usize,
    k0: usize,
    rows: usize,
    cols: usize,
    counters: &C,
) {
    let tile_rows = tile.rows();
    let mut loaded = 0u64;
    for r in 0..tile_rows {
        let gr = row0 + r;
        let dst = tile.row_mut(r);
        if gr < rows && k0 < cols {
            let run = dst.len().min(cols - k0);
            global.read_range(gr * cols + k0, &mut dst[..run]);
            dst[run..].fill(T::ZERO);
            loaded += run as u64;
        } else {
            dst.fill(T::ZERO);
        }
    }
    counters.add_loaded(loaded * std::mem::size_of::<T>() as u64);
}

/// SIMT threadblock GEMM slab: `acc[i][j] += Σ_k a[i][k]·b[j][k]` over the
/// shared tiles' first `kk` columns, for the `tm x tn` active sub-tile of an
/// accumulator laid out row-major with row stride `stride`. Fault hook
/// applied at slab granularity (over the full accumulator, as before); FMA
/// count charged in bulk.
///
/// The micro-kernel is register-blocked four output columns wide over
/// contiguous tile-row slices; each output still accumulates its k terms in
/// ascending order, so results are bitwise identical to the scalar triple
/// loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simt_block_gemm<T: Scalar, C: EventSink + ?Sized>(
    acc: &mut [T],
    a: &SharedTile<T>,
    b: &SharedTile<T>,
    tm: usize,
    tn: usize,
    stride: usize,
    kk: usize,
    site: MmaSite,
    hook: &dyn FaultHook<T>,
    counters: &C,
) {
    debug_assert!(tn <= stride);
    debug_assert!(tm == 0 || acc.len() >= (tm - 1) * stride + tn);
    for i in 0..tm {
        let arow = &a.row(i)[..kk];
        let crow = &mut acc[i * stride..i * stride + tn];
        let mut j = 0;
        while j + 4 <= tn {
            let b0 = &b.row(j)[..kk];
            let b1 = &b.row(j + 1)[..kk];
            let b2 = &b.row(j + 2)[..kk];
            let b3 = &b.row(j + 3)[..kk];
            let (mut s0, mut s1, mut s2, mut s3) = (T::ZERO, T::ZERO, T::ZERO, T::ZERO);
            for (k, &av) in arow.iter().enumerate() {
                s0 += av * b0[k];
                s1 += av * b1[k];
                s2 += av * b2[k];
                s3 += av * b3[k];
            }
            crow[j] += s0;
            crow[j + 1] += s1;
            crow[j + 2] += s2;
            crow[j + 3] += s3;
            j += 4;
        }
        while j < tn {
            let brow = &b.row(j)[..kk];
            let mut sum = T::ZERO;
            for (k, &av) in arow.iter().enumerate() {
                sum += av * brow[k];
            }
            crow[j] += sum;
            j += 1;
        }
    }
    counters.add_fma((tm * tn * kk) as u64);
    hook.post_mma(&site, acc, stride);
}

/// Row-minimum epilogue over a block's accumulator tile: for every valid
/// row, find the nearest centroid among the block's valid columns using
/// `dist = ‖x‖² + ‖y‖² − 2·(x·y)`, writing `(distance, global column)`
/// pairs into `out`. The norm vectors arrive as slices the caller already
/// staged (bulk loads, charged at the call site); this routine charges the
/// epilogue FMA work.
pub(crate) fn block_row_min<T: Scalar, C: EventSink + ?Sized>(
    acc: &[T],
    stride: usize,
    xn: &[T],
    yn: &[T],
    col0: usize,
    out: &mut [(T, u32)],
    counters: &C,
) {
    debug_assert_eq!(out.len(), xn.len());
    let two = T::ONE + T::ONE;
    for (i, (&x, slot)) in xn.iter().zip(out.iter_mut()).enumerate() {
        let row = &acc[i * stride..i * stride + yn.len()];
        let mut best = T::INFINITY;
        let mut best_j = u32::MAX;
        for (j, (&y, &xy)) in yn.iter().zip(row.iter()).enumerate() {
            let d = x + y - two * xy;
            if d < best || (d == best && ((col0 + j) as u32) < best_j) {
                best = d;
                best_j = (col0 + j) as u32;
            }
        }
        *slot = (best, best_j);
    }
    counters.add_fma((xn.len() * yn.len() * 2) as u64);
}

/// V2/V3 epilogue entry: stage the block's norm vectors as bulk runs —
/// sample norms counted, centroid norms broadcast/uncounted, the exact
/// charging contract of the per-element path — then compute the row minima
/// over the `rows x cols` valid sub-tile of a stride-`TB_N` accumulator.
/// `out` receives `rows` `(distance, global column)` pairs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn staged_block_row_min<T: Scalar, C: EventSink + ?Sized>(
    acc: &[T],
    sample_norms: &GlobalBuffer<T>,
    centroid_norms: &GlobalBuffer<T>,
    row0: usize,
    rows: usize,
    col0: usize,
    cols: usize,
    out: &mut [(T, u32)],
    counters: &C,
) {
    use gemm::{TB_M, TB_N};
    debug_assert!(rows <= TB_M && cols <= TB_N);
    let mut xn = [T::ZERO; TB_M];
    sample_norms.load_run(row0, &mut xn[..rows], counters);
    let mut yn = [T::ZERO; TB_N];
    centroid_norms.read_range(col0, &mut yn[..cols]);
    block_row_min(acc, TB_N, &xn[..rows], &yn[..cols], col0, out, counters);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::mma::NoFault;
    use gpu_sim::Counters;

    #[test]
    fn tile_fill_pads_with_zero_and_charges_inbounds_only() {
        let c = Counters::new();
        let global = GlobalBuffer::<f32>::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // 3x2
        let mut tile = SharedTile::<f32>::new(2, 3);
        fill_tile_from_global(&mut tile, &global, 2, 0, 3, 2, &c);
        // global row 2 = [5,6]; row 3 doesn't exist; col 2 doesn't exist
        assert_eq!(tile.get(0, 0), 5.0);
        assert_eq!(tile.get(0, 1), 6.0);
        assert_eq!(tile.get(0, 2), 0.0);
        assert_eq!(tile.get(1, 0), 0.0);
        assert_eq!(c.snapshot().bytes_loaded, 2 * 4);
    }

    #[test]
    fn tile_fill_bulk_charges_equal_per_element_accounting() {
        // The bulk tile fill must charge exactly what a per-element
        // `load_counted` walk of the same in-bounds region would.
        let (rows, cols) = (5, 7);
        let global = GlobalBuffer::<f64>::from_slice(
            &(0..rows * cols).map(|i| i as f64).collect::<Vec<_>>(),
        );
        for (row0, k0) in [(0, 0), (2, 3), (4, 6), (3, 5)] {
            let bulk = Counters::new();
            let mut tile = SharedTile::<f64>::new(3, 4);
            fill_tile_from_global(&mut tile, &global, row0, k0, rows, cols, &bulk);

            let per_elem = Counters::new();
            let mut want = SharedTile::<f64>::new(3, 4);
            for r in 0..3 {
                for c in 0..4 {
                    let (gr, gc) = (row0 + r, k0 + c);
                    let v = if gr < rows && gc < cols {
                        global.load_counted(gr * cols + gc, &per_elem)
                    } else {
                        0.0
                    };
                    want.set(r, c, v);
                }
            }
            assert_eq!(bulk.snapshot(), per_elem.snapshot(), "at ({row0},{k0})");
            assert_eq!(tile.as_slice(), want.as_slice());
        }
    }

    #[test]
    fn simt_gemm_matches_reference() {
        let c = Counters::new();
        let mut a = SharedTile::<f64>::new(2, 3);
        let mut b = SharedTile::<f64>::new(2, 3);
        for k in 0..3 {
            a.set(0, k, (k + 1) as f64);
            a.set(1, k, 1.0);
            b.set(0, k, 2.0);
            b.set(1, k, (k as f64) - 1.0);
        }
        let mut acc = vec![0.0f64; 4];
        let site = MmaSite {
            block: (0, 0),
            warp: 0,
            k_step: 0,
            is_checksum: false,
        };
        simt_block_gemm(&mut acc, &a, &b, 2, 2, 2, 3, site, &NoFault, &c);
        // row0: [1,2,3]·[2,2,2]=12 ; [1,2,3]·[-1,0,1]=2
        // row1: [1,1,1]·[2,2,2]=6  ; [1,1,1]·[-1,0,1]=0
        assert_eq!(acc, vec![12.0, 2.0, 6.0, 0.0]);
        assert_eq!(c.snapshot().fma_ops, 12);
    }

    #[test]
    fn simt_gemm_active_subtile_with_wider_stride() {
        // tm x tn = 2x2 active region inside a stride-3 accumulator: the
        // padding column must stay untouched.
        let c = Counters::new();
        let mut a = SharedTile::<f64>::new(2, 2);
        let mut b = SharedTile::<f64>::new(3, 2);
        for k in 0..2 {
            a.set(0, k, 1.0);
            a.set(1, k, 2.0);
            b.set(0, k, 1.0);
            b.set(1, k, (k + 1) as f64);
            b.set(2, k, 100.0); // column outside the active region
        }
        let mut acc = vec![0.0f64; 6];
        let site = MmaSite {
            block: (0, 0),
            warp: 0,
            k_step: 0,
            is_checksum: false,
        };
        simt_block_gemm(&mut acc, &a, &b, 2, 2, 3, 2, site, &NoFault, &c);
        assert_eq!(acc, vec![2.0, 3.0, 0.0, 4.0, 6.0, 0.0]);
        assert_eq!(c.snapshot().fma_ops, 2 * 2 * 2);
    }

    #[test]
    fn simt_gemm_register_blocking_is_bitwise_identical_to_scalar_loop() {
        // 11 columns exercise both the 4-wide blocked loop and the tail.
        let (tm, tn, kk) = (3, 11, 9);
        let mut a = SharedTile::<f32>::new(tm, kk);
        let mut b = SharedTile::<f32>::new(tn, kk);
        for i in 0..tm {
            for k in 0..kk {
                a.set(i, k, ((i * 31 + k * 7) as f32 * 0.123).sin());
            }
        }
        for j in 0..tn {
            for k in 0..kk {
                b.set(j, k, ((j * 13 + k * 3) as f32 * 0.456).cos());
            }
        }
        let mut want = vec![0.0f32; tm * tn];
        for i in 0..tm {
            for j in 0..tn {
                let mut sum = 0.0f32;
                for k in 0..kk {
                    sum += a.get(i, k) * b.get(j, k);
                }
                want[i * tn + j] += sum;
            }
        }
        let c = Counters::new();
        let mut acc = vec![0.0f32; tm * tn];
        let site = MmaSite {
            block: (0, 0),
            warp: 0,
            k_step: 0,
            is_checksum: false,
        };
        simt_block_gemm(&mut acc, &a, &b, tm, tn, tn, kk, site, &NoFault, &c);
        for (got, want) in acc.iter().zip(want.iter()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn row_min_uses_norm_identity() {
        let c = Counters::new();
        // x = (1,0); centroids y0 = (1,0), y1 = (0,2)
        // products: x·y0 = 1, x·y1 = 0
        let acc = vec![1.0f64, 0.0];
        let mut out = [(0.0f64, 0u32); 1];
        block_row_min(&acc, 2, &[1.0], &[1.0, 4.0], 0, &mut out, &c);
        // d0 = 1+1-2 = 0 ; d1 = 1+4-0 = 5
        assert_eq!(out, [(0.0, 0)]);
    }

    #[test]
    fn row_min_ties_break_low_index() {
        let c = Counters::new();
        let acc = vec![0.0f32, 0.0];
        let mut out = [(0.0f32, 0u32); 1];
        block_row_min(&acc, 2, &[0.0], &[1.0, 1.0], 0, &mut out, &c);
        assert_eq!(out[0].1, 0);
    }
}
