//! Fused quantized distance+argmin predict kernel — the serving path.
//!
//! Serving a fitted model is a pure assignment problem: no update phase, no
//! iteration loop, the centroid table is frozen. This kernel exploits that
//! shape three ways the fit-grade kernels cannot:
//!
//! 1. **Quantized resident table.** Each threadblock bulk-loads the packed
//!    fp16/int8 codes once ([`QuantizedCentroids::stage_dequantized`]),
//!    dequantizes them in registers, and scores all of its samples against
//!    the staged fp table — centroid traffic drops 2–4× *and* stops
//!    scaling with `M` (the naive kernel re-reads the fp table per sample).
//! 2. **Fused epilogue.** The running `(best, second, argmin)` triple lives
//!    in registers while the distance row streams — the `M × k` distance
//!    matrix is never materialized.
//! 3. **In-kernel sample norms.** `‖x‖²` is one extra fused multiply per
//!    element of a row that is already in registers, so the quantized path
//!    launches no separate sample-norms kernel at all.
//!
//! Accuracy is not traded away: every accepted argmin must clear the
//! [`abft::QuantMargin`] bound (quantization displacement + FP noise), and
//! the winner's distance is then re-derived from the exact fp centroid row
//! with the reference scan's own arithmetic — labels *and* distances are
//! bit-identical to [`crate::variants::naive`]. A sample whose margin is
//! too thin falls back to the full exact row scan and is counted via
//! [`gpu_sim::EventSink::add_quant_fallback`].

use crate::assign::AssignmentResult;
use crate::quant::QuantizedCentroids;
use gpu_sim::memory::GlobalIndexBuffer;
use gpu_sim::{
    launch_grid_labeled, Counters, DeviceProfile, Dim3, GlobalBuffer, LaunchConfig, Scalar,
    ScratchBuf, SimError,
};

/// Samples per threadblock (matches the naive kernel's block shape so the
/// two paths see identical grid quantization).
const SAMPLES_PER_BLOCK: usize = 256;

/// Exact squared distance of a staged sample row to one staged fp centroid
/// row — the naive kernel's inner loop verbatim (staging copies bits, so an
/// accepted winner's distance and a fallback row's distances are
/// bit-identical to the reference scan).
#[inline]
fn exact_row_distance<T: Scalar>(x: &[T], fp: &[T], j: usize, dim: usize) -> T {
    let mut acc = T::ZERO;
    for (&xv, &yv) in x.iter().zip(fp[j * dim..(j + 1) * dim].iter()) {
        let diff = xv - yv;
        acc += diff * diff;
    }
    acc
}

/// Eight-accumulator dot product for the quantized scan. Re-associating the
/// sum breaks the serial FP-add dependency chain (and lets the compiler
/// vectorize), which is safe *here* because scan distances only drive the
/// argmin candidate and the margin decision: the accumulation-error term in
/// [`abft::QuantMargin`]'s slack (`4·(dim+16)·ε·‖·‖`) bounds any summation
/// order of `dim` terms, and an accepted winner's distance is re-derived
/// with [`exact_row_distance`]. A near-tie whose ordering could differ
/// under re-association is by construction inside the slack → fallback.
#[inline]
fn dot_wide<T: Scalar>(x: &[T], y: &[T]) -> T {
    let mut acc = [T::ZERO; 8];
    let xc = x.chunks_exact(8);
    let yc = y.chunks_exact(8);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (xs, ys) in xc.zip(yc) {
        for l in 0..8 {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut tail = T::ZERO;
    for (&xv, &yv) in xr.iter().zip(yr.iter()) {
        tail += xv * yv;
    }
    (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail
}

/// The device-resident inputs of one fused predict launch: the uploaded
/// `m × dim` query matrix, the resident fp centroid table the fallback
/// rows read, and the shapes tying them together.
pub struct QueryView<'a, T: Scalar> {
    /// Uploaded query samples, row-major `m × dim`.
    pub samples: &'a GlobalBuffer<T>,
    /// Resident exact centroid table, row-major `k × dim`.
    pub centroids: &'a GlobalBuffer<T>,
    /// Number of query rows.
    pub m: usize,
    /// Number of centroids.
    pub k: usize,
    /// Feature dimension.
    pub dim: usize,
}

/// Run the fused quantized predict kernel over the query view's samples.
///
/// `table` is the quantized resident state (verified by the caller before
/// launch).
pub fn predict_fused_assign<T: Scalar>(
    device: &DeviceProfile,
    query: QueryView<'_, T>,
    table: &QuantizedCentroids<T>,
    counters: &Counters,
) -> Result<AssignmentResult<T>, SimError> {
    let QueryView {
        samples,
        centroids,
        m,
        k,
        dim,
    } = query;
    assert_eq!(table.k, k, "quantized table k mismatch");
    assert_eq!(table.dim, dim, "quantized table dim mismatch");
    let labels = GlobalIndexBuffer::zeros(m);
    labels.set_sanitizer_label("predict.labels");
    let dists = GlobalBuffer::<T>::filled(m, T::INFINITY);
    dists.set_sanitizer_label("predict.dists");
    let grid = Dim3::x(m.div_ceil(SAMPLES_PER_BLOCK).max(1));
    let cfg = LaunchConfig {
        grid,
        threads_per_block: SAMPLES_PER_BLOCK,
        smem_bytes: table.code_bytes() + (2 * k + k * dim) * std::mem::size_of::<T>(),
    };
    let margin = table.margin;

    launch_grid_labeled(device, cfg, counters, "predict_fused", |ctx| {
        let row0 = ctx.bx * SAMPLES_PER_BLOCK;
        let rows = SAMPLES_PER_BLOCK.min(m.saturating_sub(row0));
        if rows == 0 {
            return;
        }
        // Stage the whole dequantized table once per block: packed code
        // traffic plus the cached scale/norm vectors, dequantized into
        // block-local scratch. The default serving shape (k=16, d=64)
        // fits the stack arrays exactly.
        let mut cents = ScratchBuf::<T, 1024>::filled(k * dim, T::ZERO);
        let mut qnorms = ScratchBuf::<T, 64>::filled(k, T::ZERO);
        let mut scales = ScratchBuf::<T, 64>::filled(k, T::ZERO);
        table.stage_dequantized(&mut cents, &mut qnorms, &mut scales, ctx.counters);
        // Stage the exact fp table once per block too: winner re-derivation
        // and fallback scans read the staged copy (bit-identical values), so
        // fp centroid traffic is one k×dim read per *block*, not per sample.
        let mut fp = ScratchBuf::<T, 1024>::filled(k * dim, T::ZERO);
        centroids.load_run(0, &mut fp, ctx.counters);
        // Stream the block's whole query tile through one bulk load.
        let mut xtile = ScratchBuf::<T, 4096>::filled(rows * dim, T::ZERO);
        samples.load_run(row0 * dim, &mut xtile, ctx.counters);
        // Per-block f64 copies of the quantized norms and their square
        // roots, for the norm-only pruning bounds below.
        let mut qn64 = ScratchBuf::<f64, 64>::filled(k, 0.0);
        let mut sq64 = ScratchBuf::<f64, 64>::filled(k, 0.0);
        for j in 0..k {
            let q = qnorms[j].to_f64();
            qn64[j] = q;
            sq64[j] = q.max(0.0).sqrt();
        }

        let mut out_d = [T::INFINITY; SAMPLES_PER_BLOCK];
        let mut out_j = [u32::MAX; SAMPLES_PER_BLOCK];
        // Per-sample working set: `dlb[j]` holds row j's scan distance once
        // evaluated (`evald[j] == 1`), else a lower bound on it.
        let mut dlb = ScratchBuf::<f64, 64>::filled(k, 0.0);
        let mut evald = ScratchBuf::<u8, 64>::filled(k, 0);
        let mut fallbacks = 0u64;
        let mut accepted_n = 0u64;
        let mut dots_n = 0u64;
        for i in 0..rows {
            let x = &xtile[i * dim..(i + 1) * dim];
            // ‖x‖² folded into a pass over the staged row — no separate
            // norms kernel on this path.
            let xn = dot_wide(x, x);
            let xnf = xn.to_f64();
            let sxn = xnf.max(0.0).sqrt();
            // Norm-only lower bounds: ‖x − ĉ_j‖² ≥ (√‖x‖ − √‖ĉ_j‖)² by the
            // reverse triangle inequality. The `rel_slack·mag` guard covers
            // the T-accumulation wobble of the staged norms (the margin's
            // own slack budgets 4× that), so a bound never lands above the
            // scan distance it stands in for; the clamp keeps a valid (the
            // true value is a squared norm) bound finite-math friendly.
            for j in 0..k {
                let mag = xnf + qn64[j];
                let lb = mag - 2.0 * sxn * sq64[j] - margin.rel_slack * mag.abs();
                dlb[j] = lb.max(0.0);
                evald[j] = 0;
            }
            // Evaluate the most promising row, then lazily refine: the
            // margin's runner-up only needs to LOWER-BOUND every other
            // row's scan distance, so unevaluated rows stand in with their
            // norm bound — strictly conservative. Each rejection evaluates
            // the binding row; on well-separated data one dot product
            // usually decides the sample.
            let mut jmin = 0usize;
            for j in 1..k {
                if dlb[j] < dlb[jmin] {
                    jmin = j;
                }
            }
            let row = &cents[jmin * dim..(jmin + 1) * dim];
            let dot = dot_wide(x, row);
            dlb[jmin] = (xn + qnorms[jmin] - (dot + dot)).to_f64();
            evald[jmin] = 1;
            dots_n += 1;
            let mut best_f = dlb[jmin];
            let mut best_idx = jmin as u32;
            let accepted = loop {
                let mut second_f = f64::INFINITY;
                let mut j2 = usize::MAX;
                for j in 0..k {
                    if j as u32 != best_idx && dlb[j] < second_f {
                        second_f = dlb[j];
                        j2 = j;
                    }
                }
                if margin.accepts(
                    best_f,
                    second_f,
                    table.err_norms[best_idx as usize],
                    xnf + table.max_norm_sq,
                ) {
                    break true;
                }
                if j2 == usize::MAX || evald[j2] == 1 {
                    // The binding runner-up is already exact — the margin
                    // is genuinely too thin for the quantization error.
                    break false;
                }
                let row = &cents[j2 * dim..(j2 + 1) * dim];
                let dot = dot_wide(x, row);
                let d = (xn + qnorms[j2] - (dot + dot)).to_f64();
                dlb[j2] = d;
                evald[j2] = 1;
                dots_n += 1;
                if d < best_f || (d == best_f && (j2 as u32) < best_idx) {
                    best_f = d;
                    best_idx = j2 as u32;
                }
            };
            if accepted {
                // Label is provably the exact argmin; re-derive only the
                // winner's distance with reference arithmetic.
                accepted_n += 1;
                out_j[i] = best_idx;
                out_d[i] = exact_row_distance(x, &fp, best_idx as usize, dim);
            } else {
                // Margin too thin for the quantization error: exact fp row
                // scan, identical to the naive kernel (same tie-break).
                fallbacks += 1;
                let mut fb_best = T::INFINITY;
                let mut fb_idx = u32::MAX;
                for j in 0..k {
                    let acc = exact_row_distance(x, &fp, j, dim);
                    if acc < fb_best || (acc == fb_best && (j as u32) < fb_idx) {
                        fb_best = acc;
                        fb_idx = j as u32;
                    }
                }
                out_j[i] = fb_idx;
                out_d[i] = fb_best;
            }
        }
        // FMA accounting hoisted out of the per-sample loop — one aggregate
        // per block: per sample d (norm) + 2k (pruning bounds), plus 2d per
        // evaluated scan dot, 2d per accepted winner re-derivation, and
        // 2dk per fallback scan.
        let per_sample = (dim + 2 * k) as u64;
        ctx.counters.add_fma(
            rows as u64 * per_sample
                + dots_n * (2 * dim) as u64
                + accepted_n * (2 * dim) as u64
                + fallbacks * (2 * dim * k) as u64,
        );
        if fallbacks > 0 {
            ctx.counters.add_quant_fallback(fallbacks);
        }
        labels.write_range(row0, &out_j[..rows]);
        dists.store_run(row0, &out_d[..rows], ctx.counters);
    })?;

    Ok(AssignmentResult {
        labels: labels.to_vec(),
        distances: dists.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device_data::DeviceData;
    use crate::quant::QuantKind;
    use crate::variants::naive::naive_assign;
    use gpu_sim::mma::NoFault;
    use gpu_sim::Matrix;

    fn fixture() -> (Matrix<f32>, Matrix<f32>) {
        let samples = Matrix::<f32>::from_fn(193, 17, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let cents = Matrix::<f32>::from_fn(7, 17, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
        (samples, cents)
    }

    fn view<T: Scalar>(data: &DeviceData<T>) -> QueryView<'_, T> {
        QueryView {
            samples: &data.samples,
            centroids: &data.centroids,
            m: data.m,
            k: data.k,
            dim: data.dim,
        }
    }

    #[test]
    fn labels_and_distances_match_naive_bit_for_bit() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, cents) = fixture();
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let want = naive_assign(&dev, &data, &NoFault, &c).unwrap();
        for kind in [QuantKind::Fp16, QuantKind::Int8] {
            let table = QuantizedCentroids::build(&data.centroids, data.k, data.dim, kind);
            let got = predict_fused_assign(&dev, view(&data), &table, &c).unwrap();
            assert_eq!(got.labels, want.labels, "{kind:?} labels");
            for (a, b) in got.distances.iter().zip(want.distances.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} distances");
            }
        }
    }

    #[test]
    fn well_separated_data_mostly_accepts() {
        // Two far-apart blobs: the argmin margin dwarfs the quantization
        // error, so nearly every sample should take the fast path.
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f32>::from_fn(512, 8, |r, ccol| {
            (r % 2) as f32 * 100.0 + (ccol as f32) * 0.25 + ((r / 2) % 5) as f32 * 0.01
        });
        let cents = Matrix::<f32>::from_fn(2, 8, |r, ccol| r as f32 * 100.0 + (ccol as f32) * 0.25);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let table = QuantizedCentroids::build(&data.centroids, data.k, data.dim, QuantKind::Int8);
        let before = c.snapshot();
        let got = predict_fused_assign(&dev, view(&data), &table, &c).unwrap();
        let fallbacks = c.snapshot().since(&before).quant_fallbacks;
        assert_eq!(fallbacks, 0, "wide margins never fall back");
        let want = naive_assign(&dev, &data, &NoFault, &c).unwrap();
        assert_eq!(got.labels, want.labels);
    }

    #[test]
    fn k_of_one_rejects_to_exact_scan() {
        // The +∞ runner-up sentinel must reject, not accept on garbage.
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::from_fn(9, 3, |r, ccol| (r + ccol) as f64);
        let cents = Matrix::<f64>::from_fn(1, 3, |_, ccol| ccol as f64 * 2.0);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let table = QuantizedCentroids::build(&data.centroids, 1, 3, QuantKind::Fp16);
        let before = c.snapshot();
        let got = predict_fused_assign(&dev, view(&data), &table, &c).unwrap();
        assert_eq!(c.snapshot().since(&before).quant_fallbacks, 9);
        let want = naive_assign(&dev, &data, &NoFault, &c).unwrap();
        assert_eq!(got.labels, want.labels);
        assert_eq!(got.distances, want.distances);
    }

    #[test]
    fn centroid_traffic_does_not_scale_with_m_on_the_fast_path() {
        // Both tables (quantized codes and the exact fp copy) are staged
        // once per block, and the query tile streams through one bulk load —
        // per-sample centroid traffic is zero, unlike naive's full k-row
        // re-read per sample.
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f32>::from_fn(256, 4, |r, _| (r % 2) as f32 * 50.0);
        let cents = Matrix::<f32>::from_fn(2, 4, |r, _| r as f32 * 50.0);
        let data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let table = QuantizedCentroids::build(&data.centroids, 2, 4, QuantKind::Int8);
        let before = c.snapshot();
        predict_fused_assign(&dev, view(&data), &table, &c).unwrap();
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.quant_fallbacks, 0);
        // one block: staged codes 8 B + scales/norms 16 B + staged fp table
        // 2×4×4 = 32 B + query tile 256×4×4 = 4096 B. Centroid traffic is
        // per *block*, so it does not grow with m.
        assert_eq!(delta.bytes_loaded, 8 + 16 + 32 + 4096);
        // naive on the same shape re-reads all k rows per sample:
        // 256 × (4 + 2×4) × 4 = 12288 loaded bytes — already ~3x at k=2,
        // and the gap widens linearly in k (fused stays per-block).
        let nb = c.snapshot();
        naive_assign(&dev, &data, &NoFault, &c).unwrap();
        let naive_bytes = c.snapshot().since(&nb).bytes_loaded;
        assert_eq!(naive_bytes, 256 * (4 + 8) * 4);
        assert!(naive_bytes > 2 * delta.bytes_loaded);
    }
}
