//! # ftk-kmeans — FT K-means core
//!
//! The paper's contribution: a step-wise optimized K-means whose
//! distance/assignment stage runs as a fused GEMM on the simulated GPU
//! ([`gpu_sim`]), with optional warp-level algorithm-based fault tolerance.
//!
//! The step-wise variants of §III are all present and runnable, plus a
//! bound-pruned sixth family that amortizes over Lloyd iterations:
//!
//! | variant | §III | kernel |
//! |---|---|---|
//! | [`Variant::Naive`] | A-1 | thread-per-sample distance loop |
//! | [`Variant::GemmV1`] | A-2 | SIMT GEMM + separate row-min kernel |
//! | [`Variant::FusedV2`] | A-3 | fused thread/threadblock reduction |
//! | [`Variant::BroadcastV3`] | A-4 | fully fused with per-row broadcast |
//! | [`Variant::Tensor`] | A-5 | tensor-core pipeline kernel (Fig. 4/6) |
//! | [`Variant::Hamerly`] | — | triangle-inequality bound pruning ([`variants::hamerly`]) |
//! | serving path | — | fused quantized distance+argmin ([`variants::predict_fused`], [`PredictPolicy`]) |
//!
//! Fault tolerance plugs into the tensor variant as [`abft::SchemeKind`]:
//! the paper's warp-level detect+correct scheme, Kosaian's detection-only
//! scheme, and Wu's threadblock-level scheme; the centroid-update phase is
//! DMR-protected ([`update`]). The Hamerly variant's device-resident
//! bounds get their own checksum-style protection: periodic revalidation
//! sweeps ([`variants::hamerly::revalidate`], cadence
//! [`FtConfig::revalidate_every`]) that recompute exact distances for a
//! rotating sample stratum and force a full un-pruned re-assignment when
//! a stored bound or label cannot be fault-free; under a protective
//! scheme the sweeps widen to the whole population and verify-and-repair
//! in place ([`variants::hamerly::revalidate_and_repair`]), making a
//! cadence-1 protected fit bit-identical to its fault-free twin.
//!
//! ## Estimator lifecycle
//!
//! A [`Session`] owns the long-lived context (device profile, executor
//! handle, lazily-built kernel selector with optional on-disk persistence);
//! estimators derive from it and fits return a [`FittedModel`] that owns
//! the uploaded device data:
//!
//! ```
//! use gpu_sim::{DeviceProfile, Matrix};
//! use kmeans::{FtConfig, KMeansConfig, Session, Variant};
//!
//! // 64 samples around two centers on a line.
//! let data = Matrix::<f64>::from_fn(64, 2, |r, c| {
//!     (r % 2) as f64 * 10.0 + (r as f64 * 0.01) + c as f64 * 0.1
//! });
//! let session = Session::new(DeviceProfile::a100());
//! let km = session.kmeans(
//!     KMeansConfig::new(2)
//!         .with_variant(Variant::tensor_default())
//!         .with_ft(FtConfig::protected()),
//! );
//! let model = km.fit_model(&data).unwrap();
//! assert!(model.converged);
//! assert_eq!(model.labels.len(), 64);
//! // even samples cluster together, odd samples together
//! assert_eq!(model.labels[0], model.labels[2]);
//! assert_ne!(model.labels[0], model.labels[1]);
//! // the model predicts new samples without re-uploading its centroids
//! assert_eq!(model.predict(&data).unwrap(), model.labels);
//! ```
//!
//! Streaming workloads use [`KMeans::partial_fit`] — mini-batch K-means
//! over the same assignment kernels, with per-batch ABFT accounting; see
//! the [`minibatch`](crate::KMeans::partial_fit) docs.

pub mod assign;
pub mod baselines;
pub mod config;
pub mod device_data;
pub mod driver;
pub mod error;
mod init;
pub mod metrics;
mod minibatch;
pub mod model;
pub mod norms;
mod phase;
pub mod quant;
pub mod reference;
pub mod session;
pub mod update;
pub mod variants;

pub use assign::AssignmentResult;
pub use config::{FtConfig, InitMethod, KMeansConfig, PredictPolicy, Variant};
pub use device_data::DeviceData;
pub use driver::{FitResult, IterationEvent, KMeans, TwinFit};
pub use error::KMeansError;
pub use metrics::{adjusted_rand_index, inertia};
pub use model::FittedModel;
pub use quant::{QuantCache, QuantKind, QuantizedCentroids};
pub use session::Session;
