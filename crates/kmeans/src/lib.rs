//! # ftk-kmeans — FT K-means core
//!
//! The paper's contribution: a step-wise optimized K-means whose
//! distance/assignment stage runs as a fused GEMM on the simulated GPU
//! ([`gpu_sim`]), with optional warp-level algorithm-based fault tolerance.
//!
//! The step-wise variants of §III are all present and runnable:
//!
//! | variant | §III | kernel |
//! |---|---|---|
//! | [`Variant::Naive`] | A-1 | thread-per-sample distance loop |
//! | [`Variant::GemmV1`] | A-2 | SIMT GEMM + separate row-min kernel |
//! | [`Variant::FusedV2`] | A-3 | fused thread/threadblock reduction |
//! | [`Variant::BroadcastV3`] | A-4 | fully fused with per-row broadcast |
//! | [`Variant::Tensor`] | A-5 | tensor-core pipeline kernel (Fig. 4/6) |
//!
//! Fault tolerance plugs into the tensor variant as [`abft::SchemeKind`]:
//! the paper's warp-level detect+correct scheme, Kosaian's detection-only
//! scheme, and Wu's threadblock-level scheme; the centroid-update phase is
//! DMR-protected ([`update`]).
//!
//! ```
//! use gpu_sim::{DeviceProfile, Matrix};
//! use kmeans::{FtConfig, KMeans, KMeansConfig, Variant};
//!
//! // 64 samples around two centers on a line.
//! let data = Matrix::<f64>::from_fn(64, 2, |r, c| {
//!     (r % 2) as f64 * 10.0 + (r as f64 * 0.01) + c as f64 * 0.1
//! });
//! let km = KMeans::new(
//!     DeviceProfile::a100(),
//!     KMeansConfig::new(2)
//!         .with_variant(Variant::tensor_default())
//!         .with_ft(FtConfig::protected()),
//! );
//! let fit = km.fit(&data).unwrap();
//! assert!(fit.converged);
//! assert_eq!(fit.labels.len(), 64);
//! // even samples cluster together, odd samples together
//! assert_eq!(fit.labels[0], fit.labels[2]);
//! assert_ne!(fit.labels[0], fit.labels[1]);
//! ```

pub mod assign;
pub mod baselines;
pub mod config;
pub mod device_data;
pub mod driver;
pub mod metrics;
pub mod norms;
pub mod reference;
pub mod update;
pub mod variants;

pub use assign::AssignmentResult;
pub use config::{FtConfig, InitMethod, KMeansConfig, Variant};
pub use device_data::DeviceData;
pub use driver::{FitResult, KMeans, TwinFit};
pub use metrics::{adjusted_rand_index, inertia};
