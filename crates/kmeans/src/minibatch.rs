//! Streaming mini-batch K-means (the `partial_fit` driver).
//!
//! Each batch runs one assignment pass through the configured kernel
//! variant (ABFT schemes and fault injection included), then folds the
//! batch's per-cluster means into the running centroids with the standard
//! aggregated mini-batch learning-rate rule (Sculley-style): with
//! accumulated per-center weight `w_c` and a batch contributing `n_c`
//! members with mean `mu_c`,
//!
//! ```text
//! w_c ← w_c + n_c,   eta = n_c / w_c,   c ← c + eta · (mu_c − c)
//! ```
//!
//! On the first batch (`w_c = 0`) this reduces to `c = mu_c`, i.e. one
//! full Lloyd step over the batch.
//!
//! **Determinism.** The assignment kernel is bitwise execution-order
//! independent (per-block candidates merge through an order-invariant
//! argmin), so it rides the ambient executor. The update kernel's
//! `atomicAdd` accumulation order is *not* order-invariant in floating
//! point, so the update launch of every batch is pinned to a serial
//! executor scope: batch means — and therefore the produced centroids —
//! are byte-identical under `FTK_EXEC=serial` and the parallel pool. The
//! update is over one mini-batch (small by construction), so serializing
//! it costs little while the dominant assignment stays parallel.

use crate::config::KMeansConfig;
use crate::device_data::DeviceData;
use crate::driver::{build_injector, FitResult, IterationEvent};
use crate::error::KMeansError;
use crate::init::init_centroids;
use crate::model::FittedModel;
use crate::phase;
use crate::session::Session;
use crate::update::update_centroids;
use crate::{assign::run_assignment, metrics};
use abft::dmr::DmrStats;
use fault::CampaignStats;
use gpu_sim::counters::CounterSnapshot;
use gpu_sim::exec::{self, Executor};
use gpu_sim::mma::{FaultHook, NoFault};
use gpu_sim::{Counters, Matrix, Scalar};
use parking_lot::Mutex;

/// splitmix64 finalizer — decorrelates per-batch injection streams from
/// the base seed without an RNG dependency.
fn mix(seed: u64, batch: u64) -> u64 {
    let mut z = seed ^ batch.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One `partial_fit` step: bootstrap from the first batch when `model` is
/// `None`, otherwise continue the stream.
pub(crate) fn partial_fit_step<T: Scalar>(
    session: &Session,
    config: &KMeansConfig,
    model: Option<FittedModel<T>>,
    batch: &Matrix<T>,
) -> Result<FittedModel<T>, KMeansError> {
    let (mb, dim) = (batch.rows(), batch.cols());
    // Destructure the stream state: (config, result shell, weights, batch#).
    // A continued stream keeps the model's own config (the estimator's
    // config only seeds the first batch), so `km.partial_fit` composes with
    // models produced by other estimators of the same session.
    let (cfg, mut result, mut weights, batches) = match model {
        Some(m) => {
            if dim != m.data.dim {
                return Err(KMeansError::ShapeMismatch {
                    what: "batch",
                    expected: (mb, m.data.dim),
                    got: (mb, dim),
                });
            }
            if mb == 0 {
                return Err(KMeansError::InvalidConfig {
                    field: "batch",
                    reason: "batch must contain at least one sample".into(),
                });
            }
            (m.config, m.result, m.weights, m.batches)
        }
        None => {
            config.validate(mb, dim).map_err(|e| match e {
                // Re-word the sample-count constraint for the streaming case.
                KMeansError::InvalidConfig { field: "k", reason } if config.k > mb => {
                    KMeansError::InvalidConfig {
                        field: "k",
                        reason: format!(
                            "{reason} (the first batch must contain at least k samples)"
                        ),
                    }
                }
                other => other,
            })?;
            let centroids = init_centroids(batch, config.k, config.seed, config.init);
            let shell = FitResult {
                centroids,
                labels: Vec::new(),
                inertia: f64::INFINITY,
                iterations: 0,
                converged: false,
                ft_stats: CampaignStats::default(),
                dmr: DmrStats::default(),
                counters: CounterSnapshot::default(),
                injected: 0,
                injection_records: Vec::new(),
                injection_realization: None,
                history: Vec::new(),
            };
            (config.clone(), shell, vec![0u64; config.k], 0)
        }
    };

    let device = session.device();
    let k = cfg.k;
    session.run(|| {
        let counters = Counters::new();
        let stats = Mutex::new(CampaignStats::default());

        // Per-batch injector: same schedule, a decorrelated seed per batch
        // so a stream is not struck at identical sites every step. A rate
        // schedule's residency budget applies per batch (one assignment
        // launch each).
        let mut batch_cfg = cfg.clone();
        batch_cfg.ft.injection_seed = mix(cfg.ft.injection_seed, batches as u64);
        let injector = build_injector::<T>(device, &batch_cfg, mb, dim, 1);
        let hook: &dyn FaultHook<T> = match injector.as_ref() {
            Some(i) => i,
            None => &NoFault,
        };
        let realization = injector.as_ref().map(|i| i.realization());
        let rate_saturated = realization.is_some_and(|r| r.saturated());

        let mut data = DeviceData::upload(device, batch, &result.centroids, &counters)?;

        if let Some(i) = injector.as_ref() {
            i.begin_launch();
            stats.lock().note_injection_launch(rate_saturated);
        }
        let assignment = phase::traced(
            trace::phases::BATCH_ASSIGN,
            batches as u64,
            &counters,
            || {
                run_assignment(
                    device,
                    &data,
                    cfg.variant,
                    cfg.ft.scheme,
                    hook,
                    &counters,
                    &stats,
                )
            },
        )?;
        let labels = assignment.labels;
        let distances = assignment.distances;

        if let Some(i) = injector.as_ref() {
            i.begin_launch();
            stats.lock().note_injection_launch(rate_saturated);
        }
        // Batch means via the device update kernel, pinned to serial block
        // order (see the module docs: float atomicAdd order must not depend
        // on the pool schedule, or centroids would differ across policies).
        let serial = Executor::serial();
        let update = phase::traced(
            trace::phases::BATCH_UPDATE,
            batches as u64,
            &counters,
            || {
                exec::with_executor(&serial, || {
                    update_centroids(
                        device,
                        &data.samples,
                        mb,
                        dim,
                        &labels,
                        &result.centroids,
                        cfg.ft.dmr_update,
                        hook,
                        &counters,
                    )
                })
            },
        )?;
        if update.oob_labels > 0 {
            stats.lock().detected += update.oob_labels;
        }

        // Learning-rate fold: clusters absent from the batch keep their
        // position (and their weight).
        let mut centroids = result.centroids.clone();
        let mut empty_clusters = 0usize;
        for (c, weight) in weights.iter_mut().enumerate().take(k) {
            let n = update.counts[c] as u64;
            if n == 0 {
                empty_clusters += 1;
                continue;
            }
            let w = *weight + n;
            let eta = n as f64 / w as f64;
            for d in 0..dim {
                let old = centroids.get(c, d).to_f64();
                let mean = update.centroids.get(c, d).to_f64();
                centroids.set(c, d, T::from_f64(old + eta * (mean - old)));
            }
            *weight = w;
        }

        // Empty-cluster repair (sklearn's `reassignment_ratio` analog):
        // after the fold, centers whose accumulated weight fell below
        // `ratio × max(weights)` are re-seeded onto the batch samples
        // farthest from their assigned centers. Everything here is
        // host-side and fully ordered (descending assigned distance, ties
        // and center order by ascending index), so repair — like the rest
        // of the update — is byte-identical under serial and pool
        // executors. Disabled at the default `ratio = 0.0`.
        if cfg.reassignment_ratio > 0.0 {
            let threshold =
                weights.iter().copied().max().unwrap_or(0) as f64 * cfg.reassignment_ratio;
            let low: Vec<usize> = (0..k)
                .filter(|&c| (weights[c] as f64) < threshold)
                .collect();
            if !low.is_empty() {
                // Donor rows: batch samples by descending assigned
                // (squared) distance — the points the current centers
                // explain worst — each used at most once.
                let mut order: Vec<usize> = (0..mb).collect();
                order.sort_unstable_by(|&a, &b| {
                    distances[b]
                        .to_f64()
                        .partial_cmp(&distances[a].to_f64())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                // A re-seeded center restarts at the lightest surviving
                // weight: heavy enough to not be instantly re-flagged,
                // light enough that the next batches can still move it.
                let is_low = {
                    let mut f = vec![false; k];
                    low.iter().for_each(|&c| f[c] = true);
                    f
                };
                let restart = (0..k)
                    .filter(|&c| !is_low[c])
                    .map(|c| weights[c])
                    .min()
                    .unwrap_or(1)
                    .max(1);
                for (&c, row) in low.iter().zip(order) {
                    for d in 0..dim {
                        centroids.set(c, d, batch.get(row, d));
                    }
                    weights[c] = restart;
                }
            }
        }
        data.refresh_centroids(device, &centroids, &counters)?;

        // Per-batch bookkeeping, accumulated into the running result.
        let inertia = metrics::inertia(batch, &centroids, &labels);
        let mut batch_stats = *stats.lock();
        batch_stats.injected = injector.as_ref().map_or(0, |i| i.injected_count());
        // Each batch's ledger starts from zero, so the whole thing is the
        // delta; DMR mismatches ride the update result rather than the
        // campaign ledger and are emitted from their own stats block.
        batch_stats.emit_trace_delta(&CampaignStats::default());
        update.dmr.emit_trace_delta(&DmrStats::default());
        result.ft_stats.merge(&batch_stats);
        result.injected = result.ft_stats.injected;
        result.dmr.merge(&update.dmr);
        result.counters = result.counters.merged(&counters.snapshot());
        if let Some(i) = injector.as_ref() {
            result.injection_records.extend(i.records());
        }
        // Keep the *worst* realization across batches (lowest
        // achieved/requested ratio): a rate schedule that saturated the
        // per-block clamp in any batch must stay visible even when later
        // batches achieve their rate. `saturated_launches` counts the
        // affected launches; this field carries the representative rates.
        result.injection_realization = match (result.injection_realization, realization) {
            (prev, None) => prev,
            (None, now) => now,
            (Some(prev), Some(now)) => {
                let shortfall = |r: &fault::RateRealization| {
                    if r.requested_hz > 0.0 {
                        r.achieved_hz / r.requested_hz
                    } else {
                        1.0
                    }
                };
                Some(if shortfall(&now) < shortfall(&prev) {
                    now
                } else {
                    prev
                })
            }
        };
        // History keeps numbering where it left off, so continuing a
        // full-batch fit appends batch events after its Lloyd events
        // instead of colliding with them; `iterations` likewise counts
        // forward (Lloyd iterations + batches), and a stream is never
        // "converged" — each batch moves the centroids.
        result.history.push(IterationEvent {
            iteration: result.history.len(),
            inertia,
            reassigned: mb,
            empty_clusters,
        });
        result.centroids = centroids;
        result.labels = labels;
        result.inertia = inertia;
        result.iterations += 1;
        result.converged = false;

        Ok(FittedModel::from_parts(
            session.clone(),
            cfg,
            &data,
            result,
            weights,
            batches + 1,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FtConfig;
    use crate::metrics::adjusted_rand_index;

    fn blobs(m: usize, dim: usize, k: usize, seed: u64) -> Matrix<f64> {
        Matrix::from_fn(m, dim, |r, c| {
            ((r % k) * 14) as f64
                + (((r * 31 + c * 7 + seed as usize) % 100) as f64 / 100.0 - 0.5) * 0.6
                + c as f64 * 0.02
        })
    }

    /// Deterministic row shuffle: stride permutation with gcd(stride, m)=1.
    fn shuffled_batches(data: &Matrix<f64>, batch: usize) -> Vec<Matrix<f64>> {
        let m = data.rows();
        let stride = 97usize; // coprime with the test sizes used below
        assert_eq!(
            num_gcd(stride, m),
            1,
            "stride must be coprime with m for a full permutation"
        );
        let order: Vec<usize> = (0..m).map(|i| (i * stride) % m).collect();
        order
            .chunks(batch)
            .map(|rows| Matrix::from_fn(rows.len(), data.cols(), |r, c| data.get(rows[r], c)))
            .collect()
    }

    fn num_gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            num_gcd(b, a % b)
        }
    }

    #[test]
    fn streaming_recovers_the_full_batch_clustering() {
        let data = blobs(600, 6, 4, 3);
        let session = Session::a100();
        // k-means++ seeding: one seed per blob with near-certainty, so the
        // stream and the full-batch fit converge to the same partition
        // (random seeding can double-seed a blob and strand the stream in a
        // different local optimum — mini-batch has no empty-cluster repair).
        let km = session.kmeans(
            KMeansConfig::new(4)
                .with_seed(7)
                .with_init(crate::config::InitMethod::KMeansPlusPlus),
        );
        let full = km.fit_model(&data).expect("full fit");

        let mut model = None;
        // two passes over the stream settle the learning-rate updates
        for _epoch in 0..2 {
            for b in shuffled_batches(&data, 128) {
                model = Some(km.partial_fit(model, &b).expect("batch"));
            }
        }
        let model = model.unwrap();
        let stream_labels = model.predict(&data).unwrap();
        let ari = adjusted_rand_index(&stream_labels, &full.labels);
        assert!(
            ari >= 0.95,
            "streaming vs full-batch ARI {ari:.3} (want ≥ 0.95)"
        );
        assert_eq!(model.batches_seen(), 10, "2 epochs x 5 batches");
        assert_eq!(
            model.center_weights().iter().sum::<u64>(),
            1200,
            "weights count every processed sample"
        );
    }

    #[test]
    fn first_batch_must_hold_k_samples() {
        let session = Session::a100();
        let km = session.kmeans(KMeansConfig::new(8).with_seed(1));
        let tiny = blobs(4, 3, 2, 1);
        match km.partial_fit(None, &tiny) {
            Err(KMeansError::InvalidConfig { field: "k", reason }) => {
                assert!(reason.contains("batch"), "streaming wording: {reason}");
            }
            other => panic!("expected InvalidConfig(k): {other:?}"),
        }
    }

    #[test]
    fn continuation_rejects_dimension_changes() {
        let session = Session::a100();
        let km = session.kmeans(KMeansConfig::new(2).with_seed(1));
        let model = km.partial_fit(None, &blobs(32, 3, 2, 5)).unwrap();
        let bad = blobs(16, 5, 2, 5);
        assert!(matches!(
            km.partial_fit(Some(model), &bad),
            Err(KMeansError::ShapeMismatch { what: "batch", .. })
        ));
    }

    #[test]
    fn full_fit_continues_as_a_stream() {
        let data = blobs(300, 4, 3, 9);
        let session = Session::a100();
        let km = session.kmeans(KMeansConfig::new(3).with_seed(2));
        let full = km.fit_model(&data).expect("fit");
        let seen: u64 = full.center_weights().iter().sum();
        assert_eq!(seen, 300);
        let lloyd_iters = full.iterations;
        let lloyd_events = full.history.len();
        assert!(full.converged);
        let cont = km
            .partial_fit(Some(full), &blobs(64, 4, 3, 10))
            .expect("continuation");
        assert_eq!(cont.batches_seen(), 1);
        assert_eq!(cont.center_weights().iter().sum::<u64>(), 364);
        // bookkeeping counts forward from the Lloyd fit, never backwards
        assert_eq!(cont.iterations, lloyd_iters + 1);
        assert!(!cont.converged, "a stream is never 'converged'");
        assert_eq!(cont.history.len(), lloyd_events + 1);
        assert_eq!(
            cont.history.last().unwrap().iteration,
            lloyd_events,
            "batch events extend the Lloyd numbering without colliding"
        );
    }

    #[test]
    fn abft_and_injection_counters_accumulate_across_batches() {
        let session = Session::a100();
        let cfg = KMeansConfig::new(3).with_seed(4).with_ft(FtConfig {
            scheme: abft::SchemeKind::FtKMeans,
            dmr_update: true,
            injection: fault::InjectionSchedule::PerBlock { probability: 0.7 },
            injection_seed: 11,
            ..Default::default()
        });
        let km = session.kmeans(cfg);
        let mut model = None;
        let mut last = (0u64, 0u64, 0u64, 0u64);
        for i in 0..4 {
            let b = blobs(128, 4, 3, 20 + i);
            let m = km.partial_fit(model.take(), &b).expect("batch");
            let now = (
                m.injected,
                m.ft_stats.handled(),
                m.counters.mma_ops,
                m.ft_stats.injection_launches,
            );
            assert!(now.0 >= last.0, "injected monotone: {now:?} vs {last:?}");
            assert!(now.1 >= last.1, "handled monotone");
            assert!(now.2 > last.2, "mma counters grow every batch");
            assert_eq!(now.3, last.3 + 2, "2 injection launches per batch");
            assert_eq!(
                m.injection_records.len() as u64,
                m.injected,
                "records mirror the accumulated count"
            );
            last = now;
            model = Some(m);
        }
        assert!(last.0 > 0, "a 0.7 per-block storm must inject something");
        let model = model.unwrap();
        assert_eq!(model.history.len(), 4, "one history event per batch");
    }

    #[test]
    fn stream_keeps_the_worst_rate_realization() {
        // Batch sizes change across the stream, so the per-block clamp's
        // achievable rate changes too; the reported realization must be the
        // worst one seen, not whatever the final batch achieved.
        let session = Session::a100();
        let cfg = KMeansConfig::new(3).with_seed(4).with_ft(FtConfig {
            scheme: abft::SchemeKind::FtKMeans,
            dmr_update: true,
            injection: fault::InjectionSchedule::Rate {
                errors_per_second: 1e6, // saturates small batches for sure
            },
            injection_seed: 7,
            modeled_residency_s: 1.0,
            ..Default::default()
        });
        let km = session.kmeans(cfg);
        // tiny batch first (few blocks -> clamp saturates hard), then a
        // larger one (more blocks -> higher achievable rate)
        let model = km.partial_fit(None, &blobs(64, 4, 3, 1)).unwrap();
        let worst = model.injection_realization.expect("rate must report");
        assert!(worst.saturated());
        let model = km.partial_fit(Some(model), &blobs(1024, 4, 3, 2)).unwrap();
        let kept = model.injection_realization.unwrap();
        assert!(
            kept.achieved_hz <= worst.achieved_hz + 1e-9,
            "stream must keep the worst realization: kept {kept:?} vs first-batch {worst:?}"
        );
        assert!(kept.saturated());
    }

    /// Drift-stream batch: phase 0 has blobs at per-dim bases 0/14/28;
    /// phase 1 drops the 0-blob and adds a far blob at 70 — the center
    /// left behind starves while its siblings keep accumulating weight.
    fn drift_batch(phase: usize, dim: usize, seed: u64) -> Matrix<f64> {
        let bases: [f64; 3] = if phase == 0 {
            [0.0, 14.0, 28.0]
        } else {
            [14.0, 28.0, 70.0]
        };
        Matrix::from_fn(128, dim, |r, c| {
            bases[r % 3]
                + (((r * 31 + c * 7 + seed as usize) % 100) as f64 / 100.0 - 0.5) * 0.6
                + c as f64 * 0.02
        })
    }

    fn run_drift_stream(session: &Session, ratio: f64) -> FittedModel<f64> {
        let cfg = KMeansConfig::new(3)
            .with_seed(5)
            .with_init(crate::config::InitMethod::KMeansPlusPlus)
            .with_reassignment_ratio(ratio);
        let km = session.kmeans(cfg);
        let mut model = Some(km.partial_fit(None, &drift_batch(0, 4, 0)).unwrap());
        // Long enough for *both* repairs: the dead 0-center is re-seeded
        // onto the new far blob within ~6 batches; the mid center stranded
        // between the surviving blobs starves relative to its siblings and
        // is only flagged once the weight gap has grown (~45 batches).
        for b in 1..56u64 {
            model = Some(km.partial_fit(model, &drift_batch(1, 4, b)).unwrap());
        }
        model.unwrap()
    }

    #[test]
    fn reassignment_repairs_clusters_starved_by_drift() {
        let session = Session::a100();
        let plain = run_drift_stream(&session, 0.0);
        let repaired = run_drift_stream(&session, 0.1);
        // ground truth on post-drift data
        let eval = drift_batch(1, 4, 99);
        let truth: Vec<u32> = (0..eval.rows()).map(|r| (r % 3) as u32).collect();
        let ari_plain = adjusted_rand_index(&plain.predict(&eval).unwrap(), &truth);
        let ari_repaired = adjusted_rand_index(&repaired.predict(&eval).unwrap(), &truth);
        assert!(
            ari_repaired >= 0.99,
            "repair must recover the post-drift clustering, ARI {ari_repaired:.3}"
        );
        assert!(
            ari_repaired > ari_plain + 0.2,
            "without repair the dead center must hurt: {ari_plain:.3} vs {ari_repaired:.3}"
        );
        // the re-seeded center restarted light, and no weight was lost twice
        assert!(repaired.center_weights().iter().all(|&w| w > 0));
    }

    #[test]
    fn repair_is_byte_identical_across_executors() {
        // The repair rule is host-side and fully ordered; like the
        // learning-rate fold it must not depend on the pool schedule.
        let serial = run_drift_stream(&Session::a100().with_executor(Executor::serial()), 0.1);
        let pooled = run_drift_stream(
            &Session::a100().with_executor(Executor::with_workers(4)),
            0.1,
        );
        let bits =
            |m: &Matrix<f64>| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&serial.centroids), bits(&pooled.centroids));
        assert_eq!(serial.center_weights(), pooled.center_weights());
    }

    #[test]
    fn repair_is_a_noop_on_balanced_streams() {
        // With every center healthily weighted, a positive ratio must not
        // perturb the stream: centroids stay bitwise what ratio = 0 gives.
        let session = Session::a100();
        let km_off = session.kmeans(KMeansConfig::new(3).with_seed(2));
        let km_on = session.kmeans(
            KMeansConfig::new(3)
                .with_seed(2)
                .with_reassignment_ratio(0.05),
        );
        let (mut a, mut b) = (None, None);
        for s in 0..4u64 {
            let batch = blobs(120, 4, 3, s);
            a = Some(km_off.partial_fit(a, &batch).unwrap());
            b = Some(km_on.partial_fit(b, &batch).unwrap());
        }
        let (a, b) = (a.unwrap(), b.unwrap());
        let bits =
            |m: &Matrix<f64>| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&a.centroids), bits(&b.centroids));
        assert_eq!(a.center_weights(), b.center_weights());
    }

    #[test]
    fn batch_inertia_is_self_consistent() {
        let session = Session::a100();
        let km = session.kmeans(KMeansConfig::new(2).with_seed(3));
        let b = blobs(96, 3, 2, 8);
        let model = km.partial_fit(None, &b).unwrap();
        let check = metrics::inertia(&b, &model.centroids, &model.labels);
        assert!((check - model.inertia).abs() <= 1e-12 * check.max(1.0));
    }
}
