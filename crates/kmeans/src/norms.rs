//! Row squared-norm kernel (Fig. 2 step 1).
//!
//! "The first two parts of this formula can be computed by squaring
//! elements and summing them up in each row. This can be finished by
//! launching two simple kernels." — one thread per row, streaming reads.

use gpu_sim::{
    launch_grid_labeled, Counters, DeviceProfile, Dim3, GlobalBuffer, LaunchConfig, Scalar,
    ScratchBuf, SimError,
};

/// Rows handled per threadblock.
const ROWS_PER_BLOCK: usize = 256;

/// Compute `‖row_i‖²` for every row of a row-major `rows x cols` buffer.
pub fn row_sq_norms_kernel<T: Scalar>(
    device: &DeviceProfile,
    data: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
    counters: &Counters,
) -> Result<GlobalBuffer<T>, SimError> {
    if data.len() < rows * cols {
        return Err(SimError::ShapeMismatch(format!(
            "buffer of {} elements cannot be {rows}x{cols}",
            data.len()
        )));
    }
    let out = GlobalBuffer::<T>::zeros(rows);
    let grid = Dim3::x(rows.div_ceil(ROWS_PER_BLOCK).max(1));
    let cfg = LaunchConfig {
        grid,
        threads_per_block: ROWS_PER_BLOCK.min(1024),
        smem_bytes: 0,
    };
    launch_grid_labeled(device, cfg, counters, "row_sq_norms", |ctx| {
        let row0 = ctx.bx * ROWS_PER_BLOCK;
        let nrows = ROWS_PER_BLOCK.min(rows.saturating_sub(row0));
        if nrows == 0 {
            return;
        }
        // Stream one row at a time through block-local scratch (a contiguous
        // run each) and write the block's results back as one run.
        let mut row = ScratchBuf::<T, 256>::filled(cols, T::ZERO);
        let mut norms = [T::ZERO; ROWS_PER_BLOCK];
        for (i, slot) in norms[..nrows].iter_mut().enumerate() {
            data.load_run((row0 + i) * cols, &mut row, ctx.counters);
            let mut acc = T::ZERO;
            for &v in row.iter() {
                acc += v * v;
            }
            ctx.counters.add_fma(cols as u64);
            *slot = acc;
        }
        out.store_run(row0, &norms[..nrows], ctx.counters);
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Matrix;

    #[test]
    fn matches_host_computation() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let m = Matrix::<f64>::from_fn(300, 7, |r, c| (r as f64 - c as f64) * 0.25);
        let buf = GlobalBuffer::from_matrix(&m);
        let norms = row_sq_norms_kernel(&dev, &buf, 300, 7, &c).unwrap();
        let expect = m.row_sq_norms();
        for (a, b) in norms.to_vec().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn charges_memory_traffic() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let buf = GlobalBuffer::<f32>::filled(40, 2.0);
        let _ = row_sq_norms_kernel(&dev, &buf, 10, 4, &c).unwrap();
        let s = c.snapshot();
        assert_eq!(s.bytes_loaded, 40 * 4);
        assert_eq!(s.bytes_stored, 10 * 4);
        assert_eq!(s.kernel_launches, 1);
    }

    #[test]
    fn rejects_undersized_buffer() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let buf = GlobalBuffer::<f32>::zeros(5);
        assert!(row_sq_norms_kernel(&dev, &buf, 3, 3, &c).is_err());
    }

    #[test]
    fn empty_rows_ok() {
        let dev = DeviceProfile::t4();
        let c = Counters::new();
        let buf = GlobalBuffer::<f64>::zeros(0);
        let out = row_sq_norms_kernel(&dev, &buf, 0, 4, &c).unwrap();
        assert_eq!(out.len(), 0);
    }
}
